//! A long-lived multi-tenant Jade service over the shared worker pool.
//!
//! [`ThreadRuntime`](crate::ThreadRuntime) executes one program's task DAG
//! per batch and tears its scheduler down afterwards. This module is the
//! request-level front end the ROADMAP's "heavy traffic" north star asks
//! for: a [`JadeService`] owns a pool of long-lived worker threads and
//! admits a *stream* of independent program DAGs ([`Program`]s). Each
//! admitted tenant gets its own [`Synchronizer`], its own [`Store`] and its
//! own event stream (tagged with a [`TenantId`]); all tenants share the
//! worker pool and the write-owner locality table mechanism.
//!
//! Robustness contracts, in order of importance:
//!
//! * **Admission control / backpressure.** At most `max_active` tenants are
//!   resident; further submissions queue in a bounded pending queue. A full
//!   queue never panics and never buffers unboundedly: depending on
//!   [`ShedPolicy`] the new submission is rejected with
//!   [`SubmitError::Overloaded`] or the *oldest* pending DAG is shed (its
//!   report resolves to [`Outcome::Shed`]).
//! * **Tenant fault isolation.** Task bodies run under the same
//!   catch-unwind crash path as `ThreadRuntime`: injected crashes (a
//!   tenant's [`FaultPlan`], keyed purely on `(seed, task, attempt)`) are
//!   re-executed to a bit-identical result; a *genuine* panic fails only
//!   its own tenant ([`Outcome::Failed`]) — the pool keeps running and
//!   every other tenant's outputs and deterministic counters are exactly
//!   what they would be running alone.
//! * **Deadlines.** A tenant may carry a wall-clock deadline (the budget
//!   starts at submission, so time spent queued counts). An expired tenant
//!   stops being dispatched, its remaining tasks are cancelled, running
//!   tasks drain, and the report resolves to [`Outcome::DeadlineExceeded`]
//!   with partial per-tenant metrics — the pool is never wedged. (The
//!   simulators carry the same budget as a `SimDuration` through
//!   `dsim::SimBudget` / `IpscConfig::deadline`.)
//! * **Fair scheduling.** Workers scan tenants round-robin (optionally
//!   weighted): a tenant with continuously ready work is served again
//!   after at most Σ other tenants' weights dispatches — the starvation
//!   bound asserted in the tests.
//! * **Per-tenant metrics.** Every event is recorded in the tenant's own
//!   stream under one service-global logical clock, so
//!   [`TenantReport::tagged_events`] merge into a globally ordered tagged
//!   stream and `Metrics::per_tenant` / `check_lifecycle_per_tenant` split
//!   cleanly.
//!
//! Determinism note: fairness and the global clock order events across
//! tenants nondeterministically, but everything *within* a tenant that Jade
//! semantics pins down — final object values and the interleaving-
//! independent counters — is identical to a solo run of the same program
//! on the same seed (enforced by proptests in `tests/service.rs`).

use crate::{lock, InjectedFailure, OwnerTable, MAX_TASK_ATTEMPTS};
use dsim::FaultPlan;
use jade_core::{
    tag_events, Event, EventKind, EventSink, Handle, Locality, Metrics, ObjectId, Store,
    Synchronizer, TaggedEvent, TaskCtx, TaskDef, TaskId, TenantId, Transition,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One tenant's program: a private object store plus its task DAG, built
/// up-front and handed to [`JadeService::submit`]. Task ids are
/// tenant-local, starting at zero.
#[derive(Default)]
pub struct Program {
    store: Store,
    tasks: Vec<TaskDef>,
}

impl Program {
    pub fn new() -> Program {
        Program::default()
    }

    /// Create a shared object in this tenant's store.
    pub fn create<T: Send + Sync + 'static>(
        &mut self,
        name: impl Into<String>,
        size_bytes: usize,
        data: T,
    ) -> Handle<T> {
        self.store.create(name, size_bytes, data)
    }

    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// Queue a task; tasks execute in declared-access serial order once the
    /// program is admitted.
    pub fn submit(&mut self, def: TaskDef) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(def);
        id
    }

    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }
}

/// What happens when a submission arrives with the pending queue full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Reject the new submission with [`SubmitError::Overloaded`].
    #[default]
    RejectNew,
    /// Admit the new submission and shed the *oldest* still-pending DAG;
    /// its report resolves to [`Outcome::Shed`].
    DropOldest,
}

/// Static configuration of a [`JadeService`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads in the shared pool (minimum 1).
    pub workers: usize,
    /// Tenants resident (registered with a live synchronizer) at once.
    pub max_active: usize,
    /// Bound of the pending-DAG admission queue; `0` disables queueing
    /// entirely (submissions beyond `max_active` shed immediately).
    pub max_pending: usize,
    /// Behavior when the pending queue is full.
    pub shed: ShedPolicy,
    /// Tenant-aware fair-share tuning (DESIGN.md §19): cap how many
    /// consecutive dispatches one tenant receives while other tenants have
    /// ready work, banking the unserved portion of its weighted turn so
    /// long-run weight ratios are preserved. Bounds the dispatch-latency
    /// skew a single heavy tenant can impose on small tenants.
    pub tune: bool,
}

impl ServiceConfig {
    pub fn new(workers: usize) -> ServiceConfig {
        ServiceConfig {
            workers: workers.max(1),
            max_active: 8,
            max_pending: 32,
            shed: ShedPolicy::RejectNew,
            tune: false,
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::new(2)
    }
}

/// Per-submission options.
#[derive(Clone, Debug, Default)]
pub struct TenantOptions {
    /// Wall-clock budget, measured from submission (queueing time counts).
    pub deadline: Option<Duration>,
    /// Injected-fault plan for this tenant only. `panic_p` crashes task
    /// attempts via the keyed `(seed, task, attempt)` hash; `fail_proc = p`
    /// simulates fail-stop of virtual worker `p`: every task placed on it
    /// (tenant-local id modulo pool width) crashes on its first attempt and
    /// re-executes. Both crash *before* the body runs, so recovery is
    /// bit-identical.
    pub faults: Option<FaultPlan>,
    /// Fair-share weight (0 is treated as 1): consecutive dispatches the
    /// tenant may receive before the round-robin cursor moves on.
    pub weight: u32,
}

impl TenantOptions {
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    pub fn with_weight(mut self, w: u32) -> Self {
        self.weight = w;
        self
    }
}

/// Why a submission was not admitted. Never a panic: overload is an
/// expected operating condition of a loaded service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Active slots and the pending queue are full (under
    /// [`ShedPolicy::RejectNew`]).
    Overloaded { pending: usize, limit: usize },
    /// The service is shutting down.
    ShuttingDown,
    /// The tenant's fault plan failed validation.
    InvalidFaultPlan(String),
    /// The program contains no tasks.
    EmptyProgram,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { pending, limit } => {
                write!(f, "service overloaded: {pending}/{limit} DAGs pending")
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
            SubmitError::InvalidFaultPlan(why) => write!(f, "invalid fault plan: {why}"),
            SubmitError::EmptyProgram => write!(f, "program has no tasks"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Terminal state of one tenant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every task completed.
    Completed,
    /// The wall-clock deadline expired; remaining tasks were cancelled.
    DeadlineExceeded,
    /// A task body genuinely panicked (or exhausted the injected-failure
    /// retry budget); remaining tasks were cancelled. The pool survives.
    Failed(String),
    /// Shed from the pending queue under [`ShedPolicy::DropOldest`]
    /// before any task ran.
    Shed,
}

/// Everything a tenant's run produced. The store is shared (`Arc`) because
/// task bodies may still be unwinding when the report is built; readers use
/// [`Store::read`]/[`Store::snapshot`] as usual.
pub struct TenantReport {
    pub tenant: TenantId,
    pub outcome: Outcome,
    pub tasks_total: usize,
    pub tasks_completed: usize,
    /// Tasks never completed (cancelled by a deadline, a failure, or a
    /// shed). Zero iff `outcome == Completed`.
    pub tasks_cancelled: usize,
    /// Injected-crash re-executions recovered inside this tenant.
    pub recoveries: usize,
    pub store: Arc<Store>,
    /// This tenant's event stream. Times are service-global logical
    /// sequence numbers, so merged tagged streams are totally ordered.
    pub events: Vec<Event>,
}

impl TenantReport {
    /// The event stream tagged with this tenant's id, ready to merge with
    /// other tenants' streams for `Metrics::per_tenant` /
    /// `check_lifecycle_per_tenant`.
    pub fn tagged_events(&self) -> Vec<TaggedEvent> {
        tag_events(self.tenant, &self.events)
    }

    /// Per-tenant metrics reconstructed from this tenant's events alone.
    pub fn metrics(&self, procs: usize) -> Metrics {
        Metrics::from_events(&self.events, procs)
    }
}

/// One resident tenant. All fields are guarded by the service's core lock;
/// only the store (and the executing task's body) escape it.
struct Tenant {
    store: Arc<Store>,
    /// Task bodies, taken by the executing worker; restored on an injected
    /// crash so the re-execution runs the same body.
    bodies: Vec<Option<TaskDef>>,
    sync: Synchronizer,
    events: EventSink,
    /// Enabled, not-yet-dispatched tenant-local task indices (FIFO).
    ready: VecDeque<usize>,
    attempts: Vec<u32>,
    /// Locality target recorded when the task became ready (most recent
    /// writer of its declared objects at that moment), if any.
    targets: Vec<Option<usize>>,
    owners: OwnerTable,
    n_tasks: usize,
    /// Tasks not yet completed.
    live: usize,
    /// Tasks currently executing on workers.
    running: usize,
    completed: usize,
    recoveries: usize,
    /// Set once cancellation triggers (deadline or failure); the terminal
    /// outcome. Cancelled tenants dispatch nothing further and finalize
    /// when the last running task drains.
    cancel: Option<Outcome>,
    deadline: Option<Instant>,
    faults: Option<FaultPlan>,
    weight: u32,
    /// Unserved dispatches banked when the controller cut this tenant's
    /// weighted turn short ([`ServiceConfig::tune`]); restored as the grant
    /// of its next turn so long-run weight ratios survive the cap.
    carry: u32,
}

/// A submission waiting for an active slot.
struct PendingTenant {
    id: u32,
    prog: Program,
    deadline: Option<Instant>,
    faults: Option<FaultPlan>,
    weight: u32,
}

struct Core {
    active: BTreeMap<u32, Tenant>,
    pending: VecDeque<PendingTenant>,
    finished: HashMap<u32, TenantReport>,
    next_id: u32,
    /// Tenant currently holding the round-robin turn.
    rr_cursor: u32,
    /// Dispatches left in the cursor tenant's turn (its weight, counted
    /// down; at zero the next scan starts after the cursor).
    rr_credit: u32,
    /// Consecutive dispatches the cursor tenant has received in its current
    /// stretch; the tuned policy forces a handoff when this reaches the
    /// controller's credit cap while other tenants have ready work.
    burst: u32,
    /// Fair-share feedback controller ([`ServiceConfig::tune`]).
    ctl: jade_core::Controller,
    /// Service-global logical event clock shared by every tenant's stream.
    clock: u64,
    shutdown: bool,
}

impl Core {
    fn tick(clock: &mut u64) -> u64 {
        let t = *clock;
        *clock += 1;
        t
    }
}

struct Inner {
    cfg: ServiceConfig,
    core: Mutex<Core>,
    /// Workers park here when no tenant has ready work.
    work: Condvar,
    /// `wait` callers park here until their report lands in `finished`.
    done: Condvar,
}

/// A task picked for execution; everything `execute` needs off-lock.
struct Picked {
    tenant: u32,
    local: usize,
    def: TaskDef,
    attempt: u32,
    injected: bool,
    store: Arc<Store>,
}

/// The long-lived multi-tenant front end. See the module docs for the
/// contracts; see `repro service-stress` for the acceptance harness.
pub struct JadeService {
    inner: Arc<Inner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl JadeService {
    pub fn new(cfg: ServiceConfig) -> JadeService {
        let cfg = ServiceConfig {
            workers: cfg.workers.max(1),
            max_active: cfg.max_active.max(1),
            ..cfg
        };
        let inner = Arc::new(Inner {
            cfg,
            core: Mutex::new(Core {
                active: BTreeMap::new(),
                pending: VecDeque::new(),
                finished: HashMap::new(),
                next_id: 0,
                rr_cursor: 0,
                rr_credit: 0,
                burst: 0,
                ctl: jade_core::Controller::new(),
                clock: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let threads = (0..cfg.workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("jade-svc-{w}"))
                    .spawn(move || worker_loop(&inner, w))
                    .expect("spawn service worker")
            })
            .collect();
        JadeService { inner, threads }
    }

    pub fn workers(&self) -> usize {
        self.inner.cfg.workers
    }

    /// Decisions the fair-share controller has taken so far. Empty unless
    /// [`ServiceConfig::tune`] is set.
    pub fn tune_log(&self) -> jade_core::TuneLog {
        lock(&self.inner.core).ctl.log.clone()
    }

    /// Submit a tenant program. Returns its [`TenantId`] (pass to
    /// [`wait`](Self::wait)) or an explicit [`SubmitError`] — admission
    /// never panics and never queues unboundedly.
    pub fn submit(&self, prog: Program, opts: TenantOptions) -> Result<TenantId, SubmitError> {
        if prog.tasks.is_empty() {
            return Err(SubmitError::EmptyProgram);
        }
        if let Some(plan) = &opts.faults {
            plan.validate().map_err(SubmitError::InvalidFaultPlan)?;
        }
        let deadline = opts.deadline.map(|d| Instant::now() + d);
        let weight = opts.weight.max(1);
        let mut core = lock(&self.inner.core);
        if core.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if core.active.len() >= self.inner.cfg.max_active
            && core.pending.len() >= self.inner.cfg.max_pending
        {
            match self.inner.cfg.shed {
                ShedPolicy::RejectNew => {
                    return Err(SubmitError::Overloaded {
                        pending: core.pending.len(),
                        limit: self.inner.cfg.max_pending,
                    });
                }
                ShedPolicy::DropOldest => {
                    if let Some(old) = core.pending.pop_front() {
                        let report = shed_report(&old);
                        core.finished.insert(old.id, report);
                        self.inner.done.notify_all();
                    } else {
                        // max_pending == 0: nothing to shed, reject.
                        return Err(SubmitError::Overloaded {
                            pending: 0,
                            limit: 0,
                        });
                    }
                }
            }
        }
        let id = core.next_id;
        core.next_id += 1;
        let pend = PendingTenant {
            id,
            prog,
            deadline,
            faults: opts.faults,
            weight,
        };
        if core.active.len() < self.inner.cfg.max_active {
            register_tenant(&mut core, pend);
        } else {
            core.pending.push_back(pend);
        }
        drop(core);
        self.inner.work.notify_all();
        Ok(TenantId(id))
    }

    /// Block until tenant `id`'s report is ready and take it. Each report
    /// can be taken exactly once.
    ///
    /// # Panics
    ///
    /// If `id` was never issued by this service or its report was already
    /// taken.
    pub fn wait(&self, id: TenantId) -> TenantReport {
        let mut core = lock(&self.inner.core);
        loop {
            if let Some(r) = core.finished.remove(&id.0) {
                return r;
            }
            assert!(
                id.0 < core.next_id
                    && (core.active.contains_key(&id.0)
                        || core.pending.iter().any(|p| p.id == id.0)),
                "unknown or already-taken tenant {id}"
            );
            core = self
                .inner
                .done
                .wait(core)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Take tenant `id`'s report if it is already finished.
    pub fn try_take(&self, id: TenantId) -> Option<TenantReport> {
        lock(&self.inner.core).finished.remove(&id.0)
    }

    /// Tenants currently pending admission (backpressure observability).
    pub fn pending_len(&self) -> usize {
        lock(&self.inner.core).pending.len()
    }

    /// Tenants currently resident.
    pub fn active_len(&self) -> usize {
        lock(&self.inner.core).active.len()
    }

    /// Stop accepting submissions, drain every admitted tenant, and join
    /// the worker pool. Unclaimed reports are dropped.
    pub fn shutdown(mut self) {
        self.drain_and_join();
    }

    fn drain_and_join(&mut self) {
        {
            let mut core = lock(&self.inner.core);
            core.shutdown = true;
        }
        self.inner.work.notify_all();
        for h in self.threads.drain(..) {
            if let Err(p) = h.join() {
                // A panic *outside* the body's catch_unwind is a service
                // bug, not a tenant fault; surface it.
                resume_unwind(p);
            }
        }
    }
}

impl Drop for JadeService {
    fn drop(&mut self) {
        self.drain_and_join();
    }
}

fn shed_report(p: &PendingTenant) -> TenantReport {
    TenantReport {
        tenant: TenantId(p.id),
        outcome: Outcome::Shed,
        tasks_total: p.prog.tasks.len(),
        tasks_completed: 0,
        tasks_cancelled: p.prog.tasks.len(),
        recoveries: 0,
        store: Arc::new(Store::new()),
        events: Vec::new(),
    }
}

/// Move a pending submission into the active set: give it a synchronizer,
/// register every task in serial program order, and queue the initially
/// enabled ones.
fn register_tenant(core: &mut Core, pend: PendingTenant) {
    let PendingTenant {
        id,
        prog,
        deadline,
        faults,
        weight,
    } = pend;
    let n = prog.tasks.len();
    let mut clock = core.clock;
    let mut tenant = Tenant {
        store: Arc::new(prog.store),
        bodies: Vec::with_capacity(n),
        sync: Synchronizer::new(true),
        events: EventSink::recording(),
        ready: VecDeque::new(),
        attempts: vec![0; n],
        targets: vec![None; n],
        owners: OwnerTable::default(),
        n_tasks: n,
        live: n,
        running: 0,
        completed: 0,
        recoveries: 0,
        cancel: None,
        deadline,
        faults,
        weight,
        carry: 0,
    };
    tenant.owners.ensure(tenant.store.len());
    for (i, def) in prog.tasks.into_iter().enumerate() {
        let t = Core::tick(&mut clock);
        let enabled =
            tenant
                .sync
                .add_task_traced(TaskId(i as u32), &def.spec, &mut tenant.events, t, 0);
        tenant.bodies.push(Some(def));
        if enabled {
            tenant.ready.push_back(i);
        }
    }
    core.clock = clock;
    core.active.insert(id, tenant);
}

/// Trigger cancellation of a tenant: set the terminal outcome (first cause
/// wins), drop its not-yet-dispatched work, and finalize immediately if
/// nothing is still running.
fn cancel_tenant(core: &mut Core, inner: &Inner, id: u32, outcome: Outcome) {
    let Some(t) = core.active.get_mut(&id) else {
        return;
    };
    if t.cancel.is_none() {
        t.cancel = Some(outcome);
    }
    t.ready.clear();
    if t.running == 0 {
        finalize_tenant(core, inner, id);
    }
}

/// Remove a terminal tenant from the active set, build its report, wake
/// waiters, and free its slot for pending admissions.
fn finalize_tenant(core: &mut Core, inner: &Inner, id: u32) {
    let Some(mut t) = core.active.remove(&id) else {
        return;
    };
    debug_assert_eq!(t.running, 0, "finalizing tenant {id} with running tasks");
    let outcome = t.cancel.take().unwrap_or(Outcome::Completed);
    let report = TenantReport {
        tenant: TenantId(id),
        outcome,
        tasks_total: t.n_tasks,
        tasks_completed: t.completed,
        tasks_cancelled: t.n_tasks - t.completed,
        recoveries: t.recoveries,
        store: t.store,
        events: t.events.take(),
    };
    core.finished.insert(id, report);
    inner.done.notify_all();
}

/// Lazily observe expired deadlines. Runs at every pick, so an expired
/// tenant is cancelled before any further task of it is dispatched.
fn sweep_deadlines(core: &mut Core, inner: &Inner, now: Instant) {
    let expired: Vec<u32> = core
        .active
        .iter()
        .filter(|(_, t)| t.cancel.is_none() && t.deadline.is_some_and(|d| now >= d))
        .map(|(&id, _)| id)
        .collect();
    for id in expired {
        cancel_tenant(core, inner, id, Outcome::DeadlineExceeded);
    }
}

/// Admit pending submissions into freed active slots, oldest first.
fn pump_admissions(core: &mut Core, inner: &Inner) {
    while core.active.len() < inner.cfg.max_active {
        let Some(pend) = core.pending.pop_front() else {
            return;
        };
        register_tenant(core, pend);
    }
}

/// Pick the next task under the fairness policy. Also pumps admissions and
/// sweeps deadlines (both are cheap and must happen even when no task is
/// runnable, or an all-expired service would never drain).
fn pick(core: &mut Core, inner: &Inner, w: usize) -> Option<Picked> {
    pump_admissions(core, inner);
    sweep_deadlines(core, inner, Instant::now());
    let ids: Vec<u32> = core.active.keys().copied().collect();
    if ids.is_empty() {
        return None;
    }
    // Tuned policy: bound how long one tenant may monopolize the dispatch
    // stream while others wait. The cap shrinks as more tenants have ready
    // work; u32::MAX (tuning off) makes the forced-handoff branch dead.
    let (cap, ready_tenants) = if inner.cfg.tune {
        let ready_tenants = ids
            .iter()
            .filter(|i| {
                core.active
                    .get(i)
                    .is_some_and(|t| t.cancel.is_none() && !t.ready.is_empty())
            })
            .count();
        (core.ctl.credit_cap(ready_tenants), ready_tenants)
    } else {
        (u32::MAX, 0)
    };
    // Weighted round-robin: keep serving the cursor tenant while it has
    // credit, otherwise start scanning just past it.
    let start = if core.rr_credit > 0 {
        ids.partition_point(|&i| i < core.rr_cursor)
    } else {
        ids.partition_point(|&i| i <= core.rr_cursor)
    } % ids.len();
    for k in 0..ids.len() {
        let id = ids[(start + k) % ids.len()];
        let Some(t) = core.active.get_mut(&id) else {
            continue;
        };
        if t.cancel.is_some() || t.ready.is_empty() {
            continue;
        }
        let continuing = id == core.rr_cursor && core.rr_credit > 0;
        if continuing && core.burst >= cap && ready_tenants > 1 {
            // Forced handoff: bank the unserved credit so the tenant's next
            // turn finishes it (long-run weight ratios are untouched) and
            // let the scan move on to the waiting tenants.
            t.carry = t.carry.saturating_add(core.rr_credit);
            core.rr_credit = 0;
            continue;
        }
        if !continuing {
            if id != core.rr_cursor {
                core.burst = 0;
            }
            core.rr_cursor = id;
            core.rr_credit = if t.carry > 0 {
                std::mem::take(&mut t.carry)
            } else {
                t.weight.max(1)
            };
        }
        core.rr_credit -= 1;
        core.burst = core.burst.saturating_add(1);
        let local = t.ready.pop_front().expect("ready checked non-empty");
        let def = t.bodies[local].take().expect("task dispatched twice");
        let attempt = t.attempts[local];
        let injected = t
            .faults
            .as_ref()
            .is_some_and(|plan| task_crashes(plan, local as u64, attempt, inner.cfg.workers));
        t.running += 1;
        let target = t.targets[local];
        let locality = match target {
            None => Locality::Untracked,
            Some(tw) if tw == w => Locality::Hit,
            Some(_) => Locality::Miss,
        };
        let mut clock = core.clock;
        let time = Core::tick(&mut clock);
        let t = core.active.get_mut(&id).expect("tenant still active");
        t.events.emit_task(
            time,
            w,
            EventKind::TaskDispatched {
                stolen: false,
                locality,
            },
            TaskId(local as u32),
        );
        t.events
            .emit_task(time, w, EventKind::TaskStarted, TaskId(local as u32));
        let store = Arc::clone(&t.store);
        core.clock = clock;
        return Some(Picked {
            tenant: id,
            local,
            def,
            attempt,
            injected,
            store,
        });
    }
    None
}

/// The tenant-plan crash decision for one attempt: the keyed `panic_p`
/// hash, plus fail-stop of a *virtual* worker — every task placed on
/// `fail_proc` (tenant-local id modulo pool width) crashes once and
/// re-executes elsewhere. Both are pure functions of `(plan, task,
/// attempt)`, independent of interleaving — that is what keeps a faulty
/// tenant's recovered output bit-identical to its solo run.
fn task_crashes(plan: &FaultPlan, task: u64, attempt: u32, workers: usize) -> bool {
    if plan.task_fails(task, attempt) {
        return true;
    }
    plan.fail_proc
        .is_some_and(|p| attempt == 0 && task as usize % workers == p % workers)
}

/// Apply a synchronizer transition for `tenant` and queue newly enabled
/// tasks (unless the tenant is cancelled), recording their locality
/// targets. Returns whether anything became ready.
fn apply_transition(core: &mut Core, tenant: u32, tr: Transition, w: usize) -> bool {
    let mut clock = core.clock;
    let mut newly = Vec::new();
    let t = core.active.get_mut(&tenant).expect("tenant still active");
    let time = Core::tick(&mut clock);
    t.sync.apply_traced(tr, &mut newly, &mut t.events, time, w);
    let mut woke = false;
    if t.cancel.is_none() {
        for id in newly {
            let local = id.index();
            let spec = t.bodies[local]
                .as_ref()
                .map(|d| d.spec.clone())
                .expect("enabled task has a body");
            t.targets[local] = t.owners.latest_writer(&spec);
            t.ready.push_back(local);
            woke = true;
        }
    }
    core.clock = clock;
    woke
}

/// Run one picked task outside the core lock, then settle the result.
fn execute_and_settle(inner: &Inner, w: usize, p: Picked) {
    let Picked {
        tenant,
        local,
        def,
        attempt,
        injected,
        store,
    } = p;
    let id = TaskId(local as u32);
    // The body stays outside the closure (`TaskBody` is `Fn`), so a caught
    // unwind leaves `def` intact for re-execution.
    let result = catch_unwind(AssertUnwindSafe(|| {
        if injected {
            // Simulated crash before the body runs — quiet unwind, no
            // panic-hook noise. Crashing before any body effect is what
            // makes the re-execution exact.
            resume_unwind(Box::new(InjectedFailure));
        }
        // Mid-task releases flush eagerly (a buffered release could
        // deadlock a pipeline whose consumer is the only runnable task).
        let hook = |obj: ObjectId| {
            let mut core = lock(&inner.core);
            if apply_transition(&mut core, tenant, Transition::Release(id, obj), w) {
                drop(core);
                inner.work.notify_all();
            }
        };
        let ctx = TaskCtx::with_release_hook(&store, id, def.label, &def.spec, &hook);
        (def.body)(&ctx);
    }));

    let mut core = lock(&inner.core);
    match result {
        Ok(()) => {
            {
                let t = core.active.get_mut(&tenant).expect("tenant still active");
                // Publish write ownership before successors are enabled, so
                // the locality heuristic routes them toward this worker.
                for o in def.spec.written_objects() {
                    t.owners.record(o, w);
                }
            }
            apply_transition(&mut core, tenant, Transition::Complete(id), w);
            let t = core.active.get_mut(&tenant).expect("tenant still active");
            t.running -= 1;
            t.live -= 1;
            t.completed += 1;
            // Finalize on the last task, or — for a cancelled tenant —
            // once the last in-flight body has drained.
            if t.live == 0 || (t.cancel.is_some() && t.running == 0) {
                finalize_tenant(&mut core, inner, tenant);
            }
        }
        Err(_) if injected && attempt + 1 < MAX_TASK_ATTEMPTS => {
            // Injected-crash recovery: re-roll the fault hash with the
            // bumped attempt and re-queue; the body never ran, so the
            // retry is exact.
            let mut clock = core.clock;
            let t = core.active.get_mut(&tenant).expect("tenant still active");
            t.attempts[local] = attempt + 1;
            t.recoveries += 1;
            t.running -= 1;
            let time = Core::tick(&mut clock);
            t.events.emit(time, w, EventKind::WorkerFailed);
            let time = Core::tick(&mut clock);
            t.events.emit_task(time, w, EventKind::TaskReExecuted, id);
            t.bodies[local] = Some(def);
            if t.cancel.is_none() {
                t.ready.push_back(local);
            } else if t.running == 0 {
                core.clock = clock;
                finalize_tenant(&mut core, inner, tenant);
                drop(core);
                inner.work.notify_all();
                return;
            }
            core.clock = clock;
        }
        Err(p) => {
            // Genuine tenant failure: contain it. Only this tenant is
            // cancelled; the pool and every other tenant keep running.
            let msg = panic_message(&*p, injected);
            let mut clock = core.clock;
            let t = core.active.get_mut(&tenant).expect("tenant still active");
            t.running -= 1;
            let time = Core::tick(&mut clock);
            t.events.emit(time, w, EventKind::WorkerFailed);
            core.clock = clock;
            cancel_tenant(&mut core, inner, tenant, Outcome::Failed(msg));
        }
    }
    drop(core);
    // Completions may have enabled successors, freed an active slot, or
    // finished the tenant — wake pickers and waiters alike.
    inner.work.notify_all();
}

fn panic_message(p: &(dyn std::any::Any + Send), injected: bool) -> String {
    if injected {
        return format!("injected failure persisted for {MAX_TASK_ATTEMPTS} attempts");
    }
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "task body panicked".to_string()
    }
}

fn worker_loop(inner: &Inner, w: usize) {
    let mut core = lock(&inner.core);
    loop {
        match pick(&mut core, inner, w) {
            Some(p) => {
                drop(core);
                execute_and_settle(inner, w, p);
                core = lock(&inner.core);
            }
            None => {
                if core.shutdown && core.active.is_empty() && core.pending.is_empty() {
                    inner.work.notify_all();
                    return;
                }
                // Expired-but-undrained deadlines need a periodic observer
                // even when no completion or submission will wake us.
                let has_deadline = core.active.values().any(|t| t.deadline.is_some());
                if has_deadline {
                    let (g, _) = inner
                        .work
                        .wait_timeout(core, Duration::from_millis(5))
                        .unwrap_or_else(|e| e.into_inner());
                    core = g;
                } else {
                    core = inner.work.wait(core).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_core::{check_lifecycle_per_tenant, TaskBuilder};

    /// A chain program: `n` tasks serially incrementing one counter; task i
    /// also records its index, so the final value pins execution order.
    fn chain_program(n: usize) -> (Program, Handle<u64>) {
        let mut prog = Program::new();
        let h = prog.create("acc", 8, 0u64);
        for i in 0..n {
            prog.submit(TaskBuilder::new("chain").rd_wr(h).body(move |ctx| {
                let mut v = ctx.wr(h);
                *v = v.wrapping_mul(31).wrapping_add(i as u64 + 1);
            }));
        }
        (prog, h)
    }

    fn chain_expected(n: usize) -> u64 {
        let mut v = 0u64;
        for i in 0..n {
            v = v.wrapping_mul(31).wrapping_add(i as u64 + 1);
        }
        v
    }

    /// `n` independent tasks each bumping their own slot.
    fn wide_program(n: usize) -> (Program, Handle<Vec<u64>>) {
        let mut prog = Program::new();
        let hs: Vec<Handle<u64>> = (0..n)
            .map(|i| prog.create(format!("s{i}"), 8, 0u64))
            .collect();
        let sum = prog.create("sum", 8, Vec::<u64>::new());
        for (i, &h) in hs.iter().enumerate() {
            prog.submit(TaskBuilder::new("wide").rd_wr(h).body(move |ctx| {
                *ctx.wr(h) = i as u64 + 1;
            }));
        }
        (prog, sum)
    }

    #[test]
    fn single_tenant_completes_with_clean_report() {
        let svc = JadeService::new(ServiceConfig::new(4));
        let (prog, h) = chain_program(20);
        let id = svc.submit(prog, TenantOptions::default()).unwrap();
        let r = svc.wait(id);
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.tasks_total, 20);
        assert_eq!(r.tasks_completed, 20);
        assert_eq!(r.tasks_cancelled, 0);
        assert_eq!(*r.store.read(h), chain_expected(20));
        check_lifecycle_per_tenant(&r.tagged_events()).expect("lifecycle");
        let m = r.metrics(4);
        assert_eq!(m.tasks_created, 20);
        assert_eq!(m.tasks_completed, 20);
        assert_eq!(m.tasks_started, 20);
    }

    #[test]
    fn injected_crashes_recover_bit_identically() {
        let plan = FaultPlan {
            panic_p: 0.4,
            seed: 7,
            ..FaultPlan::none()
        };
        let svc = JadeService::new(ServiceConfig::new(3));
        let (clean, hc) = chain_program(30);
        let (faulty, hf) = chain_program(30);
        let a = svc.submit(clean, TenantOptions::default()).unwrap();
        let b = svc
            .submit(faulty, TenantOptions::default().with_faults(plan))
            .unwrap();
        let ra = svc.wait(a);
        let rb = svc.wait(b);
        assert_eq!(ra.outcome, Outcome::Completed);
        assert_eq!(rb.outcome, Outcome::Completed);
        assert!(
            rb.recoveries > 0,
            "plan with p=0.4 over 30 tasks must crash"
        );
        assert_eq!(*ra.store.read(hc), chain_expected(30));
        assert_eq!(*rb.store.read(hf), chain_expected(30));
        let m = rb.metrics(3);
        assert_eq!(m.tasks_reexecuted as usize, rb.recoveries);
        assert_eq!(m.tasks_started, 30 + rb.recoveries);
        check_lifecycle_per_tenant(&rb.tagged_events()).expect("lifecycle under faults");
    }

    #[test]
    fn fail_stop_plan_recovers() {
        let plan = FaultPlan {
            fail_proc: Some(1),
            ..FaultPlan::none()
        };
        let svc = JadeService::new(ServiceConfig::new(2));
        let (prog, h) = chain_program(10);
        let id = svc
            .submit(prog, TenantOptions::default().with_faults(plan))
            .unwrap();
        let r = svc.wait(id);
        assert_eq!(r.outcome, Outcome::Completed);
        // Tasks 1, 3, 5, 7, 9 sit on virtual worker 1 and crash once each.
        assert_eq!(r.recoveries, 5);
        assert_eq!(*r.store.read(h), chain_expected(10));
    }

    #[test]
    fn genuine_panic_fails_only_its_tenant() {
        let svc = JadeService::new(ServiceConfig::new(2));
        let mut bad = Program::new();
        let hb = bad.create("b", 8, 0u64);
        bad.submit(TaskBuilder::new("ok").rd_wr(hb).body(move |ctx| {
            *ctx.wr(hb) = 1;
        }));
        bad.submit(
            TaskBuilder::new("boom")
                .rd_wr(hb)
                .body(|_| panic!("tenant bug")),
        );
        bad.submit(TaskBuilder::new("never").rd_wr(hb).body(move |ctx| {
            *ctx.wr(hb) = 99;
        }));
        let (clean, hc) = chain_program(25);
        let b = svc.submit(bad, TenantOptions::default()).unwrap();
        let c = svc.submit(clean, TenantOptions::default()).unwrap();
        let rb = svc.wait(b);
        let rc = svc.wait(c);
        match &rb.outcome {
            Outcome::Failed(msg) => assert!(msg.contains("tenant bug"), "{msg}"),
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(rb.tasks_completed, 1);
        assert_eq!(rb.tasks_cancelled, 2);
        assert_eq!(*rb.store.read(hb), 1, "cancelled task must not run");
        // The clean tenant is untouched and the pool is still alive.
        assert_eq!(rc.outcome, Outcome::Completed);
        assert_eq!(*rc.store.read(hc), chain_expected(25));
        let (after, ha) = chain_program(5);
        let a = svc.submit(after, TenantOptions::default()).unwrap();
        let r = svc.wait(a);
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(*r.store.read(ha), chain_expected(5));
    }

    #[test]
    fn zero_deadline_cancels_before_any_dispatch() {
        let svc = JadeService::new(ServiceConfig::new(2));
        let (prog, h) = chain_program(50);
        let id = svc
            .submit(prog, TenantOptions::default().with_deadline(Duration::ZERO))
            .unwrap();
        let r = svc.wait(id);
        assert_eq!(r.outcome, Outcome::DeadlineExceeded);
        assert_eq!(r.tasks_completed, 0);
        assert_eq!(r.tasks_cancelled, 50);
        assert_eq!(*r.store.read(h), 0);
        // Partial metrics still parse: all 50 created, none started.
        let m = r.metrics(2);
        assert_eq!(m.tasks_created, 50);
        assert_eq!(m.tasks_started, 0);
        // The pool is not wedged.
        let (next, hn) = chain_program(8);
        let n = svc.submit(next, TenantOptions::default()).unwrap();
        assert_eq!(*svc.wait(n).store.read(hn), chain_expected(8));
    }

    #[test]
    fn midrun_deadline_drains_cleanly() {
        let svc = JadeService::new(ServiceConfig::new(2));
        let mut prog = Program::new();
        let h = prog.create("acc", 8, 0u64);
        for _ in 0..200 {
            prog.submit(TaskBuilder::new("slow").rd_wr(h).body(move |ctx| {
                std::thread::sleep(Duration::from_millis(2));
                *ctx.wr(h) += 1;
            }));
        }
        let id = svc
            .submit(
                prog,
                TenantOptions::default().with_deadline(Duration::from_millis(30)),
            )
            .unwrap();
        let r = svc.wait(id);
        assert_eq!(r.outcome, Outcome::DeadlineExceeded);
        assert!(r.tasks_completed < 200, "deadline should cut the chain");
        assert_eq!(*r.store.read(h), r.tasks_completed as u64);
        check_lifecycle_per_tenant(&Vec::new()).unwrap();
    }

    #[test]
    fn overload_rejects_new_without_panicking() {
        let cfg = ServiceConfig {
            workers: 1,
            max_active: 1,
            max_pending: 2,
            shed: ShedPolicy::RejectNew,
            tune: false,
        };
        let svc = JadeService::new(cfg);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let mut blocker = Program::new();
        let hb = blocker.create("b", 8, 0u64);
        let g = Arc::clone(&gate);
        blocker.submit(TaskBuilder::new("block").rd_wr(hb).body(move |_| {
            let (m, cv) = &*g;
            let mut open = lock(m);
            while !*open {
                open = cv.wait(open).unwrap_or_else(|e| e.into_inner());
            }
        }));
        let b = svc.submit(blocker, TenantOptions::default()).unwrap();
        // Wait until the blocker actually occupies the only active slot.
        while svc.active_len() == 0 {
            std::thread::yield_now();
        }
        let q1 = svc
            .submit(chain_program(3).0, TenantOptions::default())
            .unwrap();
        let q2 = svc
            .submit(chain_program(3).0, TenantOptions::default())
            .unwrap();
        let err = svc
            .submit(chain_program(3).0, TenantOptions::default())
            .unwrap_err();
        assert_eq!(
            err,
            SubmitError::Overloaded {
                pending: 2,
                limit: 2
            }
        );
        assert_eq!(svc.pending_len(), 2);
        let (m, cv) = &*gate;
        *lock(m) = true;
        cv.notify_all();
        for id in [b, q1, q2] {
            assert_eq!(svc.wait(id).outcome, Outcome::Completed);
        }
    }

    #[test]
    fn drop_oldest_sheds_the_oldest_pending_dag() {
        let cfg = ServiceConfig {
            workers: 1,
            max_active: 1,
            max_pending: 1,
            shed: ShedPolicy::DropOldest,
            tune: false,
        };
        let svc = JadeService::new(cfg);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let mut blocker = Program::new();
        let hb = blocker.create("b", 8, 0u64);
        let g = Arc::clone(&gate);
        blocker.submit(TaskBuilder::new("block").rd_wr(hb).body(move |_| {
            let (m, cv) = &*g;
            let mut open = lock(m);
            while !*open {
                open = cv.wait(open).unwrap_or_else(|e| e.into_inner());
            }
        }));
        let b = svc.submit(blocker, TenantOptions::default()).unwrap();
        while svc.active_len() == 0 {
            std::thread::yield_now();
        }
        let old = svc
            .submit(chain_program(3).0, TenantOptions::default())
            .unwrap();
        let new = svc
            .submit(chain_program(4).0, TenantOptions::default())
            .unwrap();
        let shed = svc.wait(old);
        assert_eq!(shed.outcome, Outcome::Shed);
        assert_eq!(shed.tasks_cancelled, 3);
        let (m, cv) = &*gate;
        *lock(m) = true;
        cv.notify_all();
        assert_eq!(svc.wait(b).outcome, Outcome::Completed);
        assert_eq!(svc.wait(new).outcome, Outcome::Completed);
    }

    /// The starvation bound: with one worker (so dispatch order is the
    /// fairness policy and nothing else), a tenant with continuously ready
    /// work is served again within Σ other tenants' weights dispatches.
    #[test]
    fn round_robin_bounds_starvation() {
        let cfg = ServiceConfig {
            workers: 1,
            max_active: 8,
            max_pending: 8,
            shed: ShedPolicy::RejectNew,
            tune: false,
        };
        let svc = JadeService::new(cfg);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Hold the single worker hostage until all tenants are registered,
        // so every tenant's queue is continuously non-empty during the
        // measured region.
        let mut blocker = Program::new();
        let hb = blocker.create("b", 8, 0u64);
        let g = Arc::clone(&gate);
        blocker.submit(TaskBuilder::new("block").rd_wr(hb).body(move |_| {
            let (m, cv) = &*g;
            let mut open = lock(m);
            while !*open {
                open = cv.wait(open).unwrap_or_else(|e| e.into_inner());
            }
        }));
        let b = svc.submit(blocker, TenantOptions::default()).unwrap();
        while svc.active_len() == 0 {
            std::thread::yield_now();
        }
        const TENANTS: usize = 3;
        const TASKS: usize = 12;
        let ids: Vec<TenantId> = (0..TENANTS)
            .map(|_| {
                svc.submit(wide_program(TASKS).0, TenantOptions::default())
                    .unwrap()
            })
            .collect();
        let (m, cv) = &*gate;
        *lock(m) = true;
        cv.notify_all();
        let _ = svc.wait(b);
        let mut tagged: Vec<TaggedEvent> = Vec::new();
        for &id in &ids {
            tagged.extend(svc.wait(id).tagged_events());
        }
        // Merge by the service-global clock and extract the dispatch order.
        tagged.sort_by_key(|te| te.event.time_ps);
        let dispatches: Vec<TenantId> = tagged
            .iter()
            .filter(|te| matches!(te.event.kind, EventKind::TaskDispatched { .. }))
            .map(|te| te.tenant)
            .collect();
        assert_eq!(dispatches.len(), TENANTS * TASKS);
        for &id in &ids {
            let picks: Vec<usize> = dispatches
                .iter()
                .enumerate()
                .filter(|(_, &t)| t == id)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(picks.len(), TASKS);
            for pair in picks.windows(2) {
                let gap = pair[1] - pair[0];
                assert!(
                    gap <= TENANTS,
                    "tenant {id} starved: gap {gap} > {TENANTS} in {dispatches:?}"
                );
            }
        }
    }

    /// Weighted fairness: a weight-3 tenant gets up to three consecutive
    /// dispatches per turn, and the weight-1 tenant still gets served
    /// within the weighted bound.
    #[test]
    fn weighted_round_robin_honors_weights() {
        let cfg = ServiceConfig {
            workers: 1,
            max_active: 4,
            max_pending: 4,
            shed: ShedPolicy::RejectNew,
            tune: false,
        };
        let svc = JadeService::new(cfg);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let mut blocker = Program::new();
        let hb = blocker.create("b", 8, 0u64);
        let g = Arc::clone(&gate);
        blocker.submit(TaskBuilder::new("block").rd_wr(hb).body(move |_| {
            let (m, cv) = &*g;
            let mut open = lock(m);
            while !*open {
                open = cv.wait(open).unwrap_or_else(|e| e.into_inner());
            }
        }));
        let b = svc.submit(blocker, TenantOptions::default()).unwrap();
        while svc.active_len() == 0 {
            std::thread::yield_now();
        }
        let heavy = svc
            .submit(wide_program(9).0, TenantOptions::default().with_weight(3))
            .unwrap();
        let light = svc
            .submit(wide_program(9).0, TenantOptions::default().with_weight(1))
            .unwrap();
        let (m, cv) = &*gate;
        *lock(m) = true;
        cv.notify_all();
        let _ = svc.wait(b);
        let mut tagged = svc.wait(heavy).tagged_events();
        tagged.extend(svc.wait(light).tagged_events());
        tagged.sort_by_key(|te| te.event.time_ps);
        let dispatches: Vec<TenantId> = tagged
            .iter()
            .filter(|te| matches!(te.event.kind, EventKind::TaskDispatched { .. }))
            .map(|te| te.tenant)
            .collect();
        // While both tenants have work the pattern is HHHL repeating; the
        // light tenant's gap is bounded by heavy's weight + 1.
        let light_picks: Vec<usize> = dispatches
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == light)
            .map(|(i, _)| i)
            .collect();
        for pair in light_picks.windows(2) {
            assert!(
                pair[1] - pair[0] <= 4,
                "light tenant starved: {dispatches:?}"
            );
        }
        // Heavy runs in bursts: some gap between consecutive heavy picks
        // must be 1 (consecutive dispatches of the same tenant).
        let heavy_picks: Vec<usize> = dispatches
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == heavy)
            .map(|(i, _)| i)
            .collect();
        assert!(
            heavy_picks.windows(2).any(|p| p[1] - p[0] == 1),
            "weight-3 tenant never got consecutive dispatches: {dispatches:?}"
        );
    }

    /// Heavy-skew starvation bound (tuned policy): a weight-8 tenant with a
    /// huge DAG gets its turn cut at the controller's credit cap while the
    /// weight-1 tenant has ready work, and the banked carry preserves the
    /// long-run weight ratio.
    #[test]
    fn tuned_credit_cap_bounds_heavy_tenant_bursts() {
        let cfg = ServiceConfig {
            workers: 1,
            max_active: 4,
            max_pending: 4,
            shed: ShedPolicy::RejectNew,
            tune: true,
        };
        let svc = JadeService::new(cfg);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let mut blocker = Program::new();
        let hb = blocker.create("b", 8, 0u64);
        let g = Arc::clone(&gate);
        blocker.submit(TaskBuilder::new("block").rd_wr(hb).body(move |_| {
            let (m, cv) = &*g;
            let mut open = lock(m);
            while !*open {
                open = cv.wait(open).unwrap_or_else(|e| e.into_inner());
            }
        }));
        let b = svc.submit(blocker, TenantOptions::default()).unwrap();
        while svc.active_len() == 0 {
            std::thread::yield_now();
        }
        let heavy = svc
            .submit(wide_program(48).0, TenantOptions::default().with_weight(8))
            .unwrap();
        let light = svc
            .submit(wide_program(12).0, TenantOptions::default().with_weight(1))
            .unwrap();
        let (m, cv) = &*gate;
        *lock(m) = true;
        cv.notify_all();
        let _ = svc.wait(b);
        let rh = svc.wait(heavy);
        let rl = svc.wait(light);
        assert_eq!(rh.outcome, Outcome::Completed);
        assert_eq!(rl.outcome, Outcome::Completed);
        let mut tagged = rh.tagged_events();
        tagged.extend(rl.tagged_events());
        tagged.sort_by_key(|te| te.event.time_ps);
        let dispatches: Vec<TenantId> = tagged
            .iter()
            .filter(|te| matches!(te.event.kind, EventKind::TaskDispatched { .. }))
            .map(|te| te.tenant)
            .collect();
        // Between two light dispatches both tenants are continuously ready,
        // so the cap (CREDIT_CAP_MAX / 2 ready tenants = 4) bounds every
        // heavy stretch — even though heavy's weight is 8.
        let light_picks: Vec<usize> = dispatches
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == light)
            .map(|(i, _)| i)
            .collect();
        let cap = (jade_core::tune::CREDIT_CAP_MAX / 2) as usize;
        for pair in light_picks.windows(2) {
            let gap = pair[1] - pair[0];
            assert!(
                gap <= cap + 1,
                "light tenant starved: gap {gap} > {} in {dispatches:?}",
                cap + 1
            );
        }
        let log = svc.tune_log();
        assert!(!log.decisions.is_empty(), "controller took no decisions");
        log.check_ranges().unwrap();
    }

    #[test]
    fn submit_validates_inputs() {
        let svc = JadeService::new(ServiceConfig::new(1));
        assert_eq!(
            svc.submit(Program::new(), TenantOptions::default()),
            Err(SubmitError::EmptyProgram)
        );
        let bad_plan = FaultPlan {
            panic_p: 1.5,
            ..FaultPlan::none()
        };
        let err = svc
            .submit(
                chain_program(1).0,
                TenantOptions::default().with_faults(bad_plan),
            )
            .unwrap_err();
        assert!(matches!(err, SubmitError::InvalidFaultPlan(_)), "{err:?}");
    }

    #[test]
    fn per_tenant_metrics_split_across_concurrent_tenants() {
        let svc = JadeService::new(ServiceConfig::new(4));
        let ids: Vec<TenantId> = (0..6)
            .map(|i| {
                svc.submit(chain_program(5 + i).0, TenantOptions::default())
                    .unwrap()
            })
            .collect();
        let mut tagged = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            let r = svc.wait(id);
            assert_eq!(r.outcome, Outcome::Completed);
            assert_eq!(r.tasks_completed, 5 + i);
            tagged.extend(r.tagged_events());
        }
        check_lifecycle_per_tenant(&tagged).expect("per-tenant lifecycle");
        let per = Metrics::per_tenant(&tagged, 4);
        assert_eq!(per.len(), 6);
        let mut seen: Vec<(TenantId, usize)> =
            per.iter().map(|(t, m)| (*t, m.tasks_completed)).collect();
        seen.sort();
        for (i, &(t, done)) in seen.iter().enumerate() {
            assert_eq!(t, ids[i]);
            assert_eq!(done, 5 + i);
        }
    }

    #[test]
    fn release_hook_pipelines_within_a_tenant() {
        let svc = JadeService::new(ServiceConfig::new(2));
        let mut prog = Program::new();
        let a = prog.create("a", 8, 0u64);
        let b = prog.create("b", 8, 0u64);
        let flag = Arc::new((Mutex::new(false), Condvar::new()));
        let f1 = Arc::clone(&flag);
        // Producer: writes `a`, releases it mid-task, then blocks until the
        // consumer (which needs `a`) has run — only an eager release flush
        // lets the consumer start while the producer still executes.
        prog.submit(TaskBuilder::new("producer").rd_wr(a).body(move |ctx| {
            *ctx.wr(a) = 42;
            drop(ctx.wr(a));
            ctx.release(a);
            let (m, cv) = &*f1;
            let mut ran = lock(m);
            while !*ran {
                ran = cv.wait(ran).unwrap_or_else(|e| e.into_inner());
            }
        }));
        let f2 = Arc::clone(&flag);
        prog.submit(
            TaskBuilder::new("consumer")
                .rd(a)
                .rd_wr(b)
                .body(move |ctx| {
                    *ctx.wr(b) = *ctx.rd(a) + 1;
                    let (m, cv) = &*f2;
                    *lock(m) = true;
                    cv.notify_all();
                }),
        );
        let id = svc.submit(prog, TenantOptions::default()).unwrap();
        let r = svc.wait(id);
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(*r.store.read(b), 43);
        let m = r.metrics(2);
        assert_eq!(m.releases, 1);
    }

    #[test]
    fn shutdown_drains_admitted_tenants() {
        let svc = JadeService::new(ServiceConfig::new(2));
        let (prog, h) = chain_program(40);
        let id = svc.submit(prog, TenantOptions::default()).unwrap();
        // Shut down immediately: the admitted tenant must still drain.
        let inner = Arc::clone(&svc.inner);
        svc.shutdown();
        let core = lock(&inner.core);
        let r = core.finished.get(&id.0).expect("tenant drained");
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(*r.store.read(h), chain_expected(40));
    }
}
