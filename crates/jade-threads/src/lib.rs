//! # jade-threads — a real parallel Jade executor on OS threads
//!
//! The machine crates (`jade-dash`, `jade-ipsc`) *simulate* the paper's 1995
//! hardware. This crate is the present-day backend: it executes Jade
//! programs with genuine parallelism on the host machine, so the library is
//! usable as an access-declared task runtime (the model that StarPU, OmpSs
//! and Legion later popularized), not just as a reproduction artifact.
//!
//! Design:
//!
//! * the **same program text** runs here and on the simulators — apps are
//!   generic over [`jade_core::JadeRuntime`];
//! * the queue-based [`jade_core::Synchronizer`] decides when tasks may run;
//! * the default [`SchedMode::Sharded`] scheduler mirrors the paper's
//!   *distributed* shared-memory scheduler (§4.1): per-worker deques with a
//!   dynamic **locality heuristic** (each enabled task goes to the worker
//!   that most recently wrote one of its objects, falling back to the
//!   object's declared home) and **randomized stealing** from the back of
//!   other workers' deques. Only synchronizer transitions take a global
//!   lock; dispatch is per-worker. The seed single-lock scheduler is kept
//!   as [`SchedMode::GlobalLock`] for A/B benchmarking;
//! * every object access is runtime-checked against the declared access
//!   specification, and per-object `RwLock`s verify the synchronizer's
//!   exclusion guarantee mechanically: a data race would panic, not corrupt.
//!
//! Execution is batch-deferred: `submit` queues tasks, [`ThreadRuntime::finish`]
//! runs the batch to completion on a thread pool. Jade's serial semantics
//! make this sound — a Jade program can only observe task results through
//! shared objects, and our API exposes the store only between batches.
//!
//! ```
//! use jade_core::{JadeRuntime, TaskBuilder};
//! use jade_threads::ThreadRuntime;
//!
//! let mut rt = ThreadRuntime::new(4);
//! let xs = rt.create("xs", 32, vec![1.0f64, 2.0, 3.0, 4.0]);
//! let total = rt.create("total", 8, 0.0f64);
//! rt.submit(TaskBuilder::new("sum").rd(xs).wr(total).body(move |ctx| {
//!     *ctx.wr(total) = ctx.rd(xs).iter().sum();
//! }));
//! rt.finish();
//! assert_eq!(*rt.store().read(total), 10.0);
//! ```

// `deny` rather than `forbid`: the vendored Chase-Lev deque (`deque`
// module) opts back in with a scoped `allow` and a written safety argument
// (DESIGN.md §18). Everything else in the crate remains unsafe-free.
#![deny(unsafe_code)]

mod deque;
pub mod service;

pub use deque::DequeImpl;
use deque::TaskQueue;
pub use dsim::FaultPlan;
use jade_core::tune::{BatchShape, Controller, TuneLog};
use jade_core::{
    Event, EventKind, EventSink, JadeRuntime, Locality, NullSink, ObjectId, Sink, Store,
    SyncSnapshot, Synchronizer, TaskCtx, TaskDef, TaskId, Transition, TransitionBatch,
};
pub use service::{
    JadeService, Outcome, Program, ServiceConfig, ShedPolicy, SubmitError, TenantOptions,
    TenantReport,
};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Retry budget for injected worker failures. Each attempt re-rolls the
/// keyed fault hash, so with `panic_p < 1` a task clears this budget with
/// overwhelming probability; exhausting it propagates the failure.
pub(crate) const MAX_TASK_ATTEMPTS: u32 = 16;

/// Quiet panic payload for an injected worker failure: unwinds through
/// `resume_unwind` so the default panic hook prints nothing — the crash is
/// simulated, not a bug worth a backtrace.
pub(crate) struct InjectedFailure;

/// Lock a mutex, ignoring poisoning (a panicking task already propagates
/// its panic through `finish`; the shared state stays structurally valid).
pub(crate) fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Largest checkpoint interval, in completed tasks, the seconds→tasks
/// mapping of [`ThreadRuntime::try_inject_faults`] accepts. Far above any
/// real batch; the cap exists so the conversion is checked end to end
/// rather than saturating through an `as` cast.
pub const MAX_CKPT_TASKS: usize = u32::MAX as usize;

/// Checked seconds→tasks checkpoint conversion: round to the nearest task
/// count, floor 1 (a sub-task interval means "as often as possible"), and
/// reject anything non-finite, negative, or above [`MAX_CKPT_TASKS`] with
/// an error naming the bad value.
fn checkpoint_tasks(secs: f64) -> Result<usize, String> {
    let tasks = secs.round();
    if !tasks.is_finite() || !(0.0..=MAX_CKPT_TASKS as f64).contains(&tasks) {
        return Err(format!(
            "fault plan: checkpoint interval {secs} does not map to a \
             task count in 1..={MAX_CKPT_TASKS}"
        ));
    }
    Ok((tasks as usize).max(1))
}

/// Drain-buffer size under [`BatchPolicy::Auto`]: how many locally
/// finished tasks a worker accumulates before flushing them to the
/// synchronizer in one lock acquisition. Small enough that successors are
/// enabled promptly, large enough to amortize the lock on
/// overhead-dominated workloads.
const DRAIN_BATCH: usize = 8;

/// How workers hand completed tasks back to the synchronizer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Flush after every completion — the pre-batching behavior (one
    /// synchronizer-lock acquisition per task). The `batch=1` baseline in
    /// `repro bench`.
    PerTask,
    /// Accumulate up to [`DRAIN_BATCH`] completions in a per-worker drain
    /// buffer; flush on the size threshold or when the worker runs out of
    /// work. With event tracing enabled the effective threshold is clamped
    /// to 1 — tracing already takes the state lock per task (dispatch/start
    /// events), so there is nothing to amortize, and the eager flush is
    /// what keeps traced streams bit-identical to `PerTask` runs.
    #[default]
    Auto,
}

impl BatchPolicy {
    /// The untraced drain-buffer flush threshold this policy requests.
    fn threshold(self) -> usize {
        match self {
            BatchPolicy::PerTask => 1,
            BatchPolicy::Auto => DRAIN_BATCH,
        }
    }
}

/// Which scheduler [`ThreadRuntime::finish`] runs the batch on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedMode {
    /// Per-worker deques, dynamic write-owner locality, randomized
    /// stealing; the global lock covers only synchronizer transitions.
    #[default]
    Sharded,
    /// The original single `Mutex<Shared>` scheduler: every pick, steal and
    /// completion serializes on one lock. Kept as the A/B baseline for
    /// `repro bench` and the differential determinism tests.
    GlobalLock,
}

/// Statistics from the most recent [`ThreadRuntime::finish`] batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Task execution attempts in the batch (re-executions after injected
    /// failures included, matching the event stream's started count).
    pub executed: usize,
    /// Tasks executed by the worker the locality heuristic targeted.
    pub locality_hits: usize,
    /// Tasks taken from another worker's queue.
    pub steals: usize,
    /// Tasks re-executed after an injected worker failure (fault
    /// injection; see [`ThreadRuntime::inject_faults`]).
    pub recoveries: usize,
    /// Synchronizer checkpoints captured during the batch
    /// (see [`ThreadRuntime::checkpoint_every`]).
    pub checkpoints: usize,
    /// Recoveries that consulted a captured checkpoint.
    pub checkpoint_restores: usize,
    /// Acquisitions of the lock guarding the synchronizer during the batch
    /// (flushes of the drain buffer, plus traced/recovery/checkpoint
    /// bookkeeping that must hold the same lock). The `repro bench`
    /// lock-amortization figure is `sync_locks / executed`.
    pub sync_locks: usize,
    /// Tasks whose write ownership was pre-published to the locality table
    /// at dispatch time (see [`ThreadRuntime::enable_prefetch`]); `0`
    /// unless prefetch routing is enabled on the sharded scheduler.
    pub prefetch_routes: usize,
}

impl BatchStats {
    fn absorb(&mut self, other: &BatchStats) {
        self.executed += other.executed;
        self.locality_hits += other.locality_hits;
        self.steals += other.steals;
        self.recoveries += other.recoveries;
        self.checkpoints += other.checkpoints;
        self.checkpoint_restores += other.checkpoint_restores;
        self.sync_locks += other.sync_locks;
        self.prefetch_routes += other.prefetch_routes;
    }
}

/// Small deterministic xorshift64 generator for steal-victim selection —
/// no global RNG, no syscalls, seeded per worker so runs are reproducible
/// modulo thread interleaving.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> XorShift64 {
        XorShift64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// The paper's object→owner table, sharded at the finest possible grain:
/// one atomic slot per object, so concurrent writers never contend on a
/// lock. Each slot packs `stamp << 16 | worker`; a global monotone stamp
/// orders writes, so a task's locality target is the worker that performed
/// the *most recent* write to any of its declared objects. The table
/// persists across batches — phase `i+1` tasks land where phase `i` wrote
/// their data.
#[derive(Debug, Default)]
pub(crate) struct OwnerTable {
    slots: Vec<AtomicU64>,
    stamp: AtomicU64,
}

impl OwnerTable {
    /// Grow to cover `n` objects (called between batches, never racing
    /// workers).
    pub(crate) fn ensure(&mut self, n: usize) {
        while self.slots.len() < n {
            self.slots.push(AtomicU64::new(0));
        }
    }

    /// Record that worker `w` wrote `o`. Relaxed is enough: the table is a
    /// heuristic — a stale read changes *where* a task runs, never whether
    /// it runs correctly.
    pub(crate) fn record(&self, o: ObjectId, w: usize) {
        if let Some(slot) = self.slots.get(o.index()) {
            let stamp = self.stamp.fetch_add(1, Ordering::Relaxed) + 1;
            slot.store((stamp << 16) | (w as u64 & 0xFFFF), Ordering::Relaxed);
        }
    }

    /// The worker owning the most recently written of `spec`'s objects,
    /// if any of them has ever been written by a task.
    ///
    /// Irregular apps (PageRank, masked halo exchange) compute their access
    /// sets from data at spawn time, so a task's *written* objects say where
    /// its output wants to live while its (often much larger) data-dependent
    /// read set points at many producers. Prefer routing by the latest
    /// writer among this task's own written declarations — ownership
    /// transfer — and fall back to any declaration only when the task
    /// writes nothing previously written.
    pub(crate) fn latest_writer(&self, spec: &jade_core::AccessSpec) -> Option<usize> {
        let mut best_written = 0u64;
        let mut best_any = 0u64;
        for d in spec.decls() {
            if let Some(slot) = self.slots.get(d.object.index()) {
                let v = slot.load(Ordering::Relaxed);
                best_any = best_any.max(v);
                if d.mode.writes() {
                    best_written = best_written.max(v);
                }
            }
        }
        let best = if best_written != 0 {
            best_written
        } else {
            best_any
        };
        (best != 0).then_some((best & 0xFFFF) as usize)
    }
}

/// A parallel Jade runtime executing on `workers` OS threads.
pub struct ThreadRuntime {
    store: Store,
    workers: usize,
    sync: Synchronizer,
    pending: Vec<(TaskId, TaskDef)>,
    next_id: u32,
    last_stats: BatchStats,
    total_stats: BatchStats,
    mode: SchedMode,
    batch: BatchPolicy,
    /// Record structured events for subsequent batches.
    trace_events: bool,
    /// Events accumulated by finished batches (drained by `take_events`).
    events: Vec<Event>,
    /// Logical clock stamped on events; real wall times would make the
    /// stream nondeterministic, so events carry a sequence number instead.
    event_clock: u64,
    /// Injected-fault plan; `None` (the default) disables fault injection
    /// and recovery entirely.
    faults: Option<FaultPlan>,
    /// Checkpoint interval in completed tasks; `None` disables capture.
    ckpt_every: Option<usize>,
    /// Prefetch routing (split-phase locality): pre-publish each task's
    /// write ownership when it is *queued*, not when it completes.
    prefetch: bool,
    /// Self-tuning feedback controller (DESIGN.md §19); `None` (the
    /// default) keeps the static [`BatchPolicy`] threshold and the
    /// exhaustive steal sweep.
    tune: Option<Controller>,
    /// Dynamic locality: which worker last wrote each object.
    owners: OwnerTable,
    /// Which per-worker queue implementation the sharded scheduler uses.
    deque: DequeImpl,
    /// Recycled scheduling storage (queues, bodies, attempt counters, drain
    /// buffers): batches after the first reuse it instead of reallocating,
    /// which is what makes the equilibrium task cycle allocation-free.
    arena: SchedArena,
}

impl ThreadRuntime {
    /// Create a runtime with `workers` worker threads (minimum 1).
    pub fn new(workers: usize) -> ThreadRuntime {
        ThreadRuntime {
            store: Store::new(),
            workers: workers.max(1),
            sync: Synchronizer::new(true),
            pending: Vec::new(),
            next_id: 0,
            last_stats: BatchStats::default(),
            total_stats: BatchStats::default(),
            mode: SchedMode::default(),
            batch: BatchPolicy::default(),
            trace_events: false,
            events: Vec::new(),
            event_clock: 0,
            faults: None,
            ckpt_every: None,
            prefetch: false,
            tune: None,
            owners: OwnerTable::default(),
            deque: DequeImpl::default(),
            arena: SchedArena::default(),
        }
    }

    /// Create a runtime with an explicit scheduler mode.
    pub fn with_mode(workers: usize, mode: SchedMode) -> ThreadRuntime {
        let mut rt = ThreadRuntime::new(workers);
        rt.mode = mode;
        rt
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The scheduler subsequent batches will run on.
    pub fn sched_mode(&self) -> SchedMode {
        self.mode
    }

    /// Select the scheduler for subsequent batches (A/B comparisons).
    pub fn set_sched_mode(&mut self, mode: SchedMode) {
        self.mode = mode;
    }

    /// Which per-worker ready-queue implementation the sharded scheduler
    /// runs on ([`DequeImpl::Locked`] by default).
    pub fn deque_impl(&self) -> DequeImpl {
        self.deque
    }

    /// Select the sharded scheduler's ready-queue implementation for
    /// subsequent batches. [`DequeImpl::ChaseLev`] swaps the per-worker
    /// `Mutex<VecDeque>` for the vendored lock-free Chase-Lev deque: the
    /// owning worker's push/pop take no lock, and the owner drains its own
    /// queue LIFO instead of FIFO. Both orders are correct — the
    /// synchronizer enforces every dependence edge and only enabled tasks
    /// are ever queued — but the *dispatch event order* of a run can
    /// differ, so A/B comparisons should assert on results and
    /// deterministic counters, not raw event streams. No effect on
    /// [`SchedMode::GlobalLock`].
    pub fn set_deque_impl(&mut self, deque: DequeImpl) {
        self.deque = deque;
    }

    /// Statistics from the most recently finished batch.
    pub fn last_stats(&self) -> BatchStats {
        self.last_stats
    }

    /// Statistics accumulated over every batch this runtime has finished.
    pub fn total_stats(&self) -> BatchStats {
        self.total_stats
    }

    /// How subsequent batches flush completed tasks to the synchronizer.
    pub fn batch_policy(&self) -> BatchPolicy {
        self.batch
    }

    /// Select the drain-buffer flush policy for subsequent batches.
    pub fn set_batch_policy(&mut self, policy: BatchPolicy) {
        self.batch = policy;
    }

    /// Record structured lifecycle events ([`jade_core::events`]) for every
    /// subsequent batch. Events carry a logical sequence number as their
    /// time, so with one worker the stream is fully deterministic.
    pub fn enable_events(&mut self) {
        self.trace_events = true;
    }

    /// Drain the events recorded since the last call (or since
    /// [`enable_events`](Self::enable_events)).
    pub fn take_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    /// Enable deterministic fault injection for subsequent batches: each
    /// task attempt fails with probability `plan.panic_p` (a pure hash of
    /// the plan seed, task id and attempt number, independent of thread
    /// interleaving). An injected failure simulates the worker crashing
    /// *before* the task body runs: the unwind is caught, the task is
    /// quarantined off the failed worker and re-queued on the next one
    /// (`WorkerFailed` + `TaskReExecuted` events,
    /// [`BatchStats::recoveries`]). Because the body never started, the
    /// re-execution is exact — batch results are bit-identical to a
    /// fault-free run. Genuine application panics still propagate through
    /// [`ThreadRuntime::finish`]: a body that dies halfway may have
    /// partially mutated its objects, so retrying it would be unsound.
    ///
    /// # Panics
    ///
    /// If the plan is malformed (probability outside `[0, 1]`) or its
    /// checkpoint interval does not map to a task count — use
    /// [`try_inject_faults`](Self::try_inject_faults) to handle malformed
    /// plans as config errors instead.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        if let Err(why) = self.try_inject_faults(plan) {
            panic!("invalid fault plan: {why}");
        }
    }

    /// Fallible [`inject_faults`](Self::inject_faults): validates the plan
    /// and performs the seconds→tasks checkpoint mapping with a *checked*
    /// conversion. A non-finite or out-of-range interval is a config error
    /// naming the offending value, not a silently saturating `as` cast
    /// (the same contract `dsim::SimDuration::try_from_secs_f64` gives the
    /// simulators).
    pub fn try_inject_faults(&mut self, plan: FaultPlan) -> Result<(), String> {
        plan.validate()?;
        // The simulators interpret `ckpt=` as simulated seconds; this
        // backend has no simulated clock, so the numeric value maps to a
        // completed-task interval instead.
        if let Some(iv) = plan.checkpoint {
            self.checkpoint_every(checkpoint_tasks(iv.as_secs_f64())?);
        }
        self.faults = Some(plan);
        Ok(())
    }

    /// Enable the self-tuning feedback controller (DESIGN.md §19) for
    /// subsequent batches: the drain-batch threshold and the steal sweep
    /// budget are decided per batch from its deterministic shape (task
    /// count, worker count, initial parallelism width) instead of the
    /// static [`BatchPolicy`] constant. Decisions are pure functions of
    /// the batch shape — no wall-clock, no interleaving-dependent counter
    /// — so controller-on runs stay bit-identical across repeats and
    /// produce the same results as controller-off runs. Every decision is
    /// recorded in [`tune_log`](Self::tune_log).
    pub fn enable_tuning(&mut self) {
        if self.tune.is_none() {
            self.tune = Some(Controller::new());
        }
    }

    /// The decision log of the feedback controller, if tuning is enabled
    /// ([`enable_tuning`](Self::enable_tuning)).
    pub fn tune_log(&self) -> Option<&TuneLog> {
        self.tune.as_ref().map(|c| &c.log)
    }

    /// Enable prefetch routing on the sharded scheduler: when a task is
    /// pushed onto a worker's deque, its *write* ownership is published to
    /// the locality table immediately — the split-phase analogue of the
    /// simulators' enable-time prefetch. Successors that become enabled
    /// while the writer is still queued already route to its worker instead
    /// of falling back to declared homes; the completion-time record then
    /// confirms (or, after a steal, corrects) the hint. A pure routing
    /// heuristic: results and the synchronizer schedule are unaffected.
    /// Counted per routed task in [`BatchStats::prefetch_routes`].
    pub fn enable_prefetch(&mut self) {
        self.prefetch = true;
    }

    /// Capture a synchronizer checkpoint every `every` completed tasks in
    /// subsequent batches (`CheckpointTaken` events,
    /// [`BatchStats::checkpoints`]). An injected-failure recovery that runs
    /// while a checkpoint exists consults it — the crashed task must not be
    /// committed in the captured state — and counts as a
    /// `CheckpointRestored`.
    ///
    /// # Panics
    ///
    /// If `every` is zero.
    pub fn checkpoint_every(&mut self, every: usize) {
        assert!(every > 0, "checkpoint interval must be at least one task");
        self.ckpt_every = Some(every);
    }

    /// Static placement: explicit placement, else the locality object's
    /// declared home (the `GlobalLock` scheduler's whole heuristic; the
    /// sharded scheduler's fallback when no declared object has a recorded
    /// writer yet).
    fn target_worker(&self, def: &TaskDef) -> usize {
        let home = |o: ObjectId| self.store.home(o).unwrap_or(jade_core::MAIN_PROC);
        def.placement
            .or_else(|| def.spec.locality_object().map(home))
            .unwrap_or(jade_core::MAIN_PROC)
            % self.workers
    }
}

impl Default for ThreadRuntime {
    fn default() -> Self {
        // One worker per available core, matching how a user would deploy it.
        let n = std::thread::available_parallelism().map_or(4, |n| n.get());
        ThreadRuntime::new(n)
    }
}

impl JadeRuntime for ThreadRuntime {
    fn store(&self) -> &Store {
        &self.store
    }

    fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    fn submit(&mut self, def: TaskDef) -> TaskId {
        let id = TaskId(self.next_id);
        self.next_id += 1;
        self.pending.push((id, def));
        id
    }

    fn finish(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending);
        match (self.mode, self.trace_events) {
            // The sink type is chosen statically: untraced sharded batches
            // monomorphize every emission (and the locks guarding only
            // emissions) away entirely.
            (SchedMode::Sharded, false) => self.run_sharded(batch, NullSink),
            (SchedMode::Sharded, true) => self.run_sharded(batch, EventSink::recording()),
            (SchedMode::GlobalLock, _) => self.run_global(batch),
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded scheduler (default)
// ---------------------------------------------------------------------------

/// Per-worker mutable scratch handed to each worker thread by `&mut` and
/// recycled across batches: the drain buffer of finished-but-unflushed
/// transitions plus the enable-burst vector `flush` fills. `RefCell`
/// because the mid-task release hook (an `Fn`) must reach both; neither
/// ever crosses threads.
#[derive(Default)]
pub(crate) struct WorkerScratch {
    buf: RefCell<TransitionBatch>,
    newly: RefCell<Vec<TaskId>>,
}

/// Recycled sharded-scheduler storage owned by the [`ThreadRuntime`].
/// `run_sharded` used to rebuild every slab per batch; reusing them is what
/// takes the equilibrium dispatch→execute→complete→retire cycle to zero
/// heap allocations (asserted by `tests/allocs.rs` and gated in
/// `repro bench`).
#[derive(Default)]
pub(crate) struct SchedArena {
    /// One ready queue per worker ([`DequeImpl`] selected at prepare time).
    queues: Vec<TaskQueue>,
    /// Task bodies, taken by the executing worker. A task index lives in
    /// exactly one queue at a time, so each mutex is uncontended — it
    /// exists to move `TaskDef`s between threads without `unsafe`.
    bodies: Vec<Mutex<Option<TaskDef>>>,
    /// Map batch-local index -> global TaskId.
    ids: Vec<TaskId>,
    /// Execution attempts per batch-local task (keys the fault hash).
    attempts: Vec<AtomicU32>,
    /// Worker the locality heuristic targeted at enable time.
    targets: Vec<AtomicUsize>,
    /// Per-worker drain buffers and enable scratch.
    scratch: Vec<WorkerScratch>,
    /// Batch-local indices of the initially-enabled tasks (setup scratch).
    enabled0: Vec<usize>,
    /// How many times `prepare` had to allocate or grow storage. A second
    /// same-shape batch must leave this untouched (tested below); the
    /// equilibrium-allocation gate depends on it.
    grows: usize,
}

impl SchedArena {
    /// Make every slab ready for a batch of `n` tasks on `workers` workers
    /// using the `deque` queue implementation, reusing existing capacity
    /// wherever shapes allow. Slots are cleared (an aborted batch may leave
    /// stale bodies or queued indices behind); `ids` is left empty for the
    /// registration loop to fill.
    fn prepare(&mut self, n: usize, workers: usize, deque: DequeImpl) {
        let rebuild =
            self.queues.len() != workers || self.queues.first().is_some_and(|q| q.kind() != deque);
        if rebuild {
            self.grows += 1;
            self.queues.clear();
            self.queues
                .extend((0..workers).map(|_| TaskQueue::new(deque, n)));
        } else {
            for q in &mut self.queues {
                if q.reset(n) {
                    self.grows += 1;
                }
            }
        }
        if self.bodies.len() < n {
            self.grows += 1;
            self.bodies.resize_with(n, || Mutex::new(None));
        }
        if self.attempts.len() < n {
            self.grows += 1;
            self.attempts.resize_with(n, || AtomicU32::new(0));
        }
        if self.targets.len() < n {
            self.grows += 1;
            self.targets.resize_with(n, || AtomicUsize::new(0));
        }
        if self.scratch.len() < workers {
            self.grows += 1;
            self.scratch.resize_with(workers, WorkerScratch::default);
        }
        self.ids.clear();
        if self.ids.capacity() < n {
            self.grows += 1;
            self.ids.reserve(n);
        }
        self.enabled0.clear();
        for i in 0..n {
            // Exclusive access between batches: `get_mut` skips the locks.
            *lock_mut(&mut self.bodies[i]) = None;
            *self.attempts[i].get_mut() = 0;
            *self.targets[i].get_mut() = 0;
        }
        for ws in &mut self.scratch {
            ws.buf.get_mut().clear();
            ws.newly.get_mut().clear();
        }
    }
}

/// `Mutex::get_mut`, ignoring poisoning (see [`lock`]).
pub(crate) fn lock_mut<T>(m: &mut Mutex<T>) -> &mut T {
    m.get_mut().unwrap_or_else(|e| e.into_inner())
}

/// Everything serialized by the one remaining global lock: the
/// synchronizer, the event sink and its logical clock, and checkpoint
/// state. Scheduling state (queues, bodies, attempts) lives outside.
struct SyncState<S> {
    sync: Synchronizer,
    events: S,
    clock: u64,
    since_ckpt: usize,
    last_ckpt: Option<SyncSnapshot>,
    checkpoints: usize,
}

impl<S> SyncState<S> {
    fn tick(&mut self) -> u64 {
        let t = self.clock;
        self.clock += 1;
        t
    }
}

/// Pusher identity passed through the dispatch helpers when the push
/// happens on the setup thread, before any worker exists: every queue may
/// be owner-pushed then (the `thread::scope` spawn is a happens-before
/// edge to all workers).
const SETUP: usize = usize::MAX;

struct Sharded<'a, S> {
    /// Per-worker ready queues, borrowed from the runtime's [`SchedArena`]
    /// (as are the slabs below — batches reuse the storage).
    queues: &'a [TaskQueue],
    /// Task bodies, taken by the executing worker. A task index lives in
    /// exactly one queue at a time, so each mutex is uncontended — it
    /// exists to move `TaskDef`s between threads without `unsafe`.
    bodies: &'a [Mutex<Option<TaskDef>>],
    /// Map batch-local index -> global TaskId.
    ids: &'a [TaskId],
    /// Execution attempts per batch-local task (keys the fault hash).
    attempts: &'a [AtomicU32],
    /// Worker the locality heuristic targeted at enable time.
    targets: &'a [AtomicUsize],
    state: Mutex<SyncState<S>>,
    /// Registered-but-not-completed tasks; 0 means the batch is drained.
    live: AtomicUsize,
    /// Bumped on every push; parked workers re-check it before sleeping,
    /// which closes the push/park race (see `park`).
    epoch: AtomicU64,
    /// Workers currently inside `park`; pushers skip the wakeup lock
    /// entirely while this is zero (the common case).
    sleepers: AtomicUsize,
    idle: Mutex<()>,
    cv: Condvar,
    panicked: AtomicBool,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    faults: Option<FaultPlan>,
    ckpt_every: Option<usize>,
    owners: &'a OwnerTable,
    store: &'a Store,
    base: usize,
    workers: usize,
    /// Drain-buffer flush threshold (1 when tracing — see [`BatchPolicy`]).
    drain: usize,
    /// Victims a failed own-pop probes before giving up the round. The
    /// pre-park sweep stays exhaustive, so a bounded budget affects only
    /// how fast an idle worker reaches the park decision, never liveness.
    steal_budget: usize,
    /// Acquisitions of `state` by workers ([`BatchStats::sync_locks`]).
    sync_locks: AtomicUsize,
    /// Prefetch routing ([`ThreadRuntime::enable_prefetch`]).
    prefetch: bool,
    /// Tasks whose write ownership was pre-published at dispatch.
    prefetch_routes: AtomicUsize,
}

impl<'a, S: Sink> Sharded<'a, S> {
    /// Locality heuristic at enable time: explicit placement, else the
    /// worker owning the task's most-recently-written object, else the
    /// locality object's declared home.
    fn target_of(&self, def: &TaskDef) -> usize {
        if let Some(p) = def.placement {
            return p % self.workers;
        }
        if let Some(w) = self.owners.latest_writer(&def.spec) {
            return w % self.workers;
        }
        let home = |o: ObjectId| self.store.home(o).unwrap_or(jade_core::MAIN_PROC);
        def.spec
            .locality_object()
            .map(home)
            .unwrap_or(jade_core::MAIN_PROC)
            % self.workers
    }

    /// Lock the synchronizer state, counting the acquisition
    /// ([`BatchStats::sync_locks`] — the figure `repro bench` amortizes).
    fn lock_state(&self) -> MutexGuard<'_, SyncState<S>> {
        self.sync_locks.fetch_add(1, Ordering::Relaxed);
        lock(&self.state)
    }

    /// Append `local` to `target`'s queue without announcing it. Callers
    /// must follow up with [`announce`](Self::announce) (directly or via
    /// [`push_to`](Self::push_to)) before they could possibly park.
    /// `pusher` identifies the calling worker ([`SETUP`] pre-spawn) so the
    /// Chase-Lev queue can tell owner pushes from remote injections.
    fn enqueue(&self, target: usize, local: usize, pusher: usize) {
        self.queues[target].push(local, pusher == target || pusher == SETUP);
    }

    /// Publish previously enqueued work: one epoch bump, one sleeper check.
    fn announce(&self) {
        // Single worker: the only worker is the one pushing (setup pushes
        // happen before it spawns), so there is never a sleeper to wake —
        // it re-scans its own queue before it could possibly park.
        if self.workers == 1 {
            return;
        }
        // SeqCst orders this bump against parkers' sleeper registration:
        // either the parker re-checks and sees the new epoch, or we see
        // `sleepers > 0` and notify under the idle lock. The bump happens
        // *after* every enqueue of the burst, so a parker that misses the
        // work in its scan cannot also miss the epoch change.
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            drop(lock(&self.idle));
            self.cv.notify_all();
        }
    }

    /// Append `local` to `target`'s queue and wake sleepers if any.
    fn push_to(&self, target: usize, local: usize, pusher: usize) {
        self.enqueue(target, local, pusher);
        self.announce();
    }

    /// Queue `local` on the worker the locality heuristic targets, without
    /// announcing (burst building block).
    fn enqueue_dispatch(&self, local: usize, pusher: usize) {
        // Single worker, no prefetch: every target is 0 (and `targets` was
        // arena-reset to 0), so skip the body lock and the heuristic.
        if self.workers == 1 && !self.prefetch {
            self.queues[0].push(local, true);
            return;
        }
        let target = {
            let guard = lock(&self.bodies[local]);
            let def = guard.as_ref().expect("dispatching a running task");
            let target = self.target_of(def);
            // Prefetch routing: publish write ownership at queue time, so
            // successors enabled while this task is still waiting in the
            // deque already route toward its worker. Completion republishes
            // with the worker that actually ran it (a steal corrects the
            // hint), and the table stays a pure heuristic either way.
            if self.prefetch {
                let mut routed = false;
                for o in def.spec.written_objects() {
                    self.owners.record(o, target);
                    routed = true;
                }
                if routed {
                    self.prefetch_routes.fetch_add(1, Ordering::Relaxed);
                }
            }
            target
        };
        self.targets[local].store(target, Ordering::Relaxed);
        self.enqueue(target, local, pusher);
    }

    /// Route a newly enabled task through the locality heuristic and queue
    /// it there.
    fn dispatch(&self, local: usize, pusher: usize) {
        self.enqueue_dispatch(local, pusher);
        self.announce();
    }

    /// Route a whole flush's newly enabled tasks through the locality
    /// heuristic in one burst: N enqueues, then a single epoch bump and
    /// sleeper wakeup instead of N.
    fn dispatch_burst(&self, newly: &[TaskId], pusher: usize) {
        if newly.is_empty() {
            return;
        }
        for n in newly {
            self.enqueue_dispatch(n.index() - self.base, pusher);
        }
        self.announce();
    }

    /// Pop own queue, else steal from a random victim. The pop order (FIFO
    /// for [`DequeImpl::Locked`], LIFO for [`DequeImpl::ChaseLev`]) is a
    /// scheduling freedom — only enabled tasks are ever queued.
    fn try_pick(&self, w: usize, rng: &mut XorShift64, budget: usize) -> Option<(usize, bool)> {
        let own = &self.queues[w];
        if !own.is_empty_hint() {
            if let Some(local) = own.pop() {
                return Some((local, false));
            }
        }
        // Randomized steal: random first victim among the *other* workers,
        // then the rest of the ring up to `budget` victims — no queue is
        // ever structurally unreachable (see `steal_order`; the pre-park
        // sweep in `sharded_worker` always runs unbudgeted).
        if self.workers > 1 {
            for v in steal_order(w, self.workers, rng.next()).take(budget) {
                let q = &self.queues[v];
                if q.is_empty_hint() {
                    continue;
                }
                if let Some(local) = q.steal() {
                    return Some((local, true));
                }
            }
        }
        None
    }

    /// Sleep until new work might exist. `epoch` was read *before* the
    /// caller's failed scan: if any push happened since, the re-check under
    /// the idle lock sees the bump and returns immediately; otherwise the
    /// pusher is guaranteed to observe `sleepers > 0` and notify.
    fn park(&self, epoch: u64) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let g = lock(&self.idle);
        if self.epoch.load(Ordering::SeqCst) == epoch
            && self.live.load(Ordering::SeqCst) != 0
            && !self.panicked.load(Ordering::SeqCst)
        {
            drop(self.cv.wait(g).unwrap_or_else(|e| e.into_inner()));
        } else {
            drop(g);
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    fn wake_all(&self) {
        drop(lock(&self.idle));
        self.cv.notify_all();
    }

    fn record_panic(&self, p: Box<dyn std::any::Any + Send>) {
        let mut slot = lock(&self.panic);
        if slot.is_none() {
            *slot = Some(p);
        }
        drop(slot);
        self.panicked.store(true, Ordering::SeqCst);
        self.wake_all();
    }

    /// Apply every buffered transition under ONE `state` acquisition,
    /// then route the newly enabled tasks in one push burst. Returns
    /// whether the flush drained the batch (`live` hit zero).
    ///
    /// Per-completion bookkeeping (the `live` decrement and the checkpoint
    /// cadence) runs inside the loop so `checkpoints` counts exactly as if
    /// each completion had been flushed individually — the counter stays a
    /// pure function of the interval and the task count, independent of
    /// batching, interleaving and scheduler mode.
    fn flush(&self, w: usize, buf: &RefCell<TransitionBatch>, scratch: &mut Vec<TaskId>) -> bool {
        let mut batch = buf.borrow_mut();
        if batch.is_empty() {
            return false;
        }
        scratch.clear();
        let completions = batch.completions();
        let drained = {
            let mut guard = self.lock_state();
            let st = &mut *guard;
            if !S::ACTIVE && self.ckpt_every.is_none() {
                // Fast path: no events, no checkpoint cadence — the whole
                // batch applies in one call and `live` drops once.
                st.sync.apply_batch(&mut batch, scratch);
                self.live.fetch_sub(completions, Ordering::SeqCst) == completions
            } else {
                let mut drained = false;
                for tr in batch.drain() {
                    let is_completion = matches!(tr, jade_core::Transition::Complete(_));
                    let t = st.tick();
                    st.sync.apply_traced(tr, scratch, &mut st.events, t, w);
                    if is_completion {
                        let remaining = self.live.fetch_sub(1, Ordering::SeqCst) - 1;
                        drained |= remaining == 0;
                        st.since_ckpt += 1;
                        if let Some(every) = self.ckpt_every {
                            if st.since_ckpt >= every && remaining > 0 {
                                st.since_ckpt = 0;
                                let snap = st.sync.snapshot();
                                let bytes = snap.encoded_len() as u64;
                                let t = st.tick();
                                st.events.emit(t, w, EventKind::CheckpointTaken { bytes });
                                st.checkpoints += 1;
                                st.last_ckpt = Some(snap);
                            }
                        }
                    }
                }
                drained
            }
        };
        drop(batch);
        self.dispatch_burst(scratch, w);
        if drained {
            self.wake_all();
        }
        drained
    }

    /// Run one picked task. Returns `false` if the worker must exit (a
    /// genuine panic was recorded).
    fn execute(
        &self,
        w: usize,
        local: usize,
        stolen: bool,
        stats: &mut BatchStats,
        ws: &WorkerScratch,
    ) -> bool {
        let def = lock(&self.bodies[local]).take().expect("task queued twice");
        let id = self.ids[local];
        let attempt = self.attempts[local].load(Ordering::Relaxed);
        let injected = self
            .faults
            .as_ref()
            .is_some_and(|plan| plan.task_fails(id.0 as u64, attempt));
        stats.executed += 1;
        // A worker's own queue normally only holds tasks targeted at it —
        // but a recovered task is re-queued on the *next* worker, so the
        // locality of a non-stolen pick still has to be checked.
        let hit = !stolen && self.targets[local].load(Ordering::Relaxed) == w;
        if stolen {
            stats.steals += 1;
        } else if hit {
            stats.locality_hits += 1;
        }
        if S::ACTIVE {
            let mut st = self.lock_state();
            let t = st.tick();
            let locality = if hit { Locality::Hit } else { Locality::Miss };
            st.events
                .emit_task(t, w, EventKind::TaskDispatched { stolen, locality }, id);
            st.events.emit_task(t, w, EventKind::TaskStarted, id);
        }

        // The task body stays outside the closure (`TaskBody` is `Fn`), so
        // a caught unwind leaves `def` intact for re-execution.
        let result = catch_unwind(AssertUnwindSafe(|| {
            if injected {
                // Simulated worker crash before the body runs: unwind
                // quietly (no panic hook) — this is an injected fault, not
                // a bug worth a backtrace. Crashing *before* any body
                // effect is what makes the re-execution exact.
                resume_unwind(Box::new(InjectedFailure));
            }
            // Mid-task releases (Jade's pipelining statements) flush
            // eagerly — a buffered release could deadlock a pipeline whose
            // consumer is the only other runnable task. The flush also
            // applies any completions already sitting in the buffer, so the
            // release still costs a single `state` acquisition.
            let hook = |obj: ObjectId| {
                ws.buf.borrow_mut().release(id, obj);
                self.flush(w, &ws.buf, &mut ws.newly.borrow_mut());
            };
            let ctx = TaskCtx::with_release_hook(self.store, id, def.label, &def.spec, &hook);
            (def.body)(&ctx);
        }));

        match result {
            Ok(()) => {
                // Publish write ownership *before* successors are enabled,
                // so the heuristic routes them to this worker. With a
                // single worker the table cannot change any routing
                // decision (every target is 0), so skip the stamping.
                if self.workers > 1 || self.prefetch {
                    for o in def.spec.written_objects() {
                        self.owners.record(o, w);
                    }
                }
                // The completion lands in the worker's drain buffer; the
                // synchronizer lock is only taken when the buffer reaches
                // the flush threshold (or the worker runs dry — see
                // `sharded_worker`). With tracing active `drain` is 1, so
                // the flush below runs unconditionally and the event stream
                // is byte-identical to per-task flushing.
                ws.buf.borrow_mut().complete(id);
                if ws.buf.borrow().len() >= self.drain {
                    self.flush(w, &ws.buf, &mut ws.newly.borrow_mut());
                }
                true
            }
            Err(_) if injected && attempt + 1 < MAX_TASK_ATTEMPTS => {
                // Recovery: quarantine the task off this (logically
                // crashed) worker and hand it to the next one; the bumped
                // attempt number re-rolls the fault hash. The execution and
                // start tallies above deliberately count the failed attempt
                // — they match the event stream's `tasks_started`.
                self.attempts[local].store(attempt + 1, Ordering::Relaxed);
                stats.recoveries += 1;
                // The state lock is only needed for events and the
                // checkpoint lookup; untraced, checkpoint-free batches
                // recover without touching it.
                let restored = if S::ACTIVE || self.ckpt_every.is_some() {
                    let mut st = self.lock_state();
                    let t = st.tick();
                    st.events.emit(t, w, EventKind::WorkerFailed);
                    // With a checkpoint on file, recovery restores the
                    // crashed task's scheduling state from it: the capture
                    // must agree that the task had not committed (a
                    // committed task is never re-executed).
                    let restored = if let Some(snap) = &st.last_ckpt {
                        debug_assert!(
                            !snap.completed(id),
                            "checkpoint marks crashed task {id:?} committed"
                        );
                        let bytes = snap.encoded_len() as u64;
                        let t = st.tick();
                        st.events
                            .emit(t, w, EventKind::CheckpointRestored { bytes });
                        true
                    } else {
                        false
                    };
                    let t = st.tick();
                    st.events.emit_task(t, w, EventKind::TaskReExecuted, id);
                    restored
                } else {
                    false
                };
                if restored {
                    stats.checkpoint_restores += 1;
                }
                *lock(&self.bodies[local]) = Some(def);
                // Original target kept: the re-pick on the next worker
                // counts as neither hit nor steal, like the seed scheduler.
                self.push_to((w + 1) % self.workers, local, w);
                true
            }
            Err(p) => {
                // Genuine application panic (or an exhausted retry budget):
                // first panic wins; wake everyone so the pool drains.
                self.record_panic(p);
                false
            }
        }
    }
}

/// Victim visit order for worker `w`'s steal sweep, given `workers > 1`
/// and a random draw `r`: the first victim is drawn uniformly from the
/// *other* workers (`w + 1 + r % (workers - 1)` can never be `w` modulo
/// `workers`), then the sweep walks the whole ring skipping `w` — each
/// other worker is visited exactly once.
fn steal_order(w: usize, workers: usize, r: u64) -> impl Iterator<Item = usize> {
    let start = (w + 1 + r as usize % (workers - 1)) % workers;
    (0..workers)
        .map(move |k| (start + k) % workers)
        .filter(move |&v| v != w)
}

fn sharded_worker<S: Sink>(w: usize, sh: &Sharded<'_, S>, ws: &mut WorkerScratch) -> BatchStats {
    let mut rng = XorShift64::new(w as u64 + 1);
    let mut stats = BatchStats::default();
    // `ws` holds the worker-local drain buffer of finished-but-unflushed
    // transitions plus the enable scratch, both recycled across batches. A
    // panic exit abandons the buffer — the recorded panic resumes before
    // `run_sharded`'s drained assertion, the same contract the per-task
    // scheduler had (the arena clears it before the next batch).
    let ws = &*ws;
    loop {
        if sh.live.load(Ordering::SeqCst) == 0 || sh.panicked.load(Ordering::SeqCst) {
            sh.wake_all();
            return stats;
        }
        // Epoch read precedes the scan: any push racing the scan either
        // lands in it or changes the epoch and defeats the park below.
        let epoch = sh.epoch.load(Ordering::SeqCst);
        match sh.try_pick(w, &mut rng, sh.steal_budget) {
            Some((local, stolen)) => {
                if !sh.execute(w, local, stolen, &mut stats, ws) {
                    return stats;
                }
            }
            None => {
                // Out of work: flush buffered completions before parking —
                // they may enable the only runnable successors (or drain
                // the batch), and `live` only reaches zero once every
                // buffered completion lands. Park only with an empty
                // buffer, and only after an *exhaustive* steal sweep — a
                // tuned budget shorter than the ring must never park past
                // work sitting in an unprobed queue.
                if !ws.buf.borrow().is_empty() {
                    sh.flush(w, &ws.buf, &mut ws.newly.borrow_mut());
                } else if sh.steal_budget + 1 < sh.workers {
                    match sh.try_pick(w, &mut rng, usize::MAX) {
                        Some((local, stolen)) => {
                            if !sh.execute(w, local, stolen, &mut stats, ws) {
                                return stats;
                            }
                        }
                        None => sh.park(epoch),
                    }
                } else {
                    sh.park(epoch);
                }
            }
        }
    }
}

impl ThreadRuntime {
    fn run_sharded<S: Sink + Send>(&mut self, batch: Vec<(TaskId, TaskDef)>, events: S) {
        let n = batch.len();
        let base = batch[0].0.index();
        // Retire the previous batch's fully-completed synchronizer window:
        // task/decl slabs are cleared with capacity kept, so steady-state
        // same-shape batches register tasks without growing them.
        if self.sync.all_complete() && self.sync.task_count() > 0 {
            self.sync.recycle();
        }
        self.owners.ensure(self.store.len());
        let workers = self.workers;
        self.arena.prepare(n, workers, self.deque);
        let mut state = SyncState {
            sync: std::mem::take(&mut self.sync),
            events,
            clock: self.event_clock,
            since_ckpt: 0,
            last_ckpt: None,
            checkpoints: 0,
        };
        // Split the arena into its disjoint slabs: the workers share the
        // queues and task slabs; each worker additionally gets exclusive
        // use of its own `scratch` slot.
        let SchedArena {
            queues,
            bodies,
            ids,
            attempts,
            targets,
            scratch,
            enabled0,
            ..
        } = &mut self.arena;
        // Register in serial program order; queue the initially-enabled.
        for (i, (id, def)) in batch.into_iter().enumerate() {
            let t = state.tick();
            let enabled = state
                .sync
                .add_task_traced(id, &def.spec, &mut state.events, t, 0);
            ids.push(id);
            *lock_mut(&mut bodies[i]) = Some(def);
            if enabled {
                enabled0.push(i);
            }
        }
        // Controller-on batches decide the drain threshold and steal
        // budget from the batch shape — fixed here, before any worker
        // runs, so the decisions (and their log) are deterministic.
        let (drain, steal_budget) = match self.tune.as_mut() {
            Some(ctl) => {
                let shape = BatchShape {
                    tasks: n,
                    workers,
                    enabled0: enabled0.len(),
                };
                let d = ctl.drain_threshold(&shape);
                let b = ctl.steal_budget(&shape);
                // Tracing still clamps the *applied* drain to 1 (see the
                // `drain` field note below); the decision stays logged.
                (if S::ACTIVE { 1 } else { d }, b)
            }
            None => (
                if S::ACTIVE { 1 } else { self.batch.threshold() },
                workers.saturating_sub(1).max(1),
            ),
        };
        let sh = Sharded {
            queues: &queues[..workers],
            bodies: &bodies[..n],
            ids: &ids[..n],
            attempts: &attempts[..n],
            targets: &targets[..n],
            state: Mutex::new(state),
            live: AtomicUsize::new(n),
            epoch: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            idle: Mutex::new(()),
            cv: Condvar::new(),
            panicked: AtomicBool::new(false),
            panic: Mutex::new(None),
            faults: self.faults,
            ckpt_every: self.ckpt_every,
            owners: &self.owners,
            store: &self.store,
            base,
            workers,
            // Traced runs flush per task: tracing takes the state lock per
            // task anyway (dispatch/start events), and the eager flush is
            // what keeps 1-worker event streams identical across policies.
            drain,
            steal_budget,
            sync_locks: AtomicUsize::new(0),
            prefetch: self.prefetch,
            prefetch_routes: AtomicUsize::new(0),
        };
        for &local in enabled0.iter() {
            sh.dispatch(local, SETUP);
        }
        let mut merged = BatchStats::default();
        std::thread::scope(|scope| {
            let handles: Vec<_> = scratch[..workers]
                .iter_mut()
                .enumerate()
                .map(|(w, ws)| {
                    let sh = &sh;
                    scope.spawn(move || sharded_worker(w, sh, ws))
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(s) => merged.absorb(&s),
                    // A panic outside the body's catch_unwind (a runtime
                    // bug, not an application fault) still surfaces.
                    Err(p) => sh.record_panic(p),
                }
            }
        });
        let Sharded {
            state,
            live,
            panic,
            sync_locks,
            prefetch_routes,
            ..
        } = sh;
        let st = state.into_inner().unwrap_or_else(|e| e.into_inner());
        self.sync = st.sync;
        self.event_clock = st.clock;
        self.events.extend(st.events.into_events());
        merged.checkpoints = st.checkpoints;
        merged.sync_locks = sync_locks.into_inner();
        merged.prefetch_routes = prefetch_routes.into_inner();
        self.last_stats = merged;
        self.total_stats.absorb(&merged);
        if let Some(p) = panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
            // A genuine panic aborts the batch. Discard the half-applied
            // synchronizer state and restart task numbering so the same
            // runtime can run a subsequent clean batch (`add_task` requires
            // contiguous ids per synchronizer). Stats for the aborted batch
            // were stored above; its partial events remain in the stream.
            self.sync = Synchronizer::new(true);
            self.next_id = 0;
            resume_unwind(p);
        }
        assert_eq!(
            live.load(Ordering::SeqCst),
            0,
            "worker pool exited with live tasks"
        );
    }
}

// ---------------------------------------------------------------------------
// Global-lock scheduler (seed baseline, kept for A/B)
// ---------------------------------------------------------------------------

struct Shared {
    /// Per-worker FIFO queues of runnable batch-local task indices.
    queues: Vec<VecDeque<usize>>,
    /// Task bodies, taken by the executing worker.
    bodies: Vec<Option<TaskDef>>,
    /// Map batch-local index -> global TaskId.
    ids: Vec<TaskId>,
    /// Target worker per task (static locality heuristic).
    targets: Vec<usize>,
    sync: Synchronizer,
    live: usize,
    stats: BatchStats,
    events: EventSink,
    clock: u64,
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// Injected-fault plan for this batch (`None` = no injection).
    faults: Option<FaultPlan>,
    /// Execution attempts per batch-local task (keys the fault hash).
    attempts: Vec<u32>,
    /// Checkpoint interval in completed tasks (`None` = no capture).
    ckpt_every: Option<usize>,
    /// Completions since the last checkpoint.
    since_ckpt: usize,
    /// Latest captured synchronizer checkpoint; recovery consults it.
    last_ckpt: Option<SyncSnapshot>,
    /// Drain-buffer flush threshold (1 when tracing — see [`BatchPolicy`]).
    drain: usize,
}

impl Shared {
    fn tick(&mut self) -> u64 {
        let t = self.clock;
        self.clock += 1;
        t
    }
}

/// Lock the global scheduler state, counting the acquisition
/// ([`BatchStats::sync_locks`]). On this scheduler every pick already
/// serializes on the same lock, so the figure honestly stays at ≈1 per
/// task however large the drain buffer — the amortization only pays off
/// once the lock is confined to the synchronizer (`SchedMode::Sharded`).
fn lock_counted(shared: &Mutex<Shared>) -> MutexGuard<'_, Shared> {
    let mut g = lock(shared);
    g.stats.sync_locks += 1;
    g
}

/// Apply every buffered transition under the already-held global lock,
/// with the same per-completion bookkeeping as the sharded flush (see
/// `Sharded::flush`), then route the newly enabled tasks and wake waiters
/// once. `newly` is caller-owned scratch (cleared here) so a steady-state
/// flush performs no allocation.
fn flush_shared(
    sh: &mut Shared,
    buf: &mut TransitionBatch,
    newly: &mut Vec<TaskId>,
    base: usize,
    w: usize,
    cv: &Condvar,
) {
    if buf.is_empty() {
        return;
    }
    newly.clear();
    for tr in buf.drain() {
        let is_completion = matches!(tr, Transition::Complete(_));
        let t = sh.tick();
        sh.sync.apply_traced(tr, newly, &mut sh.events, t, w);
        if is_completion {
            sh.live -= 1;
            sh.since_ckpt += 1;
            // Interval checkpoint: capture the synchronizer state every
            // N completions (nothing left to protect once the batch is
            // drained). The count is interleaving-independent — it only
            // depends on how many tasks completed.
            if let Some(every) = sh.ckpt_every {
                if sh.since_ckpt >= every && sh.live > 0 {
                    sh.since_ckpt = 0;
                    let snap = sh.sync.snapshot();
                    let bytes = snap.encoded_len() as u64;
                    let t = sh.tick();
                    sh.events.emit(t, w, EventKind::CheckpointTaken { bytes });
                    sh.stats.checkpoints += 1;
                    sh.last_ckpt = Some(snap);
                }
            }
        }
    }
    for n in newly.iter() {
        let local = n.index() - base;
        let target = sh.targets[local];
        sh.queues[target].push_back(local);
    }
    cv.notify_all();
}

impl ThreadRuntime {
    fn run_global(&mut self, batch: Vec<(TaskId, TaskDef)>) {
        let n = batch.len();
        // Same window retirement as the sharded path (see `run_sharded`).
        if self.sync.all_complete() && self.sync.task_count() > 0 {
            self.sync.recycle();
        }
        let mut shared = Shared {
            queues: vec![VecDeque::new(); self.workers],
            bodies: Vec::with_capacity(n),
            ids: Vec::with_capacity(n),
            targets: Vec::with_capacity(n),
            sync: std::mem::take(&mut self.sync),
            live: n,
            stats: BatchStats::default(),
            events: if self.trace_events {
                EventSink::recording()
            } else {
                EventSink::default()
            },
            clock: self.event_clock,
            panic: None,
            faults: self.faults,
            attempts: vec![0; n],
            ckpt_every: self.ckpt_every,
            since_ckpt: 0,
            last_ckpt: None,
            // Traced runs flush per task, keeping 1-worker event streams
            // identical across batch policies (see `BatchPolicy::Auto`).
            drain: if self.trace_events {
                1
            } else {
                self.batch.threshold()
            },
        };
        // Register in serial program order; queue the initially-enabled.
        let base = batch[0].0.index();
        for (id, def) in batch {
            let local = id.index() - base;
            let target = self.target_worker(&def);
            let t = shared.tick();
            let enabled = shared
                .sync
                .add_task_traced(id, &def.spec, &mut shared.events, t, 0);
            shared.ids.push(id);
            shared.targets.push(target);
            shared.bodies.push(Some(def));
            if enabled {
                shared.queues[target].push_back(local);
            }
        }
        // Controller-on batches tune the drain threshold from the batch
        // shape (same law as the sharded path; tracing keeps the applied
        // value clamped to 1, the decision stays logged).
        if let Some(ctl) = self.tune.as_mut() {
            let enabled0 = shared.queues.iter().map(|q| q.len()).sum();
            let d = ctl.drain_threshold(&BatchShape {
                tasks: n,
                workers: self.workers,
                enabled0,
            });
            if !self.trace_events {
                shared.drain = d;
            }
        }
        let shared = Mutex::new(shared);
        let cv = Condvar::new();
        let store = &self.store;
        let workers = self.workers;
        std::thread::scope(|scope| {
            for w in 0..workers {
                let shared = &shared;
                let cv = &cv;
                scope.spawn(move || global_worker_loop(w, workers, base, store, shared, cv));
            }
        });
        let mut sh = shared.into_inner().unwrap_or_else(|e| e.into_inner());
        self.sync = std::mem::take(&mut sh.sync);
        self.last_stats = sh.stats;
        self.total_stats.absorb(&sh.stats);
        self.event_clock = sh.clock;
        self.events.extend(sh.events.take());
        if let Some(p) = sh.panic.take() {
            // Same abort semantics as the sharded path: reset the
            // synchronizer and task numbering so the runtime stays usable
            // for the next batch after the panic propagates.
            self.sync = Synchronizer::new(true);
            self.next_id = 0;
            resume_unwind(p);
        }
        assert_eq!(sh.live, 0, "worker pool exited with live tasks");
    }
}

/// One claimed task: batch-local index, its taken body, id, attempt
/// number, and the injected-failure roll (steal accounting happens at
/// claim time, so `stolen` is not carried).
struct Claim {
    local: usize,
    def: TaskDef,
    id: TaskId,
    attempt: u32,
    injected: bool,
}

fn global_worker_loop(
    w: usize,
    workers: usize,
    base: usize,
    store: &Store,
    shared: &Mutex<Shared>,
    cv: &Condvar,
) {
    // Worker-local drain buffer; a RefCell so the mid-task release hook
    // (an `Fn`) can reach it. Abandoned on the panic exit, like the
    // sharded scheduler's. `newly` is the flush's enable scratch, `claims`
    // the tasks taken under the current lock acquisition — all reused so
    // the steady state allocates nothing.
    let buf = RefCell::new(TransitionBatch::new());
    let newly: RefCell<Vec<TaskId>> = RefCell::new(Vec::new());
    let mut claims: Vec<Claim> = Vec::new();
    let mut guard = lock_counted(shared);
    loop {
        // Flush buffered completions from the previous round under the
        // guard we already hold. With tracing (`drain == 1`) this runs
        // before the next dispatch is emitted, which keeps the event
        // stream byte-identical to per-task flushing.
        if buf.borrow().len() >= guard.drain {
            flush_shared(
                &mut guard,
                &mut buf.borrow_mut(),
                &mut newly.borrow_mut(),
                base,
                w,
                cv,
            );
        }
        if guard.live == 0 || guard.panic.is_some() {
            cv.notify_all();
            return;
        }
        // Claim up to `drain` tasks from our own queue (front; FIFO), else
        // steal one from the back of another worker's. Claiming a run of
        // tasks under ONE acquisition and executing them outside the lock
        // is what lets this scheduler amortize the global lock under
        // `BatchPolicy::Auto` — before, every pick reacquired it, so
        // `batch=1` and `auto` measured identically.
        debug_assert!(claims.is_empty());
        while claims.len() < guard.drain {
            let Some(local) = guard.queues[w].pop_front() else {
                break;
            };
            claim(&mut guard, w, local, false, &mut claims);
        }
        if claims.is_empty() {
            for k in 1..workers {
                let v = (w + k) % workers;
                if let Some(local) = guard.queues[v].pop_back() {
                    claim(&mut guard, w, local, true, &mut claims);
                    break;
                }
            }
        }
        if claims.is_empty() {
            // Out of work: flush buffered completions before waiting —
            // they may enable the only runnable successors (or drain the
            // batch). Wait only with an empty buffer.
            if !buf.borrow().is_empty() {
                flush_shared(
                    &mut guard,
                    &mut buf.borrow_mut(),
                    &mut newly.borrow_mut(),
                    base,
                    w,
                    cv,
                );
                continue;
            }
            guard = cv.wait(guard).unwrap_or_else(|e| e.into_inner());
            continue;
        }
        drop(guard);

        for c in claims.drain(..) {
            let Claim {
                local,
                def,
                id,
                attempt,
                injected,
            } = c;
            // The task body stays outside the closure (`TaskBody` is
            // `Fn`), so a caught unwind leaves `def` intact for
            // re-execution.
            let result = catch_unwind(AssertUnwindSafe(|| {
                if injected {
                    // Simulated worker crash before the body runs: unwind
                    // quietly (no panic hook) — this is an injected fault,
                    // not a bug worth a backtrace. Crashing *before* any
                    // body effect is what makes the re-execution exact.
                    resume_unwind(Box::new(InjectedFailure));
                }
                // Mid-task releases (Jade's pipelining statements) flush
                // eagerly — a buffered release could deadlock a pipeline
                // whose consumer is the only other runnable task. The
                // flush also applies any completions already sitting in
                // the buffer, so the release still costs a single
                // acquisition.
                let hook = |obj: ObjectId| {
                    let mut g = lock_counted(shared);
                    let mut b = buf.borrow_mut();
                    b.release(id, obj);
                    flush_shared(&mut g, &mut b, &mut newly.borrow_mut(), base, w, cv);
                };
                let ctx = TaskCtx::with_release_hook(store, id, def.label, &def.spec, &hook);
                (def.body)(&ctx);
            }));

            match result {
                Ok(()) => {
                    // The completion lands in the drain buffer; the
                    // synchronizer transition is deferred until the buffer
                    // reaches the flush threshold or the worker runs dry
                    // (both checked at the top of the loop, under the next
                    // acquisition).
                    buf.borrow_mut().complete(id);
                }
                Err(_) if injected && attempt + 1 < MAX_TASK_ATTEMPTS => {
                    // Recovery: quarantine the task off this (logically
                    // crashed) worker and hand it to the next one; the
                    // bumped attempt number re-rolls the fault hash. The
                    // execution/start tallies at claim time deliberately
                    // count the failed attempt — they match the event
                    // stream's `tasks_started`.
                    let mut g = lock_counted(shared);
                    let sh = &mut *g;
                    sh.attempts[local] = attempt + 1;
                    sh.stats.recoveries += 1;
                    let t = sh.tick();
                    sh.events.emit(t, w, EventKind::WorkerFailed);
                    // With a checkpoint on file, recovery restores the
                    // crashed task's scheduling state from it: the capture
                    // must agree that the task had not committed (a
                    // committed task is never re-executed).
                    if let Some(snap) = &sh.last_ckpt {
                        debug_assert!(
                            !snap.completed(id),
                            "checkpoint marks crashed task {id:?} committed"
                        );
                        let bytes = snap.encoded_len() as u64;
                        sh.stats.checkpoint_restores += 1;
                        let t = sh.tick();
                        sh.events
                            .emit(t, w, EventKind::CheckpointRestored { bytes });
                    }
                    let t = sh.tick();
                    sh.events.emit_task(t, w, EventKind::TaskReExecuted, id);
                    sh.bodies[local] = Some(def);
                    sh.queues[(w + 1) % workers].push_back(local);
                    cv.notify_all();
                }
                Err(p) => {
                    // Genuine application panic (or an exhausted retry
                    // budget): first panic wins; wake everyone so the pool
                    // drains. Returning drops the remaining claims — the
                    // batch is aborting anyway.
                    let mut g = lock(shared);
                    if g.panic.is_none() {
                        g.panic = Some(p);
                    }
                    cv.notify_all();
                    return;
                }
            }
        }
        guard = lock_counted(shared);
    }
}

/// Take `local`'s body and account its pick under the held guard
/// (dispatch/start events, executed/steal/locality tallies) — the
/// claim half of `global_worker_loop`'s claim-then-execute round.
fn claim(
    guard: &mut MutexGuard<'_, Shared>,
    w: usize,
    local: usize,
    stolen: bool,
    out: &mut Vec<Claim>,
) {
    let sh = &mut **guard;
    let def = sh.bodies[local].take().expect("task queued twice");
    let id = sh.ids[local];
    let attempt = sh.attempts[local];
    let injected = sh
        .faults
        .as_ref()
        .is_some_and(|plan| plan.task_fails(id.0 as u64, attempt));
    sh.stats.executed += 1;
    // A worker's own queue normally only holds tasks targeted at it — but
    // a recovered task is re-queued on the *next* worker, so the locality
    // of a non-stolen pick still has to be checked.
    let hit = !stolen && sh.targets[local] == w;
    if stolen {
        sh.stats.steals += 1;
    } else if hit {
        sh.stats.locality_hits += 1;
    }
    let t = sh.tick();
    let locality = if hit { Locality::Hit } else { Locality::Miss };
    sh.events
        .emit_task(t, w, EventKind::TaskDispatched { stolen, locality }, id);
    sh.events.emit_task(t, w, EventKind::TaskStarted, id);
    out.push(Claim {
        local,
        def,
        id,
        attempt,
        injected,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_core::TaskBuilder;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn owner_table_prefers_written_decls() {
        use jade_core::{AccessSpec, ObjectId};
        let mut table = OwnerTable::default();
        table.ensure(4);
        // Worker 3 wrote object 0 first; worker 5 wrote object 1 later.
        table.record(ObjectId(0), 3);
        table.record(ObjectId(1), 5);
        // A task writing object 0 and reading object 1 routes to object 0's
        // writer even though the read's stamp is newer (ownership transfer
        // for data-dependent irregular read sets).
        let mut spec = AccessSpec::new();
        spec.wr(ObjectId(0)).rd(ObjectId(1));
        assert_eq!(table.latest_writer(&spec), Some(3));
        // A task writing only never-written object 2 falls back to the
        // newest stamp among all its declarations.
        let mut spec = AccessSpec::new();
        spec.wr(ObjectId(2)).rd(ObjectId(1));
        assert_eq!(table.latest_writer(&spec), Some(5));
        // No declaration ever written: no routing hint at all.
        let mut spec = AccessSpec::new();
        spec.rd(ObjectId(2)).wr(ObjectId(3));
        assert_eq!(table.latest_writer(&spec), None);
    }

    #[test]
    fn runs_simple_pipeline() {
        let mut rt = ThreadRuntime::new(4);
        let a = rt.create("a", 8, 1u64);
        let b = rt.create("b", 8, 0u64);
        let c = rt.create("c", 8, 0u64);
        rt.submit(TaskBuilder::new("double").rd(a).wr(b).body(move |ctx| {
            *ctx.wr(b) = *ctx.rd(a) * 2;
        }));
        rt.submit(TaskBuilder::new("inc").rd(b).wr(c).body(move |ctx| {
            *ctx.wr(c) = *ctx.rd(b) + 1;
        }));
        rt.finish();
        assert_eq!(*rt.store().read(c), 3);
        assert_eq!(rt.last_stats().executed, 2);
    }

    #[test]
    fn parallel_tasks_all_run() {
        let mut rt = ThreadRuntime::new(8);
        let outs: Vec<_> = (0..100)
            .map(|i| rt.create(&format!("o{i}"), 8, 0usize))
            .collect();
        for (i, &o) in outs.iter().enumerate() {
            rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                *ctx.wr(o) = i * i;
            }));
        }
        rt.finish();
        for (i, &o) in outs.iter().enumerate() {
            assert_eq!(*rt.store().read(o), i * i);
        }
        assert_eq!(rt.last_stats().executed, 100);
    }

    #[test]
    fn write_write_chain_is_ordered() {
        // The synchronizer must serialize writers in program order even
        // under real concurrency.
        let mut rt = ThreadRuntime::new(8);
        let v = rt.create("v", 0, Vec::<u32>::new());
        for i in 0..50u32 {
            rt.submit(TaskBuilder::new("push").wr(v).body(move |ctx| {
                ctx.wr(v).push(i);
            }));
        }
        rt.finish();
        assert_eq!(*rt.store().read(v), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_readers_run_in_parallel() {
        // All readers block until the barrier is full: requires them to be
        // truly concurrent (deadlocks if the runtime serializes reads).
        let workers = 4;
        let mut rt = ThreadRuntime::new(workers);
        let shared = rt.create("shared", 8, 7u64);
        let outs: Vec<_> = (0..workers)
            .map(|i| rt.create(&format!("o{i}"), 8, 0u64))
            .collect();
        let barrier = Arc::new(std::sync::Barrier::new(workers));
        for &o in &outs {
            let barrier = Arc::clone(&barrier);
            rt.submit(TaskBuilder::new("read").rd(shared).wr(o).body(move |ctx| {
                let x = *ctx.rd(shared);
                barrier.wait();
                *ctx.wr(o) = x;
            }));
        }
        rt.finish();
        for &o in &outs {
            assert_eq!(*rt.store().read(o), 7);
        }
    }

    #[test]
    fn reduction_after_parallel_phase() {
        let mut rt = ThreadRuntime::new(4);
        let parts: Vec<_> = (0..16)
            .map(|i| rt.create(&format!("p{i}"), 8, 0u64))
            .collect();
        let total = rt.create("total", 8, 0u64);
        for (i, &p) in parts.iter().enumerate() {
            rt.submit(TaskBuilder::new("part").wr(p).body(move |ctx| {
                *ctx.wr(p) = i as u64 + 1;
            }));
        }
        let parts2 = parts.clone();
        let mut red = TaskBuilder::new("reduce").wr(total);
        for &p in &parts {
            red = red.rd(p);
        }
        rt.submit(red.serial_phase().body(move |ctx| {
            *ctx.wr(total) = parts2.iter().map(|&p| *ctx.rd(p)).sum();
        }));
        rt.finish();
        assert_eq!(*rt.store().read(total), (1..=16).sum::<u64>());
    }

    #[test]
    fn multiple_batches_reuse_runtime() {
        let mut rt = ThreadRuntime::new(2);
        let x = rt.create("x", 8, 0u64);
        rt.submit(TaskBuilder::new("a").wr(x).body(move |ctx| *ctx.wr(x) += 1));
        rt.finish();
        rt.submit(
            TaskBuilder::new("b")
                .wr(x)
                .body(move |ctx| *ctx.wr(x) += 10),
        );
        rt.finish();
        assert_eq!(*rt.store().read(x), 11);
    }

    #[test]
    fn locality_heuristic_places_tasks() {
        let workers = 4;
        let mut rt = ThreadRuntime::new(workers);
        let objs: Vec<_> = (0..workers)
            .map(|i| {
                let h = rt.create(&format!("o{i}"), 8, 0u64);
                rt.set_home(h, i);
                h
            })
            .collect();
        // Long-ish tasks, one per worker: each should run on its target.
        for &o in &objs {
            rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                let mut acc = 0u64;
                for i in 0..200_000u64 {
                    acc = acc.wrapping_add(i);
                }
                *ctx.wr(o) = acc;
            }));
        }
        rt.finish();
        let s = rt.last_stats();
        assert_eq!(s.executed, workers);
        // Stealing is possible if a worker is slow to start, but every task
        // is either a locality hit or a steal.
        assert_eq!(s.locality_hits + s.steals, workers);
    }

    #[test]
    fn owner_table_tracks_latest_writer() {
        let mut t = OwnerTable::default();
        t.ensure(3);
        let mut spec = jade_core::AccessSpec::new();
        spec.rd(ObjectId(0)).rd(ObjectId(2));
        assert_eq!(t.latest_writer(&spec), None, "nothing written yet");
        t.record(ObjectId(0), 3);
        t.record(ObjectId(2), 1);
        assert_eq!(
            t.latest_writer(&spec),
            Some(1),
            "object 2 written most recently"
        );
        t.record(ObjectId(0), 2);
        assert_eq!(t.latest_writer(&spec), Some(2), "object 0 overtook it");
        // Objects beyond the table (created after `ensure`) are ignored.
        let mut far = jade_core::AccessSpec::new();
        far.rd(ObjectId(99));
        assert_eq!(t.latest_writer(&far), None);
    }

    #[test]
    fn prefetch_routing_prepublishes_ownership() {
        // With prefetch routing on, every writing task's ownership hint is
        // published at queue time; results and the scheduling invariants
        // are unchanged — it is a pure routing heuristic.
        let mut rt = ThreadRuntime::new(4);
        rt.enable_prefetch();
        let objs: Vec<_> = (0..8)
            .map(|i| rt.create(&format!("o{i}"), 8, 0u64))
            .collect();
        for (i, &o) in objs.iter().enumerate() {
            rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                *ctx.wr(o) = i as u64 + 1;
            }));
        }
        rt.finish();
        for (i, &o) in objs.iter().enumerate() {
            assert_eq!(*rt.store().read(o), i as u64 + 1);
        }
        let s = rt.last_stats();
        assert_eq!(s.executed, 8);
        assert_eq!(s.prefetch_routes, 8, "every writer is prefetch-routed");
        assert_eq!(s.locality_hits + s.steals, 8);

        // Default-off: an identical runtime without the flag reports zero.
        let mut off = ThreadRuntime::new(4);
        let o = off.create("x", 8, 0u64);
        off.submit(TaskBuilder::new("w").wr(o).body(move |ctx| *ctx.wr(o) = 1));
        off.finish();
        assert_eq!(off.last_stats().prefetch_routes, 0);
    }

    #[test]
    fn prefetch_routing_chains_successors_to_the_writer() {
        // A producer→consumer chain submitted in one batch: the consumer is
        // enabled at the producer's completion, *after* the pre-published
        // (and completion-confirmed) ownership, so it targets the producer's
        // worker. The chain's results are exact either way.
        let mut rt = ThreadRuntime::new(4);
        rt.enable_prefetch();
        let x = rt.create("x", 8, 0u64);
        let y = rt.create("y", 8, 0u64);
        rt.submit(TaskBuilder::new("produce").wr(x).body(move |ctx| {
            *ctx.wr(x) = 5;
        }));
        rt.submit(TaskBuilder::new("consume").rd(x).wr(y).body(move |ctx| {
            *ctx.wr(y) = *ctx.rd(x) * 2;
        }));
        rt.finish();
        assert_eq!(*rt.store().read(y), 10);
        let s = rt.last_stats();
        assert_eq!(s.executed, 2);
        assert_eq!(s.prefetch_routes, 2, "both tasks write and get routed");
        assert_eq!(s.locality_hits + s.steals, 2);
    }

    #[test]
    fn producer_consumer_batches_follow_the_writer() {
        // Cross-batch locality: batch 1 writes an object on some worker;
        // batch 2's reader must be *targeted* at that worker (it is either
        // a locality hit there, or explicitly counted as a steal).
        let mut rt = ThreadRuntime::new(4);
        let x = rt.create("x", 8, 0u64);
        rt.submit(TaskBuilder::new("produce").wr(x).body(move |ctx| {
            *ctx.wr(x) = 5;
        }));
        rt.finish();
        let y = rt.create("y", 8, 0u64);
        rt.submit(TaskBuilder::new("consume").rd(x).wr(y).body(move |ctx| {
            *ctx.wr(y) = *ctx.rd(x) * 2;
        }));
        rt.finish();
        assert_eq!(*rt.store().read(y), 10);
        let s = rt.last_stats();
        assert_eq!(s.executed, 1);
        assert_eq!(s.locality_hits + s.steals, 1);
    }

    #[test]
    fn empty_finish_is_noop() {
        let mut rt = ThreadRuntime::new(2);
        rt.finish();
        assert_eq!(rt.last_stats(), BatchStats::default());
    }

    #[test]
    fn task_panic_propagates() {
        let mut rt = ThreadRuntime::new(2);
        let x = rt.create("x", 8, 0u64);
        rt.submit(
            TaskBuilder::new("boom")
                .wr(x)
                .body(|_| panic!("task exploded")),
        );
        let r = catch_unwind(AssertUnwindSafe(|| rt.finish()));
        assert!(r.is_err(), "panic must propagate to finish()");
    }

    #[test]
    fn undeclared_access_panics_in_parallel_too() {
        let mut rt = ThreadRuntime::new(2);
        let x = rt.create("x", 8, 0u64);
        let y = rt.create("y", 8, 0u64);
        rt.submit(TaskBuilder::new("sneaky").wr(x).body(move |ctx| {
            let _ = ctx.rd(y); // undeclared!
        }));
        let r = catch_unwind(AssertUnwindSafe(|| rt.finish()));
        assert!(r.is_err());
    }

    #[test]
    fn heavy_contention_stress() {
        // Many small tasks over few objects; exercises enable/steal paths.
        let mut rt = ThreadRuntime::new(8);
        let counters: Vec<_> = (0..4)
            .map(|i| rt.create(&format!("c{i}"), 8, 0u64))
            .collect();
        for i in 0..400 {
            let c = counters[i % 4];
            rt.submit(TaskBuilder::new("inc").rd_wr(c).body(move |ctx| {
                *ctx.wr(c) += 1;
            }));
        }
        rt.finish();
        for &c in &counters {
            assert_eq!(*rt.store().read(c), 100);
        }
    }

    #[test]
    fn mid_task_release_pipelines() {
        // A producer writes stage-1 data, releases it, then keeps working on
        // stage-2 data; the consumer of stage 1 runs concurrently. The
        // consumer signals through an atomic that the producer waits for —
        // this deadlocks unless release() really enables the consumer early.
        let mut rt = ThreadRuntime::new(2);
        let stage1 = rt.create("stage1", 8, 0u64);
        let stage2 = rt.create("stage2", 8, 0u64);
        let consumed = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&consumed);
        rt.submit(
            TaskBuilder::new("producer")
                .wr(stage1)
                .wr(stage2)
                .body(move |ctx| {
                    *ctx.wr(stage1) = 41;
                    ctx.release(stage1);
                    // Wait until the consumer has observed stage 1.
                    while c2.load(Ordering::SeqCst) == 0 {
                        std::thread::yield_now();
                    }
                    *ctx.wr(stage2) = 2;
                }),
        );
        let c3 = Arc::clone(&consumed);
        rt.submit(TaskBuilder::new("consumer").rd(stage1).body(move |ctx| {
            let v = *ctx.rd(stage1);
            c3.store(v as usize, Ordering::SeqCst);
        }));
        rt.finish();
        assert_eq!(consumed.load(Ordering::SeqCst), 41);
        assert_eq!(*rt.store().read(stage2), 2);
    }

    #[test]
    fn access_after_release_panics() {
        let mut rt = ThreadRuntime::new(2);
        let x = rt.create("x", 8, 0u64);
        rt.submit(TaskBuilder::new("bad").wr(x).body(move |ctx| {
            ctx.release(x);
            let _ = ctx.wr(x); // released!
        }));
        let r = catch_unwind(AssertUnwindSafe(|| rt.finish()));
        assert!(r.is_err());
    }

    #[test]
    fn events_reconstruct_batch_stats() {
        let mut rt = ThreadRuntime::new(4);
        rt.enable_events();
        let counters: Vec<_> = (0..4)
            .map(|i| rt.create(&format!("c{i}"), 8, 0u64))
            .collect();
        for i in 0..200 {
            let c = counters[i % 4];
            rt.submit(TaskBuilder::new("inc").rd_wr(c).body(move |ctx| {
                *ctx.wr(c) += 1;
            }));
        }
        rt.finish();
        let stats = rt.last_stats();
        let events = rt.take_events();
        jade_core::check_lifecycle(&events).unwrap();
        let m = jade_core::Metrics::from_events(&events, rt.workers());
        assert_eq!(m.tasks_created, 200);
        assert_eq!(m.tasks_started, stats.executed);
        assert_eq!(m.steals as usize, stats.steals);
        assert_eq!(m.locality_hits, stats.locality_hits);
        // A second take returns nothing until another batch runs.
        assert!(rt.take_events().is_empty());
    }

    #[test]
    fn events_record_mid_task_releases() {
        let mut rt = ThreadRuntime::new(2);
        rt.enable_events();
        let a = rt.create("a", 8, 0u64);
        let b = rt.create("b", 8, 0u64);
        rt.submit(TaskBuilder::new("producer").wr(a).wr(b).body(move |ctx| {
            *ctx.wr(a) = 1;
            ctx.release(a);
            *ctx.wr(b) = 2;
        }));
        rt.submit(TaskBuilder::new("consumer").rd(a).body(move |ctx| {
            let _ = *ctx.rd(a);
        }));
        rt.finish();
        let events = rt.take_events();
        jade_core::check_lifecycle(&events).unwrap();
        let m = jade_core::Metrics::from_events(&events, rt.workers());
        assert_eq!(m.releases, 1);
        assert_eq!(m.tasks_completed, 2);
    }

    #[test]
    fn events_disabled_by_default() {
        let mut rt = ThreadRuntime::new(2);
        let x = rt.create("x", 8, 0u64);
        rt.submit(TaskBuilder::new("a").wr(x).body(move |ctx| *ctx.wr(x) += 1));
        rt.finish();
        assert!(rt.take_events().is_empty());
    }

    #[test]
    fn injected_failures_recover_with_identical_results() {
        // panic_p = 0.3: plenty of injected crashes over 100 tasks, each
        // recovered by re-execution on the next worker. Results must be
        // bit-identical to the fault-free run.
        let mut rt = ThreadRuntime::new(4);
        rt.enable_events();
        rt.inject_faults(FaultPlan {
            panic_p: 0.3,
            seed: 42,
            ..FaultPlan::none()
        });
        let outs: Vec<_> = (0..100)
            .map(|i| rt.create(&format!("o{i}"), 8, 0usize))
            .collect();
        for (i, &o) in outs.iter().enumerate() {
            rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                *ctx.wr(o) = i * i;
            }));
        }
        rt.finish();
        for (i, &o) in outs.iter().enumerate() {
            assert_eq!(*rt.store().read(o), i * i);
        }
        let stats = rt.last_stats();
        assert!(stats.recoveries > 0, "p=0.3 over 100 tasks must inject");
        assert_eq!(stats.executed, 100 + stats.recoveries);
        let events = rt.take_events();
        jade_core::check_lifecycle(&events).unwrap();
        let m = jade_core::Metrics::from_events(&events, rt.workers());
        assert_eq!(m.tasks_reexecuted as usize, stats.recoveries);
        assert_eq!(m.workers_failed as usize, stats.recoveries);
        assert_eq!(m.tasks_started, stats.executed);
    }

    #[test]
    fn recovery_preserves_dependence_order() {
        // A write-write chain under heavy injection: recovery must not let
        // a successor run before its (re-executed) predecessor completes.
        let mut rt = ThreadRuntime::new(4);
        rt.inject_faults(FaultPlan {
            panic_p: 0.4,
            seed: 7,
            ..FaultPlan::none()
        });
        let v = rt.create("v", 0, Vec::<u32>::new());
        for i in 0..50u32 {
            rt.submit(TaskBuilder::new("push").wr(v).body(move |ctx| {
                ctx.wr(v).push(i);
            }));
        }
        rt.finish();
        assert_eq!(*rt.store().read(v), (0..50).collect::<Vec<_>>());
        assert!(rt.last_stats().recoveries > 0);
    }

    #[test]
    fn genuine_panic_propagates_even_with_recovery() {
        // Recovery only covers injected failures: a real application panic
        // may have left partial writes, so it must still surface.
        let mut rt = ThreadRuntime::new(2);
        rt.inject_faults(FaultPlan {
            panic_p: 0.0,
            seed: 1,
            ..FaultPlan::none()
        });
        let x = rt.create("x", 8, 0u64);
        rt.submit(
            TaskBuilder::new("boom")
                .wr(x)
                .body(|_| panic!("task exploded")),
        );
        let r = catch_unwind(AssertUnwindSafe(|| rt.finish()));
        assert!(r.is_err(), "application panic must propagate");
    }

    #[test]
    fn exhausted_retry_budget_propagates() {
        // panic_p = 1.0 fails every attempt; after the retry budget the
        // failure surfaces instead of looping forever.
        let mut rt = ThreadRuntime::new(2);
        rt.inject_faults(FaultPlan {
            panic_p: 1.0,
            seed: 3,
            ..FaultPlan::none()
        });
        let x = rt.create("x", 8, 0u64);
        rt.submit(TaskBuilder::new("w").wr(x).body(move |ctx| *ctx.wr(x) = 1));
        let r = catch_unwind(AssertUnwindSafe(|| rt.finish()));
        assert!(r.is_err(), "unwinnable plan must not hang");
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn invalid_fault_plan_rejected() {
        let mut rt = ThreadRuntime::new(2);
        rt.inject_faults(FaultPlan {
            panic_p: 2.0,
            ..FaultPlan::none()
        });
    }

    #[test]
    fn checkpoint_interval_captures_and_preserves_results() {
        let mut rt = ThreadRuntime::new(4);
        rt.enable_events();
        rt.checkpoint_every(10);
        let outs: Vec<_> = (0..100)
            .map(|i| rt.create(&format!("o{i}"), 8, 0usize))
            .collect();
        for (i, &o) in outs.iter().enumerate() {
            rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                *ctx.wr(o) = i + 1;
            }));
        }
        rt.finish();
        for (i, &o) in outs.iter().enumerate() {
            assert_eq!(*rt.store().read(o), i + 1);
        }
        let stats = rt.last_stats();
        // 100 completions / 10, minus the capture skipped on the final one.
        assert_eq!(stats.checkpoints, 9);
        let events = rt.take_events();
        jade_core::check_lifecycle(&events).unwrap();
        let m = jade_core::Metrics::from_events(&events, rt.workers());
        assert_eq!(m.checkpoints as usize, stats.checkpoints);
        assert!(m.checkpoint_bytes > 0, "captures must report their size");
    }

    #[test]
    fn checkpointed_recovery_restores_and_stays_bit_identical() {
        // Faults + checkpoints together: recoveries that happen after the
        // first capture consult it, and results stay bit-identical.
        let mut rt = ThreadRuntime::new(4);
        rt.enable_events();
        rt.inject_faults(FaultPlan {
            panic_p: 0.3,
            seed: 42,
            ..FaultPlan::none()
        });
        rt.checkpoint_every(5);
        let outs: Vec<_> = (0..100)
            .map(|i| rt.create(&format!("o{i}"), 8, 0usize))
            .collect();
        for (i, &o) in outs.iter().enumerate() {
            rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                *ctx.wr(o) = i * i;
            }));
        }
        rt.finish();
        for (i, &o) in outs.iter().enumerate() {
            assert_eq!(*rt.store().read(o), i * i);
        }
        let stats = rt.last_stats();
        assert!(stats.recoveries > 0, "p=0.3 over 100 tasks must inject");
        assert!(stats.checkpoints > 0);
        assert!(
            stats.checkpoint_restores <= stats.recoveries,
            "only recoveries can restore"
        );
        let events = rt.take_events();
        jade_core::check_lifecycle(&events).unwrap();
        let m = jade_core::Metrics::from_events(&events, rt.workers());
        assert_eq!(m.checkpoints as usize, stats.checkpoints);
        assert_eq!(m.checkpoint_restores as usize, stats.checkpoint_restores);
        assert_eq!(m.tasks_reexecuted as usize, stats.recoveries);
    }

    #[test]
    fn fault_plan_checkpoint_maps_to_task_count() {
        // `ckpt=3` on the threads backend means "every 3 completed tasks".
        let mut rt = ThreadRuntime::new(2);
        rt.inject_faults(FaultPlan::parse("ckpt=3").unwrap());
        let outs: Vec<_> = (0..10)
            .map(|i| rt.create(&format!("o{i}"), 8, 0usize))
            .collect();
        for &o in &outs {
            rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                *ctx.wr(o) = 1;
            }));
        }
        rt.finish();
        assert_eq!(rt.last_stats().checkpoints, 3);
    }

    #[test]
    #[should_panic(expected = "checkpoint interval")]
    fn zero_checkpoint_interval_rejected() {
        let mut rt = ThreadRuntime::new(2);
        rt.checkpoint_every(0);
    }

    #[test]
    fn checkpoint_seconds_to_tasks_conversion_is_checked() {
        // Nominal mappings (round to nearest, floor one task).
        assert_eq!(checkpoint_tasks(3.0), Ok(3));
        assert_eq!(checkpoint_tasks(0.25), Ok(1));
        assert_eq!(checkpoint_tasks(7.6), Ok(8));
        // Degenerate values are config errors naming the bad value, not
        // silently saturating casts.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, 1e18] {
            let err = checkpoint_tasks(bad).unwrap_err();
            assert!(
                err.contains(&format!("{bad}")),
                "error must name the value: {err}"
            );
        }
    }

    #[test]
    fn try_inject_faults_returns_config_error_for_bad_checkpoint() {
        let mut rt = ThreadRuntime::new(2);
        let plan = FaultPlan {
            checkpoint: Some(dsim::SimDuration(u64::MAX)),
            ..FaultPlan::none()
        };
        let err = rt.try_inject_faults(plan).unwrap_err();
        assert!(err.contains("ckpt"), "error names the knob: {err}");
        // The runtime stays usable and unconfigured.
        assert!(rt.faults.is_none() && rt.ckpt_every.is_none());
    }

    #[test]
    fn tuned_runs_are_deterministic_and_match_untuned_results() {
        let run = |tuned: bool| {
            let mut rt = ThreadRuntime::new(4);
            if tuned {
                rt.enable_tuning();
            }
            let outs: Vec<_> = (0..48)
                .map(|i| rt.create(&format!("o{i}"), 8, 0u64))
                .collect();
            let acc = rt.create("acc", 8, 0u64);
            for (i, &o) in outs.iter().enumerate() {
                rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                    *ctx.wr(o) = (i as u64 + 1) * 7;
                }));
            }
            for &o in &outs {
                rt.submit(TaskBuilder::new("fold").rd(o).rd_wr(acc).body(move |ctx| {
                    *ctx.wr(acc) += *ctx.rd(o);
                }));
            }
            rt.finish();
            let values: Vec<u64> = outs
                .iter()
                .map(|&o| *rt.store().read(o))
                .chain(std::iter::once(*rt.store().read(acc)))
                .collect();
            let log = rt.tune_log().cloned();
            (values, log)
        };
        let (v_off, log_off) = run(false);
        let (v_on_a, log_a) = run(true);
        let (v_on_b, log_b) = run(true);
        assert_eq!(v_on_a, v_off, "controller must not change results");
        assert_eq!(v_on_a, v_on_b, "controller-on repeats bit-identical");
        assert!(log_off.is_none());
        assert_eq!(log_a, log_b, "decision logs identical across repeats");
        let log = log_a.expect("tuned run records decisions");
        assert!(!log.decisions.is_empty());
        log.check_ranges().unwrap();
    }

    #[test]
    fn tuned_steal_budget_preserves_work_conservation() {
        // Many park/wake cycles with a bounded steal budget: the
        // exhaustive pre-park sweep must keep every task reachable.
        let mut rt = ThreadRuntime::new(8);
        rt.enable_tuning();
        let counters: Vec<_> = (0..16)
            .map(|i| rt.create(&format!("c{i}"), 8, 0u64))
            .collect();
        for i in 0..2000 {
            let c = counters[i % 16];
            rt.submit(TaskBuilder::new("inc").rd_wr(c).body(move |ctx| {
                *ctx.wr(c) += 1;
            }));
        }
        rt.finish();
        let total: u64 = counters.iter().map(|&c| *rt.store().read(c)).sum();
        assert_eq!(total, 2000);
        rt.tune_log().unwrap().check_ranges().unwrap();
    }

    #[test]
    fn single_worker_degenerates_to_serial() {
        let mut rt = ThreadRuntime::new(1);
        let order = Arc::new(AtomicUsize::new(0));
        let outs: Vec<_> = (0..10)
            .map(|i| rt.create(&format!("o{i}"), 8, 0usize))
            .collect();
        for &o in &outs {
            let order = Arc::clone(&order);
            rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                *ctx.wr(o) = order.fetch_add(1, Ordering::SeqCst);
            }));
        }
        rt.finish();
        // With one worker, tasks run in program order.
        for (i, &o) in outs.iter().enumerate() {
            assert_eq!(*rt.store().read(o), i);
        }
    }

    /// Run the same little mixed workload on a fresh runtime in `mode`,
    /// returning (store values, stats, events).
    fn run_reference_workload(
        mode: SchedMode,
        workers: usize,
    ) -> (Vec<u64>, BatchStats, Vec<Event>) {
        run_reference_workload_with(mode, workers, BatchPolicy::default())
    }

    fn run_reference_workload_with(
        mode: SchedMode,
        workers: usize,
        policy: BatchPolicy,
    ) -> (Vec<u64>, BatchStats, Vec<Event>) {
        let mut rt = ThreadRuntime::with_mode(workers, mode);
        rt.set_batch_policy(policy);
        rt.enable_events();
        let outs: Vec<_> = (0..24)
            .map(|i| rt.create(&format!("o{i}"), 8, 0u64))
            .collect();
        let acc = rt.create("acc", 8, 0u64);
        for (i, &o) in outs.iter().enumerate() {
            rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                *ctx.wr(o) = (i as u64 + 1) * 3;
            }));
        }
        for &o in &outs {
            rt.submit(TaskBuilder::new("fold").rd(o).rd_wr(acc).body(move |ctx| {
                *ctx.wr(acc) += *ctx.rd(o);
            }));
        }
        rt.finish();
        let values = outs
            .iter()
            .map(|&o| *rt.store().read(o))
            .chain(std::iter::once(*rt.store().read(acc)))
            .collect();
        (values, rt.last_stats(), rt.take_events())
    }

    #[test]
    fn sharded_and_global_lock_agree_on_results_and_metrics() {
        for workers in [1, 2, 4] {
            let (va, sa, ea) = run_reference_workload(SchedMode::Sharded, workers);
            let (vb, sb, eb) = run_reference_workload(SchedMode::GlobalLock, workers);
            assert_eq!(va, vb, "bit-identical results at {workers} workers");
            assert_eq!(sa.executed, sb.executed);
            jade_core::check_lifecycle(&ea).unwrap();
            jade_core::check_lifecycle(&eb).unwrap();
            let ma = jade_core::Metrics::from_events(&ea, workers);
            let mb = jade_core::Metrics::from_events(&eb, workers);
            // Steal/locality counts legitimately differ between schedulers;
            // every deterministic counter must agree.
            assert_eq!(ma.tasks_created, mb.tasks_created);
            assert_eq!(ma.tasks_enabled, mb.tasks_enabled);
            assert_eq!(ma.tasks_dispatched, mb.tasks_dispatched);
            assert_eq!(ma.tasks_started, mb.tasks_started);
            assert_eq!(ma.tasks_completed, mb.tasks_completed);
            assert_eq!(ma.releases, mb.releases);
        }
    }

    #[test]
    fn one_worker_event_streams_are_identical_across_modes() {
        // With a single worker both schedulers are deterministic FIFO
        // executors; their event streams must match event-for-event. This
        // is the strongest form of the A/B equivalence the bench harness
        // relies on.
        let (va, _, ea) = run_reference_workload(SchedMode::Sharded, 1);
        let (vb, _, eb) = run_reference_workload(SchedMode::GlobalLock, 1);
        assert_eq!(va, vb);
        assert_eq!(ea, eb, "event streams diverged at one worker");
    }

    #[test]
    fn global_lock_mode_recovers_from_injected_faults() {
        let mut rt = ThreadRuntime::with_mode(4, SchedMode::GlobalLock);
        rt.inject_faults(FaultPlan {
            panic_p: 0.3,
            seed: 11,
            ..FaultPlan::none()
        });
        let v = rt.create("v", 0, Vec::<u32>::new());
        for i in 0..40u32 {
            rt.submit(TaskBuilder::new("push").wr(v).body(move |ctx| {
                ctx.wr(v).push(i);
            }));
        }
        rt.finish();
        assert_eq!(*rt.store().read(v), (0..40).collect::<Vec<_>>());
        assert!(rt.last_stats().recoveries > 0);
    }

    #[test]
    fn sharded_survives_thousands_of_tiny_tasks() {
        // Scheduler stress: overhead-dominated tasks across many wake/park
        // cycles; exercises the epoch-parking protocol for lost wakeups.
        let mut rt = ThreadRuntime::new(8);
        let counters: Vec<_> = (0..16)
            .map(|i| rt.create(&format!("c{i}"), 8, 0u64))
            .collect();
        for i in 0..2000 {
            let c = counters[i % 16];
            rt.submit(TaskBuilder::new("inc").rd_wr(c).body(move |ctx| {
                *ctx.wr(c) += 1;
            }));
        }
        rt.finish();
        for &c in &counters {
            assert_eq!(*rt.store().read(c), 125);
        }
        assert_eq!(rt.last_stats().executed, 2000);
    }

    #[test]
    fn steal_order_never_starts_at_self_and_visits_each_other_worker_once() {
        // Regression for the old sweep, whose random start could be the
        // stealing worker itself (wasting the first probe) — the sweep must
        // start at a *different* worker and cover every other one exactly
        // once, for every random draw.
        for workers in 2..=8 {
            for w in 0..workers {
                for r in 0..64u64 {
                    let order: Vec<usize> = steal_order(w, workers, r).collect();
                    assert_ne!(order[0], w, "first victim is the stealer itself");
                    assert_eq!(order.len(), workers - 1);
                    let mut sorted = order.clone();
                    sorted.sort_unstable();
                    let expected: Vec<usize> = (0..workers).filter(|&v| v != w).collect();
                    assert_eq!(sorted, expected, "sweep must visit each other worker once");
                }
            }
        }
    }

    #[test]
    fn forced_steal_workload_pins_steal_accounting() {
        // Two workers; a blocker task placed on worker 1 spins until all
        // consumer tasks (also placed on worker 1) have run. Worker 1 is
        // stuck in the blocker, so every consumer MUST be stolen by worker
        // 0 — pinning `stats.steals` exactly. Consumers wait for the
        // blocker to start so worker 0 can never drain queue 1 before
        // worker 1 has claimed the blocker off its front.
        const CONSUMERS: usize = 12;
        let mut rt = ThreadRuntime::new(2);
        let started = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let done = Arc::new(AtomicUsize::new(0));
        let blocker_out = rt.create("blocker", 8, 0u64);
        {
            let started = Arc::clone(&started);
            let done = Arc::clone(&done);
            rt.submit(
                TaskBuilder::new("blocker")
                    .wr(blocker_out)
                    .place(1)
                    .body(move |ctx| {
                        started.store(true, Ordering::SeqCst);
                        while done.load(Ordering::SeqCst) < CONSUMERS {
                            std::hint::spin_loop();
                        }
                        *ctx.wr(blocker_out) = 1;
                    }),
            );
        }
        let outs: Vec<_> = (0..CONSUMERS)
            .map(|i| rt.create(&format!("c{i}"), 8, 0u64))
            .collect();
        for (i, &o) in outs.iter().enumerate() {
            let started = Arc::clone(&started);
            let done = Arc::clone(&done);
            rt.submit(
                TaskBuilder::new("consumer")
                    .wr(o)
                    .place(1)
                    .body(move |ctx| {
                        while !started.load(Ordering::SeqCst) {
                            std::hint::spin_loop();
                        }
                        *ctx.wr(o) = i as u64 + 1;
                        done.fetch_add(1, Ordering::SeqCst);
                    }),
            );
        }
        rt.finish();
        for (i, &o) in outs.iter().enumerate() {
            assert_eq!(*rt.store().read(o), i as u64 + 1);
        }
        let s = rt.last_stats();
        assert_eq!(s.executed, CONSUMERS + 1);
        assert_eq!(s.steals, CONSUMERS, "every consumer must be stolen");
        assert_eq!(s.locality_hits, 1, "only the blocker runs on its target");
    }

    #[test]
    fn batch_policies_agree_on_results() {
        for mode in [SchedMode::Sharded, SchedMode::GlobalLock] {
            let mut results = Vec::new();
            for policy in [BatchPolicy::PerTask, BatchPolicy::Auto] {
                let mut rt = ThreadRuntime::with_mode(4, mode);
                rt.set_batch_policy(policy);
                let v = rt.create("v", 0, Vec::<u32>::new());
                let outs: Vec<_> = (0..30)
                    .map(|i| rt.create(&format!("o{i}"), 8, 0u64))
                    .collect();
                for i in 0..30u32 {
                    rt.submit(TaskBuilder::new("push").wr(v).body(move |ctx| {
                        ctx.wr(v).push(i);
                    }));
                    let o = outs[i as usize];
                    rt.submit(TaskBuilder::new("sq").wr(o).body(move |ctx| {
                        *ctx.wr(o) = u64::from(i) * u64::from(i);
                    }));
                }
                rt.finish();
                let vals: Vec<u64> = outs.iter().map(|&o| *rt.store().read(o)).collect();
                results.push((rt.store().read(v).clone(), vals, rt.last_stats().executed));
            }
            assert_eq!(results[0], results[1], "{mode:?}: policies diverged");
        }
    }

    #[test]
    fn drain_buffer_flushes_when_idle() {
        // A dependency chain shorter than DRAIN_BATCH with more workers
        // than work: the completion that enables each successor sits in a
        // drain buffer below the flush threshold, so the run hangs unless
        // idle workers flush before parking.
        for mode in [SchedMode::Sharded, SchedMode::GlobalLock] {
            let mut rt = ThreadRuntime::with_mode(4, mode);
            rt.set_batch_policy(BatchPolicy::Auto);
            let x = rt.create("x", 8, 0u64);
            for _ in 0..DRAIN_BATCH / 2 {
                rt.submit(TaskBuilder::new("inc").rd_wr(x).body(move |ctx| {
                    *ctx.wr(x) += 1;
                }));
            }
            rt.finish();
            assert_eq!(*rt.store().read(x), DRAIN_BATCH as u64 / 2, "{mode:?}");
        }
    }

    #[test]
    fn auto_batching_amortizes_sync_locks() {
        // Overhead-dominated independent tasks: under Auto the drain
        // buffers fill to DRAIN_BATCH, so synchronizer-lock acquisitions
        // fall well below one per task; under PerTask every completion
        // takes the lock.
        let run = |policy: BatchPolicy| {
            let mut rt = ThreadRuntime::new(2);
            rt.set_batch_policy(policy);
            let outs: Vec<_> = (0..400)
                .map(|i| rt.create(&format!("o{i}"), 8, 0u64))
                .collect();
            for (i, &o) in outs.iter().enumerate() {
                rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                    *ctx.wr(o) = i as u64;
                }));
            }
            rt.finish();
            for (i, &o) in outs.iter().enumerate() {
                assert_eq!(*rt.store().read(o), i as u64);
            }
            rt.last_stats()
        };
        let per_task = run(BatchPolicy::PerTask);
        let auto = run(BatchPolicy::Auto);
        assert_eq!(per_task.executed, 400);
        assert_eq!(auto.executed, 400);
        assert_eq!(
            per_task.sync_locks, 400,
            "PerTask takes the lock once per completion"
        );
        assert!(
            auto.sync_locks * 2 <= auto.executed,
            "Auto must amortize: {} locks for {} tasks",
            auto.sync_locks,
            auto.executed
        );
    }

    #[test]
    fn one_worker_event_streams_are_identical_across_batch_policies() {
        // Tracing clamps the drain threshold to one, so a traced 1-worker
        // run is byte-identical however the batch policy is set — the
        // bit-for-bit parity contract of the bench harness.
        for mode in [SchedMode::Sharded, SchedMode::GlobalLock] {
            let (va, sa, ea) = run_reference_workload_with(mode, 1, BatchPolicy::PerTask);
            let (vb, sb, eb) = run_reference_workload_with(mode, 1, BatchPolicy::Auto);
            assert_eq!(va, vb, "{mode:?}: outputs diverged");
            assert_eq!(sa.executed, sb.executed);
            assert_eq!(ea, eb, "{mode:?}: event streams diverged across policies");
        }
    }

    #[test]
    fn total_stats_accumulate_across_batches() {
        let mut rt = ThreadRuntime::new(2);
        let x = rt.create("x", 8, 0u64);
        for round in 0..3 {
            rt.submit(TaskBuilder::new("a").wr(x).body(move |ctx| *ctx.wr(x) += 1));
            rt.submit(
                TaskBuilder::new("b")
                    .rd_wr(x)
                    .body(move |ctx| *ctx.wr(x) += 1),
            );
            rt.finish();
            assert_eq!(rt.last_stats().executed, 2);
            assert_eq!(rt.total_stats().executed, (round + 1) * 2);
        }
        assert_eq!(*rt.store().read(x), 6);
        assert!(rt.total_stats().sync_locks >= rt.last_stats().sync_locks);
    }

    /// Submit `n` independent counter increments over `objs` objects
    /// (the SchedStress shape) and finish the batch.
    fn run_counter_batch(rt: &mut ThreadRuntime, n: usize, handles: &[jade_core::Handle<u64>]) {
        for i in 0..n {
            let h = handles[i % handles.len()];
            rt.submit(
                TaskBuilder::new("inc")
                    .rd_wr(h)
                    .body(move |ctx| *ctx.wr(h) += 1),
            );
        }
        rt.finish();
    }

    #[test]
    fn second_same_shape_batch_triggers_zero_slab_growth() {
        for deque in [DequeImpl::Locked, DequeImpl::ChaseLev] {
            for workers in [1, 3] {
                let mut rt = ThreadRuntime::new(workers);
                rt.set_deque_impl(deque);
                let handles: Vec<_> = (0..8)
                    .map(|i| rt.create(&format!("c{i}"), 8, 0u64))
                    .collect();
                run_counter_batch(&mut rt, 64, &handles);
                let grows = rt.arena.grows;
                assert!(grows > 0, "first batch must build the arena");
                run_counter_batch(&mut rt, 64, &handles);
                assert_eq!(
                    rt.arena.grows, grows,
                    "{deque:?}/{workers}w: same-shape batch re-grew the arena"
                );
                // A smaller batch must reuse as well; only a bigger one grows.
                run_counter_batch(&mut rt, 32, &handles);
                assert_eq!(rt.arena.grows, grows, "{deque:?}: smaller batch re-grew");
                run_counter_batch(&mut rt, 256, &handles);
                assert!(rt.arena.grows > grows, "{deque:?}: bigger batch must grow");
                assert_eq!(*rt.store().read(handles[0]), (64 + 64 + 32 + 256) / 8);
            }
        }
    }

    #[test]
    fn chase_lev_matches_locked_results_and_counters() {
        // The deque impl is a scheduling freedom: outputs and the
        // deterministic counters must be bit-identical; dispatch order
        // (and hence steal/locality split) may differ.
        for workers in [1, 2, 4] {
            let run = |deque: DequeImpl| {
                let mut rt = ThreadRuntime::new(workers);
                rt.set_deque_impl(deque);
                let outs: Vec<_> = (0..24)
                    .map(|i| rt.create(&format!("o{i}"), 8, 0u64))
                    .collect();
                let acc = rt.create("acc", 8, 0u64);
                for (i, &o) in outs.iter().enumerate() {
                    rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                        *ctx.wr(o) = (i as u64 + 1) * 3;
                    }));
                }
                for &o in &outs {
                    rt.submit(TaskBuilder::new("acc").rd(o).rd_wr(acc).body(move |ctx| {
                        *ctx.wr(acc) += *ctx.rd(o);
                    }));
                }
                rt.finish();
                let vals: Vec<u64> = outs
                    .iter()
                    .map(|&o| *rt.store().read(o))
                    .chain(std::iter::once(*rt.store().read(acc)))
                    .collect();
                (vals, rt.last_stats())
            };
            let (va, sa) = run(DequeImpl::Locked);
            let (vb, sb) = run(DequeImpl::ChaseLev);
            assert_eq!(va, vb, "outputs diverged at {workers} workers");
            assert_eq!(sa.executed, sb.executed);
            assert_eq!(sa.recoveries, sb.recoveries);
            assert_eq!(sa.locality_hits + sa.steals, sb.locality_hits + sb.steals);
        }
    }

    #[test]
    fn chase_lev_inbox_work_is_stealable_while_owner_spins() {
        // Liveness: work remote-pushed onto a worker that never goes idle
        // (its owner is spinning inside a task) must still be reachable by
        // thieves — the Chase-Lev inject inbox would otherwise deadlock
        // this pipeline.
        let mut rt = ThreadRuntime::new(2);
        rt.set_deque_impl(DequeImpl::ChaseLev);
        let done = Arc::new(AtomicUsize::new(0));
        let x = rt.create("x", 8, 0u64);
        let y = rt.create("y", 8, 0u64);
        let flag = rt.create("flag", 8, 0u64);
        // Blocker on worker 0 spins until the dependent task B (also
        // targeted at worker 0 by placement) has run — which can only
        // happen if worker 1 steals B out of worker 0's inbox.
        let d0 = Arc::clone(&done);
        rt.submit(TaskBuilder::new("blocker").wr(y).place(0).body(move |ctx| {
            while d0.load(Ordering::SeqCst) == 0 {
                std::hint::spin_loop();
            }
            *ctx.wr(y) = 1;
        }));
        rt.submit(
            TaskBuilder::new("a")
                .wr(x)
                .place(1)
                .body(move |ctx| *ctx.wr(x) = 7),
        );
        let d1 = Arc::clone(&done);
        rt.submit(
            TaskBuilder::new("b")
                .rd(x)
                .wr(flag)
                .place(0)
                .body(move |ctx| {
                    *ctx.wr(flag) = *ctx.rd(x) + 1;
                    d1.store(1, Ordering::SeqCst);
                }),
        );
        rt.finish();
        assert_eq!(*rt.store().read(y), 1);
        assert_eq!(*rt.store().read(flag), 8);
        assert_eq!(rt.last_stats().executed, 3);
    }

    #[test]
    fn global_lock_auto_batching_amortizes_locks() {
        // Regression for the dishonest A/B: GlobalLock used to reacquire
        // the lock for every pick regardless of policy, so `batch=1` and
        // `auto` measured identical sync_locks. The claim loop must take
        // several tasks per acquisition under Auto.
        let run = |policy: BatchPolicy| {
            let mut rt = ThreadRuntime::with_mode(2, SchedMode::GlobalLock);
            rt.set_batch_policy(policy);
            let outs: Vec<_> = (0..400)
                .map(|i| rt.create(&format!("o{i}"), 8, 0u64))
                .collect();
            for (i, &o) in outs.iter().enumerate() {
                rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                    *ctx.wr(o) = i as u64;
                }));
            }
            rt.finish();
            for (i, &o) in outs.iter().enumerate() {
                assert_eq!(*rt.store().read(o), i as u64);
            }
            rt.last_stats()
        };
        let per_task = run(BatchPolicy::PerTask);
        let auto = run(BatchPolicy::Auto);
        assert_eq!(per_task.executed, 400);
        assert_eq!(auto.executed, 400);
        assert!(
            per_task.sync_locks >= 400,
            "PerTask takes the lock at least once per completion"
        );
        assert!(
            (auto.sync_locks as f64) < 1.0 * auto.executed as f64,
            "GlobalLock auto must amortize below one lock per task: {} locks / {} tasks",
            auto.sync_locks,
            auto.executed
        );
        assert!(
            auto.sync_locks * 2 <= auto.executed,
            "GlobalLock auto should amortize well below one lock per task: {} locks / {} tasks",
            auto.sync_locks,
            auto.executed
        );
    }
}
