//! # jade-threads — a real parallel Jade executor on OS threads
//!
//! The machine crates (`jade-dash`, `jade-ipsc`) *simulate* the paper's 1995
//! hardware. This crate is the present-day backend: it executes Jade
//! programs with genuine parallelism on the host machine, so the library is
//! usable as an access-declared task runtime (the model that StarPU, OmpSs
//! and Legion later popularized), not just as a reproduction artifact.
//!
//! Design:
//!
//! * the **same program text** runs here and on the simulators — apps are
//!   generic over [`jade_core::JadeRuntime`];
//! * the queue-based [`jade_core::Synchronizer`] decides when tasks may run;
//! * per-worker task queues with the paper's **locality heuristic** (tasks
//!   queued at the worker owning their locality object) and **stealing**
//!   from the back of other workers' queues;
//! * every object access is runtime-checked against the declared access
//!   specification, and per-object `RwLock`s verify the synchronizer's
//!   exclusion guarantee mechanically: a data race would panic, not corrupt.
//!
//! Execution is batch-deferred: `submit` queues tasks, [`ThreadRuntime::finish`]
//! runs the batch to completion on a thread pool. Jade's serial semantics
//! make this sound — a Jade program can only observe task results through
//! shared objects, and our API exposes the store only between batches.
//!
//! ```
//! use jade_core::{JadeRuntime, TaskBuilder};
//! use jade_threads::ThreadRuntime;
//!
//! let mut rt = ThreadRuntime::new(4);
//! let xs = rt.create("xs", 32, vec![1.0f64, 2.0, 3.0, 4.0]);
//! let total = rt.create("total", 8, 0.0f64);
//! rt.submit(TaskBuilder::new("sum").rd(xs).wr(total).body(move |ctx| {
//!     *ctx.wr(total) = ctx.rd(xs).iter().sum();
//! }));
//! rt.finish();
//! assert_eq!(*rt.store().read(total), 10.0);
//! ```

#![forbid(unsafe_code)]

pub use dsim::FaultPlan;
use jade_core::{
    Event, EventKind, EventSink, JadeRuntime, Locality, ObjectId, Store, SyncSnapshot,
    Synchronizer, TaskCtx, TaskDef, TaskId,
};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Retry budget for injected worker failures. Each attempt re-rolls the
/// keyed fault hash, so with `panic_p < 1` a task clears this budget with
/// overwhelming probability; exhausting it propagates the failure.
const MAX_TASK_ATTEMPTS: u32 = 16;

/// Quiet panic payload for an injected worker failure: unwinds through
/// `resume_unwind` so the default panic hook prints nothing — the crash is
/// simulated, not a bug worth a backtrace.
struct InjectedFailure;

/// Lock a mutex, ignoring poisoning (a panicking task already propagates
/// its panic through `finish`; the shared state stays structurally valid).
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Statistics from the most recent [`ThreadRuntime::finish`] batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Task execution attempts in the batch (re-executions after injected
    /// failures included, matching the event stream's started count).
    pub executed: usize,
    /// Tasks executed by the worker owning their locality object.
    pub locality_hits: usize,
    /// Tasks taken from another worker's queue.
    pub steals: usize,
    /// Tasks re-executed after an injected worker failure (fault
    /// injection; see [`ThreadRuntime::inject_faults`]).
    pub recoveries: usize,
    /// Synchronizer checkpoints captured during the batch
    /// (see [`ThreadRuntime::checkpoint_every`]).
    pub checkpoints: usize,
    /// Recoveries that consulted a captured checkpoint.
    pub checkpoint_restores: usize,
}

/// A parallel Jade runtime executing on `workers` OS threads.
pub struct ThreadRuntime {
    store: Store,
    workers: usize,
    sync: Synchronizer,
    pending: Vec<(TaskId, TaskDef)>,
    next_id: u32,
    last_stats: BatchStats,
    /// Record structured events for subsequent batches.
    trace_events: bool,
    /// Events accumulated by finished batches (drained by `take_events`).
    events: Vec<Event>,
    /// Logical clock stamped on events; real wall times would make the
    /// stream nondeterministic, so events carry a sequence number instead.
    event_clock: u64,
    /// Injected-fault plan; `None` (the default) disables fault injection
    /// and recovery entirely.
    faults: Option<FaultPlan>,
    /// Checkpoint interval in completed tasks; `None` disables capture.
    ckpt_every: Option<usize>,
}

struct Shared {
    /// Per-worker FIFO queues of runnable batch-local task indices.
    queues: Vec<VecDeque<usize>>,
    /// Task bodies, taken by the executing worker.
    bodies: Vec<Option<TaskDef>>,
    /// Map batch-local index -> global TaskId.
    ids: Vec<TaskId>,
    /// Target worker per task (locality heuristic).
    targets: Vec<usize>,
    sync: Synchronizer,
    live: usize,
    stats: BatchStats,
    events: EventSink,
    clock: u64,
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// Injected-fault plan for this batch (`None` = no injection).
    faults: Option<FaultPlan>,
    /// Execution attempts per batch-local task (keys the fault hash).
    attempts: Vec<u32>,
    /// Checkpoint interval in completed tasks (`None` = no capture).
    ckpt_every: Option<usize>,
    /// Completions since the last checkpoint.
    since_ckpt: usize,
    /// Latest captured synchronizer checkpoint; recovery consults it.
    last_ckpt: Option<SyncSnapshot>,
}

impl Shared {
    fn tick(&mut self) -> u64 {
        let t = self.clock;
        self.clock += 1;
        t
    }
}

impl ThreadRuntime {
    /// Create a runtime with `workers` worker threads (minimum 1).
    pub fn new(workers: usize) -> ThreadRuntime {
        ThreadRuntime {
            store: Store::new(),
            workers: workers.max(1),
            sync: Synchronizer::new(true),
            pending: Vec::new(),
            next_id: 0,
            last_stats: BatchStats::default(),
            trace_events: false,
            events: Vec::new(),
            event_clock: 0,
            faults: None,
            ckpt_every: None,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Statistics from the most recently finished batch.
    pub fn last_stats(&self) -> BatchStats {
        self.last_stats
    }

    /// Record structured lifecycle events ([`jade_core::events`]) for every
    /// subsequent batch. Events carry a logical sequence number as their
    /// time, so with one worker the stream is fully deterministic.
    pub fn enable_events(&mut self) {
        self.trace_events = true;
    }

    /// Drain the events recorded since the last call (or since
    /// [`enable_events`](Self::enable_events)).
    pub fn take_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    /// Enable deterministic fault injection for subsequent batches: each
    /// task attempt fails with probability `plan.panic_p` (a pure hash of
    /// the plan seed, task id and attempt number, independent of thread
    /// interleaving). An injected failure simulates the worker crashing
    /// *before* the task body runs: the unwind is caught, the task is
    /// quarantined off the failed worker and re-queued on the next one
    /// (`WorkerFailed` + `TaskReExecuted` events,
    /// [`BatchStats::recoveries`]). Because the body never started, the
    /// re-execution is exact — batch results are bit-identical to a
    /// fault-free run. Genuine application panics still propagate through
    /// [`ThreadRuntime::finish`]: a body that dies halfway may have
    /// partially mutated its objects, so retrying it would be unsound.
    ///
    /// # Panics
    ///
    /// If the plan is malformed (probability outside `[0, 1]`).
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        if let Err(why) = plan.validate() {
            panic!("invalid fault plan: {why}");
        }
        // The simulators interpret `ckpt=` as simulated seconds; this
        // backend has no simulated clock, so the numeric value maps to a
        // completed-task interval instead.
        if let Some(iv) = plan.checkpoint {
            self.checkpoint_every((iv.as_secs_f64().round() as usize).max(1));
        }
        self.faults = Some(plan);
    }

    /// Capture a synchronizer checkpoint every `every` completed tasks in
    /// subsequent batches (`CheckpointTaken` events,
    /// [`BatchStats::checkpoints`]). An injected-failure recovery that runs
    /// while a checkpoint exists consults it — the crashed task must not be
    /// committed in the captured state — and counts as a
    /// `CheckpointRestored`.
    ///
    /// # Panics
    ///
    /// If `every` is zero.
    pub fn checkpoint_every(&mut self, every: usize) {
        assert!(every > 0, "checkpoint interval must be at least one task");
        self.ckpt_every = Some(every);
    }

    fn target_worker(&self, def: &TaskDef) -> usize {
        let home = |o: ObjectId| self.store.home(o).unwrap_or(jade_core::MAIN_PROC);
        def.placement
            .or_else(|| def.spec.locality_object().map(home))
            .unwrap_or(jade_core::MAIN_PROC)
            % self.workers
    }
}

impl Default for ThreadRuntime {
    fn default() -> Self {
        // One worker per available core, matching how a user would deploy it.
        let n = std::thread::available_parallelism().map_or(4, |n| n.get());
        ThreadRuntime::new(n)
    }
}

impl JadeRuntime for ThreadRuntime {
    fn store(&self) -> &Store {
        &self.store
    }

    fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    fn submit(&mut self, def: TaskDef) -> TaskId {
        let id = TaskId(self.next_id);
        self.next_id += 1;
        self.pending.push((id, def));
        id
    }

    fn finish(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending);
        let n = batch.len();
        let mut shared = Shared {
            queues: vec![VecDeque::new(); self.workers],
            bodies: Vec::with_capacity(n),
            ids: Vec::with_capacity(n),
            targets: Vec::with_capacity(n),
            sync: std::mem::take(&mut self.sync),
            live: n,
            stats: BatchStats::default(),
            events: if self.trace_events {
                EventSink::recording()
            } else {
                EventSink::default()
            },
            clock: self.event_clock,
            panic: None,
            faults: self.faults,
            attempts: vec![0; n],
            ckpt_every: self.ckpt_every,
            since_ckpt: 0,
            last_ckpt: None,
        };
        // Register in serial program order; queue the initially-enabled.
        let base = batch[0].0.index();
        for (id, def) in batch {
            let local = id.index() - base;
            let target = self.target_worker(&def);
            let t = shared.tick();
            let enabled = shared
                .sync
                .add_task_traced(id, &def.spec, &mut shared.events, t, 0);
            shared.ids.push(id);
            shared.targets.push(target);
            shared.bodies.push(Some(def));
            if enabled {
                shared.queues[target].push_back(local);
            }
        }
        let shared = Mutex::new(shared);
        let cv = Condvar::new();
        let store = &self.store;
        let workers = self.workers;
        std::thread::scope(|scope| {
            for w in 0..workers {
                let shared = &shared;
                let cv = &cv;
                scope.spawn(move || worker_loop(w, workers, base, store, shared, cv));
            }
        });
        let mut sh = shared.into_inner().unwrap_or_else(|e| e.into_inner());
        self.sync = std::mem::take(&mut sh.sync);
        self.last_stats = sh.stats;
        self.event_clock = sh.clock;
        self.events.extend(sh.events.take());
        if let Some(p) = sh.panic.take() {
            resume_unwind(p);
        }
        assert_eq!(sh.live, 0, "worker pool exited with live tasks");
    }
}

fn worker_loop(
    w: usize,
    workers: usize,
    base: usize,
    store: &Store,
    shared: &Mutex<Shared>,
    cv: &Condvar,
) {
    let mut guard = lock(shared);
    loop {
        if guard.live == 0 || guard.panic.is_some() {
            cv.notify_all();
            return;
        }
        // Own queue first (front), then steal from the back of others.
        let mut picked = guard.queues[w].pop_front().map(|t| (t, false));
        if picked.is_none() {
            for k in 1..workers {
                let v = (w + k) % workers;
                if let Some(t) = guard.queues[v].pop_back() {
                    picked = Some((t, true));
                    break;
                }
            }
        }
        let Some((local, stolen)) = picked else {
            guard = cv.wait(guard).unwrap_or_else(|e| e.into_inner());
            continue;
        };
        let def = guard.bodies[local].take().expect("task queued twice");
        let id = guard.ids[local];
        let attempt = guard.attempts[local];
        let injected = guard
            .faults
            .as_ref()
            .is_some_and(|plan| plan.task_fails(id.0 as u64, attempt));
        guard.stats.executed += 1;
        if stolen {
            guard.stats.steals += 1;
        } else if guard.targets[local] == w {
            guard.stats.locality_hits += 1;
        }
        {
            // A task's own queue normally only holds tasks targeted at it —
            // but a recovered task is re-queued on the *next* worker, so the
            // locality of a non-stolen pick still has to be checked.
            let sh = &mut *guard;
            let t = sh.tick();
            let locality = if !stolen && sh.targets[local] == w {
                Locality::Hit
            } else {
                Locality::Miss
            };
            sh.events
                .emit_task(t, w, EventKind::TaskDispatched { stolen, locality }, id);
            sh.events.emit_task(t, w, EventKind::TaskStarted, id);
        }
        drop(guard);

        // The task body stays outside the closure (`TaskBody` is `Fn`), so
        // a caught unwind leaves `def` intact for re-execution.
        let result = catch_unwind(AssertUnwindSafe(|| {
            if injected {
                // Simulated worker crash before the body runs: unwind
                // quietly (no panic hook) — this is an injected fault, not
                // a bug worth a backtrace. Crashing *before* any body
                // effect is what makes the re-execution exact.
                resume_unwind(Box::new(InjectedFailure));
            }
            // Mid-task releases (Jade's pipelining statements) feed straight
            // back into the synchronizer so successors start immediately.
            let hook = |obj: ObjectId| {
                let mut g = lock(shared);
                let sh = &mut *g;
                let t = sh.tick();
                let mut newly = Vec::new();
                sh.sync
                    .release_traced(id, obj, &mut newly, &mut sh.events, t, w);
                for n in newly {
                    let local = n.index() - base;
                    let target = sh.targets[local];
                    sh.queues[target].push_back(local);
                }
                cv.notify_all();
            };
            let ctx = TaskCtx::with_release_hook(store, id, def.label, &def.spec, &hook);
            (def.body)(&ctx);
        }));

        guard = lock(shared);
        match result {
            Ok(()) => {
                let sh = &mut *guard;
                let t = sh.tick();
                let mut newly = Vec::new();
                sh.sync
                    .complete_traced(id, &mut newly, &mut sh.events, t, w);
                for n in newly {
                    let local = n.index() - base;
                    let target = sh.targets[local];
                    sh.queues[target].push_back(local);
                }
                sh.live -= 1;
                sh.since_ckpt += 1;
                // Interval checkpoint: capture the synchronizer state every
                // N completions (nothing left to protect once the batch is
                // drained). The count is interleaving-independent — it only
                // depends on how many tasks completed.
                if let Some(every) = sh.ckpt_every {
                    if sh.since_ckpt >= every && sh.live > 0 {
                        sh.since_ckpt = 0;
                        let snap = sh.sync.snapshot();
                        let bytes = snap.encoded_len() as u64;
                        let t = sh.tick();
                        sh.events.emit(t, w, EventKind::CheckpointTaken { bytes });
                        sh.stats.checkpoints += 1;
                        sh.last_ckpt = Some(snap);
                    }
                }
                cv.notify_all();
            }
            Err(_) if injected && attempt + 1 < MAX_TASK_ATTEMPTS => {
                // Recovery: quarantine the task off this (logically crashed)
                // worker and hand it to the next one; the bumped attempt
                // number re-rolls the fault hash. The execution/start
                // tallies above deliberately count the failed attempt — they
                // match the event stream's `tasks_started`.
                let sh = &mut *guard;
                sh.attempts[local] = attempt + 1;
                sh.stats.recoveries += 1;
                let t = sh.tick();
                sh.events.emit(t, w, EventKind::WorkerFailed);
                // With a checkpoint on file, recovery restores the crashed
                // task's scheduling state from it: the capture must agree
                // that the task had not committed (a committed task is
                // never re-executed).
                if let Some(snap) = &sh.last_ckpt {
                    debug_assert!(
                        !snap.completed(id),
                        "checkpoint marks crashed task {id:?} committed"
                    );
                    let bytes = snap.encoded_len() as u64;
                    sh.stats.checkpoint_restores += 1;
                    let t = sh.tick();
                    sh.events
                        .emit(t, w, EventKind::CheckpointRestored { bytes });
                }
                let t = sh.tick();
                sh.events.emit_task(t, w, EventKind::TaskReExecuted, id);
                sh.bodies[local] = Some(def);
                sh.queues[(w + 1) % workers].push_back(local);
                cv.notify_all();
            }
            Err(p) => {
                // Genuine application panic (or an exhausted retry budget):
                // first panic wins; wake everyone so the pool drains.
                if guard.panic.is_none() {
                    guard.panic = Some(p);
                }
                cv.notify_all();
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_core::TaskBuilder;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_simple_pipeline() {
        let mut rt = ThreadRuntime::new(4);
        let a = rt.create("a", 8, 1u64);
        let b = rt.create("b", 8, 0u64);
        let c = rt.create("c", 8, 0u64);
        rt.submit(TaskBuilder::new("double").rd(a).wr(b).body(move |ctx| {
            *ctx.wr(b) = *ctx.rd(a) * 2;
        }));
        rt.submit(TaskBuilder::new("inc").rd(b).wr(c).body(move |ctx| {
            *ctx.wr(c) = *ctx.rd(b) + 1;
        }));
        rt.finish();
        assert_eq!(*rt.store().read(c), 3);
        assert_eq!(rt.last_stats().executed, 2);
    }

    #[test]
    fn parallel_tasks_all_run() {
        let mut rt = ThreadRuntime::new(8);
        let outs: Vec<_> = (0..100)
            .map(|i| rt.create(&format!("o{i}"), 8, 0usize))
            .collect();
        for (i, &o) in outs.iter().enumerate() {
            rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                *ctx.wr(o) = i * i;
            }));
        }
        rt.finish();
        for (i, &o) in outs.iter().enumerate() {
            assert_eq!(*rt.store().read(o), i * i);
        }
        assert_eq!(rt.last_stats().executed, 100);
    }

    #[test]
    fn write_write_chain_is_ordered() {
        // The synchronizer must serialize writers in program order even
        // under real concurrency.
        let mut rt = ThreadRuntime::new(8);
        let v = rt.create("v", 0, Vec::<u32>::new());
        for i in 0..50u32 {
            rt.submit(TaskBuilder::new("push").wr(v).body(move |ctx| {
                ctx.wr(v).push(i);
            }));
        }
        rt.finish();
        assert_eq!(*rt.store().read(v), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_readers_run_in_parallel() {
        // All readers block until the barrier is full: requires them to be
        // truly concurrent (deadlocks if the runtime serializes reads).
        let workers = 4;
        let mut rt = ThreadRuntime::new(workers);
        let shared = rt.create("shared", 8, 7u64);
        let outs: Vec<_> = (0..workers)
            .map(|i| rt.create(&format!("o{i}"), 8, 0u64))
            .collect();
        let barrier = Arc::new(std::sync::Barrier::new(workers));
        for &o in &outs {
            let barrier = Arc::clone(&barrier);
            rt.submit(TaskBuilder::new("read").rd(shared).wr(o).body(move |ctx| {
                let x = *ctx.rd(shared);
                barrier.wait();
                *ctx.wr(o) = x;
            }));
        }
        rt.finish();
        for &o in &outs {
            assert_eq!(*rt.store().read(o), 7);
        }
    }

    #[test]
    fn reduction_after_parallel_phase() {
        let mut rt = ThreadRuntime::new(4);
        let parts: Vec<_> = (0..16)
            .map(|i| rt.create(&format!("p{i}"), 8, 0u64))
            .collect();
        let total = rt.create("total", 8, 0u64);
        for (i, &p) in parts.iter().enumerate() {
            rt.submit(TaskBuilder::new("part").wr(p).body(move |ctx| {
                *ctx.wr(p) = i as u64 + 1;
            }));
        }
        let parts2 = parts.clone();
        let mut red = TaskBuilder::new("reduce").wr(total);
        for &p in &parts {
            red = red.rd(p);
        }
        rt.submit(red.serial_phase().body(move |ctx| {
            *ctx.wr(total) = parts2.iter().map(|&p| *ctx.rd(p)).sum();
        }));
        rt.finish();
        assert_eq!(*rt.store().read(total), (1..=16).sum::<u64>());
    }

    #[test]
    fn multiple_batches_reuse_runtime() {
        let mut rt = ThreadRuntime::new(2);
        let x = rt.create("x", 8, 0u64);
        rt.submit(TaskBuilder::new("a").wr(x).body(move |ctx| *ctx.wr(x) += 1));
        rt.finish();
        rt.submit(
            TaskBuilder::new("b")
                .wr(x)
                .body(move |ctx| *ctx.wr(x) += 10),
        );
        rt.finish();
        assert_eq!(*rt.store().read(x), 11);
    }

    #[test]
    fn locality_heuristic_places_tasks() {
        let workers = 4;
        let mut rt = ThreadRuntime::new(workers);
        let objs: Vec<_> = (0..workers)
            .map(|i| {
                let h = rt.create(&format!("o{i}"), 8, 0u64);
                rt.set_home(h, i);
                h
            })
            .collect();
        // Long-ish tasks, one per worker: each should run on its target.
        for &o in &objs {
            rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                let mut acc = 0u64;
                for i in 0..200_000u64 {
                    acc = acc.wrapping_add(i);
                }
                *ctx.wr(o) = acc;
            }));
        }
        rt.finish();
        let s = rt.last_stats();
        assert_eq!(s.executed, workers);
        // Stealing is possible if a worker is slow to start, but every task
        // is either a locality hit or a steal.
        assert_eq!(s.locality_hits + s.steals, workers);
    }

    #[test]
    fn empty_finish_is_noop() {
        let mut rt = ThreadRuntime::new(2);
        rt.finish();
        assert_eq!(rt.last_stats(), BatchStats::default());
    }

    #[test]
    fn task_panic_propagates() {
        let mut rt = ThreadRuntime::new(2);
        let x = rt.create("x", 8, 0u64);
        rt.submit(
            TaskBuilder::new("boom")
                .wr(x)
                .body(|_| panic!("task exploded")),
        );
        let r = catch_unwind(AssertUnwindSafe(|| rt.finish()));
        assert!(r.is_err(), "panic must propagate to finish()");
    }

    #[test]
    fn undeclared_access_panics_in_parallel_too() {
        let mut rt = ThreadRuntime::new(2);
        let x = rt.create("x", 8, 0u64);
        let y = rt.create("y", 8, 0u64);
        rt.submit(TaskBuilder::new("sneaky").wr(x).body(move |ctx| {
            let _ = ctx.rd(y); // undeclared!
        }));
        let r = catch_unwind(AssertUnwindSafe(|| rt.finish()));
        assert!(r.is_err());
    }

    #[test]
    fn heavy_contention_stress() {
        // Many small tasks over few objects; exercises enable/steal paths.
        let mut rt = ThreadRuntime::new(8);
        let counters: Vec<_> = (0..4)
            .map(|i| rt.create(&format!("c{i}"), 8, 0u64))
            .collect();
        for i in 0..400 {
            let c = counters[i % 4];
            rt.submit(TaskBuilder::new("inc").rd_wr(c).body(move |ctx| {
                *ctx.wr(c) += 1;
            }));
        }
        rt.finish();
        for &c in &counters {
            assert_eq!(*rt.store().read(c), 100);
        }
    }

    #[test]
    fn mid_task_release_pipelines() {
        // A producer writes stage-1 data, releases it, then keeps working on
        // stage-2 data; the consumer of stage 1 runs concurrently. The
        // consumer signals through an atomic that the producer waits for —
        // this deadlocks unless release() really enables the consumer early.
        let mut rt = ThreadRuntime::new(2);
        let stage1 = rt.create("stage1", 8, 0u64);
        let stage2 = rt.create("stage2", 8, 0u64);
        let consumed = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&consumed);
        rt.submit(
            TaskBuilder::new("producer")
                .wr(stage1)
                .wr(stage2)
                .body(move |ctx| {
                    *ctx.wr(stage1) = 41;
                    ctx.release(stage1);
                    // Wait until the consumer has observed stage 1.
                    while c2.load(Ordering::SeqCst) == 0 {
                        std::thread::yield_now();
                    }
                    *ctx.wr(stage2) = 2;
                }),
        );
        let c3 = Arc::clone(&consumed);
        rt.submit(TaskBuilder::new("consumer").rd(stage1).body(move |ctx| {
            let v = *ctx.rd(stage1);
            c3.store(v as usize, Ordering::SeqCst);
        }));
        rt.finish();
        assert_eq!(consumed.load(Ordering::SeqCst), 41);
        assert_eq!(*rt.store().read(stage2), 2);
    }

    #[test]
    fn access_after_release_panics() {
        let mut rt = ThreadRuntime::new(2);
        let x = rt.create("x", 8, 0u64);
        rt.submit(TaskBuilder::new("bad").wr(x).body(move |ctx| {
            ctx.release(x);
            let _ = ctx.wr(x); // released!
        }));
        let r = catch_unwind(AssertUnwindSafe(|| rt.finish()));
        assert!(r.is_err());
    }

    #[test]
    fn events_reconstruct_batch_stats() {
        let mut rt = ThreadRuntime::new(4);
        rt.enable_events();
        let counters: Vec<_> = (0..4)
            .map(|i| rt.create(&format!("c{i}"), 8, 0u64))
            .collect();
        for i in 0..200 {
            let c = counters[i % 4];
            rt.submit(TaskBuilder::new("inc").rd_wr(c).body(move |ctx| {
                *ctx.wr(c) += 1;
            }));
        }
        rt.finish();
        let stats = rt.last_stats();
        let events = rt.take_events();
        jade_core::check_lifecycle(&events).unwrap();
        let m = jade_core::Metrics::from_events(&events, rt.workers());
        assert_eq!(m.tasks_created, 200);
        assert_eq!(m.tasks_started, stats.executed);
        assert_eq!(m.steals as usize, stats.steals);
        assert_eq!(m.locality_hits, stats.locality_hits);
        // A second take returns nothing until another batch runs.
        assert!(rt.take_events().is_empty());
    }

    #[test]
    fn events_record_mid_task_releases() {
        let mut rt = ThreadRuntime::new(2);
        rt.enable_events();
        let a = rt.create("a", 8, 0u64);
        let b = rt.create("b", 8, 0u64);
        rt.submit(TaskBuilder::new("producer").wr(a).wr(b).body(move |ctx| {
            *ctx.wr(a) = 1;
            ctx.release(a);
            *ctx.wr(b) = 2;
        }));
        rt.submit(TaskBuilder::new("consumer").rd(a).body(move |ctx| {
            let _ = *ctx.rd(a);
        }));
        rt.finish();
        let events = rt.take_events();
        jade_core::check_lifecycle(&events).unwrap();
        let m = jade_core::Metrics::from_events(&events, rt.workers());
        assert_eq!(m.releases, 1);
        assert_eq!(m.tasks_completed, 2);
    }

    #[test]
    fn events_disabled_by_default() {
        let mut rt = ThreadRuntime::new(2);
        let x = rt.create("x", 8, 0u64);
        rt.submit(TaskBuilder::new("a").wr(x).body(move |ctx| *ctx.wr(x) += 1));
        rt.finish();
        assert!(rt.take_events().is_empty());
    }

    #[test]
    fn injected_failures_recover_with_identical_results() {
        // panic_p = 0.3: plenty of injected crashes over 100 tasks, each
        // recovered by re-execution on the next worker. Results must be
        // bit-identical to the fault-free run.
        let mut rt = ThreadRuntime::new(4);
        rt.enable_events();
        rt.inject_faults(FaultPlan {
            panic_p: 0.3,
            seed: 42,
            ..FaultPlan::none()
        });
        let outs: Vec<_> = (0..100)
            .map(|i| rt.create(&format!("o{i}"), 8, 0usize))
            .collect();
        for (i, &o) in outs.iter().enumerate() {
            rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                *ctx.wr(o) = i * i;
            }));
        }
        rt.finish();
        for (i, &o) in outs.iter().enumerate() {
            assert_eq!(*rt.store().read(o), i * i);
        }
        let stats = rt.last_stats();
        assert!(stats.recoveries > 0, "p=0.3 over 100 tasks must inject");
        assert_eq!(stats.executed, 100 + stats.recoveries);
        let events = rt.take_events();
        jade_core::check_lifecycle(&events).unwrap();
        let m = jade_core::Metrics::from_events(&events, rt.workers());
        assert_eq!(m.tasks_reexecuted as usize, stats.recoveries);
        assert_eq!(m.workers_failed as usize, stats.recoveries);
        assert_eq!(m.tasks_started, stats.executed);
    }

    #[test]
    fn recovery_preserves_dependence_order() {
        // A write-write chain under heavy injection: recovery must not let
        // a successor run before its (re-executed) predecessor completes.
        let mut rt = ThreadRuntime::new(4);
        rt.inject_faults(FaultPlan {
            panic_p: 0.4,
            seed: 7,
            ..FaultPlan::none()
        });
        let v = rt.create("v", 0, Vec::<u32>::new());
        for i in 0..50u32 {
            rt.submit(TaskBuilder::new("push").wr(v).body(move |ctx| {
                ctx.wr(v).push(i);
            }));
        }
        rt.finish();
        assert_eq!(*rt.store().read(v), (0..50).collect::<Vec<_>>());
        assert!(rt.last_stats().recoveries > 0);
    }

    #[test]
    fn genuine_panic_propagates_even_with_recovery() {
        // Recovery only covers injected failures: a real application panic
        // may have left partial writes, so it must still surface.
        let mut rt = ThreadRuntime::new(2);
        rt.inject_faults(FaultPlan {
            panic_p: 0.0,
            seed: 1,
            ..FaultPlan::none()
        });
        let x = rt.create("x", 8, 0u64);
        rt.submit(
            TaskBuilder::new("boom")
                .wr(x)
                .body(|_| panic!("task exploded")),
        );
        let r = catch_unwind(AssertUnwindSafe(|| rt.finish()));
        assert!(r.is_err(), "application panic must propagate");
    }

    #[test]
    fn exhausted_retry_budget_propagates() {
        // panic_p = 1.0 fails every attempt; after the retry budget the
        // failure surfaces instead of looping forever.
        let mut rt = ThreadRuntime::new(2);
        rt.inject_faults(FaultPlan {
            panic_p: 1.0,
            seed: 3,
            ..FaultPlan::none()
        });
        let x = rt.create("x", 8, 0u64);
        rt.submit(TaskBuilder::new("w").wr(x).body(move |ctx| *ctx.wr(x) = 1));
        let r = catch_unwind(AssertUnwindSafe(|| rt.finish()));
        assert!(r.is_err(), "unwinnable plan must not hang");
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn invalid_fault_plan_rejected() {
        let mut rt = ThreadRuntime::new(2);
        rt.inject_faults(FaultPlan {
            panic_p: 2.0,
            ..FaultPlan::none()
        });
    }

    #[test]
    fn checkpoint_interval_captures_and_preserves_results() {
        let mut rt = ThreadRuntime::new(4);
        rt.enable_events();
        rt.checkpoint_every(10);
        let outs: Vec<_> = (0..100)
            .map(|i| rt.create(&format!("o{i}"), 8, 0usize))
            .collect();
        for (i, &o) in outs.iter().enumerate() {
            rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                *ctx.wr(o) = i + 1;
            }));
        }
        rt.finish();
        for (i, &o) in outs.iter().enumerate() {
            assert_eq!(*rt.store().read(o), i + 1);
        }
        let stats = rt.last_stats();
        // 100 completions / 10, minus the capture skipped on the final one.
        assert_eq!(stats.checkpoints, 9);
        let events = rt.take_events();
        jade_core::check_lifecycle(&events).unwrap();
        let m = jade_core::Metrics::from_events(&events, rt.workers());
        assert_eq!(m.checkpoints as usize, stats.checkpoints);
        assert!(m.checkpoint_bytes > 0, "captures must report their size");
    }

    #[test]
    fn checkpointed_recovery_restores_and_stays_bit_identical() {
        // Faults + checkpoints together: recoveries that happen after the
        // first capture consult it, and results stay bit-identical.
        let mut rt = ThreadRuntime::new(4);
        rt.enable_events();
        rt.inject_faults(FaultPlan {
            panic_p: 0.3,
            seed: 42,
            ..FaultPlan::none()
        });
        rt.checkpoint_every(5);
        let outs: Vec<_> = (0..100)
            .map(|i| rt.create(&format!("o{i}"), 8, 0usize))
            .collect();
        for (i, &o) in outs.iter().enumerate() {
            rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                *ctx.wr(o) = i * i;
            }));
        }
        rt.finish();
        for (i, &o) in outs.iter().enumerate() {
            assert_eq!(*rt.store().read(o), i * i);
        }
        let stats = rt.last_stats();
        assert!(stats.recoveries > 0, "p=0.3 over 100 tasks must inject");
        assert!(stats.checkpoints > 0);
        assert!(
            stats.checkpoint_restores <= stats.recoveries,
            "only recoveries can restore"
        );
        let events = rt.take_events();
        jade_core::check_lifecycle(&events).unwrap();
        let m = jade_core::Metrics::from_events(&events, rt.workers());
        assert_eq!(m.checkpoints as usize, stats.checkpoints);
        assert_eq!(m.checkpoint_restores as usize, stats.checkpoint_restores);
        assert_eq!(m.tasks_reexecuted as usize, stats.recoveries);
    }

    #[test]
    fn fault_plan_checkpoint_maps_to_task_count() {
        // `ckpt=3` on the threads backend means "every 3 completed tasks".
        let mut rt = ThreadRuntime::new(2);
        rt.inject_faults(FaultPlan::parse("ckpt=3").unwrap());
        let outs: Vec<_> = (0..10)
            .map(|i| rt.create(&format!("o{i}"), 8, 0usize))
            .collect();
        for &o in &outs {
            rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                *ctx.wr(o) = 1;
            }));
        }
        rt.finish();
        assert_eq!(rt.last_stats().checkpoints, 3);
    }

    #[test]
    #[should_panic(expected = "checkpoint interval")]
    fn zero_checkpoint_interval_rejected() {
        let mut rt = ThreadRuntime::new(2);
        rt.checkpoint_every(0);
    }

    #[test]
    fn single_worker_degenerates_to_serial() {
        let mut rt = ThreadRuntime::new(1);
        let order = Arc::new(AtomicUsize::new(0));
        let outs: Vec<_> = (0..10)
            .map(|i| rt.create(&format!("o{i}"), 8, 0usize))
            .collect();
        for &o in &outs {
            let order = Arc::clone(&order);
            rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                *ctx.wr(o) = order.fetch_add(1, Ordering::SeqCst);
            }));
        }
        rt.finish();
        // With one worker, tasks run in program order.
        for (i, &o) in outs.iter().enumerate() {
            assert_eq!(*rt.store().read(o), i);
        }
    }
}
