//! Work-stealing queues for the sharded scheduler: the seed
//! `Mutex<VecDeque>` implementation and a vendored lock-free Chase-Lev
//! deque, selectable per runtime via [`DequeImpl`].
//!
//! This module is the **only** place in the workspace's library crates
//! where `unsafe` appears (the crate root is `#![deny(unsafe_code)]`; this
//! module opts back in). The full safety argument lives in DESIGN.md §18;
//! the load-bearing facts are inlined next to each `unsafe` block.
//!
//! # The Chase-Lev deque, in brief
//!
//! One *owner* thread pushes and pops at the **bottom** of a growable ring
//! buffer; any number of *thief* threads steal from the **top**. `top` only
//! ever moves forward via compare-and-swap, `bottom` is written only by the
//! owner. The memory orderings follow Lê, Pop, Cohen & Nardelli,
//! "Correct and Efficient Work-Stealing for Weak Memory Models" (PPoPP'13),
//! which proved the C11 orderings used here.
//!
//! Two Rust-specific choices remove most of the classical `unsafe` surface:
//!
//! * **Slots are `AtomicUsize`.** Elements are batch-local task indices
//!   (`usize`), so every slot read/write is a relaxed atomic access — the
//!   benign data race of the classical implementation (a thief reading a
//!   slot the owner concurrently overwrites, discarded by the failing CAS)
//!   is well-defined here instead of UB, and a torn read is impossible.
//! * **Retired rings are kept until drop.** Growth allocates a new ring and
//!   publishes it with a release store; the old ring is *not* freed — every
//!   ring ever allocated is owned by the `rings` graveyard and deallocated
//!   only in `Drop`, which takes `&mut self` and therefore cannot race any
//!   reader. A thief holding a stale ring pointer reads stale-but-owned
//!   memory, and its stale value is discarded by the `top` CAS.
//!
//! The remaining `unsafe` is exactly the dereference of the published ring
//! pointer.
//!
//! # Remote pushes: the inject inbox
//!
//! Chase-Lev bottom operations are owner-only, but the scheduler pushes
//! work onto *other* workers' queues (locality routing, recovery
//! re-queueing). [`TaskQueue`] pairs each Chase-Lev deque with a small
//! locked **inbox**: remote pushes append there, the owner drains it into
//! its deque when the deque runs dry, and thieves may also steal directly
//! from a victim's inbox (so work parked in an inbox whose owner never goes
//! idle — e.g. it is spinning inside a long task — is still reachable and
//! the scheduler cannot deadlock). The inbox is locked, but it is off the
//! owner's fast path: equilibrium dispatch on the owning worker never
//! touches it.

#![allow(unsafe_code)]

use crate::lock;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicIsize, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which per-worker ready-queue implementation the sharded scheduler uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DequeImpl {
    /// The seed implementation: a `Mutex<VecDeque>` per worker with an
    /// atomic length hint. Owner pops the front (FIFO program order),
    /// thieves pop the back.
    #[default]
    Locked,
    /// The vendored lock-free Chase-Lev deque (owner LIFO at the bottom,
    /// thieves CAS-steal at the top) plus a locked inject inbox for remote
    /// pushes. Owner-side push/pop take no lock at all.
    ChaseLev,
}

impl DequeImpl {
    /// Stable lowercase name used in bench output and sweeps.
    pub fn name(self) -> &'static str {
        match self {
            DequeImpl::Locked => "locked",
            DequeImpl::ChaseLev => "chase-lev",
        }
    }
}

/// A power-of-two ring of atomic slots. Indexed by the *unwrapped*
/// monotone top/bottom counters; the mask wraps them.
struct Ring {
    mask: usize,
    slots: Box<[AtomicUsize]>,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        debug_assert!(capacity.is_power_of_two());
        Ring {
            mask: capacity - 1,
            slots: (0..capacity).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Relaxed slot read. Ordering is carried by `top`/`bottom`, never by
    /// the slot itself (LBCN §3); relaxed atomics make the classical
    /// "benign race" well-defined instead of UB.
    fn get(&self, i: isize) -> usize {
        self.slots[i as usize & self.mask].load(Ordering::Relaxed)
    }

    fn put(&self, i: isize, v: usize) {
        self.slots[i as usize & self.mask].store(v, Ordering::Relaxed);
    }
}

/// The vendored Chase-Lev deque over `usize` elements. Owner-only
/// `push`/`pop` at the bottom; any thread may `steal` from the top.
pub(crate) struct ChaseLev {
    /// Next index a thief will steal. Monotone non-decreasing; advanced
    /// only by successful CAS, so an observed value can never recur — the
    /// classical ABA hazard structurally cannot arise (and at one index per
    /// task ever queued, a 64-bit counter cannot overflow in practice).
    top: AtomicIsize,
    /// Next index the owner will push. Written only by the owner.
    bottom: AtomicIsize,
    /// The current ring, always pointing into one of the `Box<Ring>`s owned
    /// by `rings` below. Swapped (release) by the owner on growth.
    ring: AtomicPtr<Ring>,
    /// Owns every ring ever allocated, the current one included. Rings are
    /// deallocated only when the deque itself drops, so any pointer loaded
    /// from `ring` — however stale — refers to live memory for the whole
    /// lifetime of `&self`. Locked only on growth (never on the hot path).
    /// The `Box` is load-bearing: `ring` holds raw pointers into these
    /// allocations, which must not move when the graveyard `Vec` grows.
    #[allow(clippy::vec_box)]
    rings: Mutex<Vec<Box<Ring>>>,
}

impl ChaseLev {
    pub(crate) fn with_capacity(capacity: usize) -> ChaseLev {
        let cap = capacity.max(4).next_power_of_two();
        let first = Box::new(Ring::new(cap));
        let ptr: *mut Ring = Box::as_ref(&first) as *const Ring as *mut Ring;
        ChaseLev {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            ring: AtomicPtr::new(ptr),
            rings: Mutex::new(vec![first]),
        }
    }

    /// Owner: push `v` at the bottom.
    pub(crate) fn push(&self, v: usize) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        // SAFETY: every ring ever published is owned by `self.rings` and
        // freed only in `Drop` (`&mut self`), so the pointer is valid.
        // Relaxed is enough here: only the owner swaps the pointer, and we
        // are the owner.
        let mut ring = unsafe { &*self.ring.load(Ordering::Relaxed) };
        if b - t >= ring.capacity() as isize {
            ring = self.grow(b, t, ring);
        }
        ring.put(b, v);
        // Release: a thief acquiring `bottom` sees the slot write above.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner: pop from the bottom (LIFO). Returns `None` when empty.
    pub(crate) fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        // SAFETY: as in `push` — rings live until `Drop`.
        let ring = unsafe { &*self.ring.load(Ordering::Relaxed) };
        self.bottom.store(b, Ordering::Relaxed);
        // The SeqCst fence orders the `bottom` decrement against the `top`
        // read: either a racing thief sees the reservation, or we see its
        // advanced `top` (LBCN's single required fence on the pop path).
        std::sync::atomic::fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: undo the reservation.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let v = ring.get(b);
        if t == b {
            // Last element: race the thieves for it via the `top` CAS.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(v);
        }
        Some(v)
    }

    /// Thief: steal from the top. Returns `None` when empty or when the
    /// steal raced another thief/the owner and lost (the caller treats both
    /// as "try elsewhere").
    pub(crate) fn steal(&self) -> Option<usize> {
        let t = self.top.load(Ordering::Acquire);
        // Order the `top` read before the `bottom` read (LBCN steal path).
        std::sync::atomic::fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return None;
        }
        // SAFETY: rings live until `Drop`. Acquire pairs with the owner's
        // release swap on growth, so a ring published before the observed
        // `bottom` is fully initialized. A *stale* ring is still valid
        // memory (graveyard), and its slot `t` holds the same value the
        // current ring holds at `t`: growth copies `top..bottom`, and the
        // owner never overwrites slot `t & mask` while `t` is live — a push
        // at `b` with `b - t < capacity` cannot alias it, and growth
        // retires the old ring before `b - t` reaches capacity.
        let ring = unsafe { &*self.ring.load(Ordering::Acquire) };
        let v = ring.get(t);
        // SeqCst CAS: succeeds only if no other steal/pop consumed index
        // `t` first, which also validates the speculative slot read above.
        self.top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
            .then_some(v)
    }

    /// Approximate occupancy, for the pickers' skip-empty-queues hint.
    pub(crate) fn len_hint(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Owner: double the ring (from `capacity` to at least `2 * capacity`),
    /// copy the live range `t..b`, publish the new ring, and retire the old
    /// one to the graveyard.
    fn grow(&self, b: isize, t: isize, old: &Ring) -> &Ring {
        let bigger = Box::new(Ring::new(old.capacity() * 2));
        for i in t..b {
            bigger.put(i, old.get(i));
        }
        let ptr: *mut Ring = Box::as_ref(&bigger) as *const Ring as *mut Ring;
        // Keep the new ring alive in the graveyard *before* publishing it.
        lock(&self.rings).push(bigger);
        // Release: thieves that acquire this pointer see the copied slots.
        self.ring.store(ptr, Ordering::Release);
        // SAFETY: `ptr` points into the `Box<Ring>` just moved into
        // `self.rings` (moving a `Box` moves the pointer, not the heap
        // allocation), which outlives `&self`.
        unsafe { &*ptr }
    }

    /// Owner-or-exclusive: pre-size so `n` pushes cannot grow. With `&mut`
    /// there are no concurrent readers, so old rings really are garbage and
    /// the graveyard can be emptied. Returns `true` if it (re)allocated.
    pub(crate) fn reserve(&mut self, n: usize) -> bool {
        debug_assert_eq!(self.len_hint(), 0, "reserve on a non-empty deque");
        let cap = unsafe { &*self.ring.load(Ordering::Relaxed) }.capacity();
        if cap >= n {
            return false;
        }
        *self = ChaseLev::with_capacity(n);
        true
    }
}

/// One worker's ready queue: either the seed locked deque or Chase-Lev plus
/// its inject inbox. The scheduler talks only to this wrapper.
pub(crate) enum TaskQueue {
    Locked {
        jobs: Mutex<VecDeque<usize>>,
        /// Length hint maintained under the lock so pickers can skip empty
        /// queues without touching the mutex.
        len: AtomicUsize,
    },
    ChaseLev {
        deque: ChaseLev,
        /// Remote pushes land here (bottom ops are owner-only); drained by
        /// the owner when its deque runs dry, stealable by thieves.
        inbox: Mutex<Vec<usize>>,
        inbox_len: AtomicUsize,
    },
}

impl TaskQueue {
    pub(crate) fn new(which: DequeImpl, capacity: usize) -> TaskQueue {
        match which {
            DequeImpl::Locked => TaskQueue::Locked {
                jobs: Mutex::new(VecDeque::with_capacity(capacity)),
                len: AtomicUsize::new(0),
            },
            DequeImpl::ChaseLev => TaskQueue::ChaseLev {
                deque: ChaseLev::with_capacity(capacity),
                inbox: Mutex::new(Vec::with_capacity(capacity)),
                inbox_len: AtomicUsize::new(0),
            },
        }
    }

    pub(crate) fn kind(&self) -> DequeImpl {
        match self {
            TaskQueue::Locked { .. } => DequeImpl::Locked,
            TaskQueue::ChaseLev { .. } => DequeImpl::ChaseLev,
        }
    }

    /// Push `local` onto this queue. `owner` is true when the calling
    /// thread is this queue's worker *or* no worker threads are running yet
    /// (batch setup happens-before the spawn of every worker, so the
    /// owner-only bottom push is safe from the setup thread too).
    pub(crate) fn push(&self, local: usize, owner: bool) {
        match self {
            TaskQueue::Locked { jobs, len } => {
                let mut jobs = lock(jobs);
                jobs.push_back(local);
                len.store(jobs.len(), Ordering::Release);
            }
            TaskQueue::ChaseLev {
                deque,
                inbox,
                inbox_len,
            } => {
                if owner {
                    deque.push(local);
                } else {
                    let mut inbox = lock(inbox);
                    inbox.push(local);
                    inbox_len.store(inbox.len(), Ordering::Release);
                }
            }
        }
    }

    /// Owner-side pick. Locked pops the front (FIFO); Chase-Lev pops the
    /// bottom (LIFO), falling back to draining the inject inbox. Execution
    /// order is a scheduling freedom either way: the synchronizer enforces
    /// every dependence ordering, so only enabled tasks are ever queued.
    pub(crate) fn pop(&self) -> Option<usize> {
        match self {
            TaskQueue::Locked { jobs, len } => {
                let mut jobs = lock(jobs);
                let picked = jobs.pop_front();
                if picked.is_some() {
                    len.store(jobs.len(), Ordering::Release);
                }
                picked
            }
            TaskQueue::ChaseLev {
                deque,
                inbox,
                inbox_len,
            } => deque.pop().or_else(|| {
                // Deque dry: adopt everything parked in the inbox, then
                // retry. The pop takes the most recently adopted entry;
                // FIFO-vs-LIFO here is again a pure scheduling freedom.
                let mut inbox = lock(inbox);
                if inbox.is_empty() {
                    return None;
                }
                for v in inbox.drain(..) {
                    deque.push(v);
                }
                inbox_len.store(0, Ordering::Release);
                drop(inbox);
                deque.pop()
            }),
        }
    }

    /// Thief-side pick from another worker's queue. For Chase-Lev the
    /// victim's inbox is also fair game — without that, work injected onto
    /// a worker that never goes idle (it may be spinning inside a task)
    /// would be unreachable and the scheduler could deadlock.
    pub(crate) fn steal(&self) -> Option<usize> {
        match self {
            TaskQueue::Locked { jobs, len } => {
                let mut jobs = lock(jobs);
                let picked = jobs.pop_back();
                if picked.is_some() {
                    len.store(jobs.len(), Ordering::Release);
                }
                picked
            }
            TaskQueue::ChaseLev {
                deque,
                inbox,
                inbox_len,
            } => deque.steal().or_else(|| {
                if inbox_len.load(Ordering::Acquire) == 0 {
                    return None;
                }
                let mut inbox = lock(inbox);
                let picked = inbox.pop();
                inbox_len.store(inbox.len(), Ordering::Release);
                picked
            }),
        }
    }

    /// True when a scan may skip this queue without locking anything. A
    /// racing push can make the hint stale — exactly as with the seed
    /// queue's length hint — and the epoch-parking protocol covers that
    /// window.
    pub(crate) fn is_empty_hint(&self) -> bool {
        match self {
            TaskQueue::Locked { len, .. } => len.load(Ordering::Acquire) == 0,
            TaskQueue::ChaseLev {
                deque, inbox_len, ..
            } => deque.len_hint() == 0 && inbox_len.load(Ordering::Acquire) == 0,
        }
    }

    /// Exclusive-access reset for arena reuse between batches: drop any
    /// leftovers (an aborted batch may leave entries) and pre-size for `n`
    /// pushes. Returns `true` if storage had to be (re)allocated.
    pub(crate) fn reset(&mut self, n: usize) -> bool {
        match self {
            TaskQueue::Locked { jobs, len } => {
                let jobs = jobs.get_mut().unwrap_or_else(|e| e.into_inner());
                jobs.clear();
                *len.get_mut() = 0;
                let grew = jobs.capacity() < n;
                if grew {
                    // `reserve` is relative to `len` (0 after the clear).
                    jobs.reserve(n);
                }
                grew
            }
            TaskQueue::ChaseLev {
                deque,
                inbox,
                inbox_len,
            } => {
                // Drain leftovers so top == bottom before reserving.
                while deque.pop().is_some() {}
                let inbox = inbox.get_mut().unwrap_or_else(|e| e.into_inner());
                inbox.clear();
                *inbox_len.get_mut() = 0;
                let mut grew = deque.reserve(n);
                if inbox.capacity() < n {
                    inbox.reserve(n);
                    grew = true;
                }
                grew
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn owner_push_pop_is_lifo() {
        let d = ChaseLev::with_capacity(4);
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
        assert_eq!(d.pop(), None, "empty pop is idempotent");
    }

    #[test]
    fn steal_takes_oldest() {
        let d = ChaseLev::with_capacity(4);
        d.push(10);
        d.push(20);
        assert_eq!(d.steal(), Some(10));
        assert_eq!(d.pop(), Some(20));
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn growth_preserves_contents_and_order() {
        let d = ChaseLev::with_capacity(4);
        for i in 0..100 {
            d.push(i);
        }
        // Steal half from the top (oldest first), pop half from the bottom.
        for i in 0..50 {
            assert_eq!(d.steal(), Some(i));
        }
        for i in (50..100).rev() {
            assert_eq!(d.pop(), Some(i));
        }
        assert_eq!(d.len_hint(), 0);
    }

    #[test]
    fn wrapped_indices_stay_correct() {
        // Drive top/bottom far past the ring size so the mask wraps.
        let d = ChaseLev::with_capacity(4);
        for round in 0..1000usize {
            d.push(round);
            d.push(round + 1_000_000);
            assert_eq!(d.pop(), Some(round + 1_000_000));
            assert_eq!(d.steal(), Some(round));
        }
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn reserve_prevents_growth() {
        let mut d = ChaseLev::with_capacity(4);
        assert!(d.reserve(1000));
        assert!(!d.reserve(1000), "second reserve is a no-op");
        let before = lock(&d.rings).len();
        for i in 0..1000 {
            d.push(i);
        }
        assert_eq!(lock(&d.rings).len(), before, "no growth after reserve");
    }

    #[test]
    fn concurrent_steal_loses_nothing_and_duplicates_nothing() {
        // One owner pushes and pops; several thieves steal. Every pushed
        // value must be consumed exactly once.
        const N: usize = 20_000;
        const THIEVES: usize = 3;
        let d = Arc::new(ChaseLev::with_capacity(64));
        let done = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..THIEVES {
            let d = Arc::clone(&d);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while !done.load(Ordering::Acquire) || d.len_hint() > 0 {
                    if let Some(v) = d.steal() {
                        got.push(v);
                    } else {
                        std::hint::spin_loop();
                    }
                }
                got
            }));
        }
        let mut owner_got = Vec::new();
        for i in 0..N {
            d.push(i + 1);
            if i % 3 == 0 {
                if let Some(v) = d.pop() {
                    owner_got.push(v);
                }
            }
        }
        while let Some(v) = d.pop() {
            owner_got.push(v);
        }
        done.store(true, Ordering::Release);
        let mut all = owner_got;
        for h in handles {
            all.extend(h.join().unwrap());
        }
        all.sort_unstable();
        assert_eq!(all.len(), N, "every element consumed exactly once");
        assert_eq!(all, (1..=N).collect::<Vec<_>>());
    }

    #[test]
    fn task_queue_locked_is_fifo_for_owner_and_steals_back() {
        let q = TaskQueue::new(DequeImpl::Locked, 8);
        assert!(q.is_empty_hint());
        q.push(1, true);
        q.push(2, false); // pusher identity is irrelevant for Locked
        q.push(3, true);
        assert!(!q.is_empty_hint());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.steal(), Some(3));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty_hint());
    }

    #[test]
    fn task_queue_chase_lev_routes_remote_pushes_through_inbox() {
        let q = TaskQueue::new(DequeImpl::ChaseLev, 8);
        q.push(1, false);
        q.push(2, false);
        assert!(!q.is_empty_hint(), "inbox contents count toward the hint");
        // Owner adopts the inbox when its deque is dry.
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert_eq!(q.pop(), None);
        // Thieves can reach a victim's inbox directly.
        q.push(7, false);
        assert_eq!(q.steal(), Some(7));
        assert_eq!(q.steal(), None);
    }

    #[test]
    fn task_queue_reset_reuses_and_reports_growth() {
        for which in [DequeImpl::Locked, DequeImpl::ChaseLev] {
            let mut q = TaskQueue::new(which, 16);
            assert_eq!(q.kind(), which);
            q.push(1, true);
            q.push(2, false);
            assert!(!q.reset(8), "{which:?}: shrink-fit reset must not grow");
            assert!(q.is_empty_hint(), "{which:?}: reset drains leftovers");
            assert_eq!(q.pop(), None);
            assert!(q.reset(4096), "{which:?}: bigger batch must grow");
            assert!(!q.reset(4096), "{which:?}: same-shape reset reuses");
        }
    }
}
