//! # dsim — deterministic discrete-event simulation substrate
//!
//! The SC'95 evaluation ran on two machines we obviously cannot buy: the
//! Stanford DASH prototype and an Intel iPSC/860 hypercube. This crate is the
//! substitute substrate: a deterministic discrete-event core (virtual
//! [`SimTime`], an event [`Calendar`] with FIFO tie-breaking, per-processor
//! occupancy tracking) plus cost models for both machines built from the
//! latency and bandwidth constants the paper itself publishes in its
//! appendices.
//!
//! The Jade machine runtimes (`jade-dash`, `jade-ipsc`) drive their
//! scheduling and communication algorithms on top of this substrate; every
//! number they report is a function of virtual time only, so experiments are
//! exactly reproducible.
//!
//! ```
//! use dsim::{Calendar, SimTime, SimDuration, ProcClock, TimeKind};
//!
//! #[derive(Debug)]
//! enum Ev { Tick(u32) }
//!
//! let mut cal = Calendar::new();
//! let mut procs = ProcClock::new(2);
//! cal.schedule(SimTime::ZERO, Ev::Tick(0));
//! while let Some((t, Ev::Tick(n))) = cal.pop() {
//!     let done = procs.occupy(0, t, SimDuration::from_secs_f64(0.5), TimeKind::App);
//!     if n < 3 { cal.schedule(done, Ev::Tick(n + 1)); }
//! }
//! assert_eq!(procs.horizon(), SimTime::from_secs_f64(2.0));
//! ```

#![forbid(unsafe_code)]

mod calendar;
mod fault;
mod machine;
mod proc;
mod stats;
mod time;

pub use calendar::Calendar;
pub use fault::{FaultInjector, FaultPlan, MessageFate};
pub use machine::{hypercube_dimension, DashHit, DashSpec, IpscSpec, ProcId};
pub use proc::{ProcClock, ProcUsage, TimeKind};
pub use stats::{percent, ratio, Accum};
pub use time::{SimBudget, SimDuration, SimTime, PS_PER_SEC};
