//! Small statistics helpers shared by the machine runtimes and the
//! experiment harness.

use crate::time::SimDuration;

/// Online accumulator of a scalar series (count / sum / min / max / mean).
#[derive(Clone, Debug, Default)]
pub struct Accum {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Accum {
    pub fn new() -> Accum {
        Accum {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn add(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    pub fn add_duration(&mut self, d: SimDuration) {
        self.add(d.as_secs_f64());
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A ratio expressed as `numerator / denominator`, safe for zero denominators.
pub fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Percentage helper: `100 * part / whole` (0 when `whole` is 0).
pub fn percent(part: f64, whole: f64) -> f64 {
    100.0 * ratio(part, whole)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accum_basics() {
        let mut a = Accum::new();
        assert_eq!(a.mean(), 0.0);
        a.add(1.0);
        a.add(3.0);
        assert_eq!(a.count, 2);
        assert_eq!(a.sum, 4.0);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 3.0);
        assert_eq!(a.mean(), 2.0);
    }

    #[test]
    fn ratios() {
        assert_eq!(ratio(1.0, 0.0), 0.0);
        assert_eq!(percent(1.0, 4.0), 25.0);
        assert_eq!(percent(3.0, 0.0), 0.0);
    }
}
