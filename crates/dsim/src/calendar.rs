//! The event calendar: a deterministic priority queue of timestamped events.
//!
//! Determinism matters: the paper's experiments must be exactly reproducible
//! from run to run, so ties in virtual time are broken by insertion order
//! (FIFO). The calendar owns the virtual clock; popping an event advances it.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, on ties, the
        // first-inserted) entry is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event calendar.
///
/// ```
/// use dsim::{Calendar, SimTime, SimDuration};
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::from_secs_f64(2.0), "late");
/// cal.schedule(SimTime::from_secs_f64(1.0), "early");
/// let (t, ev) = cal.pop().unwrap();
/// assert_eq!(ev, "early");
/// assert_eq!(cal.now(), t);
/// ```
pub struct Calendar<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current virtual time: the timestamp of the most recently popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Panics if `at` is in the past — scheduling backwards in time would
    /// violate causality and silently corrupt every downstream measurement.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={:?} now={:?}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedule `event` at the current virtual time (runs after every event
    /// already queued for `now`).
    pub fn schedule_now(&mut self, event: E) {
        let now = self.now;
        self.schedule(now, event);
    }

    /// Pop the earliest event and advance the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.now);
        self.now = e.at;
        Some((e.at, e.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Total number of events ever scheduled (a cheap progress metric and a
    /// guard against runaway simulations in tests).
    pub fn scheduled_count(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime(30), 3);
        cal.schedule(SimTime(10), 1);
        cal.schedule(SimTime(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut cal = Calendar::new();
        for i in 0..100 {
            cal.schedule(SimTime(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime(10), ());
        cal.schedule(SimTime(25), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime(10));
        cal.pop();
        assert_eq!(cal.now(), SimTime(25));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime(10), ());
        cal.pop();
        cal.schedule(SimTime(5), ());
    }

    #[test]
    fn schedule_now_runs_after_existing_now_events() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime(10), 1);
        cal.schedule(SimTime(10), 2);
        let (_, first) = cal.pop().unwrap();
        assert_eq!(first, 1);
        cal.schedule_now(3);
        assert_eq!(cal.pop().unwrap().1, 2);
        assert_eq!(cal.pop().unwrap().1, 3);
    }

    #[test]
    fn interleaved_scheduling_stays_deterministic() {
        // Schedule events from within the drain loop: the kind of pattern the
        // machine runtimes use. The result must be a fixed sequence.
        let mut cal = Calendar::new();
        cal.schedule(SimTime(0), 0u64);
        let mut seen = Vec::new();
        while let Some((t, e)) = cal.pop() {
            seen.push(e);
            if e < 5 {
                cal.schedule(t + SimDuration(1), e + 10);
                cal.schedule(t + SimDuration(1), e + 1);
            }
        }
        assert_eq!(seen, vec![0, 10, 1, 11, 2, 12, 3, 13, 4, 14, 5]);
    }
}
