//! Machine descriptions and communication cost models.
//!
//! The constants come straight from the appendices of Rinard, SC'95:
//!
//! * **Stanford DASH** (Appendix B): 33 MHz R3000 processors grouped four to
//!   a cluster; 16-byte coherence lines; read latencies of 1 cycle (L1),
//!   15 cycles (L2), 29 cycles (another cache in the cluster), 101 cycles
//!   (clean in a remote home cluster) and 132 cycles (dirty in a third
//!   cluster).
//! * **Intel iPSC/860** (Appendix A): 40 MHz i860 nodes on a circuit-switched
//!   hypercube, 2.8 MB/s per link, 47 µs minimum short-message time.

use crate::time::SimDuration;

/// A processor index within a machine.
pub type ProcId = usize;

/// Where a DASH read hit, ordered from cheapest to most expensive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DashHit {
    /// Satisfied by the requesting processor's own cache.
    OwnCache,
    /// Satisfied by memory or another cache inside the local cluster.
    LocalCluster,
    /// Clean copy fetched from the home cluster's memory.
    RemoteClean,
    /// Dirty copy forwarded from a third cluster.
    RemoteDirty,
}

/// Static description of a DASH-like cache-coherent NUMA machine.
#[derive(Clone, Debug)]
pub struct DashSpec {
    /// Total number of processors used by the computation.
    pub procs: usize,
    /// Processors per bus-based cluster (4 on the real machine).
    pub cluster_size: usize,
    /// Processor clock in Hz.
    pub clock_hz: u64,
    /// Coherence line size in bytes.
    pub line_bytes: usize,
    /// Cycles for a read satisfied in the local cluster (second-level cache
    /// or another processor's cache on the same bus).
    pub local_cycles: u64,
    /// Cycles for a clean remote read.
    pub remote_clean_cycles: u64,
    /// Cycles for a dirty remote read (three-hop).
    pub remote_dirty_cycles: u64,
    /// Per-line cycles for the *streamed* portion of a coalesced remote
    /// transfer (inspector/executor aggregation, DESIGN.md §15). Once one
    /// remote access has opened the path to a home cluster, further lines
    /// bound for the same requester pipeline behind it at roughly the
    /// cluster-bus occupancy instead of paying the full request/reply
    /// round trip per line.
    pub agg_streamed_cycles: u64,
}

impl DashSpec {
    /// The 32-processor configuration used in the paper's experiments.
    pub fn paper(procs: usize) -> DashSpec {
        DashSpec {
            procs,
            cluster_size: 4,
            clock_hz: 33_333_333,
            line_bytes: 16,
            local_cycles: 29,
            remote_clean_cycles: 101,
            remote_dirty_cycles: 132,
            agg_streamed_cycles: 45,
        }
    }

    /// Cluster that processor `p` belongs to.
    #[inline]
    pub fn cluster_of(&self, p: ProcId) -> usize {
        p / self.cluster_size
    }

    /// Number of clusters in use.
    pub fn clusters(&self) -> usize {
        self.procs.div_ceil(self.cluster_size)
    }

    /// Number of coherence lines occupied by an object of `bytes` bytes.
    #[inline]
    pub fn lines(&self, bytes: usize) -> u64 {
        (bytes.div_ceil(self.line_bytes)).max(1) as u64
    }

    /// Time to move `bytes` of shared data at the given hit level.
    ///
    /// `OwnCache` costs nothing *extra*: the baseline per-task compute cost
    /// already includes cache-resident accesses.
    pub fn transfer_time(&self, bytes: usize, hit: DashHit) -> SimDuration {
        let cycles_per_line = match hit {
            DashHit::OwnCache => return SimDuration::ZERO,
            DashHit::LocalCluster => self.local_cycles,
            DashHit::RemoteClean => self.remote_clean_cycles,
            DashHit::RemoteDirty => self.remote_dirty_cycles,
        };
        SimDuration::from_cycles(self.lines(bytes) * cycles_per_line, self.clock_hz)
    }

    /// Time to move `bytes` as the streamed tail of a coalesced remote
    /// transfer: the full round-trip latency was already paid by the
    /// bundle's first remote access, so these lines cost only
    /// [`Self::agg_streamed_cycles`] each.
    pub fn streamed_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_cycles(self.lines(bytes) * self.agg_streamed_cycles, self.clock_hz)
    }

    /// Duration of `n` processor cycles.
    #[inline]
    pub fn cycles(&self, n: u64) -> SimDuration {
        SimDuration::from_cycles(n, self.clock_hz)
    }
}

/// Static description of an iPSC/860-like message-passing hypercube.
#[derive(Clone, Debug)]
pub struct IpscSpec {
    /// Total number of processors used by the computation.
    pub procs: usize,
    /// Processor clock in Hz.
    pub clock_hz: u64,
    /// Link bandwidth in bytes per second (2.8 MB/s on the real machine).
    pub link_bandwidth: f64,
    /// Minimum time for a short message, seconds (47 µs measured in the
    /// paper). Charged on every message as fixed overhead.
    pub message_latency_s: f64,
    /// Extra per-hop circuit set-up time, seconds. The network is
    /// circuit-switched so distance contributes only a tiny set-up cost.
    pub per_hop_s: f64,
}

impl IpscSpec {
    /// The configuration used in the paper's experiments.
    pub fn paper(procs: usize) -> IpscSpec {
        IpscSpec {
            procs,
            clock_hz: 40_000_000,
            link_bandwidth: 2.8e6,
            message_latency_s: 47e-6,
            per_hop_s: 1e-6,
        }
    }

    /// Hypercube dimension needed for `procs` nodes.
    pub fn dimension(&self) -> u32 {
        hypercube_dimension(self.procs)
    }

    /// Number of hops between two nodes (Hamming distance of the labels).
    #[inline]
    pub fn hops(&self, a: ProcId, b: ProcId) -> u32 {
        (a ^ b).count_ones()
    }

    /// Time for a point-to-point message of `bytes` payload from `src` to
    /// `dst`. The sender is busy for this whole time (NX/2 sends are
    /// synchronous enough that the paper charges the main processor for the
    /// full serial distribution of an object, Section 5.3).
    pub fn message_time(&self, bytes: usize, src: ProcId, dst: ProcId) -> SimDuration {
        let hops = if src == dst {
            0
        } else {
            self.hops(src, dst).max(1)
        };
        let secs = self.message_latency_s
            + self.per_hop_s * hops as f64
            + bytes as f64 / self.link_bandwidth;
        SimDuration::from_secs_f64(secs)
    }

    /// Time for a spanning-tree broadcast of `bytes` from one node to all
    /// `procs` nodes: `ceil(log2 procs)` store-and-forward stages, each one
    /// message time long. Matches the paper's measurement of 0.31 s to
    /// broadcast a 166 KB object to 32 processors (5 stages × ~62 ms).
    pub fn broadcast_time(&self, bytes: usize) -> SimDuration {
        let stages = hypercube_dimension(self.procs).max(1);
        let per_stage =
            self.message_latency_s + self.per_hop_s + bytes as f64 / self.link_bandwidth;
        SimDuration::from_secs_f64(per_stage * stages as f64)
    }

    /// The portion of a broadcast for which the *initiating* node is busy:
    /// it sends to each of its children in the spanning tree. The root of a
    /// binomial tree sends `dimension` messages, but successive sends overlap
    /// with the subtree forwarding; the paper's data (main-processor delay of
    /// roughly one message time) is matched by charging the root one send.
    pub fn broadcast_root_busy(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(
            self.message_latency_s + self.per_hop_s + bytes as f64 / self.link_bandwidth,
        )
    }

    /// Duration of `n` processor cycles.
    #[inline]
    pub fn cycles(&self, n: u64) -> SimDuration {
        SimDuration::from_cycles(n, self.clock_hz)
    }
}

/// Smallest `d` with `2^d >= procs`.
pub fn hypercube_dimension(procs: usize) -> u32 {
    assert!(procs >= 1, "machine must have at least one processor");
    (procs.next_power_of_two()).trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dash_clusters() {
        let m = DashSpec::paper(32);
        assert_eq!(m.clusters(), 8);
        assert_eq!(m.cluster_of(0), 0);
        assert_eq!(m.cluster_of(3), 0);
        assert_eq!(m.cluster_of(4), 1);
        assert_eq!(m.cluster_of(31), 7);
    }

    #[test]
    fn dash_lines_rounds_up() {
        let m = DashSpec::paper(4);
        assert_eq!(m.lines(1), 1);
        assert_eq!(m.lines(16), 1);
        assert_eq!(m.lines(17), 2);
        assert_eq!(m.lines(0), 1); // metadata-only objects still cost a line
    }

    #[test]
    fn dash_transfer_ordering() {
        let m = DashSpec::paper(32);
        let b = 4096;
        let own = m.transfer_time(b, DashHit::OwnCache);
        let local = m.transfer_time(b, DashHit::LocalCluster);
        let clean = m.transfer_time(b, DashHit::RemoteClean);
        let dirty = m.transfer_time(b, DashHit::RemoteDirty);
        assert_eq!(own, SimDuration::ZERO);
        assert!(local < clean && clean < dirty);
    }

    #[test]
    fn ipsc_serial_send_matches_paper() {
        // Paper Section 5.3: a 165,888-byte object takes ~.07 s per serial
        // point-to-point send.
        let m = IpscSpec::paper(32);
        let t = m.message_time(165_888, 0, 1).as_secs_f64();
        assert!((0.055..0.075).contains(&t), "send time {t}");
    }

    #[test]
    fn ipsc_broadcast_matches_paper() {
        // Paper Section 5.3: broadcasting the same object to 32 processors
        // takes ~.31 s.
        let m = IpscSpec::paper(32);
        let t = m.broadcast_time(165_888).as_secs_f64();
        assert!((0.25..0.37).contains(&t), "broadcast time {t}");
    }

    #[test]
    fn ipsc_short_message_floor() {
        let m = IpscSpec::paper(8);
        let t = m.message_time(0, 0, 1).as_secs_f64();
        assert!(t >= 47e-6);
    }

    #[test]
    fn hypercube_dims() {
        assert_eq!(hypercube_dimension(1), 0);
        assert_eq!(hypercube_dimension(2), 1);
        assert_eq!(hypercube_dimension(3), 2);
        assert_eq!(hypercube_dimension(24), 5);
        assert_eq!(hypercube_dimension(32), 5);
    }

    #[test]
    fn hops_hamming() {
        let m = IpscSpec::paper(32);
        assert_eq!(m.hops(0b00000, 0b10101), 3);
        assert_eq!(m.hops(7, 7), 0);
    }
}
