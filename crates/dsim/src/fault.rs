//! Seeded, deterministic fault injection for the simulated machines.
//!
//! A [`FaultPlan`] describes *what can go wrong* — per-message drop /
//! duplication / delay / reorder probabilities, transient processor
//! stalls, fail-stop processor death, and (for the threaded backend)
//! task-body panics. A [`FaultInjector`] turns a plan plus a seed into a
//! reproducible stream of fault decisions: the same plan and seed always
//! produce the same faults at the same points in the event stream, so a
//! faulty run is exactly as replayable as a fault-free one.
//!
//! Two decision styles are offered:
//!
//! * **Sequential** ([`FaultInjector::message_fate`], [`FaultInjector::stall`])
//!   for the discrete-event simulators, whose event loops visit decision
//!   points in a deterministic order.
//! * **Keyed** ([`FaultPlan::task_fails`]) for `jade-threads`, where OS
//!   scheduling makes the *order* of decision points nondeterministic:
//!   the decision is a pure hash of `(seed, task, attempt)`, so which
//!   tasks panic is independent of thread interleaving.
//!
//! Probabilities are plain `f64`s in `[0, 1]`; durations are virtual
//! [`SimDuration`]s. Plans parse from a compact spec string (see
//! [`FaultPlan::parse`]), the format used by `repro --faults`.

use crate::time::SimDuration;

/// Default extra-latency window when `delay=`/`reorder=` give no duration
/// (500 µs — a few network round trips on the simulated machines).
const DEFAULT_WINDOW_S: f64 = 0.0005;

/// Declarative description of the faults to inject into a run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Probability that a data message is lost in transit.
    pub drop_p: f64,
    /// Probability that a delivered message arrives twice.
    pub dup_p: f64,
    /// Probability that a delivered message is delayed by up to [`Self::delay`].
    pub delay_p: f64,
    /// Maximum extra latency added by a delay fault.
    pub delay: SimDuration,
    /// Probability that a message is reordered (extra latency up to
    /// [`Self::reorder_window`], enough to overtake later sends).
    pub reorder_p: f64,
    /// Latency window used for reorder faults.
    pub reorder_window: SimDuration,
    /// Probability that a processor stalls before starting a task.
    pub stall_p: f64,
    /// Duration of one transient stall.
    pub stall: SimDuration,
    /// Fail-stop: this processor dies at [`Self::fail_at`] and never recovers.
    pub fail_proc: Option<usize>,
    /// Virtual time (offset from start) of the fail-stop event.
    pub fail_at: SimDuration,
    /// Probability that a task body panics on a given attempt
    /// (`jade-threads` only; keyed, see [`Self::task_fails`]).
    pub panic_p: f64,
    /// Seed for the fault decision stream.
    pub seed: u64,
    /// Checkpoint interval for the recovery layer: the runtime snapshots
    /// its state every `checkpoint` of virtual time (`jade-threads` maps
    /// the same value to a task-count interval, see that crate). `None`
    /// disables checkpointing; fail-stop recovery then falls back to the
    /// full charged-restore path.
    pub checkpoint: Option<SimDuration>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no faults, zero injector overhead.
    pub const fn none() -> FaultPlan {
        FaultPlan {
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            delay: SimDuration::ZERO,
            reorder_p: 0.0,
            reorder_window: SimDuration::ZERO,
            stall_p: 0.0,
            stall: SimDuration::ZERO,
            fail_proc: None,
            fail_at: SimDuration::ZERO,
            panic_p: 0.0,
            seed: 0,
            checkpoint: None,
        }
    }

    /// Does this plan inject anything at all? Fault-free runs take no
    /// injector draws, so their event streams are byte-identical to runs
    /// on a build without fault injection.
    pub fn is_active(&self) -> bool {
        self.drop_p > 0.0
            || self.dup_p > 0.0
            || self.delay_p > 0.0
            || self.reorder_p > 0.0
            || self.stall_p > 0.0
            || self.fail_proc.is_some()
            || self.panic_p > 0.0
    }

    /// Replace the seed (used by `--fault-seed`).
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Replace the checkpoint interval (used by `--checkpoint-interval`).
    pub fn with_checkpoint(mut self, interval: SimDuration) -> FaultPlan {
        self.checkpoint = Some(interval);
        self
    }

    /// Longest admissible latency-class duration (`delay`, `reorder`,
    /// `stall`): one virtual hour. These feed multiplied arithmetic (the
    /// fetch retry backoff scales the delay window by up to 2048×), so an
    /// unbounded value would overflow the picosecond clock mid-run; an hour
    /// of *extra message latency* is already far beyond anything physical.
    pub const MAX_LATENCY: SimDuration = SimDuration(3_600 * crate::time::PS_PER_SEC);

    /// Longest admissible schedule-class duration (`fail_at`, `ckpt`): a
    /// million virtual seconds, ~50× the longest run in the paper (String,
    /// ~20,000 s). Keeps `t + interval` rescheduling far from the u64
    /// picosecond limit.
    pub const MAX_SCHEDULE: SimDuration = SimDuration(1_000_000 * crate::time::PS_PER_SEC);

    /// Check that every probability is in `[0, 1]`, every duration is
    /// within its admissible bound (so no downstream virtual-time
    /// arithmetic can overflow), and the checkpoint interval, if any, is
    /// positive.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("drop", self.drop_p),
            ("dup", self.dup_p),
            ("delay", self.delay_p),
            ("reorder", self.reorder_p),
            ("stall", self.stall_p),
            ("panic", self.panic_p),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(format!("fault plan: {name} probability {p} not in [0, 1]"));
            }
        }
        for (name, d) in [
            ("delay", self.delay),
            ("reorder", self.reorder_window),
            ("stall", self.stall),
        ] {
            if d > Self::MAX_LATENCY {
                return Err(format!(
                    "fault plan: {name} duration {d:?} exceeds the {:?} limit",
                    Self::MAX_LATENCY
                ));
            }
        }
        for (name, d) in [("fail_at", Some(self.fail_at)), ("ckpt", self.checkpoint)] {
            if let Some(d) = d {
                if d > Self::MAX_SCHEDULE {
                    return Err(format!(
                        "fault plan: {name} {d:?} exceeds the {:?} limit",
                        Self::MAX_SCHEDULE
                    ));
                }
            }
        }
        if let Some(interval) = self.checkpoint {
            if interval == SimDuration::ZERO {
                return Err("fault plan: checkpoint interval must be > 0".to_string());
            }
        }
        Ok(())
    }

    /// Parse the compact spec string used by `repro --faults`.
    ///
    /// Comma-separated `key=value` entries:
    ///
    /// ```text
    /// drop=P           lose each data message with probability P
    /// dup=P            duplicate each delivered message with probability P
    /// delay=P[:SECS]   delay messages with probability P, up to SECS extra
    /// reorder=P[:SECS] reorder messages (extra latency window SECS)
    /// stall=P[:SECS]   stall a processor for SECS before a task start
    /// fail=PROC[@SECS] processor PROC fail-stops at virtual time SECS
    /// panic=P          task bodies panic with probability P (threads)
    /// seed=N           decision-stream seed
    /// ckpt=SECS        checkpoint the runtime every SECS of virtual time
    /// ```
    ///
    /// Example: `drop=0.05,dup=0.02,stall=0.01:0.005,fail=3@0.5,seed=42`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        let mut seen: Vec<&str> = Vec::new();
        for part in spec.split(',').filter(|s| !s.is_empty()) {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}`: expected key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p = v
                    .parse::<f64>()
                    .map_err(|_| format!("fault spec `{part}`: bad probability `{v}`"))?;
                if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                    return Err(format!(
                        "fault spec `{part}`: probability `{v}` not in [0, 1]"
                    ));
                }
                Ok(p)
            };
            // Checked seconds→SimDuration: negative, non-finite or
            // overflowing values are parse errors naming the offending
            // entry, never panics.
            let dur = |s: f64| -> Result<SimDuration, String> {
                SimDuration::try_from_secs_f64(s)
                    .ok_or_else(|| format!("fault spec `{part}`: bad duration `{s}`"))
            };
            let prob_dur = |v: &str, default_s: f64| -> Result<(f64, SimDuration), String> {
                let (p, s) = match v.split_once(':') {
                    Some((p, s)) => (
                        prob(p)?,
                        s.parse::<f64>()
                            .map_err(|_| format!("fault spec `{part}`: bad duration `{s}`"))?,
                    ),
                    None => (prob(v)?, default_s),
                };
                Ok((p, dur(s)?))
            };
            // `ckpt` and `checkpoint` are aliases for the same key; a spec
            // naming both (or repeating any key) is ambiguous — one value
            // would silently win — so reject it by canonical name.
            let canonical = if key == "checkpoint" { "ckpt" } else { key };
            if seen.contains(&canonical) {
                return Err(format!("fault spec: duplicate key `{canonical}`"));
            }
            match key {
                "drop" => plan.drop_p = prob(val)?,
                "dup" => plan.dup_p = prob(val)?,
                "delay" => (plan.delay_p, plan.delay) = prob_dur(val, DEFAULT_WINDOW_S)?,
                "reorder" => {
                    (plan.reorder_p, plan.reorder_window) = prob_dur(val, DEFAULT_WINDOW_S)?
                }
                "stall" => (plan.stall_p, plan.stall) = prob_dur(val, DEFAULT_WINDOW_S)?,
                "panic" => plan.panic_p = prob(val)?,
                "ckpt" | "checkpoint" => {
                    let s = val
                        .parse::<f64>()
                        .map_err(|_| format!("fault spec `{part}`: bad interval `{val}`"))?;
                    if s <= 0.0 {
                        return Err(format!("fault spec `{part}`: interval must be > 0"));
                    }
                    plan.checkpoint = Some(dur(s)?);
                }
                "seed" => {
                    plan.seed = val
                        .parse::<u64>()
                        .map_err(|_| format!("fault spec `{part}`: bad seed `{val}`"))?
                }
                "fail" => {
                    let (proc, at_s) = match val.split_once('@') {
                        Some((p, s)) => (
                            p.parse::<usize>()
                                .map_err(|_| format!("fault spec `{part}`: bad proc `{p}`"))?,
                            s.parse::<f64>()
                                .map_err(|_| format!("fault spec `{part}`: bad time `{s}`"))?,
                        ),
                        None => (
                            val.parse::<usize>()
                                .map_err(|_| format!("fault spec `{part}`: bad proc `{val}`"))?,
                            0.0,
                        ),
                    };
                    plan.fail_proc = Some(proc);
                    plan.fail_at = SimDuration::try_from_secs_f64(at_s)
                        .ok_or_else(|| format!("fault spec `{part}`: bad fail time `{at_s}`"))?;
                }
                other => return Err(format!("fault spec: unknown key `{other}`")),
            }
            seen.push(canonical);
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Keyed panic decision for the threaded backend: a pure hash of
    /// `(seed, task, attempt)`, independent of thread interleaving. Each
    /// retry re-rolls (different `attempt`), so with `panic_p < 1` a task
    /// eventually succeeds.
    pub fn task_fails(&self, task: u64, attempt: u32) -> bool {
        if self.panic_p <= 0.0 {
            return false;
        }
        let mut z = self
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(task.wrapping_mul(0xD1B54A32D192ED03))
            .wrapping_add((attempt as u64) << 17);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        unit_f64(z) < self.panic_p
    }
}

/// The fate the injector assigned to one message.
#[derive(Clone, Debug, PartialEq)]
pub struct MessageFate {
    /// Extra latency of each delivered copy. Empty means the message was
    /// dropped; more than one entry means it was duplicated.
    pub copies: Vec<SimDuration>,
}

impl MessageFate {
    /// The fault-free fate: one copy, no extra latency.
    pub fn delivered() -> MessageFate {
        MessageFate {
            copies: vec![SimDuration::ZERO],
        }
    }

    pub fn dropped(&self) -> bool {
        self.copies.is_empty()
    }
}

/// Stateful decision stream for one run: a [`FaultPlan`] plus a SplitMix64
/// generator seeded from it. Counters record what was actually injected so
/// simulators can cross-check their native tallies against the event stream.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: u64,
    /// Messages dropped so far.
    pub drops: u64,
    /// Messages duplicated so far.
    pub dups: u64,
    /// Messages delayed or reordered so far.
    pub delays: u64,
    /// Stalls injected so far.
    pub stalls: u64,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            // Non-zero mix so seed 0 still produces a useful stream.
            state: plan.seed ^ 0x5851_F42D_4C95_7F2D,
            drops: 0,
            dups: 0,
            delays: 0,
            stalls: 0,
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether any message/stall faults are configured. Inactive injectors
    /// take no draws, keeping fault-free streams bit-identical.
    pub fn active(&self) -> bool {
        self.plan.is_active()
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele et al.): tiny, seedable, good enough for
        // Bernoulli draws, and dependency-free.
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }

    fn extra_delay(&mut self) -> SimDuration {
        let mut extra = SimDuration::ZERO;
        if self.plan.delay_p > 0.0 && self.next_f64() < self.plan.delay_p {
            self.delays += 1;
            extra += scale(self.plan.delay, self.next_f64());
        }
        if self.plan.reorder_p > 0.0 && self.next_f64() < self.plan.reorder_p {
            self.delays += 1;
            extra += scale(self.plan.reorder_window, self.next_f64());
        }
        extra
    }

    /// Decide the fate of one data message: dropped, delivered once
    /// (possibly late), or delivered twice.
    pub fn message_fate(&mut self) -> MessageFate {
        if !self.active() {
            return MessageFate::delivered();
        }
        if self.plan.drop_p > 0.0 && self.next_f64() < self.plan.drop_p {
            self.drops += 1;
            return MessageFate { copies: Vec::new() };
        }
        let mut copies = vec![self.extra_delay()];
        if self.plan.dup_p > 0.0 && self.next_f64() < self.plan.dup_p {
            self.dups += 1;
            copies.push(self.extra_delay());
        }
        MessageFate { copies }
    }

    /// Decide whether a processor stalls at this decision point, and for
    /// how long.
    pub fn stall(&mut self) -> Option<SimDuration> {
        if self.plan.stall_p > 0.0 && self.next_f64() < self.plan.stall_p {
            self.stalls += 1;
            Some(self.plan.stall)
        } else {
            None
        }
    }
}

/// Map a `u64` to `[0, 1)` using the top 53 bits.
fn unit_f64(z: u64) -> f64 {
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Scale a duration by a fraction in `[0, 1)` (picosecond-exact).
fn scale(d: SimDuration, frac: f64) -> SimDuration {
    SimDuration((d.0 as f64 * frac) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_bounds_durations() {
        // A latency-class duration past the hour limit is rejected — left
        // unchecked it would overflow the 2048× retry-backoff arithmetic.
        let plan = FaultPlan {
            delay_p: 0.1,
            delay: FaultPlan::MAX_LATENCY + SimDuration(1),
            ..FaultPlan::none()
        };
        assert!(plan.validate().unwrap_err().contains("delay"));
        let plan = FaultPlan {
            stall_p: 0.1,
            stall: FaultPlan::MAX_LATENCY + SimDuration(1),
            ..FaultPlan::none()
        };
        assert!(plan.validate().unwrap_err().contains("stall"));
        // Schedule-class durations get the wider bound.
        let plan = FaultPlan {
            fail_proc: Some(1),
            fail_at: FaultPlan::MAX_SCHEDULE + SimDuration(1),
            ..FaultPlan::none()
        };
        assert!(plan.validate().unwrap_err().contains("fail_at"));
        let plan = FaultPlan {
            checkpoint: Some(FaultPlan::MAX_SCHEDULE + SimDuration(1)),
            ..FaultPlan::none()
        };
        assert!(plan.validate().unwrap_err().contains("ckpt"));
        // At the bounds everything is fine.
        let plan = FaultPlan {
            delay_p: 0.1,
            delay: FaultPlan::MAX_LATENCY,
            fail_proc: Some(1),
            fail_at: FaultPlan::MAX_SCHEDULE,
            checkpoint: Some(FaultPlan::MAX_SCHEDULE),
            ..FaultPlan::none()
        };
        assert_eq!(plan.validate(), Ok(()));
    }

    #[test]
    fn none_is_inactive() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.message_fate(), MessageFate::delivered());
        assert_eq!(inj.stall(), None);
        assert_eq!(inj.drops + inj.dups + inj.delays + inj.stalls, 0);
    }

    #[test]
    fn parse_full_spec() {
        let plan =
            FaultPlan::parse("drop=0.05,dup=0.02,delay=0.1:0.001,reorder=0.05,stall=0.01:0.005,fail=3@0.5,panic=0.1,seed=42")
                .unwrap();
        assert_eq!(plan.drop_p, 0.05);
        assert_eq!(plan.dup_p, 0.02);
        assert_eq!(plan.delay_p, 0.1);
        assert_eq!(plan.delay, SimDuration::from_secs_f64(0.001));
        assert_eq!(plan.reorder_p, 0.05);
        assert_eq!(
            plan.reorder_window,
            SimDuration::from_secs_f64(DEFAULT_WINDOW_S)
        );
        assert_eq!(plan.stall_p, 0.01);
        assert_eq!(plan.stall, SimDuration::from_secs_f64(0.005));
        assert_eq!(plan.fail_proc, Some(3));
        assert_eq!(plan.fail_at, SimDuration::from_secs_f64(0.5));
        assert_eq!(plan.panic_p, 0.1);
        assert_eq!(plan.seed, 42);
        assert!(plan.is_active());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("drop=x").is_err());
        assert!(FaultPlan::parse("drop=1.5").is_err());
        assert!(FaultPlan::parse("wat=1").is_err());
        assert!(FaultPlan::parse("fail=a").is_err());
        assert!(FaultPlan::parse("delay=0.1:-1").is_err());
        assert!(FaultPlan::parse("ckpt=0").is_err());
        assert!(FaultPlan::parse("ckpt=-1").is_err());
        assert!(FaultPlan::parse("ckpt=x").is_err());
    }

    #[test]
    fn parse_errors_name_the_offending_entry() {
        // Every malformed entry must come back as an error naming the
        // entry, never a panic — these inputs reach `parse` straight from
        // the `--faults` command line.
        for (spec, needle) in [
            ("ckpt=", "ckpt="),
            ("ckpt=nan", "ckpt=nan"),
            ("drop=-0.5", "drop=-0.5"),
            ("drop=inf", "drop=inf"),
            ("panic=two", "panic=two"),
            ("delay=0.1:huge", "delay=0.1:huge"),
            ("seed=-1", "seed=-1"),
            ("fail=1@-2", "fail=1@-2"),
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(
                err.contains(needle),
                "`{spec}` error `{err}` lacks `{needle}`"
            );
        }
        // Out-of-range magnitudes used to panic inside the picosecond
        // conversion (`virtual time overflow`); they must error instead.
        for spec in [
            "ckpt=1e30",
            "delay=0.1:1e30",
            "stall=0.1:1e300",
            "fail=1@1e30",
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(err.contains("fault spec"), "`{spec}`: {err}");
        }
    }

    #[test]
    fn parse_rejects_duplicate_keys() {
        let err = FaultPlan::parse("drop=0.1,drop=0.2").unwrap_err();
        assert!(err.contains("duplicate key `drop`"), "{err}");
        // `ckpt` and `checkpoint` alias the same key; naming both is a
        // duplicate under the canonical name.
        let err = FaultPlan::parse("ckpt=0.5,checkpoint=1.0").unwrap_err();
        assert!(err.contains("duplicate key `ckpt`"), "{err}");
        let err = FaultPlan::parse("seed=1,drop=0.1,seed=2").unwrap_err();
        assert!(err.contains("duplicate key `seed`"), "{err}");
        // Distinct keys still compose fine.
        assert!(FaultPlan::parse("drop=0.1,dup=0.1,seed=3").is_ok());
    }

    #[test]
    fn checkpoint_interval_parses_but_is_not_a_fault() {
        let plan = FaultPlan::parse("ckpt=0.25").unwrap();
        assert_eq!(plan.checkpoint, Some(SimDuration::from_secs_f64(0.25)));
        // Checkpointing alone injects nothing: the injector must take no
        // draws, keeping the event stream identical to a fault-free build.
        assert!(!plan.is_active());
        let plan2 = FaultPlan::parse("checkpoint=0.25,fail=1@0.1").unwrap();
        assert_eq!(plan2.checkpoint, plan.checkpoint);
        assert!(plan2.is_active());
        let via_builder = FaultPlan::none().with_checkpoint(SimDuration::from_secs_f64(0.25));
        assert_eq!(via_builder.checkpoint, plan.checkpoint);
        assert!(via_builder.validate().is_ok());
    }

    #[test]
    fn injector_is_deterministic() {
        let plan = FaultPlan::parse("drop=0.2,dup=0.1,delay=0.3,seed=7").unwrap();
        let run = |mut inj: FaultInjector| -> Vec<MessageFate> {
            (0..200).map(|_| inj.message_fate()).collect()
        };
        let a = run(FaultInjector::new(plan));
        let b = run(FaultInjector::new(plan));
        assert_eq!(a, b);
        let c = run(FaultInjector::new(plan.with_seed(8)));
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    #[test]
    fn fate_frequencies_track_probabilities() {
        let plan = FaultPlan::parse("drop=0.2,dup=0.1,seed=1").unwrap();
        let mut inj = FaultInjector::new(plan);
        let n = 10_000;
        for _ in 0..n {
            inj.message_fate();
        }
        let drop_rate = inj.drops as f64 / n as f64;
        assert!((drop_rate - 0.2).abs() < 0.02, "drop rate {drop_rate}");
        // dup is drawn only for non-dropped messages.
        let dup_rate = inj.dups as f64 / (n - inj.drops) as f64;
        assert!((dup_rate - 0.1).abs() < 0.02, "dup rate {dup_rate}");
    }

    #[test]
    fn keyed_task_failure_is_pure() {
        let plan = FaultPlan::parse("panic=0.3,seed=11").unwrap();
        let fails: Vec<bool> = (0..64).map(|t| plan.task_fails(t, 0)).collect();
        assert!(fails.iter().any(|&f| f), "some task should fail");
        assert!(fails.iter().any(|&f| !f), "some task should succeed");
        for t in 0..64u64 {
            assert_eq!(plan.task_fails(t, 0), fails[t as usize]);
        }
        // Retries re-roll: a failing task must eventually pass.
        for t in 0..64u64 {
            assert!((0..64).any(|a| !plan.task_fails(t, a)));
        }
    }

    #[test]
    fn stalls_use_plan_duration() {
        let plan = FaultPlan::parse("stall=1.0:0.002,seed=3").unwrap();
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.stall(), Some(SimDuration::from_secs_f64(0.002)));
        assert_eq!(inj.stalls, 1);
    }
}
