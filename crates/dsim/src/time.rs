//! Virtual time for the discrete-event simulator.
//!
//! Time is kept as an integer count of **picoseconds** so that event ordering
//! is exact and platform-independent. A `u64` of picoseconds covers about
//! 213 days of virtual time, far beyond the longest experiment in the paper
//! (the String application runs for ~20,000 virtual seconds).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in virtual time (picoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (picoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

pub const PS_PER_SEC: u64 = 1_000_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; useful as an "idle forever" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    #[inline]
    pub fn from_secs_f64(s: f64) -> SimTime {
        SimTime(secs_to_ps(s))
    }

    /// Time elapsed since `earlier`. Panics in debug builds if `earlier` is
    /// in the future — elapsed time is never negative in a causal simulation.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self >= earlier, "SimTime::since: earlier is in the future");
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        SimDuration(secs_to_ps(s))
    }

    /// Fallible conversion for untrusted input (`--faults` specs): `None`
    /// when `s` is negative, non-finite, or too large to represent in
    /// picoseconds — where [`from_secs_f64`](Self::from_secs_f64) panics.
    pub fn try_from_secs_f64(s: f64) -> Option<SimDuration> {
        if !(s >= 0.0 && s.is_finite()) {
            return None;
        }
        let ps = s * PS_PER_SEC as f64;
        (ps < u64::MAX as f64).then_some(SimDuration(ps as u64))
    }

    #[inline]
    pub fn from_micros_f64(us: f64) -> SimDuration {
        SimDuration::from_secs_f64(us * 1e-6)
    }

    /// Duration of `n` cycles of a clock running at `hz` cycles per second.
    #[inline]
    pub fn from_cycles(n: u64, hz: u64) -> SimDuration {
        // n / hz seconds = n * PS_PER_SEC / hz picoseconds. PS_PER_SEC/hz is
        // exact for the clock rates we model (33_333_333 Hz divides evenly
        // enough; the sub-picosecond truncation is irrelevant at scale).
        SimDuration((n as u128 * PS_PER_SEC as u128 / hz as u128) as u64)
    }

    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    #[inline]
    pub fn mul_u64(self, k: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(k).expect("SimDuration overflow"))
    }
}

/// A virtual-time budget: a deadline expressed as a [`SimDuration`] from
/// simulation start. Simulators consult it at scheduling points (e.g. before
/// creating the next task) to cut a run short deterministically — the
/// virtual-time analogue of the thread service's wall-clock tenant deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimBudget {
    limit: SimDuration,
}

impl SimBudget {
    pub fn new(limit: SimDuration) -> SimBudget {
        SimBudget { limit }
    }

    /// The instant at which the budget expires.
    #[inline]
    pub fn deadline(&self) -> SimTime {
        SimTime(self.limit.0)
    }

    /// Whether the budget is spent at virtual time `now`. Exact: a budget of
    /// `d` admits work scheduled strictly before `t = d`.
    #[inline]
    pub fn exhausted(&self, now: SimTime) -> bool {
        now >= self.deadline()
    }

    /// Budget left at `now` (zero once exhausted).
    #[inline]
    pub fn remaining(&self, now: SimTime) -> SimDuration {
        SimDuration(self.limit.0.saturating_sub(now.0))
    }
}

fn secs_to_ps(s: f64) -> u64 {
    assert!(
        s >= 0.0 && s.is_finite(),
        "negative or non-finite time: {s}"
    );
    let ps = s * PS_PER_SEC as f64;
    assert!(ps < u64::MAX as f64, "virtual time overflow: {s} s");
    ps as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(d.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(d.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, d: SimDuration) {
        *self = *self - d;
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.9}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_secs() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.0, 1_500_000_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cycles_at_33mhz() {
        // 101 cycles at 33.333 MHz is ~3.03 microseconds.
        let d = SimDuration::from_cycles(101, 33_333_333);
        let s = d.as_secs_f64();
        assert!((s - 3.03e-6).abs() < 1e-8, "{s}");
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs_f64(1.0) + SimDuration::from_secs_f64(0.5);
        assert_eq!(t, SimTime::from_secs_f64(1.5));
        let d = t.since(SimTime::from_secs_f64(1.0));
        assert_eq!(d, SimDuration::from_secs_f64(0.5));
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration).sum();
        assert_eq!(total, SimDuration(10));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimDuration(1) - SimDuration(2);
    }

    #[test]
    fn micros() {
        assert_eq!(SimDuration::from_micros_f64(47.0), SimDuration(47_000_000));
    }

    #[test]
    fn budget_boundaries() {
        let b = SimBudget::new(SimDuration::from_secs_f64(2.0));
        assert!(!b.exhausted(SimTime::ZERO));
        assert!(!b.exhausted(SimTime::from_secs_f64(1.999)));
        assert!(b.exhausted(SimTime::from_secs_f64(2.0)));
        assert!(b.exhausted(SimTime::MAX));
        assert_eq!(
            b.remaining(SimTime::from_secs_f64(1.5)),
            SimDuration::from_secs_f64(0.5)
        );
        assert_eq!(b.remaining(SimTime::MAX), SimDuration::ZERO);
    }
}
