//! Per-processor execution bookkeeping for machine simulations.
//!
//! Each simulated processor executes one thing at a time (Jade dispatchers
//! never preempt a running task). `ProcClock` tracks when each processor
//! becomes free and accumulates how it spent its time, split into the
//! categories the paper reports: application work, shared-object
//! communication, and task management overhead.

use crate::time::{SimDuration, SimTime};

/// How a slice of processor time was spent. Mirrors the paper's breakdown:
/// Figures 6–9 report `App` (+`Comm` on DASH, where communication happens
/// inside task execution), Figures 10/11/20/21 report `Mgmt` fractions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TimeKind {
    /// Application code from the task bodies.
    App,
    /// Shared-object communication (stall or send/receive time).
    Comm,
    /// Jade task management: creation, synchronization, scheduling,
    /// dispatch, completion processing.
    Mgmt,
}

#[derive(Clone, Debug, Default)]
pub struct ProcUsage {
    pub app: SimDuration,
    pub comm: SimDuration,
    pub mgmt: SimDuration,
}

impl ProcUsage {
    pub fn busy(&self) -> SimDuration {
        self.app + self.comm + self.mgmt
    }

    fn slot(&mut self, kind: TimeKind) -> &mut SimDuration {
        match kind {
            TimeKind::App => &mut self.app,
            TimeKind::Comm => &mut self.comm,
            TimeKind::Mgmt => &mut self.mgmt,
        }
    }
}

/// Busy/free tracking for a set of serially-executing processors.
#[derive(Clone, Debug)]
pub struct ProcClock {
    free_at: Vec<SimTime>,
    usage: Vec<ProcUsage>,
}

impl ProcClock {
    pub fn new(procs: usize) -> ProcClock {
        ProcClock {
            free_at: vec![SimTime::ZERO; procs],
            usage: vec![ProcUsage::default(); procs],
        }
    }

    pub fn procs(&self) -> usize {
        self.free_at.len()
    }

    /// When processor `p` next becomes idle.
    #[inline]
    pub fn free_at(&self, p: usize) -> SimTime {
        self.free_at[p]
    }

    /// Occupy processor `p` for `d` starting no earlier than `now` and no
    /// earlier than its current commitments. Returns the time the work
    /// finishes. The duration is accounted under `kind`.
    pub fn occupy(&mut self, p: usize, now: SimTime, d: SimDuration, kind: TimeKind) -> SimTime {
        let start = self.free_at[p].max(now);
        let end = start + d;
        self.free_at[p] = end;
        *self.usage[p].slot(kind) += d;
        end
    }

    /// Push processor `p`'s next-free time forward to at least `until`,
    /// without accounting usage (the usage was already accounted by
    /// [`ProcClock::account`]). Pairs with interrupt-debt extension.
    pub fn push_free_at(&mut self, p: usize, until: SimTime) {
        if self.free_at[p] < until {
            self.free_at[p] = until;
        }
    }

    /// Account `d` of usage under `kind` without occupying the processor's
    /// timeline. Used for interrupt-driven handler work that preempts a
    /// running task: the simulator separately extends the preempted task's
    /// completion by the same amount ("interrupt debt").
    pub fn account(&mut self, p: usize, d: SimDuration, kind: TimeKind) {
        *self.usage[p].slot(kind) += d;
    }

    /// Accounted usage of processor `p`.
    pub fn usage(&self, p: usize) -> &ProcUsage {
        &self.usage[p]
    }

    /// Sum of a usage category over all processors.
    pub fn total(&self, kind: TimeKind) -> SimDuration {
        self.usage
            .iter()
            .map(|u| match kind {
                TimeKind::App => u.app,
                TimeKind::Comm => u.comm,
                TimeKind::Mgmt => u.mgmt,
            })
            .sum()
    }

    /// The latest completion time over all processors (the makespan so far).
    pub fn horizon(&self) -> SimTime {
        self.free_at.iter().copied().max().unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupy_serializes() {
        let mut pc = ProcClock::new(2);
        let e1 = pc.occupy(0, SimTime(100), SimDuration(50), TimeKind::App);
        assert_eq!(e1, SimTime(150));
        // Second job queued behind the first even though "now" is earlier.
        let e2 = pc.occupy(0, SimTime(120), SimDuration(10), TimeKind::Mgmt);
        assert_eq!(e2, SimTime(160));
        // Other processor unaffected.
        let e3 = pc.occupy(1, SimTime(120), SimDuration(10), TimeKind::Comm);
        assert_eq!(e3, SimTime(130));
    }

    #[test]
    fn usage_accounting() {
        let mut pc = ProcClock::new(1);
        pc.occupy(0, SimTime::ZERO, SimDuration(30), TimeKind::App);
        pc.occupy(0, SimTime::ZERO, SimDuration(20), TimeKind::Comm);
        pc.occupy(0, SimTime::ZERO, SimDuration(10), TimeKind::Mgmt);
        let u = pc.usage(0);
        assert_eq!(u.app, SimDuration(30));
        assert_eq!(u.comm, SimDuration(20));
        assert_eq!(u.mgmt, SimDuration(10));
        assert_eq!(u.busy(), SimDuration(60));
        assert_eq!(pc.horizon(), SimTime(60));
    }

    #[test]
    fn totals() {
        let mut pc = ProcClock::new(3);
        for p in 0..3 {
            pc.occupy(p, SimTime::ZERO, SimDuration(5), TimeKind::App);
        }
        assert_eq!(pc.total(TimeKind::App), SimDuration(15));
        assert_eq!(pc.total(TimeKind::Comm), SimDuration::ZERO);
    }
}
