//! Property tests for the discrete-event substrate.

use dsim::{Calendar, DashSpec, IpscSpec, ProcClock, SimDuration, SimTime, TimeKind};
use proptest::prelude::*;

proptest! {
    /// Events pop in non-decreasing time order, FIFO within a timestamp,
    /// and every scheduled event is delivered exactly once.
    #[test]
    fn calendar_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime(t), i);
        }
        let mut last = (SimTime::ZERO, 0usize);
        let mut seen = vec![false; times.len()];
        let mut count = 0;
        while let Some((t, i)) = cal.pop() {
            prop_assert!(t >= last.0, "time went backwards");
            if t == last.0 && count > 0 {
                prop_assert!(i > last.1, "FIFO violated within a timestamp");
            }
            prop_assert!(!seen[i], "event delivered twice");
            seen[i] = true;
            prop_assert_eq!(t, SimTime(times[i]));
            last = (t, i);
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// A processor's occupancy is the sum of everything charged to it, and
    /// jobs on one processor never overlap.
    #[test]
    fn proc_clock_serializes(jobs in prop::collection::vec((0u64..100, 1u64..50), 1..100)) {
        let mut pc = ProcClock::new(1);
        let mut prev_end = SimTime::ZERO;
        let mut total = 0u64;
        for &(now, dur) in &jobs {
            let end = pc.occupy(0, SimTime(now), SimDuration(dur), TimeKind::App);
            prop_assert!(end.0 >= prev_end.0 + dur || prev_end == SimTime::ZERO,
                "job overlapped the previous one");
            prop_assert!(end.0 >= now + dur);
            prev_end = end;
            total += dur;
        }
        prop_assert_eq!(pc.usage(0).app, SimDuration(total));
        prop_assert_eq!(pc.horizon(), prev_end);
    }

    /// Message time is monotone in payload size and never below the
    /// minimum short-message latency.
    #[test]
    fn ipsc_message_time_monotone(a in 0usize..1_000_000, b in 0usize..1_000_000,
                                  src in 0usize..32, dst in 0usize..32) {
        let m = IpscSpec::paper(32);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let tl = m.message_time(lo, src, dst);
        let th = m.message_time(hi, src, dst);
        prop_assert!(tl <= th);
        prop_assert!(tl.as_secs_f64() >= 47e-6);
    }

    /// DASH transfer costs are ordered by hit level for any size.
    #[test]
    fn dash_costs_ordered(bytes in 1usize..1_000_000) {
        use dsim::DashHit::*;
        let m = DashSpec::paper(32);
        let own = m.transfer_time(bytes, OwnCache);
        let local = m.transfer_time(bytes, LocalCluster);
        let clean = m.transfer_time(bytes, RemoteClean);
        let dirty = m.transfer_time(bytes, RemoteDirty);
        prop_assert!(own <= local && local <= clean && clean <= dirty);
        prop_assert_eq!(own, SimDuration::ZERO);
    }

    /// Broadcast beats serial distribution for any payload once there are
    /// enough receivers.
    #[test]
    fn broadcast_beats_serial_sends(bytes in 1usize..500_000) {
        let m = IpscSpec::paper(32);
        let serial = m.message_time(bytes, 0, 1).as_secs_f64() * 31.0;
        let bcast = m.broadcast_time(bytes).as_secs_f64();
        prop_assert!(bcast < serial, "bcast {bcast} vs serial {serial}");
    }
}
