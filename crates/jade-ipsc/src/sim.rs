//! The iPSC/860 machine simulation: replays a Jade program trace under the
//! message-passing runtime algorithms of paper Sections 3.3–3.4.
//!
//! Message flow for one remote task:
//!
//! ```text
//! main: create ──► schedule ──► ASSIGN msg ──► proc p: handler sends
//!                                             REQUEST msgs to owners ──►
//! owners: reply with OBJECT msgs (concurrently) ──► p: all present ──►
//! p: execute ──► p: NOTIFY msg ──► main: complete, enable successors,
//!                                  pull from the unassigned pool
//! ```
//!
//! Senders are occupied for the full message time (NX/2-style synchronous
//! sends — this is why serially distributing a widely-read object delays the
//! main processor, Section 5.3, and what adaptive broadcast fixes).
//!
//! # Fault tolerance
//!
//! The *data plane* — object request/reply traffic, broadcast copies and
//! eager pushes — runs over an unreliable network when a
//! [`FaultPlan`](dsim::FaultPlan) is configured: messages can be dropped,
//! duplicated, delayed or reordered, processors can stall transiently, and
//! one non-main processor can fail-stop. The runtime survives via
//!
//! * an **ack/timeout/retry** protocol on fetches: every request arms a
//!   timer with exponential backoff; if the reply has not arrived when the
//!   timer fires, the request is re-sent (`MsgRetried`);
//! * **version-checked idempotent delivery**: duplicated, stale or
//!   no-longer-wanted payloads are discarded (`MsgDiscarded`), never
//!   applied, so replays cannot corrupt object state;
//! * **re-dispatch on fail-stop**: tasks whose processor dies before their
//!   results were applied are rewound (`TaskReExecuted`) and pushed through
//!   the scheduler again; objects owned by the dead processor move to a
//!   live replica holder (or a recovery copy at main). Re-materializing a
//!   sole copy is *charged*: main pays the recovery transfer through the
//!   machine cost model and the bytes are attributed (`ObjectRestored`);
//! * **checkpoint/restart**: with `ckpt=<secs>` in the plan the runtime
//!   periodically captures the synchronizer state, the communicator's
//!   ownership/replica tables, and the payloads of objects dirtied since
//!   the previous capture at the main processor (`CheckpointTaken`). A
//!   later fail-stop restores lost sole copies the checkpoint covers with
//!   a cheap local read from the checkpoint store (`CheckpointRestored`)
//!   instead of the full recovery transfer, and tasks committed at the
//!   checkpoint are never re-dispatched.
//!
//! Control messages (ASSIGN/NOTIFY) use a reliable transport, mirroring
//! NX/2's guaranteed delivery; the paper's runtime likewise assumes
//! reliable system messages. Because the synchronizer's queue-based
//! dependence analysis never lets a writer retire a version that an
//! in-flight reader still holds access to, a run under *any* fault plan
//! produces bit-identical application results (final object versions, task
//! completions) to the fault-free run — only timing and the retry counters
//! differ.

use crate::communicator::{CommSnapshot, Communicator};
use crate::costs::IpscCosts;
use crate::error::IpscError;
use crate::scheduler::{Decision, IpscScheduler};
use dsim::{
    Calendar, FaultInjector, FaultPlan, IpscSpec, ProcClock, ProcId, SimDuration, SimTime, TimeKind,
};
use jade_core::{
    Component, Event, EventKind, EventSink, Locality, LocalityMode, Metrics, ObjectId,
    SyncSnapshot, Synchronizer, TaskId, Trace,
};
use std::collections::VecDeque;

/// Retry budget per fetched object. With the fault-plan drop probabilities
/// the acceptance harness allows (≤ 0.2 per leg), the chance of exhausting
/// this is below 2⁻⁵⁰ per fetch; hitting it indicates a broken plan.
const MAX_FETCH_ATTEMPTS: u32 = 24;

/// Event-layer component for a [`TimeKind`] of processor occupancy.
fn comp(kind: TimeKind) -> Component {
    match kind {
        TimeKind::App => Component::App,
        TimeKind::Comm => Component::Comm,
        TimeKind::Mgmt => Component::Mgmt,
    }
}

/// Configuration of one iPSC/860 run.
#[derive(Clone, Debug)]
pub struct IpscConfig {
    pub machine: IpscSpec,
    pub costs: IpscCosts,
    pub mode: LocalityMode,
    /// Seconds of compute per abstract operation (per-application
    /// calibration; see EXPERIMENTS.md).
    pub sec_per_op: f64,
    /// Target number of in-flight tasks per processor. 1 = latency hiding
    /// off (the paper's default for most experiments); 2 = on.
    pub target_tasks: usize,
    /// The adaptive broadcast optimization (Section 3.4.2).
    pub adaptive_broadcast: bool,
    /// Fetch a task's remote objects concurrently (Section 3.4.1). With
    /// `false`, each request waits for the previous reply (ablation).
    pub concurrent_fetches: bool,
    /// Inspector/executor aggregation (DESIGN.md §15): before dispatching
    /// a task's fetches, inspect its declared access set and coalesce the
    /// objects owned by one processor into a single request/reply message
    /// pair — when the Section 5.3 break-even test says the saved
    /// per-message overhead exceeds the added per-object header bytes.
    /// Only effective together with `concurrent_fetches`.
    pub aggregate_fetches: bool,
    /// Work-free methodology (Figures 20/21).
    pub work_free: bool,
    /// Disable read replication in the synchronizer (Section 5.1 analysis).
    pub replication: bool,
    /// The eager update protocol the paper discusses in Section 6: push
    /// each new version of an object to the consumers of the previous
    /// version as soon as it is produced. Helps regular applications
    /// (Water, String), generates excess communication for irregular ones.
    pub eager_update: bool,
    /// Deterministic per-task duration jitter (fraction, mean zero); see
    /// `jade_dash::DashConfig::jitter_frac`.
    pub jitter_frac: f64,
    /// Per-processor relative speeds (1.0 = nominal). Jade also ran on
    /// heterogeneous collections of workstations (paper Section 1); the
    /// centralized load balancer adapts because fast processors simply
    /// report completions more often. `None` = homogeneous.
    pub speed_factors: Option<Vec<f64>>,
    /// Model the interconnect as a single shared medium (workstation
    /// Ethernet) instead of a hypercube: all object transfers serialize on
    /// one wire.
    pub shared_medium: bool,
    /// Split-phase prefetch (DESIGN.md §17): when a task is assigned to a
    /// remote processor, the main processor immediately issues the task's
    /// object requests on its behalf, so the replies stream toward the
    /// processor while the assignment message is still in flight and its
    /// predecessor tasks still run. Versioned delivery refetches any
    /// object written again before the task starts. Only effective
    /// together with `concurrent_fetches`; a no-op under `work_free`.
    pub prefetch: bool,
    /// Fault injection plan (default: no faults). An inactive plan takes
    /// zero injector draws, so fault-free runs are bit-identical to runs
    /// on a build without the fault layer.
    pub faults: FaultPlan,
    /// Virtual-time budget: when the main processor reaches this much
    /// virtual time with program steps still left, it stops creating tasks,
    /// the already-created ones drain, and the run reports
    /// [`IpscRunResult::deadline_exceeded`] with partial metrics — the
    /// simulator analogue of the thread service's per-tenant wall-clock
    /// deadline. `None` = run to completion.
    pub deadline: Option<SimDuration>,
    /// Replay a recorded schedule: every task is assigned to the processor
    /// that ran it in the recorded run, and each processor starts its tasks
    /// in the recorded order. Used by the overlap sweep to isolate the
    /// communication effect of [`IpscConfig::prefetch`] from list-scheduling
    /// timing anomalies: with placement and order held fixed, earlier data
    /// arrival can only move task starts earlier (DESIGN.md §17). Tasks the
    /// recorded run never started (e.g. past a deadline cut) fall back to
    /// the normal scheduler. `None` = schedule live.
    pub pinned: Option<PinnedSchedule>,
    /// Static adaptive-broadcast evidence margin: extra consecutive
    /// widely-accessed versions required (on top of the drop-probability
    /// floor) before an object flips to broadcast mode. The tune-sweep
    /// static grid varies this; [`IpscConfig::tune`] overrides it online.
    pub evidence_margin: u32,
    /// Online self-tuning (DESIGN.md §19): re-derive the adaptive-broadcast
    /// evidence margin from the communicator's wide/narrow retired-version
    /// counters after every write retirement, and re-derive the checkpoint
    /// interval at every capture from the measured virtual capture cost and
    /// the plan's failure horizon (Young's approximation). All inputs are
    /// deterministic virtual-time quantities, so tuned runs stay
    /// bit-identical across repeats.
    pub tune: bool,
}

/// A schedule recorded from a baseline run's event stream, for replay via
/// [`IpscConfig::pinned`].
#[derive(Clone, Debug, Default)]
pub struct PinnedSchedule {
    /// Per task: the processor that executed it (`None` if it never ran).
    pub assign: Vec<Option<ProcId>>,
    /// Per task: global start position in the recorded run (`u64::MAX` if
    /// it never ran). Each processor's queue replays its tasks in this
    /// order.
    pub rank: Vec<u64>,
}

impl PinnedSchedule {
    /// Extract the schedule from a traced run: the processor and global
    /// position of every `TaskStarted` event (first start wins if a fault
    /// plan re-executed a task).
    pub fn from_events(n_tasks: usize, events: &[Event]) -> PinnedSchedule {
        let mut assign = vec![None; n_tasks];
        let mut rank = vec![u64::MAX; n_tasks];
        let mut next = 0u64;
        for e in events {
            if matches!(e.kind, EventKind::TaskStarted) {
                if let Some(t) = e.task {
                    if rank[t.index()] == u64::MAX {
                        assign[t.index()] = Some(e.proc);
                        rank[t.index()] = next;
                        next += 1;
                    }
                }
            }
        }
        PinnedSchedule { assign, rank }
    }
}

impl IpscConfig {
    pub fn paper(procs: usize, mode: LocalityMode, sec_per_op: f64) -> IpscConfig {
        IpscConfig {
            machine: IpscSpec::paper(procs),
            costs: IpscCosts::default(),
            mode,
            sec_per_op,
            target_tasks: 1,
            adaptive_broadcast: true,
            concurrent_fetches: true,
            aggregate_fetches: false,
            work_free: false,
            replication: true,
            eager_update: false,
            jitter_frac: 0.08,
            speed_factors: None,
            shared_medium: false,
            prefetch: false,
            faults: FaultPlan::none(),
            deadline: None,
            pinned: None,
            evidence_margin: 0,
            tune: false,
        }
    }

    /// A network-of-workstations configuration: shared 10-Mbit-class medium,
    /// higher per-message latency, and the given relative machine speeds.
    pub fn workstations(speeds: Vec<f64>, sec_per_op: f64) -> IpscConfig {
        let procs = speeds.len();
        let mut machine = IpscSpec::paper(procs);
        machine.link_bandwidth = 1.1e6; // ~10 Mbit/s Ethernet payload rate
        machine.message_latency_s = 1e-3; // UDP/IP stack latency
        IpscConfig {
            machine,
            costs: IpscCosts::default(),
            mode: LocalityMode::Locality,
            sec_per_op,
            target_tasks: 1,
            adaptive_broadcast: true,
            concurrent_fetches: true,
            aggregate_fetches: false,
            work_free: false,
            replication: true,
            eager_update: false,
            jitter_frac: 0.08,
            speed_factors: Some(speeds),
            shared_medium: true,
            prefetch: false,
            faults: FaultPlan::none(),
            deadline: None,
            pinned: None,
            evidence_margin: 0,
            tune: false,
        }
    }
}

/// Measurements from one iPSC/860 run.
#[derive(Clone, Debug)]
pub struct IpscRunResult {
    pub procs: usize,
    /// Wall-clock (virtual) execution time of the whole program.
    pub exec_time_s: f64,
    /// Total task execution time (pure computation; unlike DASH this
    /// includes no communication — Section 5.2.2).
    pub task_time_s: f64,
    /// Percentage of locality-tracked tasks assigned to their target
    /// processor (Figures 12–15).
    pub locality_pct: f64,
    pub locality_tracked: usize,
    pub tasks_executed: usize,
    /// Bytes of shared-object transfer messages (Figures 16–19 numerator).
    pub comm_bytes: u64,
    /// Communication-to-computation ratio: Mbytes / task seconds.
    pub comm_to_comp: f64,
    /// Sum over all object requests of (reply arrival − request sent).
    pub object_latency_s: f64,
    /// Sum over all tasks of (last object arrival − first request sent).
    pub task_latency_s: f64,
    /// Number of point-to-point object transfers.
    pub fetches: u64,
    /// Object-request messages sent (one per uncoalesced fetch, one per
    /// coalesced bundle).
    pub requests: u64,
    /// Coalesced fetch messages: replies that delivered ≥ 2 objects in one
    /// physical message (inspector/executor aggregation).
    pub agg_fetches: u64,
    /// Objects delivered inside coalesced messages.
    pub agg_objects: u64,
    /// Physical fetch-reply messages: `fetches - agg_objects + agg_fetches`.
    pub fetch_messages: u64,
    /// Number of broadcast operations.
    pub broadcasts: u64,
    /// Tasks that passed through the unassigned pool.
    pub pooled: u64,
    /// Management time summed over processors.
    pub mgmt_time_s: f64,
    /// Management + communication time on the main processor.
    pub main_busy_s: f64,
    /// Mean length of parallel phases (Section 5.3 analysis).
    pub mean_parallel_phase_s: f64,
    /// Per-processor busy time, split as (app, comm, mgmt) seconds.
    pub per_proc_busy: Vec<(f64, f64, f64)>,
    /// Data messages lost in transit (fault injection).
    pub msgs_dropped: u64,
    /// Fetch requests re-sent after an ack timeout.
    pub msgs_retried: u64,
    /// Duplicate/stale deliveries discarded by idempotent delivery.
    pub msgs_discarded: u64,
    /// Transient processor stalls injected.
    pub stalls: u64,
    /// Processors that fail-stopped during the run.
    pub workers_failed: u64,
    /// Tasks re-dispatched after a fail-stop.
    pub tasks_reexecuted: u64,
    /// Checkpoints captured (`FaultPlan::checkpoint` interval).
    pub checkpoints: u64,
    /// Total checkpoint payload: metadata tables, synchronizer state, and
    /// dirty object bytes shipped to the main processor.
    pub checkpoint_bytes: u64,
    /// Fail-stop sole-copy restores satisfied from the last checkpoint.
    pub checkpoint_restores: u64,
    /// Sole-copy objects re-materialized at main after a fail-stop.
    pub objects_restored: u64,
    /// Payload bytes of those restores (included in `comm_bytes`).
    pub restore_bytes: u64,
    /// Object requests issued early by the split-phase prefetch path
    /// ([`IpscConfig::prefetch`]).
    pub prefetches_issued: u64,
    /// Prefetched objects already resident when their task's assignment
    /// arrived.
    pub prefetch_hits: u64,
    /// Prefetched objects written again before task start and refetched
    /// through the normal path (versioned-delivery rule; only reachable
    /// under fault injection).
    pub prefetch_stale: u64,
    /// Fraction of total object-fetch latency hidden under application
    /// compute on the fetching processor (0 when nothing was fetched).
    pub overlap_frac: f64,
    /// Final version of every shared object — the application result as the
    /// communicator sees it. Two runs computed the same thing iff these
    /// (and `tasks_executed`) agree; fault-parity checks compare them.
    pub final_versions: Vec<u64>,
    /// The [`IpscConfig::deadline`] budget expired before the program
    /// finished: `tasks_executed` and all other metrics cover only the
    /// prefix that ran. Always `false` without a configured deadline.
    pub deadline_exceeded: bool,
    /// Knob decisions the controller took during the run. Empty unless
    /// [`IpscConfig::tune`] is set; deterministic, so two runs of the same
    /// configuration produce equal logs.
    pub tune: jade_core::TuneLog,
}

#[derive(Debug)]
enum Ev {
    MainStep,
    AssignArrive {
        proc: ProcId,
        task: TaskId,
    },
    RequestArrive {
        obj: ObjectId,
        requester: ProcId,
        task: TaskId,
        sent_at: SimTime,
    },
    ObjectArrive {
        proc: ProcId,
        obj: ObjectId,
        version: u64,
        task: TaskId,
        requested_at: SimTime,
    },
    BroadcastArrive {
        proc: ProcId,
        obj: ObjectId,
        version: u64,
    },
    /// Eager producer-to-consumer push (update protocol, Section 6).
    EagerArrive {
        proc: ProcId,
        obj: ObjectId,
        version: u64,
    },
    Finish {
        proc: ProcId,
        task: TaskId,
    },
    NotifyArrive {
        proc: ProcId,
        task: TaskId,
    },
    /// Coalesced request for several objects owned by one processor
    /// (inspector/executor aggregation). The owner set is recomputed at
    /// arrival; objects whose owner moved ride that owner's own bundle.
    AggRequestArrive {
        objs: Vec<ObjectId>,
        requester: ProcId,
        task: TaskId,
        sent_at: SimTime,
    },
    /// Coalesced reply: one message delivering several `(object, version)`
    /// payloads. Costs a single receive-handler interrupt.
    AggObjectArrive {
        proc: ProcId,
        items: Vec<(ObjectId, u64)>,
        task: TaskId,
        requested_at: SimTime,
    },
    /// Ack timer for one fetch attempt: if the reply is still pending when
    /// this fires, the request is re-sent with exponential backoff.
    FetchTimeout {
        proc: ProcId,
        task: TaskId,
        obj: ObjectId,
        attempt: u32,
    },
    /// Injected fail-stop of a processor.
    ProcFail {
        proc: ProcId,
    },
    /// Periodic checkpoint capture (`FaultPlan::checkpoint`). Reschedules
    /// itself until the program completes.
    CheckpointTick,
}

#[derive(Clone, Debug, Default)]
struct TState {
    assigned_to: ProcId,
    /// Objects still being fetched, with the current attempt number. A
    /// reply is accepted only while its object is pending; the attempt
    /// gates stale ack timers.
    pending: Vec<(ObjectId, u32)>,
    ready: bool,
    /// Remaining objects to request (serial-fetch mode only).
    fetch_queue: VecDeque<ObjectId>,
    /// Passed through `send_assignment` at least once (re-dispatch state).
    dispatched: bool,
    /// The task's body finished and its writes were applied; it must never
    /// be re-executed, even if its processor dies before the completion
    /// notification lands.
    finished_local: bool,
    /// The split-phase prefetch path already issued this task's fetches at
    /// assignment time; `on_assign_arrive` reconciles instead of issuing.
    prefetch_issued: bool,
    /// Objects the prefetch requested (hit/stale accounting at reconcile).
    prefetched: Vec<ObjectId>,
}

struct PState {
    /// Assigned tasks that have arrived, FIFO.
    queue: VecDeque<TaskId>,
    executing: Option<TaskId>,
}

/// One captured checkpoint: the communicator tables and the synchronizer
/// state at capture time. The payload store at main is cumulative across
/// checkpoints, so coverage is judged against the latest capture's version
/// vector alone.
struct Checkpoint {
    comm: CommSnapshot,
    sync: SyncSnapshot,
}

struct Sim<'a> {
    trace: &'a Trace,
    cfg: &'a IpscConfig,
    cal: Calendar<Ev>,
    pc: ProcClock,
    sync: Synchronizer,
    sched: IpscScheduler,
    comm: Communicator,
    tstate: Vec<TState>,
    pstate: Vec<PState>,
    next_rec: usize,
    main_blocked: Option<TaskId>,
    main_done: bool,
    /// Handler time that interrupted each processor's currently-executing
    /// task, split by component; the task's completion is pushed back by
    /// the total. The split lets the settlement at `Ev::Finish` emit
    /// correctly-typed spans for the preempted interval.
    debt_comm: Vec<SimDuration>,
    debt_mgmt: Vec<SimDuration>,
    /// Shared-medium wire occupancy (workstation configurations): index 0
    /// of a one-entry clock; `None` on switched networks. The wire is a
    /// pseudo-processor and gets no event spans.
    wire: Option<ProcClock>,
    /// Structured event stream; every statistic in [`IpscRunResult`] is
    /// reconstructed from it.
    events: EventSink,
    /// Phases whose `PhaseStart` has been emitted.
    phase_started: Vec<bool>,
    /// Fault decision stream for this run.
    inj: FaultInjector,
    /// Message faults are possible, so fetches arm ack timers. False for
    /// fail-stop-only or stall-only plans: no timer events, no retries.
    lossy: bool,
    /// Fail-stopped processors.
    dead: Vec<bool>,
    /// Unrecoverable protocol failure; aborts the event loop.
    fatal: Option<IpscError>,
    /// Replay support ([`IpscConfig::pinned`]): each processor's recorded
    /// task sequence in start order, and a cursor into it. A processor only
    /// starts the task its cursor points at, so execution order matches the
    /// recording even when assignment *arrivals* land in a different order.
    pin_seq: Vec<Vec<TaskId>>,
    pin_cursor: Vec<usize>,
    /// Per-processor monotone floor for interrupt-handler completion
    /// stamps ([`Sim::handler_op`]).
    hstamp: Vec<SimTime>,
    /// Virtual-time budget ([`IpscConfig::deadline`]).
    budget: Option<dsim::SimBudget>,
    /// The budget expired: main stopped creating tasks mid-program.
    deadline_hit: bool,
    // Native fault tallies, cross-checked against the event stream.
    n_dropped: u64,
    n_retried: u64,
    n_discarded: u64,
    n_stalls: u64,
    n_reexec: u64,
    n_checkpoints: u64,
    n_ckpt_bytes: u64,
    n_ckpt_restores: u64,
    n_restore_bytes: u64,
    n_prefetch_issued: u64,
    n_prefetch_hits: u64,
    n_prefetch_stale: u64,
    /// Latest captured checkpoint; fail-stop recovery consults it.
    last_ckpt: Option<Checkpoint>,
    /// Feedback controller ([`IpscConfig::tune`]); its log is surfaced in
    /// [`IpscRunResult::tune`].
    ctl: jade_core::Controller,
}

/// Simulate `trace` on the configured iPSC/860.
///
/// Panics on an [`IpscError`] (malformed fault plan, stalled protocol);
/// use [`try_run`] to handle failures as values.
pub fn run(trace: &Trace, cfg: &IpscConfig) -> IpscRunResult {
    run_traced(trace, cfg).0
}

/// Like [`run`], but also returns the structured event stream of the run.
pub fn run_traced(trace: &Trace, cfg: &IpscConfig) -> (IpscRunResult, Vec<Event>) {
    try_run_traced(trace, cfg).unwrap_or_else(|e| panic!("ipsc simulation failed: {e}"))
}

/// Fallible variant of [`run`].
pub fn try_run(trace: &Trace, cfg: &IpscConfig) -> Result<IpscRunResult, IpscError> {
    Ok(try_run_traced(trace, cfg)?.0)
}

/// Reject machine/cost parameters that would poison virtual-time
/// arithmetic deep in the event loop (division by a non-positive
/// bandwidth, a negative task duration, a jitter multiplier below zero):
/// every value here is reachable from user configuration, so each failure
/// is a typed [`IpscError::InvalidMachine`], not a panic.
fn validate_machine(cfg: &IpscConfig) -> Result<(), IpscError> {
    let bad = |why: String| Err(IpscError::InvalidMachine(why));
    let m = &cfg.machine;
    if !(m.link_bandwidth.is_finite() && m.link_bandwidth > 0.0) {
        return bad(format!(
            "link bandwidth must be finite and positive, got {}",
            m.link_bandwidth
        ));
    }
    for (name, v) in [
        ("message latency", m.message_latency_s),
        ("per-hop latency", m.per_hop_s),
        ("sec_per_op", cfg.sec_per_op),
    ] {
        if !(v.is_finite() && (0.0..=3_600.0).contains(&v)) {
            return bad(format!("{name} must be in [0, 3600] seconds, got {v}"));
        }
    }
    // The jitter multiplier is `1 + frac * (u - 0.5)` with `u` in [0, 1);
    // frac beyond 2 makes task durations negative.
    if !(cfg.jitter_frac.is_finite() && (0.0..=2.0).contains(&cfg.jitter_frac)) {
        return bad(format!(
            "jitter fraction must be in [0, 2], got {}",
            cfg.jitter_frac
        ));
    }
    if let Some(speeds) = &cfg.speed_factors {
        if speeds.is_empty() {
            return bad("speed factor list is empty".into());
        }
        for (i, &s) in speeds.iter().enumerate() {
            if !(s.is_finite() && s > 0.0) {
                return bad(format!(
                    "speed factor for processor {i} must be finite and positive, got {s}"
                ));
            }
        }
    }
    Ok(())
}

/// Fallible variant of [`run_traced`]. The result is computed from the
/// events (via [`Metrics::from_events`]), so the two views cannot diverge.
pub fn try_run_traced(
    trace: &Trace,
    cfg: &IpscConfig,
) -> Result<(IpscRunResult, Vec<Event>), IpscError> {
    let procs = cfg.machine.procs;
    if procs < 1 {
        return Err(IpscError::NoProcessors);
    }
    validate_machine(cfg)?;
    cfg.faults.validate().map_err(IpscError::InvalidFaultPlan)?;
    if let Some(fp) = cfg.faults.fail_proc {
        if fp == jade_core::MAIN_PROC {
            return Err(IpscError::InvalidFaultPlan(
                "the main processor cannot fail-stop (it holds the scheduler \
                 and the recovery copies)"
                    .into(),
            ));
        }
        if fp >= procs {
            return Err(IpscError::InvalidFaultPlan(format!(
                "fail-stop processor {fp} out of range (machine has {procs})"
            )));
        }
    }
    let plan = cfg.faults;
    let nphases = trace.phases.max(1) as usize;
    // Serial tasks never pass through the per-processor queues (main runs
    // them directly), so the replay sequences hold ordinary tasks only.
    let pin_seq: Vec<Vec<TaskId>> = if let Some(pin) = &cfg.pinned {
        let mut order: Vec<usize> = (0..trace.tasks.len().min(pin.rank.len()))
            .filter(|&i| pin.rank[i] != u64::MAX && !trace.tasks[i].serial_phase)
            .collect();
        order.sort_by_key(|&i| pin.rank[i]);
        let mut per: Vec<Vec<TaskId>> = vec![Vec::new(); procs];
        for i in order {
            if let Some(p) = pin.assign[i] {
                per[p.min(procs - 1)].push(trace.tasks[i].id);
            }
        }
        per
    } else {
        Vec::new()
    };
    let mut sim = Sim {
        trace,
        cfg,
        cal: Calendar::new(),
        pc: ProcClock::new(procs),
        sync: Synchronizer::new(cfg.replication),
        sched: IpscScheduler::new(procs, cfg.target_tasks, cfg.mode.uses_locality()),
        comm: Communicator::new(trace, procs, cfg.adaptive_broadcast, cfg.faults.drop_p),
        tstate: vec![TState::default(); trace.tasks.len()],
        pstate: (0..procs)
            .map(|_| PState {
                queue: VecDeque::new(),
                executing: None,
            })
            .collect(),
        next_rec: 0,
        main_blocked: None,
        main_done: false,
        debt_comm: vec![SimDuration::ZERO; procs],
        debt_mgmt: vec![SimDuration::ZERO; procs],
        wire: cfg.shared_medium.then(|| ProcClock::new(1)),
        events: EventSink::recording(),
        phase_started: vec![false; nphases],
        inj: FaultInjector::new(plan),
        lossy: plan.drop_p > 0.0 || plan.dup_p > 0.0 || plan.delay_p > 0.0 || plan.reorder_p > 0.0,
        dead: vec![false; procs],
        fatal: None,
        pin_seq,
        pin_cursor: vec![0; procs],
        hstamp: vec![SimTime::ZERO; procs],
        budget: cfg.deadline.map(dsim::SimBudget::new),
        deadline_hit: false,
        n_dropped: 0,
        n_retried: 0,
        n_discarded: 0,
        n_stalls: 0,
        n_reexec: 0,
        n_checkpoints: 0,
        n_ckpt_bytes: 0,
        n_ckpt_restores: 0,
        n_restore_bytes: 0,
        n_prefetch_issued: 0,
        n_prefetch_hits: 0,
        n_prefetch_stale: 0,
        last_ckpt: None,
        ctl: jade_core::Controller::new(),
    };
    sim.comm.set_evidence_margin(cfg.evidence_margin);
    sim.cal.schedule(SimTime::ZERO, Ev::MainStep);
    if let Some(fp) = plan.fail_proc {
        sim.cal
            .schedule(SimTime::ZERO + plan.fail_at, Ev::ProcFail { proc: fp });
    }
    if let Some(iv) = plan.checkpoint {
        sim.cal.schedule(SimTime::ZERO + iv, Ev::CheckpointTick);
    }
    while let Some((t, ev)) = sim.cal.pop() {
        sim.handle(t, ev);
        if sim.fatal.is_some() {
            break;
        }
    }
    if let Some(e) = sim.fatal {
        return Err(e);
    }
    // A deadline-cut run is a *successful partial* run, not a stall: tasks
    // the gate refused (and program steps never taken) are the cancelled
    // remainder the caller reads off `deadline_exceeded`.
    if !sim.deadline_hit && (!sim.main_done || !sim.sync.all_complete()) {
        return Err(IpscError::Stalled {
            live_tasks: sim.sync.live_tasks(),
        });
    }
    let events = sim.events.into_events();
    let m = Metrics::from_events(&events, procs);
    // The event stream must reproduce the machine model's own books.
    debug_assert_eq!(m.comm_bytes(), sim.comm.bytes_transferred);
    debug_assert_eq!(m.fetches, sim.comm.object_sends);
    debug_assert_eq!(m.broadcasts, sim.comm.broadcasts);
    debug_assert_eq!(m.pooled, sim.sched.pooled_total);
    debug_assert_eq!(m.msgs_dropped, sim.n_dropped);
    debug_assert_eq!(m.msgs_retried, sim.n_retried);
    debug_assert_eq!(m.msgs_discarded, sim.n_discarded);
    debug_assert_eq!(m.stalls, sim.n_stalls);
    debug_assert_eq!(m.tasks_reexecuted, sim.n_reexec);
    debug_assert_eq!(m.checkpoints, sim.n_checkpoints);
    debug_assert_eq!(m.checkpoint_bytes, sim.n_ckpt_bytes);
    debug_assert_eq!(m.checkpoint_restores, sim.n_ckpt_restores);
    debug_assert_eq!(m.object_restores, sim.comm.object_restores);
    debug_assert_eq!(m.restore_bytes, sim.n_restore_bytes);
    debug_assert_eq!(m.prefetches_issued, sim.n_prefetch_issued);
    debug_assert_eq!(m.prefetch_hits, sim.n_prefetch_hits);
    debug_assert_eq!(m.prefetch_stale, sim.n_prefetch_stale);
    debug_assert_eq!(
        m.workers_failed,
        sim.dead.iter().filter(|&&d| d).count() as u64
    );
    debug_assert_eq!(
        jade_core::check_conservation(&events, procs, sim.pc.horizon().0).err(),
        None
    );
    let task_secs = SimDuration(m.task_span_ps).as_secs_f64();
    let phase_lengths: Vec<f64> = m
        .phases
        .iter()
        .filter_map(|ph| match (ph.start_ps, ph.end_ps) {
            (Some(s), Some(e)) if e >= s => Some(SimDuration(e - s).as_secs_f64()),
            _ => None,
        })
        .collect();
    let result = IpscRunResult {
        procs,
        exec_time_s: sim.pc.horizon().as_secs_f64(),
        task_time_s: task_secs,
        locality_pct: dsim::percent(m.locality_hits as f64, m.locality_tracked as f64),
        locality_tracked: m.locality_tracked,
        tasks_executed: m.tasks_started,
        comm_bytes: m.comm_bytes(),
        comm_to_comp: dsim::ratio(m.comm_bytes() as f64 / 1e6, task_secs),
        object_latency_s: SimDuration(m.object_latency_ps).as_secs_f64(),
        task_latency_s: SimDuration(m.task_latency_ps).as_secs_f64(),
        fetches: m.fetches,
        requests: m.requests,
        agg_fetches: m.agg_fetches,
        agg_objects: m.agg_objects,
        fetch_messages: m.fetch_messages(),
        broadcasts: m.broadcasts,
        pooled: m.pooled,
        mgmt_time_s: SimDuration(m.total().mgmt_ps).as_secs_f64(),
        main_busy_s: SimDuration(m.per_proc[0].mgmt_ps + m.per_proc[0].comm_ps).as_secs_f64(),
        mean_parallel_phase_s: if phase_lengths.is_empty() {
            0.0
        } else {
            phase_lengths.iter().sum::<f64>() / phase_lengths.len() as f64
        },
        per_proc_busy: (0..procs)
            .map(|p| {
                let u = sim.pc.usage(p);
                (
                    u.app.as_secs_f64(),
                    u.comm.as_secs_f64(),
                    u.mgmt.as_secs_f64(),
                )
            })
            .collect(),
        msgs_dropped: m.msgs_dropped,
        msgs_retried: m.msgs_retried,
        msgs_discarded: m.msgs_discarded,
        stalls: m.stalls,
        workers_failed: m.workers_failed,
        tasks_reexecuted: m.tasks_reexecuted,
        checkpoints: m.checkpoints,
        checkpoint_bytes: m.checkpoint_bytes,
        checkpoint_restores: m.checkpoint_restores,
        objects_restored: m.object_restores,
        restore_bytes: m.restore_bytes,
        prefetches_issued: m.prefetches_issued,
        prefetch_hits: m.prefetch_hits,
        prefetch_stale: m.prefetch_stale,
        overlap_frac: m.overlap_fraction(),
        final_versions: sim.comm.final_versions(),
        deadline_exceeded: sim.deadline_hit,
        tune: sim.ctl.log.clone(),
    };
    Ok((result, events))
}

/// Deterministic mean-zero multiplicative jitter for task `id`.
fn jitter(id: TaskId, frac: f64) -> f64 {
    let h = (id.0 as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
    let u = ((h >> 40) % 10_000) as f64 / 10_000.0; // [0, 1)
    1.0 + frac * (u - 0.5)
}

impl Sim<'_> {
    fn handle(&mut self, t: SimTime, ev: Ev) {
        match ev {
            Ev::MainStep => self.main_step(t),
            Ev::AssignArrive { proc, task } => {
                if self.dead[proc] {
                    return; // assignment in flight to a dead processor
                }
                self.on_assign_arrive(proc, task, t);
            }
            Ev::RequestArrive {
                obj,
                requester,
                task,
                sent_at,
            } => self.on_request_arrive(obj, requester, task, sent_at, t),
            Ev::ObjectArrive {
                proc,
                obj,
                version,
                task,
                requested_at,
            } => self.on_object_arrive(proc, obj, version, task, requested_at, t),
            Ev::AggRequestArrive {
                objs,
                requester,
                task,
                sent_at,
            } => self.on_agg_request_arrive(objs, requester, task, sent_at, t),
            Ev::AggObjectArrive {
                proc,
                items,
                task,
                requested_at,
            } => self.on_agg_object_arrive(proc, items, task, requested_at, t),
            Ev::BroadcastArrive { proc, obj, version } => {
                self.on_pushed_arrive(proc, obj, version, t)
            }
            Ev::EagerArrive { proc, obj, version } => self.on_pushed_arrive(proc, obj, version, t),
            Ev::Finish { proc, task } => {
                if self.dead[proc] {
                    return; // the processor died mid-task; the task was orphaned
                }
                // Interrupt handlers that preempted this task pushed its
                // completion back; settle the debt before finishing. The
                // settled interval tiles onto the processor's timeline
                // right after the task's own span, so the spans emitted
                // here keep the per-processor timeline gap-free.
                let mgmt = std::mem::take(&mut self.debt_mgmt[proc]);
                let comm = std::mem::take(&mut self.debt_comm[proc]);
                let debt = mgmt + comm;
                if debt > SimDuration::ZERO {
                    let until = t + debt;
                    self.pc.push_free_at(proc, until);
                    self.events.span(t.0, proc, Component::Mgmt, mgmt.0, None);
                    self.events
                        .span(t.0 + mgmt.0, proc, Component::Comm, comm.0, None);
                    self.cal.schedule(until, Ev::Finish { proc, task });
                } else {
                    self.on_finish(proc, task, t);
                }
            }
            Ev::NotifyArrive { proc, task } => self.on_notify(proc, task, t),
            Ev::FetchTimeout {
                proc,
                task,
                obj,
                attempt,
            } => self.on_fetch_timeout(proc, task, obj, attempt, t),
            Ev::ProcFail { proc } => self.on_proc_fail(proc, t),
            Ev::CheckpointTick => self.on_checkpoint_tick(t),
        }
    }

    fn main_available(&self) -> bool {
        self.main_done || self.main_blocked.is_some()
    }

    fn msg(&self, bytes: usize, src: ProcId, dst: ProcId) -> SimDuration {
        self.cfg.machine.message_time(bytes, src, dst)
    }

    /// Perform interrupt-driven handler work of duration `dur` on `p`.
    ///
    /// NX/2 message handlers preempt the running computation ("the interrupt
    /// handler that received the message containing the task immediately
    /// sends out messages requesting the remote objects ... and it resumes
    /// the execution of this old task", Section 3.4.3). If `p` is executing
    /// a task, the handler runs now and the task's completion is pushed back
    /// by the handler time; otherwise the handler serializes on `p`'s
    /// timeline like any other work. Returns the handler's finish time.
    fn handler_op(&mut self, p: ProcId, now: SimTime, dur: SimDuration, kind: TimeKind) -> SimTime {
        // Interrupt handlers on one processor execute serially, so their
        // completion stamps must never regress — even when an interrupt
        // (stamped near calendar time) interleaves with queued idle-time
        // handler work whose stamps were pushed into the future by a
        // backlog. Without the floor, a pool-pull dispatch could be
        // stamped before the same task's pooled record.
        let now = now.max(self.hstamp[p]);
        let end = if self.pstate[p].executing.is_some() {
            self.pc.account(p, dur, kind);
            match kind {
                TimeKind::Comm => self.debt_comm[p] += dur,
                _ => self.debt_mgmt[p] += dur,
            }
            now + dur
        } else {
            self.occupy_ev(p, now, dur, kind, None)
        };
        self.hstamp[p] = end;
        end
    }

    /// Occupy `p`'s timeline and emit the matching event span.
    fn occupy_ev(
        &mut self,
        p: ProcId,
        now: SimTime,
        dur: SimDuration,
        kind: TimeKind,
        task: Option<TaskId>,
    ) -> SimTime {
        let end = self.pc.occupy(p, now, dur, kind);
        self.events.span(end.0 - dur.0, p, comp(kind), dur.0, task);
        end
    }

    fn main_step(&mut self, t: SimTime) {
        // Deadline: stop creating tasks once the budget is spent. The
        // already-created suffix drains normally (each created task's
        // predecessors were created before it), so the run terminates
        // cleanly with partial metrics instead of wedging as `Stalled`.
        if self.next_rec < self.trace.tasks.len() && self.budget.is_some_and(|b| b.exhausted(t)) {
            self.deadline_hit = true;
            self.main_done = true;
            self.try_execute(0, t);
            return;
        }
        if self.next_rec == self.trace.tasks.len() {
            self.main_done = true;
            self.try_execute(0, t);
            return;
        }
        let rec = &self.trace.tasks[self.next_rec];
        let id = rec.id;
        self.next_rec += 1;
        if rec.serial_phase {
            self.main_blocked = Some(id);
            let enabled = self
                .sync
                .add_task_traced(id, &rec.spec, &mut self.events, t.0, 0);
            if enabled {
                self.begin_serial(id, t);
            } else {
                self.try_execute(0, t);
            }
        } else {
            let create = self.cfg.costs.create();
            let end = self.occupy_ev(0, t, create, TimeKind::Mgmt, Some(id));
            self.note_phase_start(rec.phase, end, rec.serial_phase);
            let enabled = self
                .sync
                .add_task_traced(id, &rec.spec, &mut self.events, end.0, 0);
            if enabled {
                self.schedule_enabled(id, end);
            }
            self.cal.schedule(end, Ev::MainStep);
        }
    }

    fn note_phase_start(&mut self, phase: u32, t: SimTime, serial: bool) {
        let ph = phase as usize;
        if !serial && !self.phase_started[ph] {
            self.phase_started[ph] = true;
            self.events.emit(t.0, 0, EventKind::PhaseStart { phase });
        }
    }

    fn note_phase_end(&mut self, phase: u32, p: ProcId, t: SimTime) {
        self.events.emit(t.0, p, EventKind::PhaseEnd { phase });
    }

    /// Target processor of a task: the current owner of its locality object.
    fn target_of(&self, id: TaskId) -> ProcId {
        self.trace.tasks[id.index()]
            .spec
            .locality_object()
            .map_or(jade_core::MAIN_PROC, |o| self.comm.owner(o))
    }

    /// A serial-phase task became runnable: fetch its remote objects to the
    /// main processor, then run it there inline.
    fn begin_serial(&mut self, id: TaskId, t: SimTime) {
        self.tstate[id.index()].assigned_to = 0;
        self.issue_fetches(0, id, t);
        self.try_execute(0, t);
    }

    fn schedule_enabled(&mut self, id: TaskId, t: SimTime) {
        if self.main_blocked == Some(id) {
            self.begin_serial(id, t);
            return;
        }
        let rec = &self.trace.tasks[id.index()];
        let end = self.handler_op(0, t, self.cfg.costs.sched(), TimeKind::Mgmt);
        // A replayed schedule overrides both the trace placement and the
        // locality mode: the point of pinning is to reproduce the recorded
        // run's task→processor map exactly.
        let placement = if let Some(pin) = &self.cfg.pinned {
            pin.assign
                .get(id.index())
                .copied()
                .flatten()
                .map(|p| p.min(self.pc.procs() - 1))
        } else if self.cfg.mode.honors_placement() {
            rec.placement.map(|p| p.min(self.pc.procs() - 1))
        } else {
            None
        };
        let target = self.target_of(id);
        match self.sched.on_enabled(id, target, placement) {
            Decision::Assign(p) => self.send_assignment(p, id, end),
            Decision::Pool => self.events.emit_task(end.0, 0, EventKind::TaskPooled, id),
        }
    }

    fn send_assignment(&mut self, p: ProcId, id: TaskId, t: SimTime) {
        let rec = &self.trace.tasks[id.index()];
        // Locality is judged at assignment, against the owner of the
        // locality object at this moment (ownership is dynamic).
        let locality = if rec.serial_phase || rec.spec.locality_object().is_none() {
            Locality::Untracked
        } else if p == self.target_of(id) {
            Locality::Hit
        } else {
            Locality::Miss
        };
        self.events.emit_task(
            t.0,
            p,
            EventKind::TaskDispatched {
                stolen: false,
                locality,
            },
            id,
        );
        self.tstate[id.index()].assigned_to = p;
        self.tstate[id.index()].dispatched = true;
        if p == 0 {
            self.cal.schedule(t, Ev::AssignArrive { proc: 0, task: id });
        } else {
            if self.cfg.prefetch && self.cfg.concurrent_fetches && !self.cfg.work_free {
                self.prefetch_issue(p, id, t);
            }
            let dur = self.msg(self.cfg.costs.assign_bytes, 0, p);
            self.events.emit_task(
                t.0,
                0,
                EventKind::MsgSend {
                    bytes: self.cfg.costs.assign_bytes as u64,
                },
                id,
            );
            let send_end = self.handler_op(0, t, dur, TimeKind::Comm);
            self.cal
                .schedule(send_end, Ev::AssignArrive { proc: p, task: id });
        }
    }

    fn on_assign_arrive(&mut self, p: ProcId, id: TaskId, t: SimTime) {
        // "The interrupt handler that received the message containing the
        // task immediately sends out messages requesting the remote objects"
        if p != 0 {
            self.events.emit_task(
                t.0,
                p,
                EventKind::MsgRecv {
                    bytes: self.cfg.costs.assign_bytes as u64,
                },
                id,
            );
        }
        let t1 = self.handler_op(p, t, self.cfg.costs.recv_handler(), TimeKind::Mgmt);
        if let Some(pin) = &self.cfg.pinned {
            // Replay: keep each processor's queue in the recorded start
            // order, so differences in assignment *arrival* order (which
            // shift when prefetch moves completion times around) cannot
            // reorder execution.
            let rank = |x: TaskId| pin.rank.get(x.index()).copied().unwrap_or(u64::MAX);
            let key = rank(id);
            let q = &mut self.pstate[p].queue;
            let pos = q.iter().position(|&x| rank(x) > key).unwrap_or(q.len());
            q.insert(pos, id);
        } else {
            self.pstate[p].queue.push_back(id);
        }
        if self.tstate[id.index()].prefetch_issued {
            self.reconcile_prefetch(p, id, t1);
        } else {
            self.issue_fetches(p, id, t1);
        }
        self.try_execute(p, t1);
    }

    /// Split-phase prefetch, issue half: main sends the object requests
    /// for a task it just assigned to `p`, before the assignment message
    /// itself lands. Main (the issuer) pays the request-send handler
    /// time; the replies, ack timers and retries belong to `p`, so a lost
    /// prefetch degrades to the proven per-object fetch/retry path.
    fn prefetch_issue(&mut self, p: ProcId, id: TaskId, t: SimTime) {
        let rec = &self.trace.tasks[id.index()];
        let needed: Vec<ObjectId> = rec
            .spec
            .decls()
            .iter()
            .filter(|d| self.comm.needs_fetch(p, d.object))
            .map(|d| d.object)
            .collect();
        let ts = &mut self.tstate[id.index()];
        ts.prefetch_issued = true;
        ts.prefetched = needed.clone();
        if needed.is_empty() {
            return;
        }
        ts.pending = needed.iter().map(|&o| (o, 0)).collect();
        for &o in &needed {
            self.n_prefetch_issued += 1;
            self.events.emit_obj(
                t.0,
                0,
                EventKind::PrefetchIssued {
                    bytes: self.trace.object_size(o) as u64,
                },
                Some(id),
                o,
            );
        }
        let mut t_cur = t;
        if self.cfg.aggregate_fetches {
            for (owner, group) in self.comm.group_by_owner(&needed) {
                if group.len() >= 2 && self.aggregation_pays(group.len()) {
                    t_cur = self.send_agg_fetch_request(0, p, id, owner, group, t_cur);
                } else {
                    for o in group {
                        t_cur = self.send_fetch_request(0, p, id, o, 0, t_cur);
                    }
                }
            }
        } else {
            for o in needed {
                t_cur = self.send_fetch_request(0, p, id, o, 0, t_cur);
            }
        }
    }

    /// Split-phase prefetch, reconcile half: the assignment arrived at
    /// `p`; check every declared object against the prefetch. In-flight
    /// prefetches keep waiting, resident objects count as hits, and an
    /// object written again since the prefetch snapshot (reachable only
    /// under fault injection — the synchronizer serializes writers against
    /// enabled readers) is refetched through the normal path.
    fn reconcile_prefetch(&mut self, p: ProcId, id: TaskId, t: SimTime) {
        let decls: Vec<ObjectId> = self.trace.tasks[id.index()]
            .spec
            .decls()
            .iter()
            .map(|d| d.object)
            .collect();
        let mut t_cur = t;
        for o in decls {
            let bytes = self.trace.object_size(o) as u64;
            let ts = &self.tstate[id.index()];
            if ts.pending.iter().any(|&(po, _)| po == o) {
                continue; // prefetch reply still in flight toward `p`
            }
            let was_prefetched = ts.prefetched.contains(&o);
            if self.comm.needs_fetch(p, o) {
                if was_prefetched {
                    self.n_prefetch_stale += 1;
                    self.events.emit_obj(
                        t_cur.0,
                        p,
                        EventKind::PrefetchStale { bytes },
                        Some(id),
                        o,
                    );
                    // The refetch is an ordinary fetch, not a prefetch hit.
                    self.tstate[id.index()].prefetched.retain(|&x| x != o);
                }
                self.tstate[id.index()].pending.push((o, 0));
                t_cur = self.send_fetch_request(p, p, id, o, 0, t_cur);
            } else {
                // Locally satisfied — either the prefetch landed (its hit
                // was counted at delivery) or no fetch was ever needed;
                // both consume the version (feeds the adaptive-broadcast
                // trigger, like `issue_fetches`).
                self.comm.note_access(p, o);
            }
        }
        let ts = &mut self.tstate[id.index()];
        if ts.pending.is_empty() && ts.fetch_queue.is_empty() {
            ts.ready = true;
        }
    }

    fn issue_fetches(&mut self, p: ProcId, id: TaskId, t: SimTime) {
        let rec = &self.trace.tasks[id.index()];
        if self.cfg.work_free {
            self.tstate[id.index()].ready = true;
            return;
        }
        let mut needed: Vec<ObjectId> = Vec::new();
        for d in rec.spec.decls() {
            if self.comm.needs_fetch(p, d.object) {
                needed.push(d.object);
            } else {
                // Locally satisfied: still counts as consuming the version
                // (feeds the adaptive-broadcast trigger).
                self.comm.note_access(p, d.object);
            }
        }
        if needed.is_empty() {
            self.tstate[id.index()].ready = true;
            return;
        }
        if self.cfg.concurrent_fetches {
            // Request sends serialize on the processor; the transfers
            // themselves proceed in parallel at the owners.
            self.tstate[id.index()].pending = needed.iter().map(|&o| (o, 0)).collect();
            let mut t_cur = t;
            if self.cfg.aggregate_fetches {
                // Inspector/executor pass: coalesce this task's fetches
                // into one message per owner where the break-even holds.
                for (owner, group) in self.comm.group_by_owner(&needed) {
                    if group.len() >= 2 && self.aggregation_pays(group.len()) {
                        t_cur = self.send_agg_fetch_request(p, p, id, owner, group, t_cur);
                    } else {
                        for o in group {
                            t_cur = self.send_fetch_request(p, p, id, o, 0, t_cur);
                        }
                    }
                }
            } else {
                for o in needed {
                    t_cur = self.send_fetch_request(p, p, id, o, 0, t_cur);
                }
            }
        } else {
            // Serial-fetch ablation: one request at a time.
            self.tstate[id.index()].fetch_queue = needed.into();
            self.send_next_fetch(p, id, t);
        }
    }

    fn send_next_fetch(&mut self, p: ProcId, id: TaskId, t: SimTime) {
        let Some(o) = self.tstate[id.index()].fetch_queue.pop_front() else {
            return;
        };
        self.tstate[id.index()].pending.push((o, 0));
        self.send_fetch_request(p, p, id, o, 0, t);
    }

    /// Send (or re-send) the request for one object of a task's fetch set,
    /// apply the network fault fate to the request message, and — when
    /// message faults are possible — arm the ack timer for this attempt.
    /// Returns the time the request send completed on `issuer`.
    ///
    /// `issuer` pays the request-send handler time and the request's wire
    /// leg; the reply, ack timer and any retries are bound to `p` (the
    /// fetching processor). The two differ only on the split-phase
    /// prefetch path, where the main processor issues on `p`'s behalf.
    fn send_fetch_request(
        &mut self,
        issuer: ProcId,
        p: ProcId,
        id: TaskId,
        o: ObjectId,
        attempt: u32,
        t: SimTime,
    ) -> SimTime {
        let owner = self.comm.owner(o);
        if issuer == owner {
            // Prefetch of an object the issuer already owns (main-resident
            // data): there is no request message to compose or lose — the
            // owner starts streaming the reply directly.
            self.cal.schedule(
                t,
                Ev::RequestArrive {
                    obj: o,
                    requester: p,
                    task: id,
                    sent_at: t,
                },
            );
            if self.lossy {
                let timeout = self.retry_timeout(o, p, owner, attempt);
                self.cal.schedule(
                    t + timeout,
                    Ev::FetchTimeout {
                        proc: p,
                        task: id,
                        obj: o,
                        attempt,
                    },
                );
            }
            return t;
        }
        // Issuing on behalf of another processor happens inside the
        // dispatch handler main is already paying for (split-phase
        // prefetch): the request packet joins the outgoing transfer, so
        // no separate send-handler occupancy — the owner and requester
        // still pay their full receive-side costs.
        let sent = if issuer == p {
            self.handler_op(issuer, t, self.cfg.costs.request_send(), TimeKind::Comm)
        } else {
            t
        };
        self.events.emit_obj(
            sent.0,
            issuer,
            EventKind::ObjectRequest {
                bytes: self.cfg.costs.request_bytes as u64,
            },
            Some(id),
            o,
        );
        let base = sent + self.msg(self.cfg.costs.request_bytes, issuer, owner);
        let fate = self.inj.message_fate();
        if fate.dropped() {
            self.n_dropped += 1;
            self.events.emit_obj(
                sent.0,
                issuer,
                EventKind::MsgDropped {
                    bytes: self.cfg.costs.request_bytes as u64,
                },
                Some(id),
                o,
            );
        } else {
            for extra in fate.copies {
                self.cal.schedule(
                    base + extra,
                    Ev::RequestArrive {
                        obj: o,
                        requester: p,
                        task: id,
                        sent_at: sent,
                    },
                );
            }
        }
        if self.lossy {
            let timeout = self.retry_timeout(o, p, owner, attempt);
            self.cal.schedule(
                sent + timeout,
                Ev::FetchTimeout {
                    proc: p,
                    task: id,
                    obj: o,
                    attempt,
                },
            );
        }
        sent
    }

    /// Section 5.3 break-even for coalescing `k` fetches from one owner
    /// into a single request/reply pair. A message's fixed cost is its
    /// wire latency both ways plus the sender/receiver software handlers;
    /// coalescing saves `k - 1` of those and pays for `2k` per-object
    /// header entries (request list + reply directory) at the link
    /// bandwidth. Aggregate only when the savings win.
    fn aggregation_pays(&self, k: usize) -> bool {
        let m = &self.cfg.machine;
        let c = &self.cfg.costs;
        let per_msg =
            2.0 * (m.message_latency_s + m.per_hop_s) + c.request_send_s + c.object_recv_s;
        let saved = (k as f64 - 1.0) * per_msg;
        let extra = 2.0 * k as f64 * c.agg_entry_bytes as f64 / m.link_bandwidth;
        saved > extra
    }

    /// Send one coalesced request for `objs` (all owned by `owner` at
    /// inspection time). The bundle shares a single message fate; when
    /// message faults are possible each object still arms its own ack
    /// timer, so a lost bundle degrades to the proven per-object
    /// fetch/retry path.
    fn send_agg_fetch_request(
        &mut self,
        issuer: ProcId,
        p: ProcId,
        id: TaskId,
        owner: ProcId,
        objs: Vec<ObjectId>,
        t: SimTime,
    ) -> SimTime {
        if issuer == owner {
            // As in `send_fetch_request`: the issuer owns the whole group,
            // so the coalesced reply starts without a request message.
            self.cal.schedule(
                t,
                Ev::AggRequestArrive {
                    objs: objs.clone(),
                    requester: p,
                    task: id,
                    sent_at: t,
                },
            );
            if self.lossy {
                for &o in &objs {
                    let timeout = self.retry_timeout(o, p, owner, 0);
                    self.cal.schedule(
                        t + timeout,
                        Ev::FetchTimeout {
                            proc: p,
                            task: id,
                            obj: o,
                            attempt: 0,
                        },
                    );
                }
            }
            return t;
        }
        // Same piggyback rule as `send_fetch_request`: a prefetch bundle
        // issued for another processor rides the dispatch handler already
        // in progress and costs the issuer no extra send-handler time.
        let sent = if issuer == p {
            self.handler_op(issuer, t, self.cfg.costs.request_send(), TimeKind::Comm)
        } else {
            t
        };
        let req_bytes = self.cfg.costs.request_bytes + objs.len() * self.cfg.costs.agg_entry_bytes;
        self.events.emit_obj(
            sent.0,
            issuer,
            EventKind::ObjectRequest {
                bytes: req_bytes as u64,
            },
            Some(id),
            objs[0],
        );
        let base = sent + self.msg(req_bytes, issuer, owner);
        let fate = self.inj.message_fate();
        if fate.dropped() {
            self.n_dropped += 1;
            self.events.emit_obj(
                sent.0,
                issuer,
                EventKind::MsgDropped {
                    bytes: req_bytes as u64,
                },
                Some(id),
                objs[0],
            );
        } else {
            for extra in fate.copies {
                self.cal.schedule(
                    base + extra,
                    Ev::AggRequestArrive {
                        objs: objs.clone(),
                        requester: p,
                        task: id,
                        sent_at: sent,
                    },
                );
            }
        }
        if self.lossy {
            for &o in &objs {
                let timeout = self.retry_timeout(o, p, owner, 0);
                self.cal.schedule(
                    sent + timeout,
                    Ev::FetchTimeout {
                        proc: p,
                        task: id,
                        obj: o,
                        attempt: 0,
                    },
                );
            }
        }
        sent
    }

    /// A coalesced request arrived. Owners are recomputed per object (a
    /// fail-stop while the bundle was in flight moves recovery copies);
    /// each current owner answers with its own coalesced reply, occupied
    /// for the full bundled send like any reply (Section 5.3).
    fn on_agg_request_arrive(
        &mut self,
        objs: Vec<ObjectId>,
        requester: ProcId,
        task: TaskId,
        sent_at: SimTime,
        t: SimTime,
    ) {
        let mut groups: Vec<(ProcId, Vec<ObjectId>)> = Vec::new();
        for o in objs {
            let owner = self.comm.owner(o);
            match groups.iter_mut().find(|(g, _)| *g == owner) {
                Some((_, v)) => v.push(o),
                None => groups.push((owner, vec![o])),
            }
        }
        for (owner, group) in groups {
            let mut bytes = self.cfg.costs.agg_entry_bytes * group.len();
            let mut items = Vec::with_capacity(group.len());
            for &o in &group {
                self.comm.record_request(requester, o);
                bytes += self.trace.object_size(o);
                items.push((o, self.comm.version(o)));
            }
            // Prefetch bundles stream asynchronously, like the single-object
            // path in `on_request_arrive`: wire time, no owner stall.
            let prefetch = {
                let ts = &self.tstate[task.index()];
                group.iter().any(|o| ts.prefetched.contains(o))
            };
            let dur = self.msg(bytes, owner, requester);
            let mut send_end = if prefetch {
                t + dur
            } else {
                self.handler_op(owner, t, dur, TimeKind::Comm)
            };
            if let Some(wire) = &mut self.wire {
                send_end = wire.occupy(0, t, dur, TimeKind::Comm).max(send_end);
            }
            let fate = self.inj.message_fate();
            if fate.dropped() {
                self.n_dropped += 1;
                self.events.emit_obj(
                    send_end.0,
                    owner,
                    EventKind::MsgDropped {
                        bytes: bytes as u64,
                    },
                    Some(task),
                    group[0],
                );
            } else {
                for extra in fate.copies {
                    self.cal.schedule(
                        send_end + extra,
                        Ev::AggObjectArrive {
                            proc: requester,
                            items: items.clone(),
                            task,
                            requested_at: sent_at,
                        },
                    );
                }
            }
        }
    }

    /// A coalesced reply arrived: one receive-handler interrupt, then each
    /// object delivers individually through the version-checked idempotent
    /// path — stale or unwanted entries are discarded exactly like
    /// uncoalesced duplicates (their ack timers re-fetch them singly).
    fn on_agg_object_arrive(
        &mut self,
        p: ProcId,
        items: Vec<(ObjectId, u64)>,
        task: TaskId,
        requested_at: SimTime,
        t: SimTime,
    ) {
        if self.dead[p] {
            return;
        }
        let prefetch = {
            let ts = &self.tstate[task.index()];
            items.iter().any(|(o, _)| ts.prefetched.contains(o))
        };
        let t1 = if prefetch {
            t
        } else {
            self.handler_op(p, t, self.cfg.costs.object_recv(), TimeKind::Comm)
        };
        let mut delivered = 0u32;
        let mut delivered_bytes = 0u64;
        let mut first_obj = None;
        for (obj, version) in items {
            let bytes = self.trace.object_size(obj) as u64;
            let ts = &self.tstate[task.index()];
            let wanted = ts.assigned_to == p
                && !ts.finished_local
                && ts.pending.iter().any(|&(po, _)| po == obj);
            if !wanted || !self.comm.deliver(p, obj, version, bytes) {
                self.n_discarded += 1;
                self.events
                    .emit_obj(t.0, p, EventKind::MsgDiscarded { bytes }, Some(task), obj);
                continue;
            }
            self.events.emit_obj(
                t.0,
                p,
                EventKind::ObjectFetch {
                    bytes,
                    latency_ps: t.since(requested_at).0,
                },
                Some(task),
                obj,
            );
            if self.tstate[task.index()].prefetched.contains(&obj) {
                self.n_prefetch_hits += 1;
                self.events
                    .emit_obj(t.0, p, EventKind::PrefetchHit { bytes }, Some(task), obj);
            }
            delivered += 1;
            delivered_bytes += bytes;
            first_obj.get_or_insert(obj);
            self.tstate[task.index()]
                .pending
                .retain(|&(po, _)| po != obj);
        }
        if delivered >= 2 {
            self.events.emit_obj(
                t.0,
                p,
                EventKind::AggregatedFetch {
                    objects: delivered,
                    bytes: delivered_bytes,
                },
                Some(task),
                first_obj.expect("delivered implies an object"),
            );
        }
        if delivered > 0 {
            let ts = &mut self.tstate[task.index()];
            if ts.pending.is_empty() && ts.fetch_queue.is_empty() {
                ts.ready = true;
                self.try_execute(p, t1);
            }
        }
    }

    /// Ack timeout for fetch `attempt`: a generous multiple of the
    /// request+reply round trip (so legitimate replies never race the
    /// timer under fault-plan latencies), doubling per attempt.
    fn retry_timeout(&self, o: ObjectId, p: ProcId, owner: ProcId, attempt: u32) -> SimDuration {
        let rtt = self.msg(self.cfg.costs.request_bytes, p, owner)
            + self.msg(self.trace.object_size(o), owner, p);
        let slack = self.inj.plan().delay + self.inj.plan().reorder_window;
        (rtt.mul_u64(4) + slack.mul_u64(2)).mul_u64(1 << attempt.min(10))
    }

    fn on_fetch_timeout(&mut self, p: ProcId, id: TaskId, o: ObjectId, attempt: u32, t: SimTime) {
        if self.dead[p] {
            return;
        }
        let ts = &self.tstate[id.index()];
        // Stale timer: the reply arrived, the task moved processors after a
        // fail-stop, or a newer attempt is already in flight.
        if ts.assigned_to != p || ts.finished_local {
            return;
        }
        let Some(slot) = ts
            .pending
            .iter()
            .position(|&(po, pa)| po == o && pa == attempt)
        else {
            return;
        };
        let next = attempt + 1;
        if next >= MAX_FETCH_ATTEMPTS {
            self.fatal = Some(IpscError::RetriesExhausted {
                task: id,
                object: o,
                attempts: next,
            });
            return;
        }
        self.tstate[id.index()].pending[slot].1 = next;
        self.n_retried += 1;
        self.events.emit_obj(
            t.0,
            p,
            EventKind::MsgRetried {
                bytes: self.cfg.costs.request_bytes as u64,
            },
            Some(id),
            o,
        );
        self.send_fetch_request(p, p, id, o, next, t);
    }

    fn on_request_arrive(
        &mut self,
        obj: ObjectId,
        requester: ProcId,
        task: TaskId,
        sent_at: SimTime,
        t: SimTime,
    ) {
        // The owner is recomputed at arrival: if the original owner
        // fail-stopped while the request was in flight, the live holder of
        // the recovery copy answers instead.
        let owner = self.comm.owner(obj);
        let bytes = self.trace.object_size(obj);
        self.comm.record_request(requester, obj);
        // The owner's processor is occupied for the full reply send: object
        // distribution delays the owner's computation (Section 5.3). The
        // exception is a split-phase prefetch reply, which the message
        // system streams asynchronously — the wire and byte counters see
        // the traffic, but no processor stalls for it (DESIGN.md §17).
        let prefetch = self.tstate[task.index()].prefetched.contains(&obj);
        let dur = self.msg(bytes, owner, requester);
        let mut send_end = if prefetch {
            t + dur
        } else {
            self.handler_op(owner, t, dur, TimeKind::Comm)
        };
        if let Some(wire) = &mut self.wire {
            // Workstation Ethernet: one transfer on the medium at a time.
            send_end = wire.occupy(0, t, dur, TimeKind::Comm).max(send_end);
        }
        let version = self.comm.version(obj);
        let fate = self.inj.message_fate();
        if fate.dropped() {
            self.n_dropped += 1;
            self.events.emit_obj(
                send_end.0,
                owner,
                EventKind::MsgDropped {
                    bytes: bytes as u64,
                },
                Some(task),
                obj,
            );
        } else {
            for extra in fate.copies {
                self.cal.schedule(
                    send_end + extra,
                    Ev::ObjectArrive {
                        proc: requester,
                        obj,
                        version,
                        task,
                        requested_at: sent_at,
                    },
                );
            }
        }
    }

    fn on_object_arrive(
        &mut self,
        p: ProcId,
        obj: ObjectId,
        version: u64,
        task: TaskId,
        requested_at: SimTime,
        t: SimTime,
    ) {
        if self.dead[p] {
            return;
        }
        let bytes = self.trace.object_size(obj) as u64;
        // Receiving costs handler time whether or not the payload is kept:
        // a duplicate still interrupts the processor. A prefetched reply
        // instead lands by asynchronous transfer — no interrupt, the data
        // is simply resident when the assignment reconciles (DESIGN.md §17).
        let prefetch = self.tstate[task.index()].prefetched.contains(&obj);
        let t1 = if prefetch {
            t
        } else {
            self.handler_op(p, t, self.cfg.costs.object_recv(), TimeKind::Comm)
        };
        let ts = &self.tstate[task.index()];
        let wanted = ts.assigned_to == p
            && !ts.finished_local
            && ts.pending.iter().any(|&(po, _)| po == obj);
        if !wanted || !self.comm.deliver(p, obj, version, bytes) {
            // Duplicate of an already-satisfied fetch, a reply overtaken by
            // a re-dispatch, or a stale version: discard, never apply.
            self.n_discarded += 1;
            self.events
                .emit_obj(t.0, p, EventKind::MsgDiscarded { bytes }, Some(task), obj);
            return;
        }
        self.events.emit_obj(
            t.0,
            p,
            EventKind::ObjectFetch {
                bytes,
                latency_ps: t.since(requested_at).0,
            },
            Some(task),
            obj,
        );
        if self.tstate[task.index()].prefetched.contains(&obj) {
            // The fetch this reply satisfies was initiated by the
            // split-phase prefetch: the early issue paid off.
            self.n_prefetch_hits += 1;
            self.events
                .emit_obj(t.0, p, EventKind::PrefetchHit { bytes }, Some(task), obj);
        }
        let ts = &mut self.tstate[task.index()];
        ts.pending.retain(|&(po, _)| po != obj);
        if ts.pending.is_empty() && ts.fetch_queue.is_empty() {
            ts.ready = true;
            self.try_execute(p, t1);
        } else if !self.cfg.concurrent_fetches {
            self.send_next_fetch(p, task, t1);
        }
    }

    /// A pushed copy (broadcast or eager update) arrived at `p`.
    fn on_pushed_arrive(&mut self, p: ProcId, obj: ObjectId, version: u64, t: SimTime) {
        if self.dead[p] {
            return;
        }
        self.handler_op(p, t, self.cfg.costs.object_recv(), TimeKind::Comm);
        if !self.comm.deliver_pushed(p, obj, version) {
            // Stale (a newer version exists) or duplicate (already held).
            self.n_discarded += 1;
            self.events.emit_obj(
                t.0,
                p,
                EventKind::MsgDiscarded {
                    bytes: self.trace.object_size(obj) as u64,
                },
                None,
                obj,
            );
        }
    }

    /// The deadline gate: refuse to start new work at `t` once the budget
    /// is spent. Sets `deadline_hit` — only called when a concrete ready
    /// task is being refused, so the flag means work was actually cut.
    fn deadline_cuts(&mut self, t: SimTime) -> bool {
        if self.budget.is_some_and(|b| b.exhausted(t)) {
            self.deadline_hit = true;
            return true;
        }
        false
    }

    fn try_execute(&mut self, p: ProcId, t: SimTime) {
        if self.pstate[p].executing.is_some() {
            return;
        }
        // Serial-phase code has priority on the main processor: it IS the
        // main thread.
        if p == 0 {
            if let Some(serial) = self.main_blocked {
                if self.tstate[serial.index()].ready {
                    if self.deadline_cuts(t) {
                        return;
                    }
                    self.start_task(0, serial, t);
                    return;
                }
            }
        }
        // Ordinary tasks run on processor 0 only while main is blocked/done.
        if p == 0 && !self.main_available() {
            return;
        }
        let Some(&head) = self.pstate[p].queue.front() else {
            return;
        };
        if !self.tstate[head.index()].ready {
            return;
        }
        if let Some(pin) = &self.cfg.pinned {
            let rank = |x: TaskId| pin.rank.get(x.index()).copied().unwrap_or(u64::MAX);
            let expected = self.pin_seq[p]
                .get(self.pin_cursor[p])
                .map_or(u64::MAX, |&x| rank(x));
            let r = rank(head);
            if r > expected {
                // The recording runs another task next on this processor;
                // its assignment has not arrived yet. Wait for it.
                return;
            }
            // r < expected is a fault re-execution of a task the cursor
            // already passed; let it through without advancing.
            if r == expected && r != u64::MAX && !self.deadline_cuts(t) {
                self.pin_cursor[p] += 1;
                self.pstate[p].queue.pop_front();
                self.start_task(p, head, t);
                return;
            }
        }
        if self.deadline_cuts(t) {
            return;
        }
        self.pstate[p].queue.pop_front();
        self.start_task(p, head, t);
    }

    fn start_task(&mut self, p: ProcId, id: TaskId, t: SimTime) {
        let mut t = t;
        // Injected transient stall: the processor is busy (a page of swap,
        // a GC pause, a cosmic-ray ECC scrub) before the task starts.
        if let Some(d) = self.inj.stall() {
            self.n_stalls += 1;
            self.events
                .emit(t.0, p, EventKind::ProcStalled { dur_ps: d.0 });
            t = self.occupy_ev(p, t, d, TimeKind::Comm, None);
        }
        self.pstate[p].executing = Some(id);
        let rec = &self.trace.tasks[id.index()];
        if rec.serial_phase {
            // Serial tasks never pass through the scheduler; give them a
            // dispatch record here so every task has a full lifecycle.
            self.events.emit_task(
                t.0,
                p,
                EventKind::TaskDispatched {
                    stolen: false,
                    locality: Locality::Untracked,
                },
                id,
            );
        }
        self.events.emit_task(t.0, p, EventKind::TaskStarted, id);
        let speed = self
            .cfg
            .speed_factors
            .as_ref()
            .map_or(1.0, |s| s[p % s.len()].max(1e-6));
        let work = if self.cfg.work_free {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(
                rec.work * self.cfg.sec_per_op * jitter(id, self.cfg.jitter_frac) / speed,
            )
        };
        let end = self.occupy_ev(p, t, work, TimeKind::App, Some(id));
        self.cal.schedule(end, Ev::Finish { proc: p, task: id });
    }

    fn on_finish(&mut self, p: ProcId, id: TaskId, t: SimTime) {
        // From here on the task's writes are applied to the shared-object
        // layer; it must never be re-executed, even if `p` dies before the
        // completion notification reaches the scheduler.
        self.tstate[id.index()].finished_local = true;
        let rec = &self.trace.tasks[id.index()];
        let mut t_cur = self.occupy_ev(p, t, self.cfg.costs.complete(), TimeKind::Mgmt, Some(id));
        // New versions of written objects; broadcast when in broadcast mode.
        let written: Vec<ObjectId> = rec.spec.written_objects().collect();
        for o in written {
            // The eager update protocol pushes the new version to the
            // previous version's consumers (captured before the bump).
            let eager_targets = if self.cfg.eager_update && !self.cfg.work_free {
                self.comm.consumers(o)
            } else {
                Vec::new()
            };
            let bcast = self.comm.on_write_complete(p, o);
            if self.cfg.tune && self.cfg.adaptive_broadcast {
                // Re-derive the evidence margin from the width statistics
                // the retirement just updated. Both counters are pure
                // functions of the trace and the fault plan, so the margin
                // trajectory is identical across repeats.
                let m = self
                    .ctl
                    .evidence_margin(self.comm.wide_retired, self.comm.narrow_retired);
                self.comm.set_evidence_margin(m);
            }
            self.events
                .emit_obj(t_cur.0, p, EventKind::ObjectInvalidate, Some(id), o);
            if bcast && !self.cfg.work_free && self.pc.procs() == 1 {
                // Degenerate single-processor case (paper Section 5.3): the
                // lone processor always holds every version, so every update
                // triggers a broadcast operation whose local buffering cost
                // degrades performance. Modeled as a fraction of the wire
                // time plus the message latency.
                let bytes = self.trace.object_size(o);
                self.comm.record_broadcast(o, bytes, 0);
                self.events.emit_obj(
                    t_cur.0,
                    p,
                    EventKind::ObjectBroadcast {
                        bytes: bytes as u64,
                        receivers: 0,
                    },
                    Some(id),
                    o,
                );
                let dur = SimDuration::from_secs_f64(
                    self.cfg.machine.message_latency_s
                        + 0.2 * bytes as f64 / self.cfg.machine.link_bandwidth,
                );
                t_cur = self.occupy_ev(p, t_cur, dur, TimeKind::Comm, None);
            }
            if bcast && !self.cfg.work_free && self.pc.procs() > 1 {
                let bytes = self.trace.object_size(o);
                // Dead processors are out of the tree; the root still pays
                // for every live receiver whether or not the network then
                // loses an individual copy.
                let targets: Vec<ProcId> = (0..self.pc.procs())
                    .filter(|&q| q != p && !self.dead[q])
                    .collect();
                self.comm.record_broadcast(o, bytes, targets.len());
                self.events.emit_obj(
                    t_cur.0,
                    p,
                    EventKind::ObjectBroadcast {
                        bytes: bytes as u64,
                        receivers: targets.len() as u32,
                    },
                    Some(id),
                    o,
                );
                let root_busy = self.cfg.machine.broadcast_root_busy(bytes);
                let done = self.occupy_ev(p, t_cur, root_busy, TimeKind::Comm, None);
                let arrival = t_cur + self.cfg.machine.broadcast_time(bytes);
                let version = self.comm.version(o);
                for q in targets {
                    let fate = self.inj.message_fate();
                    if fate.dropped() {
                        self.n_dropped += 1;
                        self.events.emit_obj(
                            t_cur.0,
                            p,
                            EventKind::MsgDropped {
                                bytes: bytes as u64,
                            },
                            Some(id),
                            o,
                        );
                        continue;
                    }
                    for extra in fate.copies {
                        self.cal.schedule(
                            arrival.max(done) + extra,
                            Ev::BroadcastArrive {
                                proc: q,
                                obj: o,
                                version,
                            },
                        );
                    }
                }
                t_cur = done;
            }
            if !bcast && !eager_targets.is_empty() && self.pc.procs() > 1 {
                // Update protocol: push the new version to the previous
                // version's consumers, serializing on the producer's link.
                let bytes = self.trace.object_size(o);
                let version = self.comm.version(o);
                for q in eager_targets {
                    if q == p {
                        continue;
                    }
                    self.comm.record_eager(o, bytes);
                    self.events.emit_obj(
                        t_cur.0,
                        p,
                        EventKind::EagerPush {
                            bytes: bytes as u64,
                        },
                        Some(id),
                        o,
                    );
                    let dur = self.msg(bytes, p, q);
                    t_cur = self.occupy_ev(p, t_cur, dur, TimeKind::Comm, None);
                    let fate = self.inj.message_fate();
                    if fate.dropped() {
                        self.n_dropped += 1;
                        self.events.emit_obj(
                            t_cur.0,
                            p,
                            EventKind::MsgDropped {
                                bytes: bytes as u64,
                            },
                            Some(id),
                            o,
                        );
                        continue;
                    }
                    for extra in fate.copies {
                        self.cal.schedule(
                            t_cur + extra,
                            Ev::EagerArrive {
                                proc: q,
                                obj: o,
                                version,
                            },
                        );
                    }
                }
            }
        }
        self.note_phase_end(rec.phase, p, t_cur);
        self.pstate[p].executing = None;
        if self.main_blocked == Some(id) {
            // Serial task: main resumes; completion is processed locally.
            self.main_blocked = None;
            let mut newly = Vec::new();
            self.sync
                .complete_traced(id, &mut newly, &mut self.events, t_cur.0, p);
            for t2 in newly {
                self.schedule_enabled(t2, t_cur);
            }
            self.cal.schedule(t_cur, Ev::MainStep);
            return;
        }
        // Completion notification to the main processor.
        if p == 0 {
            self.cal
                .schedule(t_cur, Ev::NotifyArrive { proc: 0, task: id });
        } else {
            self.events.emit_task(
                t_cur.0,
                p,
                EventKind::MsgSend {
                    bytes: self.cfg.costs.notify_bytes as u64,
                },
                id,
            );
            let send_end = self.occupy_ev(
                p,
                t_cur,
                self.msg(self.cfg.costs.notify_bytes, p, 0),
                TimeKind::Comm,
                None,
            );
            self.cal
                .schedule(send_end, Ev::NotifyArrive { proc: p, task: id });
        }
        self.try_execute(p, t_cur);
    }

    fn on_notify(&mut self, p: ProcId, id: TaskId, t: SimTime) {
        if p != 0 {
            self.events.emit_task(
                t.0,
                0,
                EventKind::MsgRecv {
                    bytes: self.cfg.costs.notify_bytes as u64,
                },
                id,
            );
        }
        let end = self.handler_op(0, t, self.cfg.costs.notify_handler(), TimeKind::Mgmt);
        // Completion processing removes the task from the load books first,
        // so successors enabled below see the freed processor.
        self.sched.finish(p);
        let mut newly = Vec::new();
        self.sync
            .complete_traced(id, &mut newly, &mut self.events, end.0, p);
        for t2 in newly {
            self.schedule_enabled(t2, end);
        }
        let comm = &self.comm;
        let trace = self.trace;
        let pulled = self.sched.try_pull(p, |task| {
            trace.tasks[task.index()]
                .spec
                .locality_object()
                .map_or(jade_core::MAIN_PROC, |o| comm.owner(o))
        });
        if let Some(next) = pulled {
            self.send_assignment(p, next, end);
        }
    }

    /// Periodic checkpoint capture. Every live worker ships its slice of
    /// the replica table to the main processor, owners ship the payloads of
    /// objects dirtied since the previous capture (and not already held at
    /// main), and main serializes the synchronizer state into the
    /// checkpoint store. The captured *state* is atomic — the tables are
    /// snapshotted at the tick — but the capture *cost* lands on the
    /// processor timelines through the machine cost model like any other
    /// protocol work.
    fn on_checkpoint_tick(&mut self, t: SimTime) {
        if self.main_done && self.sync.all_complete() {
            return; // program over: end the tick chain
        }
        if self.budget.is_some_and(|b| b.exhausted(t)) {
            // Past the deadline no new work starts, so a deadline-cut run
            // would otherwise tick forever against never-completing tasks.
            return;
        }
        // Remaining failure horizon: virtual picoseconds until the plan's
        // pending fail-stop, `None` once it landed (or was never planned).
        let horizon = match self.cfg.faults.fail_proc {
            Some(fp) if !self.dead[fp] => {
                Some(self.cfg.faults.fail_at.0.saturating_sub(t.0).max(1))
            }
            _ => None,
        };
        if self.cfg.tune && horizon.is_none() {
            // Nothing left to recover from: a capture here is pure
            // overhead — and its traffic rides the same lossy links as
            // real fetches — so skip it and stretch the tick chain to the
            // controller's maximum instead.
            let iv = self.ctl.checkpoint_interval_ps(1, None);
            self.cal.schedule(t + SimDuration(iv), Ev::CheckpointTick);
            return;
        }
        let snap = self.comm.snapshot();
        let ssnap = self.sync.snapshot();
        let mut bytes = snap.table_bytes() + ssnap.encoded_len() as u64;
        let nobjs = self.trace.objects.len();
        // Workers ship their replica-table slices: per object a held
        // version (8 bytes) and an accessed bit (1 byte).
        for p in 1..self.pc.procs() {
            if self.dead[p] {
                continue;
            }
            let dur = self.msg(nobjs * 9, p, 0);
            self.handler_op(p, t, dur, TimeKind::Comm);
            self.handler_op(0, t, self.cfg.costs.recv_handler(), TimeKind::Mgmt);
        }
        // Owners ship payloads of objects whose version moved since the
        // last checkpoint; main's checkpoint store is cumulative, so a
        // clean object is already covered by an earlier capture, and a
        // copy main holds live needs no transfer.
        for i in 0..nobjs {
            let o = ObjectId(i as u32);
            let clean = self
                .last_ckpt
                .as_ref()
                .is_some_and(|c| c.comm.version(o) == snap.version(o));
            if clean || !self.comm.needs_fetch(0, o) {
                continue;
            }
            let owner = self.comm.owner(o);
            let size = self.trace.object_size(o);
            bytes += size as u64;
            let dur = self.msg(size, owner, 0);
            self.handler_op(owner, t, dur, TimeKind::Comm);
            self.handler_op(0, t, self.cfg.costs.object_recv(), TimeKind::Mgmt);
        }
        // Main serializes the synchronizer snapshot to stable storage.
        let ser = SimDuration::from_secs_f64(
            self.cfg.machine.message_latency_s
                + ssnap.encoded_len() as f64 / self.cfg.machine.link_bandwidth,
        );
        let end = self.handler_op(0, t, ser, TimeKind::Mgmt);
        self.n_checkpoints += 1;
        self.n_ckpt_bytes += bytes;
        self.events
            .emit(end.0, 0, EventKind::CheckpointTaken { bytes });
        self.last_ckpt = Some(Checkpoint {
            comm: snap,
            sync: ssnap,
        });
        // Re-arm the tick chain. The interval is always present while ticks
        // are scheduled (ticks only start when the plan has one), but end
        // the chain gracefully rather than panic if that invariant ever
        // breaks. With tuning on, the controller aims the next tick one
        // capture-cost guard ahead of the plan's pending fail-stop, using
        // the cost just measured on the virtual clock (`end - t`); the
        // no-pending-failure case was handled (capture skipped, chain
        // stretched) before the capture above.
        let Some(static_iv) = self.cfg.faults.checkpoint else {
            return;
        };
        let iv = if self.cfg.tune {
            let cost = end.0.saturating_sub(t.0).max(1);
            SimDuration(self.ctl.checkpoint_interval_ps(cost, horizon))
        } else {
            static_iv
        };
        self.cal.schedule(t + iv, Ev::CheckpointTick);
    }

    /// Injected fail-stop: `p` stops participating. Its replicas and owned
    /// objects are recovered by the communicator; tasks dispatched to it
    /// whose results were not yet applied are rewound and re-dispatched.
    ///
    /// Sole copies that died with `p` are re-materialized at main and
    /// **charged**: a checkpoint covering the current version supplies the
    /// payload with a cheap local read from the checkpoint store, anything
    /// else pays the full recovery transfer (the path that used to be
    /// modeled as free). Tasks already committed at the last checkpoint are
    /// never re-dispatched.
    fn on_proc_fail(&mut self, p: ProcId, t: SimTime) {
        if self.dead[p] {
            return;
        }
        self.dead[p] = true;
        self.events.emit(t.0, p, EventKind::WorkerFailed);
        let lost = self.comm.fail_proc(p);
        self.sched.fail(p);
        self.debt_comm[p] = SimDuration::ZERO;
        self.debt_mgmt[p] = SimDuration::ZERO;
        self.pstate[p].queue.clear();
        self.pstate[p].executing = None;
        let mut t_cur = t;
        for o in lost {
            let size = self.trace.object_size(o);
            let bytes = size as u64;
            let covered = self
                .last_ckpt
                .as_ref()
                .is_some_and(|c| c.comm.covers(o, self.comm.version(o)));
            let dur = if covered {
                // Local read from main's checkpoint store: buffering only
                // (same wire-time fraction as local broadcast buffering).
                SimDuration::from_secs_f64(0.2 * size as f64 / self.cfg.machine.link_bandwidth)
            } else {
                // Full recovery-copy transfer into main's memory.
                SimDuration::from_secs_f64(
                    self.cfg.machine.message_latency_s
                        + size as f64 / self.cfg.machine.link_bandwidth,
                )
            };
            t_cur = self.handler_op(0, t_cur, dur, TimeKind::Comm);
            self.comm.record_restore(o, bytes);
            self.n_restore_bytes += bytes;
            if covered {
                self.n_ckpt_restores += 1;
                self.events
                    .emit(t_cur.0, 0, EventKind::CheckpointRestored { bytes });
            }
            self.events
                .emit_obj(t_cur.0, 0, EventKind::ObjectRestored { bytes }, None, o);
        }
        let orphans: Vec<TaskId> = self
            .trace
            .tasks
            .iter()
            .filter(|rec| {
                let ts = &self.tstate[rec.id.index()];
                let committed = self
                    .last_ckpt
                    .as_ref()
                    .is_some_and(|c| c.sync.completed(rec.id));
                ts.dispatched && ts.assigned_to == p && !ts.finished_local && !committed
            })
            .map(|rec| rec.id)
            .collect();
        for id in orphans {
            let ts = &mut self.tstate[id.index()];
            ts.dispatched = false;
            ts.ready = false;
            ts.pending.clear();
            ts.fetch_queue.clear();
            ts.prefetch_issued = false;
            ts.prefetched.clear();
            self.n_reexec += 1;
            self.events
                .emit_task(t_cur.0, jade_core::MAIN_PROC, EventKind::TaskReExecuted, id);
            self.schedule_enabled(id, t_cur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_core::{AccessSpec, TraceBuilder};

    fn spec(reads: &[ObjectId], writes: &[ObjectId]) -> AccessSpec {
        let mut s = AccessSpec::new();
        for &r in reads {
            s.rd(r);
        }
        for &w in writes {
            s.wr(w);
        }
        s
    }

    fn parallel_trace(n: usize, procs: usize, work: f64) -> jade_core::Trace {
        let mut b = TraceBuilder::new();
        let objs: Vec<_> = (0..n)
            .map(|i| b.object(&format!("o{i}"), 1024, Some(i % procs)))
            .collect();
        for &o in &objs {
            b.task(spec(&[], &[o]), work);
        }
        b.build()
    }

    /// A trace with real communication: every task on a non-main processor
    /// reads a hot object homed at main.
    fn commy_trace(procs: usize, rounds: usize) -> jade_core::Trace {
        let mut b = TraceBuilder::new();
        let hot = b.object("hot", 100_000, Some(0));
        let outs: Vec<_> = (0..procs)
            .map(|i| b.object(&format!("o{i}"), 64, Some(i)))
            .collect();
        b.task_full(spec(&[], &[hot]), 0.05, None, true);
        b.next_phase();
        for _ in 0..rounds {
            for &o in &outs {
                let mut s = AccessSpec::new();
                s.wr(o).rd(hot);
                b.task(s, 0.3);
            }
        }
        b.build()
    }

    fn cfg(procs: usize, mode: LocalityMode) -> IpscConfig {
        let mut c = IpscConfig::paper(procs, mode, 1.0);
        c.jitter_frac = 0.0; // exact timing assertions below
        c
    }

    fn faulty_cfg(procs: usize, spec: &str) -> IpscConfig {
        let mut c = cfg(procs, LocalityMode::Locality);
        c.faults = FaultPlan::parse(spec).unwrap();
        c
    }

    #[test]
    fn single_processor_completes() {
        let trace = parallel_trace(10, 1, 0.1);
        let mut c = cfg(1, LocalityMode::Locality);
        c.adaptive_broadcast = false;
        let r = run(&trace, &c);
        assert_eq!(r.tasks_executed, 10);
        assert!(r.exec_time_s >= 1.0);
        assert_eq!(r.comm_bytes, 0, "no communication on one processor");
    }

    #[test]
    fn parallel_speedup() {
        let trace = parallel_trace(32, 8, 1.0);
        let r1 = run(&trace, &cfg(1, LocalityMode::Locality));
        let r8 = run(&trace, &cfg(8, LocalityMode::Locality));
        assert!(
            r8.exec_time_s < r1.exec_time_s / 3.0,
            "8 procs {} vs 1 proc {}",
            r8.exec_time_s,
            r1.exec_time_s
        );
    }

    #[test]
    fn locality_prefers_owners() {
        // Two rounds of tasks on the same objects: the second round's tasks
        // target the procs that wrote the first round.
        let mut b = TraceBuilder::new();
        let objs: Vec<_> = (0..8)
            .map(|i| b.object(&format!("o{i}"), 256, Some(i % 8)))
            .collect();
        for &o in &objs {
            b.task(spec(&[], &[o]), 1.0);
        }
        for &o in &objs {
            b.task(spec(&[], &[o]), 1.0);
        }
        let trace = b.build();
        let r = run(&trace, &cfg(8, LocalityMode::Locality));
        assert!(r.locality_pct > 80.0, "locality {}", r.locality_pct);
    }

    #[test]
    fn no_locality_ignores_owners() {
        // All objects owned by processor 1: under NoLocality, assignment is
        // purely load-based.
        let mut b = TraceBuilder::new();
        let objs: Vec<_> = (0..32)
            .map(|i| b.object(&format!("o{i}"), 256, Some(1)))
            .collect();
        for &o in &objs {
            b.task(spec(&[], &[o]), 0.5);
        }
        let trace = b.build();
        let r = run(&trace, &cfg(8, LocalityMode::NoLocality));
        assert!(r.locality_pct < 40.0, "locality {}", r.locality_pct);
    }

    #[test]
    fn remote_fetch_generates_messages() {
        // The task's locality object is `dst` (declared first), homed on
        // processor 2; `src` lives on processor 1 and must be fetched.
        let mut b = TraceBuilder::new();
        let src = b.object("src", 10_000, Some(1));
        let dst = b.object("dst", 8, Some(2));
        let mut s = AccessSpec::new();
        s.wr(dst).rd(src);
        b.task(s, 1.0);
        let trace = b.build();
        let r = run(&trace, &cfg(4, LocalityMode::Locality));
        assert!(r.fetches >= 1);
        assert!(r.comm_bytes >= 10_000, "bytes {}", r.comm_bytes);
        assert!(r.object_latency_s > 0.0);
        assert!(r.task_latency_s > 0.0);
    }

    #[test]
    fn replicated_read_fetches_once_per_processor() {
        let mut b = TraceBuilder::new();
        let shared = b.object("shared", 50_000, Some(0));
        let outs: Vec<_> = (0..4)
            .map(|i| b.object(&format!("o{i}"), 8, Some(i)))
            .collect();
        for &o in &outs {
            // Locality object = the private out (declared first), so each
            // task runs at its out's home and only `shared` moves.
            let mut s = AccessSpec::new();
            s.wr(o).rd(shared);
            b.task(s, 1.0);
        }
        let trace = b.build();
        let r = run(&trace, &cfg(4, LocalityMode::Locality));
        // Procs 1..3 fetch the shared object; proc 0 has it.
        assert_eq!(r.fetches, 3, "one fetch per remote reader");
    }

    #[test]
    fn adaptive_broadcast_reduces_main_serial_sends() {
        // Repeated phases: a serial task on main updates `hot`, then every
        // processor reads it. With adaptive broadcast, later phases use one
        // broadcast instead of P-1 serial replies from main.
        let procs = 8;
        let mut b = TraceBuilder::new();
        let hot = b.object("hot", 200_000, Some(0));
        let outs: Vec<_> = (0..procs)
            .map(|i| b.object(&format!("o{i}"), 8, Some(i)))
            .collect();
        for _ in 0..6 {
            b.task_full(spec(&[], &[hot]), 0.01, None, true);
            b.next_phase();
            for &o in &outs {
                b.task(spec(&[hot], &[o]), 2.0);
            }
            b.next_phase();
        }
        let trace = b.build();
        let mut on = cfg(procs, LocalityMode::Locality);
        on.target_tasks = 1;
        let mut off = on.clone();
        off.adaptive_broadcast = false;
        let r_on = run(&trace, &on);
        let r_off = run(&trace, &off);
        assert!(r_on.broadcasts > 0, "broadcast mode should trigger");
        assert_eq!(r_off.broadcasts, 0);
        assert!(
            r_on.exec_time_s < r_off.exec_time_s,
            "broadcast {} should beat serial sends {}",
            r_on.exec_time_s,
            r_off.exec_time_s
        );
    }

    #[test]
    fn latency_hiding_overlaps_fetch_with_execution() {
        // Tasks whose objects live on the (otherwise idle) main processor:
        // with target_tasks=2 a worker fetches the next task's object while
        // executing the current one.
        let mut b = TraceBuilder::new();
        let objs: Vec<_> = (0..60)
            .map(|i| b.object(&format!("o{i}"), 40_000, Some(0)))
            .collect();
        for &o in &objs {
            b.task(spec(&[], &[o]), 0.2);
        }
        let trace = b.build();
        let mut c1 = cfg(4, LocalityMode::NoLocality);
        c1.target_tasks = 1;
        let mut c2 = cfg(4, LocalityMode::NoLocality);
        c2.target_tasks = 2;
        let r1 = run(&trace, &c1);
        let r2 = run(&trace, &c2);
        assert!(
            r2.exec_time_s < r1.exec_time_s,
            "latency hiding {} should beat none {}",
            r2.exec_time_s,
            r1.exec_time_s
        );
    }

    #[test]
    fn placement_is_honored() {
        let mut b = TraceBuilder::new();
        let objs: Vec<_> = (0..9)
            .map(|i| b.object(&format!("o{i}"), 64, Some(1 + i % 3)))
            .collect();
        for (i, &o) in objs.iter().enumerate() {
            b.task_full(spec(&[], &[o]), 0.5, Some(1 + (i % 3)), false);
        }
        let trace = b.build();
        let r = run(&trace, &cfg(4, LocalityMode::TaskPlacement));
        // Homes match placements, so every task is a locality hit.
        assert_eq!(r.locality_pct, 100.0);
        // And with the Locality mode, placements are ignored.
        let r2 = run(&trace, &cfg(4, LocalityMode::Locality));
        assert_eq!(r2.tasks_executed, 9);
    }

    #[test]
    fn first_touch_after_main_init_misses_target() {
        // Panel-Cholesky pattern: a serial init task on main writes all
        // objects, so main owns everything; placed tasks then miss their
        // targets on first touch (the paper's 92% effect, Section 5.2.2).
        let mut b = TraceBuilder::new();
        let objs: Vec<_> = (0..4)
            .map(|i| b.object(&format!("p{i}"), 64, Some(1 + i % 3)))
            .collect();
        let mut init = AccessSpec::new();
        for &o in &objs {
            init.wr(o);
        }
        b.task_full(init, 0.0, None, true);
        for (i, &o) in objs.iter().enumerate() {
            b.task_full(spec(&[], &[o]), 0.5, Some(1 + (i % 3)), false);
        }
        let trace = b.build();
        let r = run(&trace, &cfg(4, LocalityMode::TaskPlacement));
        assert_eq!(
            r.locality_pct, 0.0,
            "first touch targets main, placed elsewhere"
        );
    }

    #[test]
    fn work_free_run_is_management_only() {
        let trace = parallel_trace(50, 4, 1.0);
        let mut c = cfg(4, LocalityMode::Locality);
        c.work_free = true;
        let r = run(&trace, &c);
        assert_eq!(r.task_time_s, 0.0);
        assert_eq!(r.comm_bytes, 0);
        assert!(r.exec_time_s > 0.0 && r.exec_time_s < 1.0);
    }

    #[test]
    fn serial_fetch_ablation_is_slower() {
        let mut b = TraceBuilder::new();
        let srcs: Vec<_> = (0..6)
            .map(|i| b.object(&format!("s{i}"), 300_000, Some(1 + i % 3)))
            .collect();
        let dst = b.object("dst", 8, Some(0));
        let mut s = AccessSpec::new();
        for &x in &srcs {
            s.rd(x);
        }
        s.wr(dst);
        b.task(s, 0.1);
        let trace = b.build();
        let conc = run(&trace, &cfg(4, LocalityMode::Locality));
        let mut c = cfg(4, LocalityMode::Locality);
        c.concurrent_fetches = false;
        let serial = run(&trace, &c);
        assert!(
            serial.exec_time_s > conc.exec_time_s,
            "serial fetch {} should be slower than concurrent {}",
            serial.exec_time_s,
            conc.exec_time_s
        );
        // Concurrent fetches: object latency (sum) exceeds task latency.
        assert!(conc.object_latency_s > conc.task_latency_s * 1.5);
    }

    #[test]
    fn deterministic() {
        let trace = parallel_trace(40, 4, 0.2);
        let a = run(&trace, &cfg(4, LocalityMode::Locality));
        let b2 = run(&trace, &cfg(4, LocalityMode::Locality));
        assert_eq!(a.exec_time_s, b2.exec_time_s);
        assert_eq!(a.comm_bytes, b2.comm_bytes);
        assert_eq!(a.locality_pct, b2.locality_pct);
    }

    #[test]
    fn eager_update_overlaps_transfer_with_computation() {
        // Eager pushes pay off when the consumer is busy while the new
        // version is produced: the transfer overlaps the consumer's other
        // work instead of starting after it (paper Section 6's update
        // protocol, which worked well for regular repetitive patterns).
        let mut b = TraceBuilder::new();
        let hot = b.object("hot", 400_000, Some(1));
        let filler = b.object("filler", 8, Some(2));
        let out = b.object("out", 8, Some(2));
        for _ in 0..8 {
            let mut w = AccessSpec::new();
            w.wr(hot);
            b.task(w, 0.01); // producer (runs on proc 1, hot's owner)
            let mut f = AccessSpec::new();
            f.wr(filler);
            b.task(f, 0.5); // keeps the consumer processor busy
            let mut s = AccessSpec::new();
            s.wr(out).rd(filler).rd(hot);
            b.task(s, 0.05); // consumer: needs hot after the filler
        }
        let trace = b.build();
        let base = cfg(4, LocalityMode::Locality);
        let mut eager = base.clone();
        eager.eager_update = true;
        let r0 = run(&trace, &base);
        let r1 = run(&trace, &eager);
        assert!(
            r1.exec_time_s < r0.exec_time_s,
            "eager {} should beat demand {}",
            r1.exec_time_s,
            r0.exec_time_s
        );
    }

    #[test]
    fn heterogeneous_workstations_balance_by_speed() {
        // 4 workstations, one of them 4x faster: the centralized balancer
        // naturally feeds the fast machine more tasks, so the makespan
        // tracks the aggregate speed, not the slowest machine.
        let trace = parallel_trace(64, 4, 1.0);
        let speeds = vec![1.0, 1.0, 1.0, 4.0];
        let mut c = IpscConfig::workstations(speeds, 1.0);
        c.jitter_frac = 0.0;
        let r = run(&trace, &c);
        assert_eq!(r.tasks_executed, 64);
        // Total work 64 s over aggregate speed 7 ≈ 9.1 s; naive division by
        // 4 equal machines of speed 1 would take 16 s.
        assert!(
            r.exec_time_s < 14.0,
            "fast machine under-used: {}",
            r.exec_time_s
        );
    }

    #[test]
    fn shared_medium_serializes_transfers() {
        // Many concurrent fetches of a large object: on the hypercube the
        // replies only serialize at the owner; on a shared medium they also
        // serialize on the wire, so the Ethernet run cannot be faster.
        let mut b = TraceBuilder::new();
        let hot = b.object("hot", 500_000, Some(0));
        let outs: Vec<_> = (0..6)
            .map(|i| b.object(&format!("o{i}"), 8, Some(1 + i % 3)))
            .collect();
        for &o in &outs {
            let mut s = AccessSpec::new();
            s.wr(o).rd(hot);
            b.task(s, 0.1);
        }
        let trace = b.build();
        let mut eth = IpscConfig::workstations(vec![1.0; 4], 1.0);
        eth.adaptive_broadcast = false;
        let mut cube = eth.clone();
        cube.shared_medium = false;
        let r_eth = run(&trace, &eth);
        let r_cube = run(&trace, &cube);
        assert!(
            r_eth.exec_time_s >= r_cube.exec_time_s,
            "shared medium {} vs switched {}",
            r_eth.exec_time_s,
            r_cube.exec_time_s
        );
    }

    #[test]
    fn event_stream_reconstructs_run() {
        // Mixed serial + parallel trace with real communication: the event
        // stream alone must reproduce the run result and tile the timeline.
        let procs = 4;
        let trace = commy_trace(procs, 3);
        let (r, events) = run_traced(&trace, &cfg(procs, LocalityMode::Locality));
        jade_core::check_lifecycle(&events).unwrap();
        let m = jade_core::Metrics::from_events(&events, procs);
        let busy = jade_core::check_conservation(&events, procs, m.makespan_ps).unwrap();
        assert_eq!(busy.len(), procs);
        assert_eq!(SimDuration(m.makespan_ps).as_secs_f64(), r.exec_time_s);
        assert_eq!(m.tasks_created, trace.tasks.len());
        assert_eq!(m.tasks_started, r.tasks_executed);
        assert_eq!(m.comm_bytes(), r.comm_bytes);
        assert_eq!(m.fetches, r.fetches);
        assert_eq!(
            SimDuration(m.object_latency_ps).as_secs_f64(),
            r.object_latency_s
        );
        assert_eq!(
            SimDuration(m.task_latency_ps).as_secs_f64(),
            r.task_latency_s
        );
        // Per-processor breakdowns reconstructed from spans match the
        // processor clock's own accounting bit-for-bit.
        for (p, b3) in r.per_proc_busy.iter().enumerate() {
            let pt = &m.per_proc[p];
            assert_eq!(SimDuration(pt.app_ps).as_secs_f64(), b3.0, "app proc {p}");
            assert_eq!(SimDuration(pt.comm_ps).as_secs_f64(), b3.1, "comm proc {p}");
            assert_eq!(SimDuration(pt.mgmt_ps).as_secs_f64(), b3.2, "mgmt proc {p}");
        }
    }

    #[test]
    fn pipeline_chain_serializes() {
        let mut b = TraceBuilder::new();
        let o = b.object("chain", 64, Some(0));
        for _ in 0..5 {
            b.task(spec(&[], &[o]), 1.0);
        }
        let trace = b.build();
        let r = run(&trace, &cfg(4, LocalityMode::Locality));
        assert!(r.exec_time_s >= 5.0, "{}", r.exec_time_s);
    }

    // ---- fault injection ----

    #[test]
    fn inactive_plan_with_seed_is_bit_identical() {
        // A plan with all probabilities zero takes no injector draws: the
        // event stream is identical to the default config's, whatever the
        // seed says.
        let trace = commy_trace(4, 2);
        let (_, clean) = run_traced(&trace, &cfg(4, LocalityMode::Locality));
        let mut c = cfg(4, LocalityMode::Locality);
        c.faults = FaultPlan::none().with_seed(99);
        let (_, seeded) = run_traced(&trace, &c);
        assert_eq!(clean, seeded);
    }

    #[test]
    fn lossy_run_matches_fault_free_results() {
        let trace = commy_trace(4, 5);
        let clean = run(&trace, &cfg(4, LocalityMode::Locality));
        let (faulty, events) = run_traced(
            &trace,
            &faulty_cfg(4, "drop=0.2,dup=0.1,delay=0.2:0.001,reorder=0.1,seed=42"),
        );
        assert!(faulty.msgs_dropped > 0, "plan injected nothing");
        assert!(faulty.msgs_retried > 0, "drops should force retries");
        assert_eq!(faulty.tasks_executed, clean.tasks_executed);
        assert_eq!(faulty.final_versions, clean.final_versions);
        assert!(
            faulty.exec_time_s >= clean.exec_time_s,
            "faults cannot speed a run up"
        );
        jade_core::check_lifecycle(&events).unwrap();
    }

    #[test]
    fn lossy_run_is_deterministic() {
        let trace = commy_trace(4, 3);
        let c = faulty_cfg(4, "drop=0.1,dup=0.05,seed=7");
        let (a, ea) = run_traced(&trace, &c);
        let (b, eb) = run_traced(&trace, &c);
        assert_eq!(a.exec_time_s, b.exec_time_s);
        assert_eq!(a.msgs_dropped, b.msgs_dropped);
        assert_eq!(ea, eb, "same plan + seed => same event stream");
        // A different seed drops different messages.
        let (c2, _) = run_traced(&trace, &faulty_cfg(4, "drop=0.1,dup=0.05,seed=8"));
        assert_eq!(c2.final_versions, a.final_versions, "results still agree");
    }

    #[test]
    fn fail_stop_reexecutes_orphans() {
        // Long tasks on 4 procs; processor 2 dies mid-run. Its in-flight
        // tasks are re-dispatched and the results match the clean run.
        let trace = parallel_trace(12, 4, 1.0);
        let clean = run(&trace, &cfg(4, LocalityMode::Locality));
        let (faulty, events) = run_traced(&trace, &faulty_cfg(4, "fail=2@0.5"));
        assert_eq!(faulty.workers_failed, 1);
        assert!(faulty.tasks_reexecuted >= 1, "proc 2 was mid-task at 0.5 s");
        assert_eq!(faulty.tasks_executed as u64, 12 + faulty.tasks_reexecuted);
        assert_eq!(faulty.final_versions, clean.final_versions);
        jade_core::check_lifecycle(&events).unwrap();
    }

    #[test]
    fn fail_stop_recovers_owned_objects() {
        // Proc 2 writes its object, dies; a later reader must still get the
        // new version (from the recovery copy at main).
        let mut b = TraceBuilder::new();
        let x = b.object("x", 4_000, Some(2));
        let out = b.object("out", 8, Some(1));
        b.task(spec(&[], &[x]), 0.2); // writer on proc 2
        let mut s = AccessSpec::new();
        s.wr(out).rd(x);
        b.task(s, 0.2); // reader on proc 1, serialized after the writer
        let trace = b.build();
        let clean = run(&trace, &cfg(4, LocalityMode::Locality));
        let faulty = run(&trace, &faulty_cfg(4, "fail=2@0.3"));
        assert_eq!(faulty.final_versions, clean.final_versions);
        assert_eq!(faulty.tasks_executed as u64, 2 + faulty.tasks_reexecuted);
    }

    #[test]
    fn stalls_are_injected_and_slow_the_run() {
        let trace = parallel_trace(10, 2, 0.1);
        let clean = run(&trace, &cfg(2, LocalityMode::Locality));
        let faulty = run(&trace, &faulty_cfg(2, "stall=1.0:0.01,seed=5"));
        assert_eq!(faulty.stalls, 10, "every task start stalls at p=1");
        assert!(faulty.exec_time_s > clean.exec_time_s);
        assert_eq!(faulty.tasks_executed, clean.tasks_executed);
    }

    #[test]
    fn combined_plan_with_failure_still_matches() {
        let trace = commy_trace(4, 4);
        let clean = run(&trace, &cfg(4, LocalityMode::Locality));
        let (faulty, events) = run_traced(
            &trace,
            &faulty_cfg(4, "drop=0.15,dup=0.05,stall=0.2:0.002,fail=3@0.8,seed=13"),
        );
        assert_eq!(faulty.workers_failed, 1);
        assert_eq!(faulty.final_versions, clean.final_versions);
        assert_eq!(
            faulty.tasks_executed as u64,
            trace.tasks.len() as u64 + faulty.tasks_reexecuted
        );
        jade_core::check_lifecycle(&events).unwrap();
    }

    // ---- checkpoint/restart ----

    /// Writer on proc 2 produces the sole copy of a large object; proc 2
    /// dies before anyone else holds it.
    fn sole_copy_trace() -> jade_core::Trace {
        let mut b = TraceBuilder::new();
        let x = b.object("x", 400_000, Some(2));
        let out = b.object("out", 8, Some(1));
        b.task(spec(&[], &[x]), 0.2);
        let mut s = AccessSpec::new();
        s.wr(out).rd(x);
        b.task(s, 0.2);
        b.build()
    }

    #[test]
    fn fail_stop_restore_is_charged_and_attributed() {
        // The old recovery path re-materialized sole copies for free; a
        // restore must now cost main time and show up in the byte books.
        let trace = sole_copy_trace();
        let clean = run(&trace, &cfg(4, LocalityMode::Locality));
        let (faulty, events) = run_traced(&trace, &faulty_cfg(4, "fail=2@0.3"));
        assert_eq!(faulty.objects_restored, 1, "x's only copy died with 2");
        assert_eq!(faulty.restore_bytes, 400_000);
        assert_eq!(faulty.checkpoint_restores, 0, "no checkpoint configured");
        assert!(
            faulty.comm_bytes >= clean.comm_bytes + 400_000,
            "restore bytes missing from comm books: {} vs {}",
            faulty.comm_bytes,
            clean.comm_bytes
        );
        assert!(
            faulty.main_busy_s > clean.main_busy_s,
            "restore transfer must occupy main: {} vs {}",
            faulty.main_busy_s,
            clean.main_busy_s
        );
        assert_eq!(faulty.final_versions, clean.final_versions);
        jade_core::check_lifecycle(&events).unwrap();
    }

    #[test]
    fn checkpoint_covers_sole_copy_restore() {
        // A checkpoint captured after the write holds x's current payload:
        // recovery reads it from the checkpoint store instead of paying
        // the full recovery transfer.
        let trace = sole_copy_trace();
        let clean = run(&trace, &cfg(4, LocalityMode::Locality));
        let (r, events) = run_traced(&trace, &faulty_cfg(4, "fail=2@0.3,ckpt=0.25"));
        assert!(r.checkpoints >= 1);
        assert!(r.checkpoint_bytes > 400_000, "dirty payload not captured");
        assert_eq!(r.objects_restored, 1);
        assert_eq!(
            r.checkpoint_restores, 1,
            "restore should hit the checkpoint"
        );
        assert_eq!(r.final_versions, clean.final_versions);
        jade_core::check_lifecycle(&events).unwrap();
    }

    #[test]
    fn checkpoint_only_plan_completes_and_matches_results() {
        // Ticks keep firing through the run, each capture is charged, and
        // the tick chain terminates with the program.
        let trace = commy_trace(4, 3);
        let clean = run(&trace, &cfg(4, LocalityMode::Locality));
        let (r, events) = run_traced(&trace, &faulty_cfg(4, "ckpt=0.05"));
        assert!(r.checkpoints >= 2, "got {} checkpoints", r.checkpoints);
        assert!(r.checkpoint_bytes > 0);
        assert_eq!(r.tasks_reexecuted, 0);
        assert_eq!(r.objects_restored, 0);
        assert_eq!(r.final_versions, clean.final_versions);
        assert_eq!(r.tasks_executed, clean.tasks_executed);
        assert!(
            r.exec_time_s >= clean.exec_time_s,
            "checkpoint capture cannot be free"
        );
        jade_core::check_lifecycle(&events).unwrap();
    }

    #[test]
    fn checkpoint_intervals_preserve_results_and_bound_reexecution() {
        // The headline invariant: any fail-stop plan crossed with any
        // checkpoint interval produces bit-identical application results,
        // and checkpoints never cause extra re-execution.
        let trace = parallel_trace(12, 4, 1.0);
        let clean = run(&trace, &cfg(4, LocalityMode::Locality));
        let base = run(&trace, &faulty_cfg(4, "fail=2@0.5"));
        for iv in ["0.1", "0.45", "2.0"] {
            let (r, events) = run_traced(&trace, &faulty_cfg(4, &format!("fail=2@0.5,ckpt={iv}")));
            assert_eq!(r.final_versions, clean.final_versions, "ckpt={iv}");
            assert!(
                r.tasks_reexecuted <= base.tasks_reexecuted,
                "ckpt={iv}: {} re-executed vs {} without checkpoints",
                r.tasks_reexecuted,
                base.tasks_reexecuted
            );
            jade_core::check_lifecycle(&events).unwrap();
        }
    }

    #[test]
    fn checkpointed_lossy_run_is_deterministic() {
        let trace = commy_trace(4, 3);
        let c = faulty_cfg(4, "drop=0.1,dup=0.05,seed=7,ckpt=0.2");
        let (a, ea) = run_traced(&trace, &c);
        let (b, eb) = run_traced(&trace, &c);
        assert_eq!(a.exec_time_s, b.exec_time_s);
        assert_eq!(a.checkpoints, b.checkpoints);
        assert_eq!(a.checkpoint_bytes, b.checkpoint_bytes);
        assert_eq!(ea, eb, "same plan + seed => same event stream");
    }

    /// Repeated update-then-read-everywhere phases on a hot object — the
    /// workload the adaptive-broadcast evidence machinery reacts to.
    fn hot_trace(procs: usize, rounds: usize) -> jade_core::Trace {
        let mut b = TraceBuilder::new();
        let hot = b.object("hot", 200_000, Some(0));
        let outs: Vec<_> = (0..procs)
            .map(|i| b.object(&format!("o{i}"), 8, Some(i)))
            .collect();
        for _ in 0..rounds {
            b.task_full(spec(&[], &[hot]), 0.01, None, true);
            b.next_phase();
            for &o in &outs {
                b.task(spec(&[hot], &[o]), 2.0);
            }
            b.next_phase();
        }
        b.build()
    }

    #[test]
    fn tuned_run_is_deterministic_and_preserves_results() {
        let trace = hot_trace(4, 5);
        let c = faulty_cfg(4, "fail=2@3.0,ckpt=0.5,drop=0.05,seed=9");
        let mut tuned = c.clone();
        tuned.tune = true;
        let untuned = run(&trace, &c);
        let (a, ea) = run_traced(&trace, &tuned);
        let (b, eb) = run_traced(&trace, &tuned);
        assert_eq!(ea, eb, "tuned runs must be bit-identical");
        assert_eq!(a.tune, b.tune);
        assert!(!a.tune.decisions.is_empty(), "controller took no decisions");
        a.tune.check_ranges().unwrap();
        assert_eq!(a.final_versions, untuned.final_versions);
        assert_eq!(a.tasks_executed, untuned.tasks_executed);
        assert!(untuned.tune.decisions.is_empty());
    }

    #[test]
    fn tuned_checkpoints_stretch_when_no_failure_is_pending() {
        // Checkpoint-only plan: nothing will ever need recovering, so after
        // the first (statically scheduled) capture measures the cost, the
        // controller stretches the interval to its maximum and the capture
        // overhead all but disappears.
        let trace = commy_trace(4, 3);
        let c = faulty_cfg(4, "ckpt=0.05");
        let mut tuned = c.clone();
        tuned.tune = true;
        let stat = run(&trace, &c);
        let r = run(&trace, &tuned);
        assert!(
            r.checkpoints < stat.checkpoints,
            "tuned {} checkpoints vs static {}",
            r.checkpoints,
            stat.checkpoints
        );
        assert_eq!(r.final_versions, stat.final_versions);
        assert!(r.exec_time_s <= stat.exec_time_s);
    }

    #[test]
    fn static_evidence_margin_delays_broadcast_flip() {
        let trace = hot_trace(8, 6);
        let base = cfg(8, LocalityMode::Locality);
        let mut wide = base.clone();
        wide.evidence_margin = 4;
        let r0 = run(&trace, &base);
        let r4 = run(&trace, &wide);
        assert!(r0.broadcasts > 0, "broadcast mode should trigger");
        assert!(
            r4.broadcasts < r0.broadcasts,
            "margin 4 ({}) should flip later than margin 0 ({})",
            r4.broadcasts,
            r0.broadcasts
        );
        assert_eq!(r4.final_versions, r0.final_versions);
    }

    #[test]
    fn invalid_fault_plans_are_rejected() {
        let trace = parallel_trace(4, 2, 0.1);
        let mut c = cfg(2, LocalityMode::Locality);
        c.faults = FaultPlan::parse("fail=0").unwrap();
        assert!(matches!(
            try_run(&trace, &c),
            Err(IpscError::InvalidFaultPlan(_))
        ));
        c.faults = FaultPlan::parse("fail=5").unwrap();
        assert!(matches!(
            try_run(&trace, &c),
            Err(IpscError::InvalidFaultPlan(_))
        ));
        c.faults = FaultPlan {
            drop_p: 1.5,
            ..FaultPlan::none()
        };
        assert!(matches!(
            try_run(&trace, &c),
            Err(IpscError::InvalidFaultPlan(_))
        ));
    }

    /// Audit (PR 7): `--faults` durations large enough to overflow the
    /// retry-backoff arithmetic used to panic mid-run with "SimDuration
    /// overflow"; now the plan is rejected up front as a value.
    #[test]
    fn oversized_plan_durations_are_rejected_not_panics() {
        let trace = parallel_trace(4, 2, 0.1);
        let mut c = cfg(2, LocalityMode::Locality);
        // The same bound guards the CLI path up front: `--faults` specs
        // with oversized durations fail at parse, not mid-run.
        assert!(FaultPlan::parse("delay=0.5:10000,seed=1").is_err());
        assert!(FaultPlan::parse("ckpt=2000000").is_err());
        // A 10,000 s delay window: ×2048 in retry_timeout would overflow
        // the u64 picosecond clock. (Constructed directly — parse rejects
        // it — to pin the entry-point validation itself.)
        c.faults = FaultPlan {
            delay_p: 0.5,
            delay: SimDuration::from_secs_f64(10_000.0),
            ..FaultPlan::none()
        };
        assert!(matches!(
            try_run(&trace, &c),
            Err(IpscError::InvalidFaultPlan(_))
        ));
        c.faults = FaultPlan {
            fail_proc: Some(1),
            fail_at: SimDuration::from_secs_f64(2_000_000.0),
            ..FaultPlan::none()
        };
        assert!(matches!(
            try_run(&trace, &c),
            Err(IpscError::InvalidFaultPlan(_))
        ));
        c.faults = FaultPlan {
            stall_p: 0.5,
            stall: SimDuration::from_secs_f64(10_000.0),
            ..FaultPlan::none()
        };
        assert!(matches!(
            try_run(&trace, &c),
            Err(IpscError::InvalidFaultPlan(_))
        ));
        c.faults = FaultPlan {
            checkpoint: Some(SimDuration::from_secs_f64(2_000_000.0)),
            ..FaultPlan::none()
        };
        assert!(matches!(
            try_run(&trace, &c),
            Err(IpscError::InvalidFaultPlan(_))
        ));
    }

    /// Audit (PR 7): machine-config values reachable from user
    /// configuration used to trip `from_secs_f64`'s asserts ("negative or
    /// non-finite time") deep in the event loop; now each is a typed
    /// `InvalidMachine` error from the entry point.
    #[test]
    fn bad_machine_configs_are_rejected_not_panics() {
        let trace = parallel_trace(4, 2, 0.1);
        // Non-positive bandwidth: message_time divides by it.
        let mut c = cfg(2, LocalityMode::Locality);
        c.machine.link_bandwidth = 0.0;
        assert!(matches!(
            try_run(&trace, &c),
            Err(IpscError::InvalidMachine(_))
        ));
        let mut c = cfg(2, LocalityMode::Locality);
        c.machine.link_bandwidth = f64::NAN;
        assert!(matches!(
            try_run(&trace, &c),
            Err(IpscError::InvalidMachine(_))
        ));
        // Negative latency or compute cost: negative task durations.
        let mut c = cfg(2, LocalityMode::Locality);
        c.machine.message_latency_s = -1e-3;
        assert!(matches!(
            try_run(&trace, &c),
            Err(IpscError::InvalidMachine(_))
        ));
        let mut c = cfg(2, LocalityMode::Locality);
        c.sec_per_op = -1.0;
        assert!(matches!(
            try_run(&trace, &c),
            Err(IpscError::InvalidMachine(_))
        ));
        // Jitter fraction beyond 2 makes the duration multiplier negative.
        let mut c = cfg(2, LocalityMode::Locality);
        c.jitter_frac = 3.0;
        assert!(matches!(
            try_run(&trace, &c),
            Err(IpscError::InvalidMachine(_))
        ));
        // Speed factors must be positive and finite.
        let mut c = cfg(2, LocalityMode::Locality);
        c.speed_factors = Some(vec![1.0, -0.5]);
        assert!(matches!(
            try_run(&trace, &c),
            Err(IpscError::InvalidMachine(_))
        ));
        let mut c = cfg(2, LocalityMode::Locality);
        c.speed_factors = Some(Vec::new());
        assert!(matches!(
            try_run(&trace, &c),
            Err(IpscError::InvalidMachine(_))
        ));
    }

    #[test]
    fn deadline_cuts_the_run_with_partial_metrics() {
        let trace = parallel_trace(16, 2, 0.5);
        let mut c = cfg(2, LocalityMode::Locality);
        // Full run takes ~4+ virtual seconds; budget one.
        c.deadline = Some(SimDuration::from_secs_f64(1.0));
        let r = try_run(&trace, &c).expect("deadline run completes cleanly");
        assert!(r.deadline_exceeded);
        assert!(
            r.tasks_executed < 16,
            "expected a partial run, got {} tasks",
            r.tasks_executed
        );
        assert!(r.tasks_executed > 0, "one virtual second fits some tasks");
        // A zero budget executes nothing and still drains cleanly.
        c.deadline = Some(SimDuration::ZERO);
        let r0 = try_run(&trace, &c).expect("zero-deadline run");
        assert!(r0.deadline_exceeded);
        assert_eq!(r0.tasks_executed, 0);
    }

    #[test]
    fn generous_deadline_is_bit_identical_to_none() {
        let trace = commy_trace(4, 2);
        let base = cfg(4, LocalityMode::Locality);
        let mut budgeted = base.clone();
        budgeted.deadline = Some(SimDuration::from_secs_f64(1e5));
        let (ra, ea) = run_traced(&trace, &base);
        let (rb, eb) = run_traced(&trace, &budgeted);
        assert!(!rb.deadline_exceeded);
        assert_eq!(ra.exec_time_s, rb.exec_time_s);
        assert_eq!(ra.final_versions, rb.final_versions);
        assert_eq!(ea, eb, "an unexercised budget changes nothing");
    }

    #[test]
    fn deadline_with_checkpoint_ticks_terminates() {
        // Regression companion to the checkpoint-tick let-else: a deadline
        // must not leave the tick chain rescheduling forever after main
        // stops creating tasks.
        let trace = parallel_trace(16, 2, 0.5);
        let mut c = faulty_cfg(2, "ckpt=0.3");
        c.deadline = Some(SimDuration::from_secs_f64(1.0));
        let r = try_run(&trace, &c).expect("budgeted checkpointed run");
        assert!(r.deadline_exceeded);
        assert!(r.checkpoints >= 1, "ticks ran before the budget expired");
    }

    // ---- split-phase prefetch ----

    #[test]
    fn prefetch_preserves_results_and_never_slows() {
        let trace = commy_trace(4, 5);
        let base = cfg(4, LocalityMode::Locality);
        let mut pf = base.clone();
        pf.prefetch = true;
        let off = run(&trace, &base);
        let (on, events) = run_traced(&trace, &pf);
        assert!(on.prefetches_issued > 0, "no prefetches issued");
        assert!(on.prefetch_hits > 0, "prefetched replies never landed");
        assert_eq!(on.final_versions, off.final_versions);
        assert_eq!(on.tasks_executed, off.tasks_executed);
        assert!(
            on.exec_time_s <= off.exec_time_s + 1e-9,
            "prefetch on {} must not be slower than prefetch off {}",
            on.exec_time_s,
            off.exec_time_s
        );
        jade_core::check_lifecycle(&events).unwrap();
    }

    /// Tasks run at proc 1 (their out's home) and each reads a distinct
    /// large object homed at proc 2 — every task fetches fresh data.
    fn cross_trace(n: usize) -> jade_core::Trace {
        let mut b = TraceBuilder::new();
        for i in 0..n {
            let out = b.object(&format!("out{i}"), 64, Some(1));
            let data = b.object(&format!("d{i}"), 200_000, Some(2));
            let mut s = AccessSpec::new();
            s.wr(out).rd(data);
            b.task(s, 0.3);
        }
        b.build()
    }

    #[test]
    fn prefetch_starts_fetches_before_assignment_arrives() {
        // With prefetch, the first ObjectRequest for a remote task is
        // issued by the main processor at assignment time — strictly
        // before the per-task requests the demand path sends after the
        // assignment message lands on the worker.
        let trace = cross_trace(1);
        let base = cfg(4, LocalityMode::Locality);
        let mut pf = base.clone();
        pf.prefetch = true;
        let first_request = |events: &[Event]| {
            events
                .iter()
                .find(|e| matches!(e.kind, EventKind::ObjectRequest { .. }))
                .map(|e| (e.time_ps, e.proc))
                .expect("cross trace always fetches")
        };
        let (_, e_off) = run_traced(&trace, &base);
        let (_, e_on) = run_traced(&trace, &pf);
        let (t_off, p_off) = first_request(&e_off);
        let (t_on, p_on) = first_request(&e_on);
        assert_ne!(p_off, 0, "demand requests come from the worker");
        assert_eq!(p_on, 0, "prefetch requests come from main");
        assert!(t_on < t_off, "prefetch {t_on} must precede demand {t_off}");
    }

    #[test]
    fn prefetch_composes_with_aggregation() {
        let trace = commy_trace(4, 3);
        let mut base = cfg(4, LocalityMode::Locality);
        base.aggregate_fetches = true;
        let mut pf = base.clone();
        pf.prefetch = true;
        let off = run(&trace, &base);
        let (on, events) = run_traced(&trace, &pf);
        assert!(on.prefetches_issued > 0);
        assert_eq!(on.final_versions, off.final_versions);
        assert_eq!(on.tasks_executed, off.tasks_executed);
        assert!(on.exec_time_s <= off.exec_time_s + 1e-9);
        jade_core::check_lifecycle(&events).unwrap();
    }

    #[test]
    fn prefetch_survives_lossy_network() {
        // Prefetched requests ride the same unreliable data plane: drops
        // fall back to the per-object ack/retry path bound to the
        // fetching processor, and the results still match the clean run.
        let trace = commy_trace(4, 4);
        let clean = run(&trace, &cfg(4, LocalityMode::Locality));
        let mut c = faulty_cfg(4, "drop=0.2,dup=0.1,delay=0.2:0.001,seed=21");
        c.prefetch = true;
        let (faulty, events) = run_traced(&trace, &c);
        assert!(faulty.prefetches_issued > 0);
        assert!(faulty.msgs_dropped > 0, "plan injected nothing");
        assert_eq!(faulty.final_versions, clean.final_versions);
        assert_eq!(faulty.tasks_executed, clean.tasks_executed);
        jade_core::check_lifecycle(&events).unwrap();
    }

    #[test]
    fn prefetch_survives_fail_stop_and_checkpoints() {
        let trace = parallel_trace(12, 4, 1.0);
        let clean = run(&trace, &cfg(4, LocalityMode::Locality));
        let mut c = faulty_cfg(4, "fail=2@0.5,ckpt=0.25");
        c.prefetch = true;
        let (faulty, events) = run_traced(&trace, &c);
        assert_eq!(faulty.workers_failed, 1);
        assert_eq!(faulty.final_versions, clean.final_versions);
        assert_eq!(faulty.tasks_executed as u64, 12 + faulty.tasks_reexecuted);
        jade_core::check_lifecycle(&events).unwrap();
    }

    #[test]
    fn prefetch_respects_deadline_budget() {
        let trace = parallel_trace(16, 2, 0.5);
        let mut c = cfg(2, LocalityMode::Locality);
        c.prefetch = true;
        c.deadline = Some(SimDuration::from_secs_f64(1.0));
        let r = try_run(&trace, &c).expect("budgeted prefetch run");
        assert!(r.deadline_exceeded);
        assert!(r.tasks_executed > 0 && r.tasks_executed < 16);
    }

    #[test]
    fn prefetch_is_deterministic() {
        let trace = commy_trace(4, 3);
        let mut c = cfg(4, LocalityMode::Locality);
        c.prefetch = true;
        let (a, ea) = run_traced(&trace, &c);
        let (b2, eb) = run_traced(&trace, &c);
        assert_eq!(a.exec_time_s, b2.exec_time_s);
        assert_eq!(a.prefetches_issued, b2.prefetches_issued);
        assert_eq!(a.prefetch_hits, b2.prefetch_hits);
        assert_eq!(ea, eb);
    }

    #[test]
    fn prefetch_reports_overlap() {
        // Latency-hiding config: with two in-flight tasks per processor
        // the prefetched transfers overlap the predecessor's compute, and
        // the overlap metric sees it.
        let trace = cross_trace(8);
        let mut c = cfg(4, LocalityMode::Locality);
        c.prefetch = true;
        c.target_tasks = 2;
        let r = run(&trace, &c);
        assert!(r.prefetches_issued > 0);
        assert!(r.overlap_frac > 0.0, "no fetch time hidden under compute");
        assert!(r.overlap_frac <= 1.0 + 1e-12);
    }

    #[test]
    fn pinned_replay_reproduces_the_recorded_run() {
        // Replaying a run's own schedule must be a fixed point: the pinned
        // run assigns every task to the processor the recording chose, in
        // the recorded order, so the event stream is bit-identical.
        let trace = commy_trace(4, 5);
        let base = cfg(4, LocalityMode::Locality);
        let (off, events) = run_traced(&trace, &base);
        let mut pinned = base.clone();
        pinned.pinned = Some(PinnedSchedule::from_events(trace.tasks.len(), &events));
        let (rep, events_rep) = run_traced(&trace, &pinned);
        assert_eq!(rep.exec_time_s, off.exec_time_s);
        assert_eq!(rep.final_versions, off.final_versions);
        assert_eq!(events, events_rep);
    }

    #[test]
    fn pinned_prefetch_is_monotone() {
        // The controlled comparison behind the overlap sweep: with the
        // schedule held fixed, prefetch can only move data earlier, so the
        // simulated time never grows and the result is bit-identical.
        let trace = commy_trace(4, 6);
        let base = cfg(4, LocalityMode::Locality);
        let (off, events) = run_traced(&trace, &base);
        let mut pf = base.clone();
        pf.prefetch = true;
        pf.pinned = Some(PinnedSchedule::from_events(trace.tasks.len(), &events));
        let on = run(&trace, &pf);
        assert!(on.prefetches_issued > 0, "no prefetches issued");
        assert_eq!(on.final_versions, off.final_versions);
        assert_eq!(on.tasks_executed, off.tasks_executed);
        assert!(
            on.exec_time_s <= off.exec_time_s + 1e-9,
            "pinned prefetch run {} slower than its recording {}",
            on.exec_time_s,
            off.exec_time_s
        );
    }

    #[test]
    fn pinned_schedule_from_events_skips_unstarted_tasks() {
        let trace = parallel_trace(6, 2, 0.4);
        let (_, events) = run_traced(&trace, &cfg(2, LocalityMode::Locality));
        let pin = PinnedSchedule::from_events(trace.tasks.len() + 3, &events);
        // Tasks past the trace keep the "never ran" sentinel and fall back
        // to live scheduling.
        assert_eq!(pin.assign.len(), trace.tasks.len() + 3);
        for i in trace.tasks.len()..trace.tasks.len() + 3 {
            assert_eq!(pin.assign[i], None);
            assert_eq!(pin.rank[i], u64::MAX);
        }
        // Every executed task got a distinct rank in event order.
        let mut ranks: Vec<u64> = pin.rank[..trace.tasks.len()].to_vec();
        ranks.retain(|&r| r != u64::MAX);
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ranks.len(), "ranks must be unique");
    }
}
