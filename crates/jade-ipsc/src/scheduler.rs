//! The centralized message-passing scheduler (paper Section 3.4.3).
//!
//! All tasks are created on the main processor. The scheduler keeps each
//! processor supplied with up to `target_tasks` tasks so it can overlap the
//! fetches for one task with the execution of another (the latency-hiding
//! optimization; `target_tasks == 1` turns it off).
//!
//! * When a task becomes enabled: if every processor already holds the
//!   target number of tasks, the task parks in the **unassigned pool** at
//!   the main processor. Otherwise it is assigned to one of the
//!   least-loaded processors — its target processor if that is among the
//!   least loaded, else an arbitrary least-loaded one.
//! * When a remote processor reports a completed task, the scheduler pulls
//!   from the pool, preferring tasks whose target is that processor.

use dsim::ProcId;
use jade_core::TaskId;
use std::collections::VecDeque;

/// Scheduler decision for an enabled task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Assign to this processor now.
    Assign(ProcId),
    /// Park in the unassigned pool at the main processor.
    Pool,
}

/// Centralized load-tracking scheduler state (lives on the main processor).
pub struct IpscScheduler {
    /// Tasks assigned to (and not yet finished by) each processor.
    loads: Vec<usize>,
    /// Target number of in-flight tasks per processor.
    target_tasks: usize,
    /// Unassigned enabled tasks, FIFO.
    pool: VecDeque<TaskId>,
    /// Honor target-processor preference (false at the No-Locality level).
    prefer_target: bool,
    /// Fail-stopped processors: never assigned to, never pulled for.
    dead: Vec<bool>,
    /// Deterministic LCG for the "arbitrary least-loaded processor" choice,
    /// modeling the arbitrariness of the real scheduler's pick.
    lcg: u64,
    /// Tasks ever pooled (diagnostic).
    pub pooled_total: u64,
}

impl IpscScheduler {
    pub fn new(procs: usize, target_tasks: usize, prefer_target: bool) -> IpscScheduler {
        assert!(target_tasks >= 1);
        IpscScheduler {
            loads: vec![0; procs],
            target_tasks,
            pool: VecDeque::new(),
            prefer_target,
            dead: vec![false; procs],
            lcg: 0x2545F4914F6CDD1D,
            pooled_total: 0,
        }
    }

    pub fn load(&self, p: ProcId) -> usize {
        self.loads[p]
    }

    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Minimum load over live processors; `None` when every processor is
    /// dead (cannot happen in a simulation — the main processor never
    /// fail-stops — but the scheduler stays total anyway).
    fn min_live_load(&self) -> Option<usize> {
        (0..self.loads.len())
            .filter(|&q| !self.dead[q])
            .map(|q| self.loads[q])
            .min()
    }

    /// Decide where an enabled task goes. `target` is the owner of the
    /// task's locality object at this moment; `placement` is an explicit
    /// programmer placement (honored unconditionally when present and
    /// live; a placement on a dead processor falls back to load-based
    /// assignment).
    pub fn on_enabled(
        &mut self,
        task: TaskId,
        target: ProcId,
        placement: Option<ProcId>,
    ) -> Decision {
        if let Some(p) = placement {
            if !self.dead[p] {
                self.loads[p] += 1;
                return Decision::Assign(p);
            }
        }
        let Some(min_load) = self.min_live_load() else {
            self.pool.push_back(task);
            self.pooled_total += 1;
            return Decision::Pool;
        };
        if min_load >= self.target_tasks {
            self.pool.push_back(task);
            self.pooled_total += 1;
            return Decision::Pool;
        }
        let p = if self.prefer_target && !self.dead[target] && self.loads[target] == min_load {
            target
        } else {
            // "Arbitrary" least-loaded processor: a deterministic LCG pick
            // avoids accidental affinity from always favoring low indices.
            let candidates: Vec<usize> = (0..self.loads.len())
                .filter(|&q| !self.dead[q] && self.loads[q] == min_load)
                .collect();
            self.lcg = self
                .lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            candidates[((self.lcg >> 33) as usize) % candidates.len()]
        };
        self.loads[p] += 1;
        Decision::Assign(p)
    }

    /// A processor finished a task: drop its load. Call before enabling the
    /// task's successors, so they see the freed processor as least-loaded
    /// (the completion processing removes the task first). Completion
    /// notifications from a processor that has since fail-stopped are
    /// ignored — its load book was zeroed by [`Self::fail`].
    pub fn finish(&mut self, p: ProcId) {
        if self.dead[p] {
            return;
        }
        assert!(self.loads[p] > 0, "finish on processor with zero load");
        self.loads[p] -= 1;
    }

    /// Processor `p` fail-stopped: zero its load book and stop assigning to
    /// it. The simulator re-dispatches the orphaned tasks itself (it knows
    /// which ones were in flight).
    pub fn fail(&mut self, p: ProcId) {
        self.dead[p] = true;
        self.loads[p] = 0;
    }

    /// Pull a pooled task for `p` if it is live and below the target count,
    /// preferring tasks targeted at it. `target_of` computes the *current*
    /// target processor of a pooled task (object ownership is dynamic).
    pub fn try_pull(&mut self, p: ProcId, target_of: impl Fn(TaskId) -> ProcId) -> Option<TaskId> {
        if self.dead[p] || self.loads[p] >= self.target_tasks || self.pool.is_empty() {
            return None;
        }
        let idx = if self.prefer_target {
            self.pool
                .iter()
                .position(|&t| target_of(t) == p)
                .unwrap_or(0)
        } else {
            0
        };
        let task = self.pool.remove(idx)?;
        self.loads[p] += 1;
        Some(task)
    }

    /// True when no task remains assigned or pooled.
    pub fn drained(&self) -> bool {
        self.pool.is_empty() && self.loads.iter().all(|&l| l == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> TaskId {
        TaskId(n)
    }

    #[test]
    fn assigns_to_target_when_least_loaded() {
        let mut s = IpscScheduler::new(4, 1, true);
        assert_eq!(s.on_enabled(t(0), 2, None), Decision::Assign(2));
        assert_eq!(s.load(2), 1);
        // Target 2 now loaded; next task targeted there goes to some other
        // (arbitrary) least-loaded processor.
        match s.on_enabled(t(1), 2, None) {
            Decision::Assign(p) => assert_ne!(p, 2, "target is loaded"),
            d => panic!("expected assignment, got {d:?}"),
        }
    }

    #[test]
    fn pools_when_everyone_full() {
        let mut s = IpscScheduler::new(2, 1, true);
        assert_eq!(s.on_enabled(t(0), 0, None), Decision::Assign(0));
        assert_eq!(s.on_enabled(t(1), 1, None), Decision::Assign(1));
        assert_eq!(s.on_enabled(t(2), 0, None), Decision::Pool);
        assert_eq!(s.pool_len(), 1);
        assert_eq!(s.pooled_total, 1);
    }

    #[test]
    fn pull_prefers_target() {
        let mut s = IpscScheduler::new(2, 1, true);
        s.on_enabled(t(0), 0, None);
        s.on_enabled(t(1), 1, None);
        s.on_enabled(t(2), 1, None); // pooled, target 1
        s.on_enabled(t(3), 0, None); // pooled, target 0
        let targets = |task: TaskId| if task == t(2) { 1 } else { 0 };
        // Processor 1 finishes: prefers the pooled task targeted at 1.
        s.finish(1);
        assert_eq!(s.try_pull(1, targets), Some(t(2)));
        // Processor 0 finishes: takes the remaining one.
        s.finish(0);
        assert_eq!(s.try_pull(0, targets), Some(t(3)));
        assert!(!s.drained()); // two tasks still assigned
    }

    #[test]
    fn pull_fifo_without_preference() {
        let mut s = IpscScheduler::new(2, 1, false);
        s.on_enabled(t(0), 0, None);
        s.on_enabled(t(1), 1, None);
        s.on_enabled(t(2), 1, None);
        s.on_enabled(t(3), 0, None);
        // FIFO pool order regardless of targets.
        s.finish(1);
        assert_eq!(s.try_pull(1, |_| 0), Some(t(2)));
    }

    #[test]
    fn latency_hiding_target_two() {
        let mut s = IpscScheduler::new(2, 2, true);
        assert_eq!(s.on_enabled(t(0), 0, None), Decision::Assign(0));
        assert_eq!(s.on_enabled(t(1), 0, None), Decision::Assign(1));
        assert_eq!(s.on_enabled(t(2), 0, None), Decision::Assign(0));
        assert_eq!(s.on_enabled(t(3), 1, None), Decision::Assign(1));
        assert_eq!(s.on_enabled(t(4), 0, None), Decision::Pool);
    }

    #[test]
    fn placement_bypasses_load_logic() {
        let mut s = IpscScheduler::new(4, 1, true);
        assert_eq!(s.on_enabled(t(0), 0, Some(3)), Decision::Assign(3));
        assert_eq!(s.on_enabled(t(1), 0, Some(3)), Decision::Assign(3));
        assert_eq!(s.load(3), 2);
    }

    #[test]
    fn drained_after_all_finish() {
        let mut s = IpscScheduler::new(2, 1, true);
        s.on_enabled(t(0), 0, None);
        assert!(!s.drained());
        s.finish(0);
        assert_eq!(s.try_pull(0, |_| 0), None);
        assert!(s.drained());
    }
}
