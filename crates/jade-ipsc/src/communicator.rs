//! The communicator: Jade's software shared-object layer on message-passing
//! machines (paper Sections 3.3–3.4.2).
//!
//! The communicator implements the abstraction of a single address space in
//! software. It tracks, per shared object:
//!
//! * the current **version** (bumped each time a writer task completes);
//! * the **owner** — the last processor to write the object, guaranteed to
//!   hold the latest version;
//! * which processors hold a valid **replica** of the current version
//!   (replication for concurrent read access, Section 3.4.1);
//! * the set of processors that have **requested** the current version —
//!   the owner's evidence for the adaptive broadcast trigger: once every
//!   processor has accessed the same version of an object, all succeeding
//!   versions of that object are broadcast on production (Section 3.4.2).
//!
//! This module is pure bookkeeping; the event-level costs (request/reply
//! messages, broadcast trees) live in the simulator (`crate::sim`).

use dsim::ProcId;
use jade_core::{ObjectId, Trace};

const NO_VERSION: u64 = u64::MAX;

/// Per-object ownership, versioning, replication and broadcast state.
pub struct Communicator {
    procs: usize,
    version: Vec<u64>,
    owner: Vec<ProcId>,
    /// `have[p][o]` = version of object `o` held by processor `p`
    /// (`NO_VERSION` = none).
    have: Vec<Vec<u64>>,
    /// `accessed[o][p]`: processor `p` has *consumed* the current version
    /// of `o` — by requesting it from the owner or by a locally-satisfied
    /// declared access. Producing a version does not count: otherwise every
    /// object on a 2-processor run would trigger broadcast mode, which
    /// contradicts the paper's Tables 13/14.
    accessed: Vec<Vec<bool>>,
    broadcast_mode: Vec<bool>,
    adaptive_broadcast: bool,
    /// Bytes of shared-object payload transferred (replies + broadcasts).
    pub bytes_transferred: u64,
    /// Number of point-to-point object transfers.
    pub object_sends: u64,
    /// Number of broadcast operations performed.
    pub broadcasts: u64,
    /// Number of eager producer-to-consumer pushes (update protocol).
    pub eager_sends: u64,
}

impl Communicator {
    /// Initial state: each object's only copy lives at its home processor
    /// (the processor that allocated/initialized it); version 0.
    pub fn new(trace: &Trace, procs: usize, adaptive_broadcast: bool) -> Communicator {
        let n = trace.objects.len();
        let mut have = vec![vec![NO_VERSION; n]; procs];
        let mut owner = Vec::with_capacity(n);
        let mut accessed = vec![vec![false; procs]; n];
        for (i, ob) in trace.objects.iter().enumerate() {
            let home = ob.home.unwrap_or(jade_core::MAIN_PROC).min(procs - 1);
            owner.push(home);
            have[home][i] = 0;
        }
        let _ = &mut accessed; // all-false: no version consumed yet
        Communicator {
            procs,
            version: vec![0; n],
            owner,
            have,
            accessed,
            broadcast_mode: vec![false; n],
            adaptive_broadcast,
            bytes_transferred: 0,
            object_sends: 0,
            broadcasts: 0,
            eager_sends: 0,
        }
    }

    /// Current owner (the last writer) of an object.
    pub fn owner(&self, o: ObjectId) -> ProcId {
        self.owner[o.index()]
    }

    /// Current version of an object.
    pub fn version(&self, o: ObjectId) -> u64 {
        self.version[o.index()]
    }

    /// Does processor `p` need to fetch `o` before running a task that
    /// accesses it?
    pub fn needs_fetch(&self, p: ProcId, o: ObjectId) -> bool {
        self.have[p][o.index()] != self.version[o.index()]
    }

    /// Record that `requester` asked the owner for the current version
    /// (this is what the owner observes for the broadcast trigger), and
    /// account for the reply's payload.
    pub fn record_request(&mut self, requester: ProcId, o: ObjectId, bytes: usize) {
        self.accessed[o.index()][requester] = true;
        self.bytes_transferred += bytes as u64;
        self.object_sends += 1;
    }

    /// Record a locally-satisfied declared access: the processor already
    /// holds the current version (it is the owner or got it by broadcast)
    /// and a task on it declared an access.
    pub fn note_access(&mut self, p: ProcId, o: ObjectId) {
        self.accessed[o.index()][p] = true;
    }

    /// Record delivery of the current version to `p` (reply arrival). A
    /// stale in-flight delivery of `expected_version` is ignored.
    pub fn deliver(&mut self, p: ProcId, o: ObjectId, expected_version: u64) {
        if self.version[o.index()] == expected_version {
            self.have[p][o.index()] = expected_version;
        }
    }

    /// Has the current version been accessed by every processor? (The
    /// adaptive-broadcast trigger condition.)
    pub fn widely_accessed(&self, o: ObjectId) -> bool {
        self.accessed[o.index()].iter().all(|&a| a)
    }

    /// Is the object in broadcast mode?
    pub fn in_broadcast_mode(&self, o: ObjectId) -> bool {
        self.broadcast_mode[o.index()]
    }

    /// A writer task on `p` completed, producing a new version of `o`.
    /// Returns `true` if the new version should be broadcast.
    pub fn on_write_complete(&mut self, p: ProcId, o: ObjectId) -> bool {
        let i = o.index();
        // Evaluate the trigger on the version being retired.
        if self.adaptive_broadcast && self.widely_accessed(o) {
            self.broadcast_mode[i] = true;
        }
        self.version[i] += 1;
        self.owner[i] = p;
        let v = self.version[i];
        for q in 0..self.procs {
            self.have[q][i] = if q == p { v } else { NO_VERSION };
        }
        self.accessed[i].iter_mut().for_each(|a| *a = false);
        self.broadcast_mode[i]
    }

    /// Account a broadcast of `o` (the simulator schedules the deliveries).
    pub fn record_broadcast(&mut self, _o: ObjectId, bytes: usize) {
        let receivers = self.procs.saturating_sub(1) as u64;
        self.bytes_transferred += bytes as u64 * receivers;
        self.broadcasts += 1;
    }

    /// Record delivery of a broadcast copy of version `v` to `p`.
    pub fn deliver_broadcast(&mut self, p: ProcId, o: ObjectId, v: u64) {
        if self.version[o.index()] == v {
            self.have[p][o.index()] = v;
        }
    }

    /// Processors that consumed the *current* version (candidates for the
    /// eager update protocol of paper Section 6: push each new version to
    /// the previous version's consumers).
    pub fn consumers(&self, o: ObjectId) -> Vec<ProcId> {
        self.accessed[o.index()]
            .iter()
            .enumerate()
            .filter_map(|(p, &a)| a.then_some(p))
            .collect()
    }

    /// Account one eager producer-to-consumer object push.
    pub fn record_eager(&mut self, bytes: usize) {
        self.bytes_transferred += bytes as u64;
        self.eager_sends += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_core::TraceBuilder;

    fn trace2() -> Trace {
        let mut b = TraceBuilder::new();
        b.object("a", 1000, Some(0));
        b.object("b", 2000, Some(1));
        b.build()
    }

    fn o(n: u32) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn initial_state() {
        let c = Communicator::new(&trace2(), 4, true);
        assert_eq!(c.owner(o(0)), 0);
        assert_eq!(c.owner(o(1)), 1);
        assert!(!c.needs_fetch(0, o(0)));
        assert!(c.needs_fetch(0, o(1)));
        assert!(c.needs_fetch(2, o(0)));
    }

    #[test]
    fn fetch_and_replicate() {
        let mut c = Communicator::new(&trace2(), 4, true);
        c.record_request(2, o(0), 1000);
        c.deliver(2, o(0), 0);
        assert!(!c.needs_fetch(2, o(0)));
        assert_eq!(c.bytes_transferred, 1000);
        assert_eq!(c.object_sends, 1);
        // Replication: processor 3 can fetch the same version too.
        c.record_request(3, o(0), 1000);
        c.deliver(3, o(0), 0);
        assert!(!c.needs_fetch(3, o(0)));
    }

    #[test]
    fn write_bumps_version_and_invalidates() {
        let mut c = Communicator::new(&trace2(), 4, true);
        c.record_request(2, o(0), 1000);
        c.deliver(2, o(0), 0);
        let bcast = c.on_write_complete(2, o(0));
        assert!(!bcast, "not widely accessed yet");
        assert_eq!(c.owner(o(0)), 2);
        assert_eq!(c.version(o(0)), 1);
        assert!(c.needs_fetch(0, o(0)), "old copy invalidated");
        assert!(!c.needs_fetch(2, o(0)));
    }

    #[test]
    fn stale_delivery_ignored() {
        let mut c = Communicator::new(&trace2(), 4, true);
        c.record_request(2, o(0), 1000);
        // Version bumps while the reply is in flight.
        c.on_write_complete(3, o(0));
        c.deliver(2, o(0), 0);
        assert!(c.needs_fetch(2, o(0)), "stale copy must not satisfy");
    }

    #[test]
    fn broadcast_triggers_after_all_access() {
        let mut c = Communicator::new(&trace2(), 3, true);
        // Processors 1 and 2 request the version owned by 0; a task on the
        // owner also declares an access.
        c.record_request(1, o(0), 1000);
        c.record_request(2, o(0), 1000);
        assert!(!c.widely_accessed(o(0)), "producing is not consuming");
        c.note_access(0, o(0));
        assert!(c.widely_accessed(o(0)));
        assert!(!c.in_broadcast_mode(o(0)));
        // The next write flips the object into broadcast mode.
        assert!(c.on_write_complete(0, o(0)));
        assert!(c.in_broadcast_mode(o(0)));
        // And stays there for succeeding versions.
        assert!(c.on_write_complete(1, o(0)));
    }

    #[test]
    fn no_broadcast_when_disabled() {
        let mut c = Communicator::new(&trace2(), 2, false);
        c.record_request(1, o(0), 8);
        c.note_access(0, o(0));
        assert!(c.widely_accessed(o(0)));
        assert!(!c.on_write_complete(0, o(0)));
        assert!(!c.in_broadcast_mode(o(0)));
    }

    #[test]
    fn partial_access_does_not_trigger() {
        let mut c = Communicator::new(&trace2(), 4, true);
        c.record_request(1, o(0), 8);
        c.record_request(2, o(0), 8);
        // Processor 3 never accessed it.
        assert!(!c.widely_accessed(o(0)));
        assert!(!c.on_write_complete(0, o(0)));
    }

    #[test]
    fn broadcast_delivery_and_accounting() {
        let mut c = Communicator::new(&trace2(), 4, true);
        for p in 1..4 {
            c.record_request(p, o(0), 1000);
        }
        c.note_access(0, o(0));
        assert!(c.on_write_complete(0, o(0)));
        c.record_broadcast(o(0), 1000);
        assert_eq!(c.bytes_transferred, 3000 + 3000);
        assert_eq!(c.broadcasts, 1);
        c.deliver_broadcast(2, o(0), 1);
        assert!(!c.needs_fetch(2, o(0)));
        // Stale broadcast delivery ignored.
        c.on_write_complete(0, o(0));
        c.deliver_broadcast(3, o(0), 1);
        assert!(c.needs_fetch(3, o(0)));
    }

    #[test]
    fn single_processor_degenerate_case() {
        // With one processor every version is trivially widely accessed:
        // the degenerate case the paper notes for 1-processor runs.
        let mut b = TraceBuilder::new();
        b.object("x", 100, Some(0));
        let t = b.build();
        let mut c = Communicator::new(&t, 1, true);
        assert!(!c.widely_accessed(o(0)), "nothing consumed yet");
        c.note_access(0, o(0));
        assert!(c.widely_accessed(o(0)));
        assert!(c.on_write_complete(0, o(0)));
    }
}
