//! The communicator: Jade's software shared-object layer on message-passing
//! machines (paper Sections 3.3–3.4.2).
//!
//! The communicator implements the abstraction of a single address space in
//! software. It tracks, per shared object:
//!
//! * the current **version** (bumped each time a writer task completes);
//! * the **owner** — the last processor to write the object, guaranteed to
//!   hold the latest version;
//! * which processors hold a valid **replica** of the current version
//!   (replication for concurrent read access, Section 3.4.1);
//! * the set of processors that have **requested** the current version —
//!   the owner's evidence for the adaptive broadcast trigger: once every
//!   processor has accessed the same version of an object, all succeeding
//!   versions of that object are broadcast on production (Section 3.4.2).
//!
//! Delivery is **idempotent and version-checked**: [`Communicator::deliver`]
//! applies a payload only if it carries the current version to a live
//! processor, so duplicated, delayed, or reordered messages (fault
//! injection) are discarded rather than applied. Point-to-point payload
//! bytes are therefore accounted at *acceptance*, while broadcast and eager
//! bytes are accounted at the *send* (the root pays for the tree whether or
//! not an individual copy is lost); under a fault-free run the two
//! conventions coincide with counting every transfer exactly once.
//!
//! This module is pure bookkeeping; the event-level costs (request/reply
//! messages, broadcast trees, retry timers) live in the simulator
//! (`crate::sim`).

use dsim::ProcId;
use jade_core::{ObjectId, Trace};

const NO_VERSION: u64 = u64::MAX;

/// Per-object byte attribution, split by transfer mechanism.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObjectTraffic {
    /// Accepted point-to-point fetch payload bytes.
    pub fetch_bytes: u64,
    /// Broadcast payload bytes (`size × receivers` per broadcast).
    pub broadcast_bytes: u64,
    /// Eager producer-to-consumer push bytes.
    pub eager_bytes: u64,
}

impl ObjectTraffic {
    pub fn total(&self) -> u64 {
        self.fetch_bytes + self.broadcast_bytes + self.eager_bytes
    }
}

/// Per-object ownership, versioning, replication and broadcast state.
pub struct Communicator {
    procs: usize,
    version: Vec<u64>,
    owner: Vec<ProcId>,
    /// `have[p][o]` = version of object `o` held by processor `p`
    /// (`NO_VERSION` = none).
    have: Vec<Vec<u64>>,
    /// `accessed[o][p]`: processor `p` has *consumed* the current version
    /// of `o` — by requesting it from the owner or by a locally-satisfied
    /// declared access. Producing a version does not count: otherwise every
    /// object on a 2-processor run would trigger broadcast mode, which
    /// contradicts the paper's Tables 13/14.
    accessed: Vec<Vec<bool>>,
    broadcast_mode: Vec<bool>,
    adaptive_broadcast: bool,
    /// `alive[p]` = processor participates in the protocol. Fail-stopped
    /// processors are excluded from the broadcast trigger, the consumer
    /// sets, and delivery.
    alive: Vec<bool>,
    /// Per-object byte attribution (fetch/broadcast/eager).
    traffic: Vec<ObjectTraffic>,
    /// Bytes of shared-object payload transferred (accepted replies +
    /// broadcasts + eager pushes).
    pub bytes_transferred: u64,
    /// Number of accepted point-to-point object transfers.
    pub object_sends: u64,
    /// Number of broadcast operations performed.
    pub broadcasts: u64,
    /// Number of eager producer-to-consumer pushes (update protocol).
    pub eager_sends: u64,
}

impl Communicator {
    /// Initial state: each object's only copy lives at its home processor
    /// (the processor that allocated/initialized it); version 0.
    pub fn new(trace: &Trace, procs: usize, adaptive_broadcast: bool) -> Communicator {
        let n = trace.objects.len();
        let mut have = vec![vec![NO_VERSION; n]; procs];
        let mut owner = Vec::with_capacity(n);
        for (i, ob) in trace.objects.iter().enumerate() {
            let home = ob.home.unwrap_or(jade_core::MAIN_PROC).min(procs - 1);
            owner.push(home);
            have[home][i] = 0;
        }
        Communicator {
            procs,
            version: vec![0; n],
            owner,
            have,
            accessed: vec![vec![false; procs]; n], // nothing consumed yet
            broadcast_mode: vec![false; n],
            adaptive_broadcast,
            alive: vec![true; procs],
            traffic: vec![ObjectTraffic::default(); n],
            bytes_transferred: 0,
            object_sends: 0,
            broadcasts: 0,
            eager_sends: 0,
        }
    }

    /// Current owner (the last writer) of an object.
    pub fn owner(&self, o: ObjectId) -> ProcId {
        self.owner[o.index()]
    }

    /// Current version of an object.
    pub fn version(&self, o: ObjectId) -> u64 {
        self.version[o.index()]
    }

    /// All current object versions: the communicator's view of the final
    /// application state. Two runs computed the same results iff their
    /// version vectors (and the per-task completion set) agree.
    pub fn final_versions(&self) -> Vec<u64> {
        self.version.clone()
    }

    /// Is the processor still participating in the protocol?
    pub fn is_alive(&self, p: ProcId) -> bool {
        self.alive[p]
    }

    /// Does processor `p` need to fetch `o` before running a task that
    /// accesses it?
    pub fn needs_fetch(&self, p: ProcId, o: ObjectId) -> bool {
        self.have[p][o.index()] != self.version[o.index()]
    }

    /// Record that `requester` asked the owner for the current version —
    /// this is what the owner observes for the broadcast trigger. Payload
    /// bytes are accounted when the reply is *accepted* ([`Self::deliver`]),
    /// not here: a dropped reply moves no object.
    pub fn record_request(&mut self, requester: ProcId, o: ObjectId) {
        self.accessed[o.index()][requester] = true;
    }

    /// Record a locally-satisfied declared access: the processor already
    /// holds the current version (it is the owner or got it by broadcast)
    /// and a task on it declared an access.
    pub fn note_access(&mut self, p: ProcId, o: ObjectId) {
        self.accessed[o.index()][p] = true;
    }

    /// Deliver a point-to-point fetch reply of `expected_version` to `p`.
    /// Applied — replica installed, `bytes` accounted — only if `p` is
    /// alive and the payload is still the current version; stale deliveries
    /// return `false` and change nothing. Re-delivery of the current
    /// version is idempotent on the replica state but each accepted reply
    /// accounts its payload (the owner sent a full reply per request); the
    /// simulator filters out *duplicated* copies of a single request before
    /// calling this, using its per-task pending set.
    pub fn deliver(&mut self, p: ProcId, o: ObjectId, expected_version: u64, bytes: u64) -> bool {
        let i = o.index();
        if !self.alive[p] || self.version[i] != expected_version {
            return false;
        }
        self.have[p][i] = expected_version;
        self.bytes_transferred += bytes;
        self.traffic[i].fetch_bytes += bytes;
        self.object_sends += 1;
        true
    }

    /// Has the current version been accessed by every live processor? (The
    /// adaptive-broadcast trigger condition.)
    pub fn widely_accessed(&self, o: ObjectId) -> bool {
        self.accessed[o.index()]
            .iter()
            .enumerate()
            .all(|(p, &a)| a || !self.alive[p])
    }

    /// Is the object in broadcast mode?
    pub fn in_broadcast_mode(&self, o: ObjectId) -> bool {
        self.broadcast_mode[o.index()]
    }

    /// A writer task on `p` completed, producing a new version of `o`.
    /// Returns `true` if the new version should be broadcast.
    pub fn on_write_complete(&mut self, p: ProcId, o: ObjectId) -> bool {
        let i = o.index();
        // Evaluate the trigger on the version being retired.
        if self.adaptive_broadcast && self.widely_accessed(o) {
            self.broadcast_mode[i] = true;
        }
        self.version[i] += 1;
        self.owner[i] = p;
        let v = self.version[i];
        for q in 0..self.procs {
            self.have[q][i] = if q == p { v } else { NO_VERSION };
        }
        self.accessed[i].iter_mut().for_each(|a| *a = false);
        self.broadcast_mode[i]
    }

    /// Account a broadcast of `o` delivered to `receivers` processors (the
    /// simulator schedules the deliveries and decides, per receiver, whether
    /// the copy survives the network).
    pub fn record_broadcast(&mut self, o: ObjectId, bytes: usize, receivers: usize) {
        let payload = bytes as u64 * receivers as u64;
        self.bytes_transferred += payload;
        self.traffic[o.index()].broadcast_bytes += payload;
        self.broadcasts += 1;
    }

    /// Deliver a pushed copy (broadcast or eager update) of version `v` to
    /// `p`. Bytes were accounted at the send; this only installs the
    /// replica. Returns `false` for stale/duplicate/dead-target copies.
    pub fn deliver_pushed(&mut self, p: ProcId, o: ObjectId, v: u64) -> bool {
        let i = o.index();
        if !self.alive[p] || self.version[i] != v || self.have[p][i] == v {
            return false;
        }
        self.have[p][i] = v;
        true
    }

    /// Live processors that consumed the *current* version (candidates for
    /// the eager update protocol of paper Section 6: push each new version
    /// to the previous version's consumers).
    pub fn consumers(&self, o: ObjectId) -> Vec<ProcId> {
        self.accessed[o.index()]
            .iter()
            .enumerate()
            .filter_map(|(p, &a)| (a && self.alive[p]).then_some(p))
            .collect()
    }

    /// Account one eager producer-to-consumer push of `o`.
    pub fn record_eager(&mut self, o: ObjectId, bytes: usize) {
        self.bytes_transferred += bytes as u64;
        self.traffic[o.index()].eager_bytes += bytes as u64;
        self.eager_sends += 1;
    }

    /// Per-object byte attribution.
    pub fn object_traffic(&self, o: ObjectId) -> ObjectTraffic {
        self.traffic[o.index()]
    }

    /// Processor `p` fail-stopped. Its replicas and trigger evidence are
    /// gone; objects it owned move to a live holder of the current version,
    /// or — when the dead processor held the only copy — are restored at
    /// the main processor (the runtime's recovery copy; see DESIGN.md §11,
    /// checkpointing the restore cost is a roadmap item).
    pub fn fail_proc(&mut self, p: ProcId) {
        self.alive[p] = false;
        for i in 0..self.version.len() {
            self.have[p][i] = NO_VERSION;
            self.accessed[i][p] = false;
            if self.owner[i] == p {
                let v = self.version[i];
                let holder = (0..self.procs).find(|&q| self.alive[q] && self.have[q][i] == v);
                let new_owner = holder.unwrap_or(jade_core::MAIN_PROC);
                self.owner[i] = new_owner;
                self.have[new_owner][i] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_core::TraceBuilder;

    fn trace2() -> Trace {
        let mut b = TraceBuilder::new();
        b.object("a", 1000, Some(0));
        b.object("b", 2000, Some(1));
        b.build()
    }

    fn o(n: u32) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn initial_state() {
        let c = Communicator::new(&trace2(), 4, true);
        assert_eq!(c.owner(o(0)), 0);
        assert_eq!(c.owner(o(1)), 1);
        assert!(!c.needs_fetch(0, o(0)));
        assert!(c.needs_fetch(0, o(1)));
        assert!(c.needs_fetch(2, o(0)));
        assert!(c.is_alive(3));
    }

    #[test]
    fn fetch_and_replicate() {
        let mut c = Communicator::new(&trace2(), 4, true);
        c.record_request(2, o(0));
        assert!(c.deliver(2, o(0), 0, 1000));
        assert!(!c.needs_fetch(2, o(0)));
        assert_eq!(c.bytes_transferred, 1000);
        assert_eq!(c.object_sends, 1);
        assert_eq!(c.object_traffic(o(0)).fetch_bytes, 1000);
        // Replication: processor 3 can fetch the same version too.
        c.record_request(3, o(0));
        assert!(c.deliver(3, o(0), 0, 1000));
        assert!(!c.needs_fetch(3, o(0)));
    }

    #[test]
    fn redelivery_is_idempotent_on_state() {
        let mut c = Communicator::new(&trace2(), 4, true);
        c.record_request(2, o(0));
        assert!(c.deliver(2, o(0), 0, 1000));
        // A second accepted reply (two tasks on one processor fetching the
        // same object) re-installs the same replica and accounts its own
        // payload; duplicated copies of a *single* request never reach the
        // communicator (the simulator's pending set filters them).
        assert!(c.deliver(2, o(0), 0, 1000));
        assert!(!c.needs_fetch(2, o(0)));
        assert_eq!(c.bytes_transferred, 2000);
        assert_eq!(c.object_sends, 2);
    }

    #[test]
    fn write_bumps_version_and_invalidates() {
        let mut c = Communicator::new(&trace2(), 4, true);
        c.record_request(2, o(0));
        assert!(c.deliver(2, o(0), 0, 1000));
        let bcast = c.on_write_complete(2, o(0));
        assert!(!bcast, "not widely accessed yet");
        assert_eq!(c.owner(o(0)), 2);
        assert_eq!(c.version(o(0)), 1);
        assert!(c.needs_fetch(0, o(0)), "old copy invalidated");
        assert!(!c.needs_fetch(2, o(0)));
    }

    #[test]
    fn stale_delivery_ignored() {
        let mut c = Communicator::new(&trace2(), 4, true);
        c.record_request(2, o(0));
        // Version bumps while the reply is in flight.
        c.on_write_complete(3, o(0));
        assert!(!c.deliver(2, o(0), 0, 1000));
        assert!(c.needs_fetch(2, o(0)), "stale copy must not satisfy");
        assert_eq!(c.bytes_transferred, 0, "stale payload not accounted");
    }

    #[test]
    fn broadcast_triggers_after_all_access() {
        let mut c = Communicator::new(&trace2(), 3, true);
        // Processors 1 and 2 request the version owned by 0; a task on the
        // owner also declares an access.
        c.record_request(1, o(0));
        c.record_request(2, o(0));
        assert!(!c.widely_accessed(o(0)), "producing is not consuming");
        c.note_access(0, o(0));
        assert!(c.widely_accessed(o(0)));
        assert!(!c.in_broadcast_mode(o(0)));
        // The next write flips the object into broadcast mode.
        assert!(c.on_write_complete(0, o(0)));
        assert!(c.in_broadcast_mode(o(0)));
        // And stays there for succeeding versions.
        assert!(c.on_write_complete(1, o(0)));
    }

    #[test]
    fn no_broadcast_when_disabled() {
        let mut c = Communicator::new(&trace2(), 2, false);
        c.record_request(1, o(0));
        c.note_access(0, o(0));
        assert!(c.widely_accessed(o(0)));
        assert!(!c.on_write_complete(0, o(0)));
        assert!(!c.in_broadcast_mode(o(0)));
    }

    #[test]
    fn partial_access_does_not_trigger() {
        let mut c = Communicator::new(&trace2(), 4, true);
        c.record_request(1, o(0));
        c.record_request(2, o(0));
        // Processor 3 never accessed it.
        assert!(!c.widely_accessed(o(0)));
        assert!(!c.on_write_complete(0, o(0)));
    }

    #[test]
    fn broadcast_delivery_and_accounting() {
        let mut c = Communicator::new(&trace2(), 4, true);
        for p in 1..4 {
            c.record_request(p, o(0));
            assert!(c.deliver(p, o(0), 0, 1000));
        }
        c.note_access(0, o(0));
        assert!(c.on_write_complete(0, o(0)));
        c.record_broadcast(o(0), 1000, 3);
        assert_eq!(c.bytes_transferred, 3000 + 3000);
        assert_eq!(c.broadcasts, 1);
        // Broadcast bytes attributed to the object that was broadcast.
        assert_eq!(c.object_traffic(o(0)).broadcast_bytes, 3000);
        assert_eq!(c.object_traffic(o(0)).fetch_bytes, 3000);
        assert_eq!(c.object_traffic(o(1)), ObjectTraffic::default());
        assert!(c.deliver_pushed(2, o(0), 1));
        assert!(!c.needs_fetch(2, o(0)));
        // Stale broadcast delivery ignored.
        c.on_write_complete(0, o(0));
        assert!(!c.deliver_pushed(3, o(0), 1));
        assert!(c.needs_fetch(3, o(0)));
    }

    #[test]
    fn single_processor_degenerate_case() {
        // With one processor every version is trivially widely accessed:
        // the degenerate case the paper notes for 1-processor runs.
        let mut b = TraceBuilder::new();
        b.object("x", 100, Some(0));
        let t = b.build();
        let mut c = Communicator::new(&t, 1, true);
        assert!(!c.widely_accessed(o(0)), "nothing consumed yet");
        c.note_access(0, o(0));
        assert!(c.widely_accessed(o(0)));
        assert!(c.on_write_complete(0, o(0)));
    }

    #[test]
    fn fail_stop_reassigns_ownership_to_live_replica() {
        let mut c = Communicator::new(&trace2(), 4, true);
        // Processor 2 writes `a`; processor 3 fetches the new version.
        c.on_write_complete(2, o(0));
        c.record_request(3, o(0));
        assert!(c.deliver(3, o(0), 1, 1000));
        c.fail_proc(2);
        assert!(!c.is_alive(2));
        assert_eq!(c.owner(o(0)), 3, "live replica holder takes over");
        assert_eq!(c.version(o(0)), 1, "no version lost");
        assert!(!c.needs_fetch(3, o(0)));
        // Deliveries to the dead processor are refused.
        assert!(!c.deliver(2, o(0), 1, 1000));
        assert!(!c.deliver_pushed(2, o(0), 1));
    }

    #[test]
    fn fail_stop_restores_sole_copy_at_main() {
        let mut c = Communicator::new(&trace2(), 4, true);
        // Processor 2 writes `a` and dies before anyone fetched it.
        c.on_write_complete(2, o(0));
        c.fail_proc(2);
        assert_eq!(c.owner(o(0)), 0, "recovery copy lives at main");
        assert!(!c.needs_fetch(0, o(0)));
        assert_eq!(c.version(o(0)), 1);
    }

    #[test]
    fn dead_processors_do_not_block_broadcast_trigger() {
        let mut c = Communicator::new(&trace2(), 3, true);
        c.fail_proc(2);
        c.record_request(1, o(0));
        c.note_access(0, o(0));
        assert!(c.widely_accessed(o(0)), "only live processors count");
        assert_eq!(c.consumers(o(0)), vec![0, 1]);
    }
}
