//! The communicator: Jade's software shared-object layer on message-passing
//! machines (paper Sections 3.3–3.4.2).
//!
//! The communicator implements the abstraction of a single address space in
//! software. It tracks, per shared object:
//!
//! * the current **version** (bumped each time a writer task completes);
//! * the **owner** — the last processor to write the object, guaranteed to
//!   hold the latest version;
//! * which processors hold a valid **replica** of the current version
//!   (replication for concurrent read access, Section 3.4.1);
//! * the set of processors that have **requested** the current version —
//!   the owner's evidence for the adaptive broadcast trigger: once every
//!   processor has accessed the same version of an object, all succeeding
//!   versions of that object are broadcast on production (Section 3.4.2).
//!
//! Delivery is **idempotent and version-checked**: [`Communicator::deliver`]
//! applies a payload only if it carries the current version to a live
//! processor, so duplicated, delayed, or reordered messages (fault
//! injection) are discarded rather than applied. Point-to-point payload
//! bytes are therefore accounted at *acceptance*, while broadcast and eager
//! bytes are accounted at the *send* (the root pays for the tree whether or
//! not an individual copy is lost); under a fault-free run the two
//! conventions coincide with counting every transfer exactly once.
//!
//! This module is pure bookkeeping; the event-level costs (request/reply
//! messages, broadcast trees, retry timers) live in the simulator
//! (`crate::sim`).

use dsim::ProcId;
use jade_core::{ObjectId, Trace};

const NO_VERSION: u64 = u64::MAX;

/// Per-object byte attribution, split by transfer mechanism.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObjectTraffic {
    /// Accepted point-to-point fetch payload bytes.
    pub fetch_bytes: u64,
    /// Broadcast payload bytes (`size × receivers` per broadcast).
    pub broadcast_bytes: u64,
    /// Eager producer-to-consumer push bytes.
    pub eager_bytes: u64,
    /// Fail-stop recovery bytes: sole copies re-materialized at a surviving
    /// processor after their owner died.
    pub restore_bytes: u64,
}

impl ObjectTraffic {
    pub fn total(&self) -> u64 {
        self.fetch_bytes + self.broadcast_bytes + self.eager_bytes + self.restore_bytes
    }
}

/// Per-object ownership, versioning, replication and broadcast state.
pub struct Communicator {
    procs: usize,
    version: Vec<u64>,
    owner: Vec<ProcId>,
    /// `have[p][o]` = version of object `o` held by processor `p`
    /// (`NO_VERSION` = none).
    have: Vec<Vec<u64>>,
    /// `accessed[o][p]`: processor `p` has *consumed* the current version
    /// of `o` — by requesting it from the owner or by a locally-satisfied
    /// declared access. Producing a version does not count: otherwise every
    /// object on a 2-processor run would trigger broadcast mode, which
    /// contradicts the paper's Tables 13/14.
    accessed: Vec<Vec<bool>>,
    broadcast_mode: Vec<bool>,
    adaptive_broadcast: bool,
    /// Consecutive retired versions of each object that were widely
    /// accessed — the accumulated consumer evidence for the broadcast
    /// trigger. Reset by a narrowly-accessed version and by *any*
    /// alive-set change: evidence accumulated against a larger receiver
    /// set must not satisfy the smaller set's cheaper break-even (a
    /// fail-stop shrinks [`Self::evidence_needed`], and stale evidence
    /// would instantly flip an object into broadcast mode on an unrelated
    /// death).
    evidence: Vec<u32>,
    /// Extra evidence demanded on top of the §3.4.2 break-even before an
    /// object flips into broadcast mode — the feedback controller's knob
    /// (DESIGN.md §19); 0 (the default) is the paper's behavior.
    margin: u32,
    /// Retired versions that were widely accessed (feedback-controller
    /// observation; deterministic — a pure function of trace and plan).
    pub wide_retired: u64,
    /// Retired versions that were not widely accessed.
    pub narrow_retired: u64,
    /// Configured data-message loss rate (from the fault plan). Under loss
    /// each broadcast multiplies the retransmission surface by its receiver
    /// count, so the §3.4.2 break-even needs proportionally more evidence
    /// before flipping an object into broadcast mode; see
    /// [`Self::evidence_needed`].
    drop_p: f64,
    /// `alive[p]` = processor participates in the protocol. Fail-stopped
    /// processors are excluded from the broadcast trigger, the consumer
    /// sets, and delivery.
    alive: Vec<bool>,
    /// Per-object byte attribution (fetch/broadcast/eager).
    traffic: Vec<ObjectTraffic>,
    /// Bytes of shared-object payload transferred (accepted replies +
    /// broadcasts + eager pushes).
    pub bytes_transferred: u64,
    /// Number of accepted point-to-point object transfers.
    pub object_sends: u64,
    /// Number of broadcast operations performed.
    pub broadcasts: u64,
    /// Number of eager producer-to-consumer pushes (update protocol).
    pub eager_sends: u64,
    /// Number of sole-copy objects re-materialized after owner death.
    pub object_restores: u64,
}

impl Communicator {
    /// Initial state: each object's only copy lives at its home processor
    /// (the processor that allocated/initialized it); version 0. `drop_p`
    /// is the fault plan's data-message loss rate (0 when fault-free),
    /// folded into the adaptive-broadcast break-even.
    pub fn new(trace: &Trace, procs: usize, adaptive_broadcast: bool, drop_p: f64) -> Communicator {
        let n = trace.objects.len();
        let mut have = vec![vec![NO_VERSION; n]; procs];
        let mut owner = Vec::with_capacity(n);
        for (i, ob) in trace.objects.iter().enumerate() {
            let home = ob.home.unwrap_or(jade_core::MAIN_PROC).min(procs - 1);
            owner.push(home);
            have[home][i] = 0;
        }
        Communicator {
            procs,
            version: vec![0; n],
            owner,
            have,
            accessed: vec![vec![false; procs]; n], // nothing consumed yet
            broadcast_mode: vec![false; n],
            adaptive_broadcast,
            evidence: vec![0; n],
            margin: 0,
            wide_retired: 0,
            narrow_retired: 0,
            drop_p,
            alive: vec![true; procs],
            traffic: vec![ObjectTraffic::default(); n],
            bytes_transferred: 0,
            object_sends: 0,
            broadcasts: 0,
            eager_sends: 0,
            object_restores: 0,
        }
    }

    /// Current owner (the last writer) of an object.
    pub fn owner(&self, o: ObjectId) -> ProcId {
        self.owner[o.index()]
    }

    /// Current version of an object.
    pub fn version(&self, o: ObjectId) -> u64 {
        self.version[o.index()]
    }

    /// All current object versions: the communicator's view of the final
    /// application state. Two runs computed the same results iff their
    /// version vectors (and the per-task completion set) agree.
    pub fn final_versions(&self) -> Vec<u64> {
        self.version.clone()
    }

    /// Is the processor still participating in the protocol?
    pub fn is_alive(&self, p: ProcId) -> bool {
        self.alive[p]
    }

    /// Does processor `p` need to fetch `o` before running a task that
    /// accesses it?
    pub fn needs_fetch(&self, p: ProcId, o: ObjectId) -> bool {
        self.have[p][o.index()] != self.version[o.index()]
    }

    /// Inspector pass of the aggregation optimization (DESIGN.md §15):
    /// group a task's fetch set by each object's *current* owner,
    /// preserving declaration order inside every group and
    /// first-appearance order across groups (deterministic — no hashing).
    /// The executor then coalesces each group that passes the Section 5.3
    /// break-even test into one request/reply message pair.
    pub fn group_by_owner(&self, objs: &[ObjectId]) -> Vec<(ProcId, Vec<ObjectId>)> {
        let mut groups: Vec<(ProcId, Vec<ObjectId>)> = Vec::new();
        for &o in objs {
            let owner = self.owner(o);
            match groups.iter_mut().find(|(p, _)| *p == owner) {
                Some((_, g)) => g.push(o),
                None => groups.push((owner, vec![o])),
            }
        }
        groups
    }

    /// Record that `requester` asked the owner for the current version —
    /// this is what the owner observes for the broadcast trigger. Payload
    /// bytes are accounted when the reply is *accepted* ([`Self::deliver`]),
    /// not here: a dropped reply moves no object.
    pub fn record_request(&mut self, requester: ProcId, o: ObjectId) {
        self.accessed[o.index()][requester] = true;
    }

    /// Record a locally-satisfied declared access: the processor already
    /// holds the current version (it is the owner or got it by broadcast)
    /// and a task on it declared an access.
    pub fn note_access(&mut self, p: ProcId, o: ObjectId) {
        self.accessed[o.index()][p] = true;
    }

    /// Deliver a point-to-point fetch reply of `expected_version` to `p`.
    /// Applied — replica installed, `bytes` accounted — only if `p` is
    /// alive and the payload is still the current version; stale deliveries
    /// return `false` and change nothing. Re-delivery of the current
    /// version is idempotent on the replica state but each accepted reply
    /// accounts its payload (the owner sent a full reply per request); the
    /// simulator filters out *duplicated* copies of a single request before
    /// calling this, using its per-task pending set.
    pub fn deliver(&mut self, p: ProcId, o: ObjectId, expected_version: u64, bytes: u64) -> bool {
        let i = o.index();
        if !self.alive[p] || self.version[i] != expected_version {
            return false;
        }
        self.have[p][i] = expected_version;
        self.bytes_transferred += bytes;
        self.traffic[i].fetch_bytes += bytes;
        self.object_sends += 1;
        true
    }

    /// Has the current version been accessed by every live processor? (The
    /// adaptive-broadcast trigger condition.)
    pub fn widely_accessed(&self, o: ObjectId) -> bool {
        self.accessed[o.index()]
            .iter()
            .enumerate()
            .all(|(p, &a)| a || !self.alive[p])
    }

    /// Is the object in broadcast mode?
    pub fn in_broadcast_mode(&self, o: ObjectId) -> bool {
        self.broadcast_mode[o.index()]
    }

    /// How many consecutive widely-accessed versions an object must retire
    /// before flipping into broadcast mode. Loss-free this is 1 — the
    /// paper's §3.4.2 trigger exactly. Under a configured drop rate each
    /// broadcast expects `drop_p × receivers` lost copies, each repaired by
    /// a retransmitted point-to-point fetch, so the break-even demands that
    /// much extra evidence that the all-consumer pattern is persistent.
    pub fn evidence_needed(&self) -> u32 {
        let receivers = self.alive.iter().filter(|&&a| a).count().saturating_sub(1);
        1 + (self.drop_p * receivers as f64).ceil() as u32 + self.margin
    }

    /// Extra evidence currently demanded beyond the drop-rate break-even.
    pub fn evidence_margin(&self) -> u32 {
        self.margin
    }

    /// Set the evidence margin (the feedback controller's knob). Takes
    /// effect on the next trigger evaluation; already-flipped objects stay
    /// in broadcast mode.
    pub fn set_evidence_margin(&mut self, margin: u32) {
        self.margin = margin;
    }

    /// A writer task on `p` completed, producing a new version of `o`.
    /// Returns `true` if the new version should be broadcast.
    pub fn on_write_complete(&mut self, p: ProcId, o: ObjectId) -> bool {
        let i = o.index();
        // Evaluate the trigger on the version being retired: a widely
        // accessed version accumulates evidence, a narrowly accessed one
        // resets it.
        if self.adaptive_broadcast {
            if self.widely_accessed(o) {
                self.wide_retired += 1;
                self.evidence[i] += 1;
                if self.evidence[i] >= self.evidence_needed() {
                    self.broadcast_mode[i] = true;
                }
            } else {
                self.narrow_retired += 1;
                self.evidence[i] = 0;
            }
        }
        self.version[i] += 1;
        self.owner[i] = p;
        let v = self.version[i];
        for q in 0..self.procs {
            self.have[q][i] = if q == p { v } else { NO_VERSION };
        }
        self.accessed[i].iter_mut().for_each(|a| *a = false);
        self.broadcast_mode[i]
    }

    /// Account a broadcast of `o` delivered to `receivers` processors (the
    /// simulator schedules the deliveries and decides, per receiver, whether
    /// the copy survives the network).
    pub fn record_broadcast(&mut self, o: ObjectId, bytes: usize, receivers: usize) {
        let payload = bytes as u64 * receivers as u64;
        self.bytes_transferred += payload;
        self.traffic[o.index()].broadcast_bytes += payload;
        self.broadcasts += 1;
    }

    /// Deliver a pushed copy (broadcast or eager update) of version `v` to
    /// `p`. Bytes were accounted at the send; this only installs the
    /// replica. Returns `false` for stale/duplicate/dead-target copies.
    pub fn deliver_pushed(&mut self, p: ProcId, o: ObjectId, v: u64) -> bool {
        let i = o.index();
        if !self.alive[p] || self.version[i] != v || self.have[p][i] == v {
            return false;
        }
        self.have[p][i] = v;
        true
    }

    /// Live processors that consumed the *current* version (candidates for
    /// the eager update protocol of paper Section 6: push each new version
    /// to the previous version's consumers).
    pub fn consumers(&self, o: ObjectId) -> Vec<ProcId> {
        self.accessed[o.index()]
            .iter()
            .enumerate()
            .filter_map(|(p, &a)| (a && self.alive[p]).then_some(p))
            .collect()
    }

    /// Account one eager producer-to-consumer push of `o`.
    pub fn record_eager(&mut self, o: ObjectId, bytes: usize) {
        self.bytes_transferred += bytes as u64;
        self.traffic[o.index()].eager_bytes += bytes as u64;
        self.eager_sends += 1;
    }

    /// Per-object byte attribution.
    pub fn object_traffic(&self, o: ObjectId) -> ObjectTraffic {
        self.traffic[o.index()]
    }

    /// Capture the communicator's ownership/replica/broadcast tables and
    /// object versions for a checkpoint.
    pub fn snapshot(&self) -> CommSnapshot {
        CommSnapshot {
            procs: self.procs,
            version: self.version.clone(),
            owner: self.owner.clone(),
            have: self.have.clone(),
            accessed: self.accessed.clone(),
            broadcast_mode: self.broadcast_mode.clone(),
            evidence: self.evidence.clone(),
        }
    }

    /// Account one sole-copy restore of `o` (called by the simulator after
    /// [`Self::fail_proc`] reported the object, once the restore transfer
    /// has been charged through the machine cost model).
    pub fn record_restore(&mut self, o: ObjectId, bytes: u64) {
        self.bytes_transferred += bytes;
        self.traffic[o.index()].restore_bytes += bytes;
        self.object_restores += 1;
    }

    /// Processor `p` fail-stopped. Its replicas and trigger evidence are
    /// gone; objects it owned move to a live holder of the current version,
    /// or — when the dead processor held the only copy — are re-materialized
    /// at the main processor (the runtime's recovery copy).
    ///
    /// **Every** object's accumulated broadcast-trigger evidence resets on
    /// the alive-set change, not just the dead processor's: the death
    /// shrinks the receiver count and with it [`Self::evidence_needed`],
    /// so evidence accumulated under the old, larger threshold could
    /// otherwise instantly flip an object into broadcast mode on an
    /// unrelated fail-stop. The streak must be re-earned against the live
    /// set. Objects the dead processor owned additionally reset
    /// `broadcast_mode` and their consumer sets — the dead owner's
    /// observations described a consumer set that no longer exists — and
    /// move ownership.
    ///
    /// Returns the objects whose **only** copy died with `p`. The caller
    /// must charge each restore transfer through the machine cost model and
    /// account it with [`Self::record_restore`] — this method only moves
    /// the metadata.
    pub fn fail_proc(&mut self, p: ProcId) -> Vec<ObjectId> {
        self.alive[p] = false;
        let mut restored = Vec::new();
        for i in 0..self.version.len() {
            self.have[p][i] = NO_VERSION;
            self.accessed[i][p] = false;
            self.evidence[i] = 0;
            if self.owner[i] == p {
                self.accessed[i].iter_mut().for_each(|a| *a = false);
                self.broadcast_mode[i] = false;
                let v = self.version[i];
                let holder = (0..self.procs).find(|&q| self.alive[q] && self.have[q][i] == v);
                let new_owner = match holder {
                    Some(q) => q,
                    None => {
                        restored.push(ObjectId(i as u32));
                        jade_core::MAIN_PROC
                    }
                };
                self.owner[i] = new_owner;
                self.have[new_owner][i] = v;
            }
        }
        restored
    }
}

/// A checkpoint's view of the communicator: the ownership/replica/
/// broadcast-mode tables and per-object versions at capture time. Fail-stop
/// recovery consults it to decide which lost sole copies the checkpoint
/// covers (object version unchanged since capture — the payload is in the
/// checkpoint) versus which need the expensive recovery-copy transfer.
#[derive(Clone, Debug, PartialEq)]
pub struct CommSnapshot {
    procs: usize,
    version: Vec<u64>,
    owner: Vec<ProcId>,
    have: Vec<Vec<u64>>,
    accessed: Vec<Vec<bool>>,
    broadcast_mode: Vec<bool>,
    evidence: Vec<u32>,
}

impl CommSnapshot {
    /// Version of `o` captured in this checkpoint.
    pub fn version(&self, o: ObjectId) -> u64 {
        self.version[o.index()]
    }

    /// Does this checkpoint hold the payload for version `v` of `o`?
    pub fn covers(&self, o: ObjectId, v: u64) -> bool {
        self.version
            .get(o.index())
            .is_some_and(|&captured| captured == v)
    }

    /// Encoded size of the metadata tables (payload bytes are accounted
    /// separately, per dirty object, when the checkpoint is taken): per
    /// object a version (8), an owner (4), a mode flag (1), an evidence
    /// counter (4), and per processor a held-version entry (8) plus an
    /// accessed bit (1).
    pub fn table_bytes(&self) -> u64 {
        let n = self.version.len() as u64;
        n * (17 + 9 * self.procs as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_core::TraceBuilder;

    fn trace2() -> Trace {
        let mut b = TraceBuilder::new();
        b.object("a", 1000, Some(0));
        b.object("b", 2000, Some(1));
        b.build()
    }

    fn o(n: u32) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn initial_state() {
        let c = Communicator::new(&trace2(), 4, true, 0.0);
        assert_eq!(c.owner(o(0)), 0);
        assert_eq!(c.owner(o(1)), 1);
        assert!(!c.needs_fetch(0, o(0)));
        assert!(c.needs_fetch(0, o(1)));
        assert!(c.needs_fetch(2, o(0)));
        assert!(c.is_alive(3));
    }

    #[test]
    fn fetch_and_replicate() {
        let mut c = Communicator::new(&trace2(), 4, true, 0.0);
        c.record_request(2, o(0));
        assert!(c.deliver(2, o(0), 0, 1000));
        assert!(!c.needs_fetch(2, o(0)));
        assert_eq!(c.bytes_transferred, 1000);
        assert_eq!(c.object_sends, 1);
        assert_eq!(c.object_traffic(o(0)).fetch_bytes, 1000);
        // Replication: processor 3 can fetch the same version too.
        c.record_request(3, o(0));
        assert!(c.deliver(3, o(0), 0, 1000));
        assert!(!c.needs_fetch(3, o(0)));
    }

    #[test]
    fn redelivery_is_idempotent_on_state() {
        let mut c = Communicator::new(&trace2(), 4, true, 0.0);
        c.record_request(2, o(0));
        assert!(c.deliver(2, o(0), 0, 1000));
        // A second accepted reply (two tasks on one processor fetching the
        // same object) re-installs the same replica and accounts its own
        // payload; duplicated copies of a *single* request never reach the
        // communicator (the simulator's pending set filters them).
        assert!(c.deliver(2, o(0), 0, 1000));
        assert!(!c.needs_fetch(2, o(0)));
        assert_eq!(c.bytes_transferred, 2000);
        assert_eq!(c.object_sends, 2);
    }

    #[test]
    fn write_bumps_version_and_invalidates() {
        let mut c = Communicator::new(&trace2(), 4, true, 0.0);
        c.record_request(2, o(0));
        assert!(c.deliver(2, o(0), 0, 1000));
        let bcast = c.on_write_complete(2, o(0));
        assert!(!bcast, "not widely accessed yet");
        assert_eq!(c.owner(o(0)), 2);
        assert_eq!(c.version(o(0)), 1);
        assert!(c.needs_fetch(0, o(0)), "old copy invalidated");
        assert!(!c.needs_fetch(2, o(0)));
    }

    #[test]
    fn stale_delivery_ignored() {
        let mut c = Communicator::new(&trace2(), 4, true, 0.0);
        c.record_request(2, o(0));
        // Version bumps while the reply is in flight.
        c.on_write_complete(3, o(0));
        assert!(!c.deliver(2, o(0), 0, 1000));
        assert!(c.needs_fetch(2, o(0)), "stale copy must not satisfy");
        assert_eq!(c.bytes_transferred, 0, "stale payload not accounted");
    }

    #[test]
    fn broadcast_triggers_after_all_access() {
        let mut c = Communicator::new(&trace2(), 3, true, 0.0);
        // Processors 1 and 2 request the version owned by 0; a task on the
        // owner also declares an access.
        c.record_request(1, o(0));
        c.record_request(2, o(0));
        assert!(!c.widely_accessed(o(0)), "producing is not consuming");
        c.note_access(0, o(0));
        assert!(c.widely_accessed(o(0)));
        assert!(!c.in_broadcast_mode(o(0)));
        // The next write flips the object into broadcast mode.
        assert!(c.on_write_complete(0, o(0)));
        assert!(c.in_broadcast_mode(o(0)));
        // And stays there for succeeding versions.
        assert!(c.on_write_complete(1, o(0)));
    }

    #[test]
    fn no_broadcast_when_disabled() {
        let mut c = Communicator::new(&trace2(), 2, false, 0.0);
        c.record_request(1, o(0));
        c.note_access(0, o(0));
        assert!(c.widely_accessed(o(0)));
        assert!(!c.on_write_complete(0, o(0)));
        assert!(!c.in_broadcast_mode(o(0)));
    }

    #[test]
    fn partial_access_does_not_trigger() {
        let mut c = Communicator::new(&trace2(), 4, true, 0.0);
        c.record_request(1, o(0));
        c.record_request(2, o(0));
        // Processor 3 never accessed it.
        assert!(!c.widely_accessed(o(0)));
        assert!(!c.on_write_complete(0, o(0)));
    }

    #[test]
    fn broadcast_delivery_and_accounting() {
        let mut c = Communicator::new(&trace2(), 4, true, 0.0);
        for p in 1..4 {
            c.record_request(p, o(0));
            assert!(c.deliver(p, o(0), 0, 1000));
        }
        c.note_access(0, o(0));
        assert!(c.on_write_complete(0, o(0)));
        c.record_broadcast(o(0), 1000, 3);
        assert_eq!(c.bytes_transferred, 3000 + 3000);
        assert_eq!(c.broadcasts, 1);
        // Broadcast bytes attributed to the object that was broadcast.
        assert_eq!(c.object_traffic(o(0)).broadcast_bytes, 3000);
        assert_eq!(c.object_traffic(o(0)).fetch_bytes, 3000);
        assert_eq!(c.object_traffic(o(1)), ObjectTraffic::default());
        assert!(c.deliver_pushed(2, o(0), 1));
        assert!(!c.needs_fetch(2, o(0)));
        // Stale broadcast delivery ignored.
        c.on_write_complete(0, o(0));
        assert!(!c.deliver_pushed(3, o(0), 1));
        assert!(c.needs_fetch(3, o(0)));
    }

    #[test]
    fn single_processor_degenerate_case() {
        // With one processor every version is trivially widely accessed:
        // the degenerate case the paper notes for 1-processor runs.
        let mut b = TraceBuilder::new();
        b.object("x", 100, Some(0));
        let t = b.build();
        let mut c = Communicator::new(&t, 1, true, 0.0);
        assert!(!c.widely_accessed(o(0)), "nothing consumed yet");
        c.note_access(0, o(0));
        assert!(c.widely_accessed(o(0)));
        assert!(c.on_write_complete(0, o(0)));
    }

    #[test]
    fn fail_stop_reassigns_ownership_to_live_replica() {
        let mut c = Communicator::new(&trace2(), 4, true, 0.0);
        // Processor 2 writes `a`; processor 3 fetches the new version.
        c.on_write_complete(2, o(0));
        c.record_request(3, o(0));
        assert!(c.deliver(3, o(0), 1, 1000));
        let restored = c.fail_proc(2);
        assert!(
            restored.is_empty(),
            "a live replica means nothing to restore"
        );
        assert!(!c.is_alive(2));
        assert_eq!(c.owner(o(0)), 3, "live replica holder takes over");
        assert_eq!(c.version(o(0)), 1, "no version lost");
        assert!(!c.needs_fetch(3, o(0)));
        // Deliveries to the dead processor are refused.
        assert!(!c.deliver(2, o(0), 1, 1000));
        assert!(!c.deliver_pushed(2, o(0), 1));
    }

    #[test]
    fn fail_stop_restores_sole_copy_at_main() {
        let mut c = Communicator::new(&trace2(), 4, true, 0.0);
        // Processor 2 writes `a` and dies before anyone fetched it.
        c.on_write_complete(2, o(0));
        let restored = c.fail_proc(2);
        assert_eq!(restored, vec![o(0)], "the sole copy must be reported");
        assert_eq!(c.owner(o(0)), 0, "recovery copy lives at main");
        assert!(!c.needs_fetch(0, o(0)));
        assert_eq!(c.version(o(0)), 1);
        // The caller charges the transfer and attributes the bytes.
        c.record_restore(o(0), 1000);
        assert_eq!(c.bytes_transferred, 1000);
        assert_eq!(c.object_restores, 1);
        let t = c.object_traffic(o(0));
        assert_eq!(t.restore_bytes, 1000);
        assert_eq!(t.total(), 1000, "restore bytes keep total() conserved");
    }

    #[test]
    fn dead_processors_do_not_block_broadcast_trigger() {
        let mut c = Communicator::new(&trace2(), 3, true, 0.0);
        let restored = c.fail_proc(2);
        assert!(restored.is_empty(), "proc 2 owned nothing");
        c.record_request(1, o(0));
        c.note_access(0, o(0));
        assert!(c.widely_accessed(o(0)), "only live processors count");
        assert_eq!(c.consumers(o(0)), vec![0, 1]);
    }

    #[test]
    fn owner_death_resets_broadcast_mode_and_evidence() {
        let mut c = Communicator::new(&trace2(), 3, true, 0.0);
        // Flip object `a` into broadcast mode with owner 2.
        c.on_write_complete(2, o(0));
        c.record_request(0, o(0));
        c.record_request(1, o(0));
        c.note_access(2, o(0));
        assert!(c.on_write_complete(2, o(0)), "trigger fires");
        assert!(c.in_broadcast_mode(o(0)));
        // The owner dies holding the sole copy: mode and evidence reset —
        // the dead owner's observations described a consumer set that no
        // longer exists.
        let restored = c.fail_proc(2);
        assert_eq!(restored, vec![o(0)]);
        assert!(!c.in_broadcast_mode(o(0)));
        assert!(!c.widely_accessed(o(0)), "consumer evidence cleared");
        assert!(
            !c.consumers(o(0)).contains(&2),
            "no broadcast to a dead consumer set"
        );
        // The new owner must re-earn the trigger from scratch.
        assert!(!c.on_write_complete(0, o(0)));
        c.record_request(1, o(0));
        c.note_access(0, o(0));
        assert!(c.on_write_complete(0, o(0)), "re-earned over live set");
    }

    #[test]
    fn drop_rate_demands_more_evidence_before_broadcast() {
        // With 4 live processors (3 receivers) and drop=0.4, the break-even
        // needs 1 + ceil(1.2) = 3 consecutive widely-accessed versions.
        let mut c = Communicator::new(&trace2(), 4, true, 0.4);
        assert_eq!(c.evidence_needed(), 3);
        let consume_all = |c: &mut Communicator| {
            for p in 1..4 {
                c.record_request(p, o(0));
            }
            c.note_access(0, o(0));
        };
        consume_all(&mut c);
        assert!(!c.on_write_complete(0, o(0)), "evidence 1 of 3");
        consume_all(&mut c);
        assert!(!c.on_write_complete(0, o(0)), "evidence 2 of 3");
        consume_all(&mut c);
        assert!(c.on_write_complete(0, o(0)), "evidence 3 of 3: flips");
        assert!(c.in_broadcast_mode(o(0)));
        // Loss-free the same machine flips on the first widely-accessed
        // version — the unchanged §3.4.2 behavior.
        let mut lossless = Communicator::new(&trace2(), 4, true, 0.0);
        assert_eq!(lossless.evidence_needed(), 1);
        consume_all(&mut lossless);
        assert!(lossless.on_write_complete(0, o(0)));
    }

    #[test]
    fn narrow_version_resets_accumulated_evidence() {
        let mut c = Communicator::new(&trace2(), 4, true, 0.4);
        assert_eq!(c.evidence_needed(), 3);
        for _ in 0..2 {
            for p in 1..4 {
                c.record_request(p, o(0));
            }
            c.note_access(0, o(0));
            assert!(!c.on_write_complete(0, o(0)));
        }
        // A narrowly-consumed version breaks the streak...
        c.record_request(1, o(0));
        assert!(!c.on_write_complete(0, o(0)));
        // ...so two more widely-accessed versions still do not flip.
        for _ in 0..2 {
            for p in 1..4 {
                c.record_request(p, o(0));
            }
            c.note_access(0, o(0));
            assert!(!c.on_write_complete(0, o(0)));
        }
    }

    #[test]
    fn non_owner_death_does_not_instantly_flip_broadcast_mode() {
        // Fail-stop mid-accumulation: with 4 live processors and drop=0.4
        // the break-even needs 3 consecutive widely-accessed versions.
        let mut c = Communicator::new(&trace2(), 4, true, 0.4);
        assert_eq!(c.evidence_needed(), 3);
        let consume_all = |c: &mut Communicator, owner: ProcId| {
            for p in 0..4 {
                if p != owner && c.is_alive(p) {
                    c.record_request(p, o(0));
                }
            }
            c.note_access(owner, o(0));
        };
        consume_all(&mut c, 0);
        assert!(!c.on_write_complete(0, o(0)), "evidence 1 of 3");
        consume_all(&mut c, 0);
        assert!(!c.on_write_complete(0, o(0)), "evidence 2 of 3");
        // A *non-owner* dies: the threshold shrinks to 1 + ceil(0.4 * 2)
        // = 2. The two units of evidence were earned against the larger
        // receiver set — they must not satisfy the smaller break-even.
        let restored = c.fail_proc(3);
        assert!(restored.is_empty(), "proc 3 owned nothing");
        assert_eq!(c.evidence_needed(), 2);
        consume_all(&mut c, 0);
        assert!(
            !c.on_write_complete(0, o(0)),
            "stale evidence must not flip the object on an unrelated death"
        );
        assert!(!c.in_broadcast_mode(o(0)));
        // The streak re-earned against the live set flips as normal.
        consume_all(&mut c, 0);
        assert!(c.on_write_complete(0, o(0)), "re-earned evidence 2 of 2");
        assert!(c.in_broadcast_mode(o(0)));
    }

    #[test]
    fn evidence_margin_raises_the_break_even() {
        let mut c = Communicator::new(&trace2(), 4, true, 0.0);
        assert_eq!(c.evidence_needed(), 1);
        c.set_evidence_margin(1);
        assert_eq!(c.evidence_needed(), 2);
        assert_eq!(c.evidence_margin(), 1);
        let consume_all = |c: &mut Communicator| {
            for p in 1..4 {
                c.record_request(p, o(0));
            }
            c.note_access(0, o(0));
        };
        consume_all(&mut c);
        assert!(!c.on_write_complete(0, o(0)), "margin demands a streak");
        consume_all(&mut c);
        assert!(c.on_write_complete(0, o(0)), "streak satisfies margin");
        // Width statistics accumulated for the controller.
        assert_eq!((c.wide_retired, c.narrow_retired), (2, 0));
        c.on_write_complete(0, o(0));
        assert_eq!((c.wide_retired, c.narrow_retired), (2, 1));
    }

    #[test]
    fn snapshot_captures_versions_and_coverage() {
        let mut c = Communicator::new(&trace2(), 4, true, 0.0);
        c.on_write_complete(2, o(0));
        let snap = c.snapshot();
        assert_eq!(snap.version(o(0)), 1);
        assert!(snap.covers(o(0), 1));
        assert!(!snap.covers(o(0), 2));
        assert!(!snap.covers(ObjectId(99), 0), "unknown object not covered");
        assert_eq!(snap.table_bytes(), 2 * (17 + 9 * 4));
        // A later write leaves the snapshot stale for that object.
        c.on_write_complete(3, o(0));
        assert!(!snap.covers(o(0), c.version(o(0))));
        assert!(
            snap.covers(o(1), c.version(o(1))),
            "untouched object still covered"
        );
    }
}
