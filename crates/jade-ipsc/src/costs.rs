//! Cost model for the Jade runtime's own overheads on the iPSC/860.
//!
//! The iPSC "does not support the fine-grained communication required for
//! efficient task management" (paper Section 5.2.2): every scheduling action
//! is a software message with interrupt-driven handlers, so per-task
//! management costs are several times the DASH costs. Constants are
//! calibrated against the paper's Figure 20/21 work-free fractions and the
//! Ocean/Cholesky execution-time tables (see EXPERIMENTS.md §calibration).

use dsim::SimDuration;

/// Per-operation Jade runtime overheads on the message-passing machine.
#[derive(Clone, Copy, Debug)]
pub struct IpscCosts {
    /// Main-thread cost to create one task (access-spec section, task
    /// descriptor allocation, synchronizer insertion).
    pub create_s: f64,
    /// Main-processor cost of one scheduling decision (load scan, pool
    /// management).
    pub sched_s: f64,
    /// Payload size of a task-assignment message (task descriptor plus
    /// access specification).
    pub assign_bytes: usize,
    /// Interrupt-handler cost on a processor receiving an assignment,
    /// per message.
    pub recv_handler_s: f64,
    /// Cost of composing and sending one object-request message (charged to
    /// the requesting processor, serially per request; the *transfers*
    /// themselves proceed concurrently).
    pub request_send_s: f64,
    /// Payload size of an object-request message.
    pub request_bytes: usize,
    /// Per-object header entry inside a coalesced (aggregated) request or
    /// reply: object id, version, offset and length of that object's
    /// payload within the bundled message. Feeds the Section 5.3
    /// break-even test: coalescing saves fixed per-message costs but pays
    /// for these entries at the link bandwidth.
    pub agg_entry_bytes: usize,
    /// Handler cost on a processor receiving an object reply.
    pub object_recv_s: f64,
    /// Completion-processing cost on the executing processor.
    pub complete_s: f64,
    /// Payload size of a completion-notification message.
    pub notify_bytes: usize,
    /// Main-processor cost to process a completion notification (remove
    /// queue entries, enable successors, pull from the unassigned pool).
    pub notify_handler_s: f64,
}

impl Default for IpscCosts {
    fn default() -> Self {
        IpscCosts {
            create_s: 600e-6,
            sched_s: 250e-6,
            assign_bytes: 256,
            recv_handler_s: 100e-6,
            request_send_s: 50e-6,
            request_bytes: 32,
            agg_entry_bytes: 16,
            object_recv_s: 50e-6,
            complete_s: 150e-6,
            notify_bytes: 32,
            notify_handler_s: 800e-6,
        }
    }
}

impl IpscCosts {
    pub fn create(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.create_s)
    }
    pub fn sched(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.sched_s)
    }
    pub fn recv_handler(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.recv_handler_s)
    }
    pub fn request_send(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.request_send_s)
    }
    pub fn object_recv(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.object_recv_s)
    }
    pub fn complete(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.complete_s)
    }
    pub fn notify_handler(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.notify_handler_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = IpscCosts::default();
        assert!(c.create_s > 0.0 && c.create_s < 5e-3);
        assert!(c.assign_bytes > 0 && c.request_bytes > 0 && c.notify_bytes > 0);
        // Total per-task management on the main processor should be around
        // a millisecond: the calibration target discussed in EXPERIMENTS.md.
        let per_task_main = c.create_s + c.sched_s + c.notify_handler_s;
        assert!((0.5e-3..2e-3).contains(&per_task_main), "{per_task_main}");
    }
}
