//! # jade-ipsc — the message-passing (Intel iPSC/860) Jade runtime
//!
//! Replays machine-independent Jade program traces (`jade_core::Trace`) on a
//! simulated iPSC/860 hypercube, implementing the full message-passing
//! runtime of paper Sections 3.3–3.4:
//!
//! * a software shared-object layer ([`Communicator`]) with **replication**
//!   of read-shared objects, **concurrent fetches** of a task's remote
//!   objects, and the **adaptive broadcast** protocol for widely-accessed
//!   objects;
//! * a **centralized scheduler** ([`IpscScheduler`]) on the main processor
//!   with dynamic load balancing, target-processor preference (the locality
//!   heuristic), an unassigned-task pool, and a configurable target task
//!   count per processor (the **latency hiding** optimization);
//! * NX/2-style message costing: 47 µs minimum latency, 2.8 MB/s links,
//!   senders busy for the full transfer.
//!
//! ```
//! use jade_core::{AccessSpec, LocalityMode, TraceBuilder};
//! use jade_ipsc::{run, IpscConfig};
//!
//! let mut b = TraceBuilder::new();
//! let objs: Vec<_> = (0..8).map(|i| b.object(&format!("o{i}"), 1024, Some(i % 4))).collect();
//! for &o in &objs {
//!     let mut s = AccessSpec::new();
//!     s.wr(o);
//!     b.task(s, 1.0);
//! }
//! let trace = b.build();
//! let result = run(&trace, &IpscConfig::paper(4, LocalityMode::Locality, 1.0));
//! assert_eq!(result.tasks_executed, 8);
//! ```

#![forbid(unsafe_code)]

mod communicator;
mod costs;
mod error;
mod scheduler;
mod sim;

pub use communicator::{CommSnapshot, Communicator, ObjectTraffic};
pub use costs::IpscCosts;
pub use error::IpscError;
pub use jade_core::LocalityMode;
pub use scheduler::{Decision, IpscScheduler};
pub use sim::{
    run, run_traced, try_run, try_run_traced, IpscConfig, IpscRunResult, PinnedSchedule,
};
