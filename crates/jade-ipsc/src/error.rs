//! Typed errors for the iPSC/860 simulation entry points.
//!
//! Fault injection makes failure a normal outcome: a fault plan can be
//! malformed, can name a processor that cannot die, or can (in principle)
//! starve a fetch past its retry budget. These all surface as [`IpscError`]
//! through [`crate::try_run`] / [`crate::try_run_traced`] instead of
//! panicking inside the event loop.

use jade_core::{ObjectId, TaskId};
use std::fmt;

/// Why an iPSC/860 simulation could not produce a result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IpscError {
    /// The configuration requested a machine with zero processors.
    NoProcessors,
    /// The fault plan is malformed (bad probability, or a fail-stop target
    /// that is the main processor or out of range).
    InvalidFaultPlan(String),
    /// The machine/cost configuration is unusable (non-positive bandwidth,
    /// negative latency or compute cost, oversized jitter, bad speed
    /// factor): left unchecked these poison virtual-time arithmetic deep in
    /// the event loop.
    InvalidMachine(String),
    /// The event calendar drained before the program completed: `live`
    /// tasks never finished. Indicates a protocol bug, not an injected
    /// fault — the recovery machinery is supposed to make progress under
    /// any plan.
    Stalled { live_tasks: usize },
    /// A fetch was retried past the retry budget (statistically unreachable
    /// for drop probabilities ≤ 0.2, but the type is total).
    RetriesExhausted {
        task: TaskId,
        object: ObjectId,
        attempts: u32,
    },
}

impl fmt::Display for IpscError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpscError::NoProcessors => write!(f, "need at least one processor"),
            IpscError::InvalidFaultPlan(why) => write!(f, "invalid fault plan: {why}"),
            IpscError::InvalidMachine(why) => write!(f, "invalid machine config: {why}"),
            IpscError::Stalled { live_tasks } => {
                write!(f, "simulation stalled: {live_tasks} tasks never completed")
            }
            IpscError::RetriesExhausted {
                task,
                object,
                attempts,
            } => write!(
                f,
                "fetch of {object:?} for {task:?} exhausted {attempts} retries"
            ),
        }
    }
}

impl std::error::Error for IpscError {}
