//! Chrome `trace_event` export for [`Event`](crate::Event) streams.
//!
//! [`write_chrome_trace`] serializes a recorded run into the JSON Array
//! Format understood by `chrome://tracing` and Perfetto: each processor
//! becomes a track (`tid`), busy [`Span`](crate::EventKind::Span) intervals
//! become complete events (`"ph":"X"`) named after their component, and all
//! other events become instants (`"ph":"i"`). Timestamps are microseconds,
//! printed with six decimals so the picosecond clock round-trips exactly.
//!
//! The writer is hand-rolled (the workspace is dependency-free by design),
//! and [`parse_json`] is a matching minimal parser so tests — and the
//! `repro --trace-out` acceptance check — can validate emitted files
//! without a JSON crate.

use crate::events::{Event, EventKind};
use std::io::{self, Write};

/// Format picoseconds as microseconds with exact 6-digit fraction.
fn micros(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

fn args_json(e: &Event) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(t) = e.task {
        parts.push(format!("\"task\":{}", t.0));
    }
    if let Some(o) = e.object {
        parts.push(format!("\"object\":{}", o.0));
    }
    match e.kind {
        EventKind::TaskDispatched { stolen, locality } => {
            parts.push(format!("\"stolen\":{stolen}"));
            parts.push(format!("\"locality\":\"{locality:?}\""));
        }
        EventKind::ObjectRequest { bytes }
        | EventKind::EagerPush { bytes }
        | EventKind::MsgSend { bytes }
        | EventKind::MsgRecv { bytes }
        | EventKind::MsgDropped { bytes }
        | EventKind::MsgRetried { bytes }
        | EventKind::MsgDiscarded { bytes }
        | EventKind::CheckpointTaken { bytes }
        | EventKind::CheckpointRestored { bytes }
        | EventKind::ObjectRestored { bytes }
        | EventKind::PrefetchIssued { bytes }
        | EventKind::PrefetchHit { bytes }
        | EventKind::PrefetchStale { bytes } => parts.push(format!("\"bytes\":{bytes}")),
        EventKind::ProcStalled { dur_ps } => {
            parts.push(format!("\"stall_us\":{}", micros(dur_ps)));
        }
        EventKind::ObjectFetch { bytes, latency_ps } => {
            parts.push(format!("\"bytes\":{bytes}"));
            parts.push(format!("\"latency_us\":{}", micros(latency_ps)));
        }
        EventKind::ObjectBroadcast { bytes, receivers } => {
            parts.push(format!("\"bytes\":{bytes}"));
            parts.push(format!("\"receivers\":{receivers}"));
        }
        EventKind::AggregatedFetch { objects, bytes } => {
            parts.push(format!("\"bytes\":{bytes}"));
            parts.push(format!("\"objects\":{objects}"));
        }
        EventKind::PhaseStart { phase } | EventKind::PhaseEnd { phase } => {
            parts.push(format!("\"phase\":{phase}"));
        }
        _ => {}
    }
    format!("{{{}}}", parts.join(","))
}

/// Write `events` as a Chrome trace-event JSON document.
pub fn write_chrome_trace<W: Write>(w: &mut W, events: &[Event]) -> io::Result<()> {
    write!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            write!(w, ",")?;
        }
        match e.kind {
            EventKind::Span { component, dur_ps } => write!(
                w,
                "\n{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{}}}",
                component.name(),
                micros(e.time_ps),
                micros(dur_ps),
                e.proc,
                args_json(e)
            )?,
            _ => write!(
                w,
                "\n{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{}}}",
                e.kind.name(),
                micros(e.time_ps),
                e.proc,
                args_json(e)
            )?,
        }
    }
    writeln!(w, "\n]}}")
}

/// A parsed JSON value (minimal: enough to validate trace files).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a JSON document. Strings support the standard escapes except
/// `\uXXXX` (the trace writer never emits non-ASCII).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    other => return Err(format!("unsupported escape '\\{}'", other as char)),
                });
                *pos += 1;
            }
            c => {
                // Multi-byte UTF-8 passes through unchanged.
                let ch_len = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let s = std::str::from_utf8(&b[*pos..*pos + ch_len])
                    .map_err(|_| "invalid utf-8 in string")?;
                out.push_str(s);
                *pos += ch_len;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        members.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Validate a Chrome trace-event document produced by
/// [`write_chrome_trace`]: the shape is right, timestamps are
/// non-negative, every complete event carries a duration, and processor
/// tracks are in range. Returns the number of trace events.
pub fn validate_chrome_trace(text: &str, procs: usize) -> Result<usize, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: no name"))?;
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: no ph"))?;
        let ts = e
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: no ts"))?;
        let tid = e
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: no tid"))?;
        if ts < 0.0 {
            return Err(format!("event {i} ({name}): negative ts"));
        }
        if tid < 0.0 || tid >= procs as f64 {
            return Err(format!(
                "event {i} ({name}): tid {tid} out of range 0..{procs}"
            ));
        }
        match ph {
            "X" => {
                let dur = e
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or(format!("event {i}: X without dur"))?;
                if dur <= 0.0 {
                    return Err(format!("event {i} ({name}): non-positive dur"));
                }
            }
            "i" => {}
            other => return Err(format!("event {i} ({name}): unexpected ph {other:?}")),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{Component, EventSink};
    use crate::ids::TaskId;

    fn sample_events() -> Vec<Event> {
        let mut s = EventSink::recording();
        s.emit_task(0, 0, EventKind::TaskCreated, TaskId(0));
        s.span(0, 0, Component::Mgmt, 1_500_000, Some(TaskId(0)));
        s.emit_task(
            1_500_000,
            1,
            EventKind::TaskDispatched {
                stolen: false,
                locality: crate::events::Locality::Hit,
            },
            TaskId(0),
        );
        s.span(1_500_000, 1, Component::App, 2_000_000, Some(TaskId(0)));
        s.into_events()
    }

    #[test]
    fn micros_is_exact() {
        assert_eq!(micros(0), "0.000000");
        assert_eq!(micros(1_234_567), "1.234567");
        assert_eq!(micros(1_000_000), "1.000000");
    }

    #[test]
    fn written_trace_validates() {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &sample_events()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let n = validate_chrome_trace(&text, 2).unwrap();
        assert_eq!(n, 4);
    }

    #[test]
    fn validator_rejects_out_of_range_tid() {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &sample_events()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(validate_chrome_trace(&text, 1).is_err());
    }

    #[test]
    fn parser_roundtrips_structures() {
        let v = parse_json(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true},"e":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_trailing_garbage() {
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("[1,").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn empty_event_list_is_valid() {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &[]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(validate_chrome_trace(&text, 1).unwrap(), 0);
    }
}
