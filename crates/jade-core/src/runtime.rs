//! The runtime interface Jade programs are written against.
//!
//! Applications are generic over [`JadeRuntime`], so one program text runs
//! unmodified on every backend — exactly the portability claim of the paper
//! ("Jade programs port without modification between all platforms"):
//!
//! * [`crate::trace::TraceRuntime`] — serial execution + trace recording
//!   (feeds the DASH and iPSC machine simulators);
//! * `jade_threads::ThreadRuntime` — real parallel execution on OS threads.

use crate::ids::{Handle, ObjectId, ProcId, TaskId};
use crate::store::Store;
use crate::task::TaskDef;

/// A backend capable of running a Jade program.
pub trait JadeRuntime {
    /// The shared-object store (read results here after [`finish`]).
    ///
    /// [`finish`]: JadeRuntime::finish
    fn store(&self) -> &Store;

    /// Mutable store access for allocation (before/between tasks).
    fn store_mut(&mut self) -> &mut Store;

    /// Allocate a shared object. `size_bytes` is the communication size the
    /// machine models charge to move the object.
    fn create<T: Send + Sync + 'static>(
        &mut self,
        name: &str,
        size_bytes: usize,
        data: T,
    ) -> Handle<T> {
        self.store_mut().create(name, size_bytes, data)
    }

    /// Assign an object's memory-module home processor.
    fn set_home(&mut self, o: impl Into<ObjectId>, home: ProcId)
    where
        Self: Sized,
    {
        self.store_mut().set_home(o.into(), home);
    }

    /// Submit a task (the `withonly ... do ...` construct). Returns the
    /// task's id. Submission order defines the serial program order the
    /// synchronizer preserves.
    fn submit(&mut self, def: TaskDef) -> TaskId;

    /// Mark an application phase boundary (used for the paper's per-phase
    /// analyses; a no-op on backends that don't track phases).
    fn begin_phase(&mut self) {}

    /// Block until every submitted task has completed.
    fn finish(&mut self);
}
