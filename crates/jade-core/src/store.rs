//! The shared-object store: Jade's "single mutable shared memory".
//!
//! Every piece of data a Jade program shares between tasks is a *shared
//! object* allocated in this store. The store is heterogeneous (each object
//! carries its own payload type) and thread-safe: the `jade-threads` backend
//! executes task bodies on worker threads against the same store the trace
//! runtime uses serially.
//!
//! Per-object `RwLock`s serve two purposes: they make the store `Sync`, and
//! they *dynamically verify* the synchronizer's core guarantee — two
//! conflicting accesses are never granted concurrently. Task bodies acquire
//! object locks through [`crate::task::TaskCtx`], which also checks every
//! access against the task's declared access specification, exactly as the
//! Jade implementation detects undeclared accesses at run time.

use crate::ids::{Handle, ObjectId, ProcId};
use std::any::Any;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

type Payload = Box<dyn Any + Send + Sync>;

struct Slot {
    name: String,
    size_bytes: usize,
    /// Bytes actually touched through a cache hierarchy (None = same as
    /// `size_bytes`). Message-passing machines move whole objects; a
    /// cache-coherent machine only moves the lines the computation touches.
    cache_bytes: Option<usize>,
    /// Memory-module home assigned by the allocating program (used by the
    /// machine runtimes for locality decisions). `None` = main processor.
    home: Option<ProcId>,
    data: RwLock<Payload>,
}

/// A heterogeneous, thread-safe collection of shared objects.
#[derive(Default)]
pub struct Store {
    slots: Vec<Slot>,
}

impl Store {
    pub fn new() -> Store {
        Store { slots: Vec::new() }
    }

    /// Allocate a shared object holding `data`.
    ///
    /// `size_bytes` is the object's *communication size*: how many bytes the
    /// machine models charge to move it. For a `Vec<f64>` payload this is
    /// `8 * len`, matching how the paper sizes its objects (e.g. Water's
    /// 165,888-byte position object).
    pub fn create<T: Send + Sync + 'static>(
        &mut self,
        name: impl Into<String>,
        size_bytes: usize,
        data: T,
    ) -> Handle<T> {
        let id = ObjectId(u32::try_from(self.slots.len()).expect("too many objects"));
        self.slots.push(Slot {
            name: name.into(),
            size_bytes,
            cache_bytes: None,
            home: None,
            data: RwLock::new(Box::new(data)),
        });
        Handle {
            id,
            _marker: PhantomData,
        }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    pub fn name(&self, id: ObjectId) -> &str {
        &self.slots[id.index()].name
    }

    pub fn size_bytes(&self, id: ObjectId) -> usize {
        self.slots[id.index()].size_bytes
    }

    /// Update the communication size of an object whose payload grows after
    /// allocation (e.g. a sparse panel filled in during factorization).
    pub fn set_size_bytes(&mut self, id: ObjectId, size: usize) {
        self.slots[id.index()].size_bytes = size;
    }

    /// Bytes moved through a cache hierarchy when the object is accessed
    /// (defaults to the full communication size).
    pub fn cache_bytes(&self, id: ObjectId) -> usize {
        let s = &self.slots[id.index()];
        s.cache_bytes.unwrap_or(s.size_bytes)
    }

    /// Set the cache-transfer size separately from the message size (for
    /// objects whose wire representation is denser than the bytes a task
    /// actually touches, or vice versa).
    pub fn set_cache_bytes(&mut self, id: ObjectId, bytes: usize) {
        self.slots[id.index()].cache_bytes = Some(bytes);
    }

    /// The memory-module home the program assigned (None = unplaced).
    pub fn home(&self, id: ObjectId) -> Option<ProcId> {
        self.slots[id.index()].home
    }

    /// Assign the object's memory-module home. On DASH this is the processor
    /// in whose memory module the object is allocated; on the iPSC it is the
    /// object's initial owner.
    pub fn set_home(&mut self, id: ObjectId, home: ProcId) {
        self.slots[id.index()].home = Some(home);
    }

    /// Acquire a read guard on the object. Panics if the payload type does
    /// not match the handle type, or (in the threads backend) if a writer
    /// currently holds the object — which the synchronizer must prevent.
    pub fn read<T: 'static>(&self, h: Handle<T>) -> ReadGuard<'_, T> {
        let slot = &self.slots[h.id.index()];
        let guard = slot.data.try_read().unwrap_or_else(|_| {
            panic!(
                "object {} read-locked while write-held: synchronizer violation",
                slot.name
            )
        });
        assert!(
            (*guard).as_ref().is::<T>(),
            "type mismatch reading object {:?} ({})",
            h.id,
            slot.name
        );
        ReadGuard {
            guard,
            _marker: PhantomData,
        }
    }

    /// Acquire a write guard on the object. Panics on type mismatch or if
    /// any other holder exists (synchronizer violation).
    pub fn write<T: 'static>(&self, h: Handle<T>) -> WriteGuard<'_, T> {
        let slot = &self.slots[h.id.index()];
        let guard = slot.data.try_write().unwrap_or_else(|_| {
            panic!(
                "object {} write-locked while held: synchronizer violation",
                slot.name
            )
        });
        assert!(
            (*guard).as_ref().is::<T>(),
            "type mismatch writing object {:?} ({})",
            h.id,
            slot.name
        );
        WriteGuard {
            guard,
            _marker: PhantomData,
        }
    }

    /// Read an object and clone the payload out (convenient for extracting
    /// final results after a run).
    pub fn snapshot<T: Clone + 'static>(&self, h: Handle<T>) -> T {
        self.read(h).clone()
    }

    /// Iterate over `(id, name, size_bytes, cache_bytes, home)` for trace
    /// recording.
    pub fn object_meta(
        &self,
    ) -> impl Iterator<Item = (ObjectId, &str, usize, Option<usize>, Option<ProcId>)> {
        self.slots.iter().enumerate().map(|(i, s)| {
            (
                ObjectId(i as u32),
                s.name.as_str(),
                s.size_bytes,
                s.cache_bytes,
                s.home,
            )
        })
    }
}

/// RAII read access to a shared object's payload.
pub struct ReadGuard<'a, T: 'static> {
    guard: RwLockReadGuard<'a, Payload>,
    _marker: PhantomData<&'a T>,
}

impl<T: 'static> Deref for ReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // Type checked at acquisition; downcast cannot fail here.
        self.guard.downcast_ref::<T>().unwrap()
    }
}

/// RAII write access to a shared object's payload.
pub struct WriteGuard<'a, T: 'static> {
    guard: RwLockWriteGuard<'a, Payload>,
    _marker: PhantomData<&'a mut T>,
}

impl<T: 'static> Deref for WriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.guard.downcast_ref::<T>().unwrap()
    }
}

impl<T: 'static> DerefMut for WriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.guard.downcast_mut::<T>().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_read_write() {
        let mut store = Store::new();
        let h = store.create("vec", 24, vec![1.0f64, 2.0, 3.0]);
        assert_eq!(store.len(), 1);
        assert_eq!(store.name(h.id()), "vec");
        assert_eq!(store.size_bytes(h.id()), 24);
        {
            let mut w = store.write(h);
            w[0] = 10.0;
        }
        let r = store.read(h);
        assert_eq!(r[0], 10.0);
    }

    #[test]
    fn concurrent_reads_allowed() {
        let mut store = Store::new();
        let h = store.create("x", 8, 42u64);
        let r1 = store.read(h);
        let r2 = store.read(h);
        assert_eq!(*r1 + *r2, 84);
    }

    #[test]
    #[should_panic(expected = "synchronizer violation")]
    fn write_while_read_panics() {
        let mut store = Store::new();
        let h = store.create("x", 8, 42u64);
        let _r = store.read(h);
        let _w = store.write(h);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_caught() {
        let mut store = Store::new();
        let h = store.create("x", 8, 42u64);
        let wrong: Handle<String> = Handle::from_id(h.id());
        let _ = store.read(wrong);
    }

    #[test]
    fn homes() {
        let mut store = Store::new();
        let h = store.create("x", 8, 0u8);
        assert_eq!(store.home(h.id()), None);
        store.set_home(h.id(), 5);
        assert_eq!(store.home(h.id()), Some(5));
    }

    #[test]
    fn snapshot_clones() {
        let mut store = Store::new();
        let h = store.create("v", 16, vec![1u32, 2]);
        let v = store.snapshot(h);
        assert_eq!(v, vec![1, 2]);
        // Store still usable afterwards.
        let _ = store.write(h);
    }

    #[test]
    fn store_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Store>();
    }
}
