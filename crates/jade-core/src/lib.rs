//! # jade-core — the Jade programming model in Rust
//!
//! Jade (Rinard, Scales & Lam) is a portable, *implicitly* parallel language:
//! the programmer writes a serial program and declares how blocks of code
//! access shared data; the implementation extracts the concurrency and
//! optimizes the communication. This crate is the machine-independent core
//! of our reproduction of *"Communication Optimizations for Parallel
//! Computing Using Data Access Information"* (SC'95):
//!
//! * [`Store`] — the single mutable shared memory of shared objects;
//! * [`AccessSpec`] / [`TaskBuilder`] — the `withonly` construct and its
//!   access specification section (`rd(o)`, `wr(o)`);
//! * [`Synchronizer`] — the queue-based dynamic dependence analysis that
//!   turns access specifications into concurrency;
//! * [`TraceRuntime`] — serial execution plus trace recording for the
//!   machine simulators (`jade-dash`, `jade-ipsc`);
//! * [`JadeRuntime`] — the portability interface: one application text runs
//!   on every backend;
//! * [`events`] — the unified structured event layer every backend emits,
//!   with the [`Metrics`] aggregator and the [`chrome`] trace exporter.
//!
//! ```
//! use jade_core::{JadeRuntime, TaskBuilder, TraceRuntime};
//!
//! let mut rt = TraceRuntime::new();
//! let xs = rt.create("xs", 8 * 4, vec![1.0f64, 2.0, 3.0, 4.0]);
//! let sum = rt.create("sum", 8, 0.0f64);
//! rt.submit(TaskBuilder::new("sum").rd(xs).wr(sum).body(move |ctx| {
//!     *ctx.wr(sum) = ctx.rd(xs).iter().sum();
//!     ctx.charge(4.0);
//! }));
//! rt.finish();
//! let (store, trace) = rt.into_parts();
//! assert_eq!(*store.read(sum), 10.0);
//! assert_eq!(trace.task_count(), 1);
//! ```

#![forbid(unsafe_code)]

mod access;
#[macro_use]
mod macros;
pub mod chrome;
pub mod events;
mod ids;
mod runtime;
mod store;
mod synchronizer;
mod task;
mod trace;
pub mod tune;

pub use access::{AccessDecl, AccessMode, AccessSpec};
pub use events::{
    check_conservation, check_conservation_per_tenant, check_lifecycle, check_lifecycle_per_tenant,
    split_by_tenant, tag_events, Component, Event, EventKind, EventSink, Locality, Metrics,
    NullSink, ProcTimes, Sink, TaggedEvent, TenantId,
};
pub use ids::{Handle, LocalityMode, ObjectId, ProcId, TaskId, MAIN_PROC};
pub use runtime::JadeRuntime;
pub use store::{ReadGuard, Store, WriteGuard};
pub use synchronizer::{SyncSnapshot, Synchronizer, Transition, TransitionBatch};
pub use task::{TaskBody, TaskBuilder, TaskCtx, TaskDef};
pub use trace::{ObjectRecord, TaskRecord, Trace, TraceBuilder, TraceRuntime};
pub use tune::{BatchShape, Controller, Decision, Knob, TuneLog};
