//! Unified structured event layer shared by every Jade backend.
//!
//! The paper's evaluation is built on *instrumented runs*: every number in
//! Tables 2–14 and Figures 2–21 is an aggregation over low-level runtime
//! events (task dispatches, object fetches, broadcast sends, queue steals).
//! This module gives the reproduction the same substrate. All backends —
//! the [`Synchronizer`](crate::Synchronizer), the DASH and iPSC/860 machine
//! simulators, and the real `jade-threads` executor — emit the same
//! [`Event`] schema into an [`EventSink`], and the [`Metrics`] aggregator
//! reconstructs every reported counter and component-time breakdown from
//! the event stream alone.
//!
//! Three consumers sit on top:
//!
//! * [`Metrics::from_events`] — the single aggregation path for counters
//!   and per-processor `app`/`comm`/`mgmt` time breakdowns;
//! * [`check_lifecycle`] / [`check_conservation`] — structural invariants:
//!   every task has exactly one created → dispatched → started → completed
//!   chain, and per-processor busy intervals tile the simulated makespan
//!   without overlap;
//! * [`crate::chrome`] — a Chrome `trace_event` exporter so any run can be
//!   opened in `chrome://tracing` / Perfetto.
//!
//! The sink is an enum, not a trait object: the [`EventSink::Disabled`]
//! arm makes every emission a branch on a discriminant that the optimizer
//! removes, so backends that run untraced (the default for
//! `jade-threads`) pay nothing.

use crate::ids::{ObjectId, ProcId, TaskId};

/// Which component of the implementation a busy interval belongs to — the
/// paper's three-way breakdown of processor time (Figures 10/11 and 20/21
/// report the management component; 16–19 the communication component).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Component {
    /// Useful application work (task bodies).
    App,
    /// Communication: remote fetch stalls (DASH) or message serialization,
    /// transfer handlers and broadcast sends (iPSC/860).
    Comm,
    /// Task management: creation, dependence analysis, dispatch, completion.
    Mgmt,
}

impl Component {
    pub fn name(self) -> &'static str {
        match self {
            Component::App => "app",
            Component::Comm => "comm",
            Component::Mgmt => "mgmt",
        }
    }
}

/// Outcome of the locality heuristic for one task dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Locality {
    /// Task ran on the processor owning its locality object.
    Hit,
    /// Task had a locality object but ran elsewhere.
    Miss,
    /// Not measured: serial-phase task, or no locality object declared.
    Untracked,
}

/// One structured runtime event. `time_ps` is virtual picoseconds in the
/// simulators and a logical sequence number in the thread backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    pub time_ps: u64,
    pub proc: ProcId,
    pub kind: EventKind,
    pub task: Option<TaskId>,
    pub object: Option<ObjectId>,
}

/// The event vocabulary. Task lifecycle events are emitted by the
/// synchronizer (creation/enabling/completion) and the backends
/// (dispatch/start); object and message events by the machine models;
/// `Span` events record every processor-busy interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Task registered with the synchronizer (serial program order).
    TaskCreated,
    /// All declared accesses granted; the task may now run.
    TaskEnabled,
    /// Task bound to a processor. `stolen` marks a queue steal; `locality`
    /// is the heuristic outcome at binding time.
    TaskDispatched { stolen: bool, locality: Locality },
    /// iPSC scheduler deferred the task to the main-processor pool.
    TaskPooled,
    /// Task body began executing.
    TaskStarted,
    /// Task completed and its queue entries were released.
    TaskCompleted,
    /// A declared access was released mid-task (pipelining).
    AccessReleased,
    /// Request message sent for a remote object (iPSC pull protocol).
    ObjectRequest { bytes: u64 },
    /// Object data arrived at `proc`, creating a replica. `latency_ps` is
    /// the request-to-arrival latency (Figure 16-family numerator).
    ObjectFetch { bytes: u64, latency_ps: u64 },
    /// A coalesced (inspector/executor) reply delivered `objects` remote
    /// objects in **one** physical message; `bytes` is their combined
    /// payload. Each delivered object still emits its own `ObjectFetch`
    /// with its own payload bytes, so byte totals and per-object
    /// attribution are unchanged — this event marks the message boundary
    /// for message-count accounting (see `Metrics::fetch_messages`).
    AggregatedFetch { objects: u32, bytes: u64 },
    /// A write retired all outdated replicas of `object`.
    ObjectInvalidate,
    /// One broadcast of `bytes` to `receivers` other processors.
    ObjectBroadcast { bytes: u64, receivers: u32 },
    /// Eager point-to-point push to a known consumer.
    EagerPush { bytes: u64 },
    /// Control message sent (task assignment, completion notify).
    MsgSend { bytes: u64 },
    /// Control message received.
    MsgRecv { bytes: u64 },
    /// First parallel task of `phase` was created.
    PhaseStart { phase: u32 },
    /// A task of `phase` finished (the last such event ends the phase).
    PhaseEnd { phase: u32 },
    /// Processor-busy interval: `proc` was doing `component` work for
    /// `dur_ps` starting at `time_ps`. Per-processor spans never overlap
    /// and tile the makespan (see [`check_conservation`]).
    Span { component: Component, dur_ps: u64 },
    /// Fault injection: a data message of `bytes` was lost in transit.
    /// Emitted at the sender.
    MsgDropped { bytes: u64 },
    /// Recovery: a fetch request was re-sent after an ack timeout. The
    /// resend itself also emits a fresh `ObjectRequest`; this event only
    /// marks the retry decision.
    MsgRetried { bytes: u64 },
    /// Idempotent delivery: a duplicate or stale message arrived and was
    /// discarded instead of applied.
    MsgDiscarded { bytes: u64 },
    /// Fault injection: `proc` suffered a transient stall of `dur_ps`
    /// before starting a task (the stall also appears as a `Comm` span).
    ProcStalled { dur_ps: u64 },
    /// `proc` fail-stopped (simulators) or a worker's task body panicked
    /// (`jade-threads`).
    WorkerFailed,
    /// A task orphaned by a failure was handed back to the scheduler for
    /// re-execution; a fresh dispatched → started → completed leg follows.
    TaskReExecuted,
    /// The runtime captured a checkpoint of `bytes` (synchronizer state,
    /// ownership/replica tables, and object payloads dirtied since the
    /// previous checkpoint). The capture cost appears as ordinary spans.
    CheckpointTaken { bytes: u64 },
    /// Fail-stop recovery read `bytes` back from the most recent
    /// checkpoint. Only valid after a `CheckpointTaken` (see
    /// [`check_lifecycle`]).
    CheckpointRestored { bytes: u64 },
    /// Fail-stop recovery re-materialized a sole-copy object (whose only
    /// replica died with its owner) at the surviving owner, transferring
    /// `bytes` — the charged replacement for the old free-restore path.
    ObjectRestored { bytes: u64 },
    /// Split-phase prefetch: a fetch for `object` was issued on behalf of a
    /// task *before* that task reached its processor (DESIGN.md §17). The
    /// transfer itself still emits ordinary `ObjectRequest`/`ObjectFetch`
    /// events; this marks the early-issue decision.
    PrefetchIssued { bytes: u64 },
    /// A prefetched copy of `object` was still current when its task
    /// arrived at the processor: the fetch latency was (at least partly)
    /// hidden behind earlier work.
    PrefetchHit { bytes: u64 },
    /// A prefetched copy of `object` was written again before its task
    /// started; the stale copy is discarded and the object refetched at the
    /// normal (synchronous) point.
    PrefetchStale { bytes: u64 },
}

impl EventKind {
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TaskCreated => "task_created",
            EventKind::TaskEnabled => "task_enabled",
            EventKind::TaskDispatched { .. } => "task_dispatched",
            EventKind::TaskPooled => "task_pooled",
            EventKind::TaskStarted => "task_started",
            EventKind::TaskCompleted => "task_completed",
            EventKind::AccessReleased => "access_released",
            EventKind::ObjectRequest { .. } => "object_request",
            EventKind::ObjectFetch { .. } => "object_fetch",
            EventKind::AggregatedFetch { .. } => "aggregated_fetch",
            EventKind::ObjectInvalidate => "object_invalidate",
            EventKind::ObjectBroadcast { .. } => "object_broadcast",
            EventKind::EagerPush { .. } => "eager_push",
            EventKind::MsgSend { .. } => "msg_send",
            EventKind::MsgRecv { .. } => "msg_recv",
            EventKind::PhaseStart { .. } => "phase_start",
            EventKind::PhaseEnd { .. } => "phase_end",
            EventKind::Span { .. } => "span",
            EventKind::MsgDropped { .. } => "msg_dropped",
            EventKind::MsgRetried { .. } => "msg_retried",
            EventKind::MsgDiscarded { .. } => "msg_discarded",
            EventKind::ProcStalled { .. } => "proc_stalled",
            EventKind::WorkerFailed => "worker_failed",
            EventKind::TaskReExecuted => "task_reexecuted",
            EventKind::CheckpointTaken { .. } => "checkpoint_taken",
            EventKind::CheckpointRestored { .. } => "checkpoint_restored",
            EventKind::ObjectRestored { .. } => "object_restored",
            EventKind::PrefetchIssued { .. } => "prefetch_issued",
            EventKind::PrefetchHit { .. } => "prefetch_hit",
            EventKind::PrefetchStale { .. } => "prefetch_stale",
        }
    }
}

/// Destination for emitted events. `Disabled` costs one predictable branch
/// per emission site; `Record` appends to an in-memory vector.
#[derive(Clone, Debug, Default)]
pub enum EventSink {
    #[default]
    Disabled,
    Record(Vec<Event>),
}

impl EventSink {
    /// A sink that records events in memory.
    pub fn recording() -> EventSink {
        EventSink::Record(Vec::new())
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        matches!(self, EventSink::Record(_))
    }

    #[inline]
    pub fn push(&mut self, ev: Event) {
        if let EventSink::Record(v) = self {
            v.push(ev);
        }
    }

    /// Emit an event with no task/object attribution.
    #[inline]
    pub fn emit(&mut self, time_ps: u64, proc: ProcId, kind: EventKind) {
        self.push(Event {
            time_ps,
            proc,
            kind,
            task: None,
            object: None,
        });
    }

    /// Emit a task-attributed event.
    #[inline]
    pub fn emit_task(&mut self, time_ps: u64, proc: ProcId, kind: EventKind, task: TaskId) {
        self.push(Event {
            time_ps,
            proc,
            kind,
            task: Some(task),
            object: None,
        });
    }

    /// Emit an object-attributed event (optionally tied to a task).
    #[inline]
    pub fn emit_obj(
        &mut self,
        time_ps: u64,
        proc: ProcId,
        kind: EventKind,
        task: Option<TaskId>,
        object: ObjectId,
    ) {
        self.push(Event {
            time_ps,
            proc,
            kind,
            task,
            object: Some(object),
        });
    }

    /// Emit a processor-busy span. Zero-length spans are dropped: they
    /// carry no time and would only complicate the tiling invariant.
    #[inline]
    pub fn span(
        &mut self,
        start_ps: u64,
        proc: ProcId,
        component: Component,
        dur_ps: u64,
        task: Option<TaskId>,
    ) {
        if dur_ps > 0 {
            self.push(Event {
                time_ps: start_ps,
                proc,
                kind: EventKind::Span { component, dur_ps },
                task,
                object: None,
            });
        }
    }

    /// Take the recorded events, leaving an empty recording sink.
    pub fn take(&mut self) -> Vec<Event> {
        match self {
            EventSink::Disabled => Vec::new(),
            EventSink::Record(v) => std::mem::take(v),
        }
    }

    /// Consume the sink, returning the recorded events.
    pub fn into_events(self) -> Vec<Event> {
        match self {
            EventSink::Disabled => Vec::new(),
            EventSink::Record(v) => v,
        }
    }
}

/// Statically-dispatched event destination.
///
/// [`EventSink`] branches on its discriminant at every emission; that is
/// cheap but not free, and in the thread backend the branch sits inside a
/// critical section. Code generic over `Sink` monomorphizes instead:
/// instantiated with [`NullSink`] every emission body is empty and the
/// optimizer deletes the surrounding bookkeeping (clock ticks, event
/// buffers) outright — the untraced hot path carries **zero** event cost,
/// statically. Instantiated with [`EventSink`] it behaves exactly like the
/// dynamic enum, so simulators that flip tracing at runtime keep working.
pub trait Sink {
    /// `false` promises every event is discarded, letting callers skip
    /// even the *construction* of event data (timestamps, lookups) behind
    /// an `if S::ACTIVE` that folds away at compile time.
    const ACTIVE: bool;

    /// Record one event. [`NullSink`]'s implementation is empty.
    fn push(&mut self, ev: Event);

    /// Emit an event with no task/object attribution.
    #[inline]
    fn emit(&mut self, time_ps: u64, proc: ProcId, kind: EventKind) {
        if Self::ACTIVE {
            self.push(Event {
                time_ps,
                proc,
                kind,
                task: None,
                object: None,
            });
        }
    }

    /// Emit a task-attributed event.
    #[inline]
    fn emit_task(&mut self, time_ps: u64, proc: ProcId, kind: EventKind, task: TaskId) {
        if Self::ACTIVE {
            self.push(Event {
                time_ps,
                proc,
                kind,
                task: Some(task),
                object: None,
            });
        }
    }

    /// Emit an object-attributed event (optionally tied to a task).
    #[inline]
    fn emit_obj(
        &mut self,
        time_ps: u64,
        proc: ProcId,
        kind: EventKind,
        task: Option<TaskId>,
        object: ObjectId,
    ) {
        if Self::ACTIVE {
            self.push(Event {
                time_ps,
                proc,
                kind,
                task,
                object: Some(object),
            });
        }
    }

    /// Consume the sink, returning whatever it recorded ([`NullSink`]
    /// recorded nothing).
    fn into_events(self) -> Vec<Event>
    where
        Self: Sized,
    {
        Vec::new()
    }
}

impl Sink for EventSink {
    const ACTIVE: bool = true;

    #[inline]
    fn push(&mut self, ev: Event) {
        EventSink::push(self, ev);
    }

    fn into_events(self) -> Vec<Event> {
        EventSink::into_events(self)
    }
}

/// The statically-disabled event sink: a zero-sized type whose emissions
/// compile to nothing (see [`Sink`]). This is what the thread backend's
/// untraced mode instantiates its worker loop with.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    const ACTIVE: bool = false;

    #[inline]
    fn push(&mut self, _ev: Event) {}
}

/// Per-processor busy time, split by component (picoseconds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcTimes {
    pub app_ps: u64,
    pub comm_ps: u64,
    pub mgmt_ps: u64,
}

impl ProcTimes {
    pub fn busy_ps(&self) -> u64 {
        self.app_ps + self.comm_ps + self.mgmt_ps
    }
}

/// Start/end bounds of one phase of the computation, from
/// `PhaseStart`/`PhaseEnd` events.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    pub start_ps: Option<u64>,
    pub end_ps: Option<u64>,
}

/// Everything the paper reports, reconstructed from an event stream alone.
///
/// All sums are integer picoseconds/bytes, so aggregation is exact and
/// independent of event order — event-derived numbers match the machine
/// models' own accounting bit-for-bit.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    pub tasks_created: usize,
    pub tasks_enabled: usize,
    pub tasks_dispatched: usize,
    pub tasks_started: usize,
    pub tasks_completed: usize,
    /// Dispatches with `stolen = true`.
    pub steals: u64,
    /// Tasks deferred to the main-processor pool (iPSC).
    pub pooled: u64,
    pub locality_hits: usize,
    /// Dispatches where the heuristic outcome was measured (hit or miss).
    pub locality_tracked: usize,
    pub releases: u64,
    /// Completed object fetches (point-to-point transfers / remote stalls).
    pub fetches: u64,
    pub fetch_bytes: u64,
    /// Coalesced fetch messages (inspector/executor aggregation): each
    /// delivered ≥ 2 objects in one physical message.
    pub agg_fetches: u64,
    /// Objects that arrived inside coalesced messages.
    pub agg_objects: u64,
    /// Combined payload of coalesced messages (already part of
    /// [`Self::fetch_bytes`] via the per-object `ObjectFetch` events).
    pub agg_bytes: u64,
    pub requests: u64,
    pub request_bytes: u64,
    pub invalidations: u64,
    pub broadcasts: u64,
    /// Total broadcast payload delivered: `bytes * receivers` per event.
    pub broadcast_bytes: u64,
    pub eager_sends: u64,
    pub eager_bytes: u64,
    pub msg_sends: u64,
    pub msg_recvs: u64,
    pub msg_bytes: u64,
    /// Sum of request-to-arrival latencies over all fetches.
    pub object_latency_ps: u64,
    /// Per task with fetches: last arrival minus first request, summed.
    pub task_latency_ps: u64,
    /// Per-processor component breakdown from `Span` events.
    pub per_proc: Vec<ProcTimes>,
    /// Latest span end over all processors.
    pub makespan_ps: u64,
    /// App + Comm span time attributed to tasks (DASH "task time":
    /// work plus fetch stalls; on the iPSC only App spans carry tasks'
    /// execution, so this equals `total().app_ps` there).
    pub task_span_ps: u64,
    pub phases: Vec<PhaseTimes>,
    /// Data messages lost in transit (fault injection).
    pub msgs_dropped: u64,
    /// Payload bytes of dropped messages.
    pub dropped_bytes: u64,
    /// Fetch requests re-sent after an ack timeout.
    pub msgs_retried: u64,
    /// Duplicate/stale deliveries discarded by idempotent delivery.
    pub msgs_discarded: u64,
    /// Payload bytes of discarded deliveries.
    pub discarded_bytes: u64,
    /// Transient processor stalls injected.
    pub stalls: u64,
    /// Total stalled time (also present in the `Comm` span breakdown).
    pub stall_ps: u64,
    /// Fail-stop processors / panicked worker attempts.
    pub workers_failed: u64,
    /// Tasks re-dispatched after a failure.
    pub tasks_reexecuted: u64,
    /// Checkpoints captured.
    pub checkpoints: u64,
    /// Total checkpoint payload captured (tables + dirty object bytes).
    pub checkpoint_bytes: u64,
    /// Fail-stop recoveries that restored from a checkpoint.
    pub checkpoint_restores: u64,
    /// Bytes read back from checkpoints during recovery.
    pub checkpoint_restored_bytes: u64,
    /// Sole-copy objects re-materialized after their owner fail-stopped.
    pub object_restores: u64,
    /// Payload bytes of those restores (part of [`Self::comm_bytes`]).
    pub restore_bytes: u64,
    /// Split-phase fetches issued ahead of task arrival (DESIGN.md §17).
    pub prefetches_issued: u64,
    /// Payload bytes of those early-issued fetches.
    pub prefetch_bytes: u64,
    /// Prefetched copies still current when their task arrived.
    pub prefetch_hits: u64,
    /// Prefetched copies invalidated before task start (refetched).
    pub prefetch_stale: u64,
    /// Communication time hidden under application work: the summed
    /// intersection of each fetch's in-flight window
    /// `[arrival - latency, arrival]` with the fetching processor's `App`
    /// spans. See [`Self::overlap_fraction`].
    pub overlap_ps: u64,
}

impl Metrics {
    /// Aggregate an event stream. `procs` sizes the per-processor table;
    /// events from higher processor indices grow it as needed.
    pub fn from_events(events: &[Event], procs: usize) -> Metrics {
        let mut m = Metrics {
            per_proc: vec![ProcTimes::default(); procs],
            ..Metrics::default()
        };
        // Per-task fetch window: (first request sent, last arrival).
        let mut windows: Vec<(TaskId, u64, u64)> = Vec::new();
        // Per-processor App spans and per-fetch in-flight windows, for the
        // overlap metric computed after the pass.
        let mut app_spans: Vec<Vec<(u64, u64)>> = vec![Vec::new(); procs];
        let mut flights: Vec<(ProcId, u64, u64)> = Vec::new();
        fn window_of(windows: &mut Vec<(TaskId, u64, u64)>, task: TaskId) -> usize {
            match windows.iter().position(|w| w.0 == task) {
                Some(i) => i,
                None => {
                    windows.push((task, u64::MAX, 0));
                    windows.len() - 1
                }
            }
        }
        for e in events {
            match e.kind {
                EventKind::TaskCreated => m.tasks_created += 1,
                EventKind::TaskEnabled => m.tasks_enabled += 1,
                EventKind::TaskDispatched { stolen, locality } => {
                    m.tasks_dispatched += 1;
                    if stolen {
                        m.steals += 1;
                    }
                    match locality {
                        Locality::Hit => {
                            m.locality_tracked += 1;
                            m.locality_hits += 1;
                        }
                        Locality::Miss => m.locality_tracked += 1,
                        Locality::Untracked => {}
                    }
                }
                EventKind::TaskPooled => m.pooled += 1,
                EventKind::TaskStarted => m.tasks_started += 1,
                EventKind::TaskCompleted => m.tasks_completed += 1,
                EventKind::AccessReleased => m.releases += 1,
                EventKind::ObjectRequest { bytes } => {
                    m.requests += 1;
                    m.request_bytes += bytes;
                    if let Some(t) = e.task {
                        let i = window_of(&mut windows, t);
                        windows[i].1 = windows[i].1.min(e.time_ps);
                    }
                }
                EventKind::ObjectFetch { bytes, latency_ps } => {
                    m.fetches += 1;
                    m.fetch_bytes += bytes;
                    m.object_latency_ps += latency_ps;
                    if latency_ps > 0 {
                        flights.push((e.proc, e.time_ps.saturating_sub(latency_ps), e.time_ps));
                    }
                    if let Some(t) = e.task {
                        let i = window_of(&mut windows, t);
                        windows[i].2 = windows[i].2.max(e.time_ps);
                    }
                }
                EventKind::AggregatedFetch { objects, bytes } => {
                    m.agg_fetches += 1;
                    m.agg_objects += objects as u64;
                    m.agg_bytes += bytes;
                }
                EventKind::ObjectInvalidate => m.invalidations += 1,
                EventKind::ObjectBroadcast { bytes, receivers } => {
                    m.broadcasts += 1;
                    m.broadcast_bytes += bytes * receivers as u64;
                }
                EventKind::EagerPush { bytes } => {
                    m.eager_sends += 1;
                    m.eager_bytes += bytes;
                }
                EventKind::MsgSend { bytes } => {
                    m.msg_sends += 1;
                    m.msg_bytes += bytes;
                }
                EventKind::MsgRecv { .. } => m.msg_recvs += 1,
                EventKind::PhaseStart { phase } => {
                    let ph = Self::phase_mut(&mut m.phases, phase);
                    if ph.start_ps.is_none() {
                        ph.start_ps = Some(e.time_ps);
                    }
                }
                EventKind::PhaseEnd { phase } => {
                    let ph = Self::phase_mut(&mut m.phases, phase);
                    ph.end_ps = Some(ph.end_ps.unwrap_or(0).max(e.time_ps));
                }
                EventKind::Span { component, dur_ps } => {
                    if e.proc >= m.per_proc.len() {
                        m.per_proc.resize(e.proc + 1, ProcTimes::default());
                    }
                    if e.proc >= app_spans.len() {
                        app_spans.resize(e.proc + 1, Vec::new());
                    }
                    let pt = &mut m.per_proc[e.proc];
                    match component {
                        Component::App => {
                            pt.app_ps += dur_ps;
                            app_spans[e.proc].push((e.time_ps, e.time_ps + dur_ps));
                        }
                        Component::Comm => pt.comm_ps += dur_ps,
                        Component::Mgmt => pt.mgmt_ps += dur_ps,
                    }
                    m.makespan_ps = m.makespan_ps.max(e.time_ps + dur_ps);
                    if e.task.is_some() && component != Component::Mgmt {
                        m.task_span_ps += dur_ps;
                    }
                }
                EventKind::MsgDropped { bytes } => {
                    m.msgs_dropped += 1;
                    m.dropped_bytes += bytes;
                }
                EventKind::MsgRetried { .. } => m.msgs_retried += 1,
                EventKind::MsgDiscarded { bytes } => {
                    m.msgs_discarded += 1;
                    m.discarded_bytes += bytes;
                }
                EventKind::ProcStalled { dur_ps } => {
                    m.stalls += 1;
                    m.stall_ps += dur_ps;
                }
                EventKind::WorkerFailed => m.workers_failed += 1,
                EventKind::TaskReExecuted => m.tasks_reexecuted += 1,
                EventKind::CheckpointTaken { bytes } => {
                    m.checkpoints += 1;
                    m.checkpoint_bytes += bytes;
                }
                EventKind::CheckpointRestored { bytes } => {
                    m.checkpoint_restores += 1;
                    m.checkpoint_restored_bytes += bytes;
                }
                EventKind::ObjectRestored { bytes } => {
                    m.object_restores += 1;
                    m.restore_bytes += bytes;
                }
                EventKind::PrefetchIssued { bytes } => {
                    m.prefetches_issued += 1;
                    m.prefetch_bytes += bytes;
                }
                EventKind::PrefetchHit { .. } => m.prefetch_hits += 1,
                EventKind::PrefetchStale { .. } => m.prefetch_stale += 1,
            }
        }
        for (_, first, last) in windows {
            if first != u64::MAX && last >= first {
                m.task_latency_ps += last - first;
            }
        }
        // Overlap: how much of each fetch's in-flight time was hidden under
        // App work on the fetching processor. Per-processor spans are
        // emitted in time order (see `check_conservation`); the sort makes
        // the computation robust to streams that were merged or filtered.
        for spans in &mut app_spans {
            spans.sort_unstable();
        }
        for (p, lo, hi) in flights {
            let Some(spans) = app_spans.get(p) else {
                continue;
            };
            // First span that could intersect: the one before the first
            // span starting at or after `lo`, then walk forward.
            let mut i = spans.partition_point(|&(s, _)| s < lo);
            i = i.saturating_sub(1);
            while let Some(&(s, e)) = spans.get(i) {
                if s >= hi {
                    break;
                }
                m.overlap_ps += e.min(hi).saturating_sub(s.max(lo));
                i += 1;
            }
        }
        m
    }

    fn phase_mut(phases: &mut Vec<PhaseTimes>, phase: u32) -> &mut PhaseTimes {
        let i = phase as usize;
        if i >= phases.len() {
            phases.resize(i + 1, PhaseTimes::default());
        }
        &mut phases[i]
    }

    /// Whole-machine component totals.
    pub fn total(&self) -> ProcTimes {
        let mut t = ProcTimes::default();
        for p in &self.per_proc {
            t.app_ps += p.app_ps;
            t.comm_ps += p.comm_ps;
            t.mgmt_ps += p.mgmt_ps;
        }
        t
    }

    /// Total communicated bytes: fetches + broadcasts + eager pushes +
    /// fail-stop object restores. Aggregation does not change this sum —
    /// coalesced payloads are counted through their per-object
    /// `ObjectFetch` events.
    pub fn comm_bytes(&self) -> u64 {
        self.fetch_bytes + self.broadcast_bytes + self.eager_bytes + self.restore_bytes
    }

    /// Physical fetch-reply messages on the wire: every uncoalesced fetch
    /// is its own message, and each coalesced message replaces the
    /// `agg_objects` it carried with a single `agg_fetches` entry.
    pub fn fetch_messages(&self) -> u64 {
        self.fetches - self.agg_objects + self.agg_fetches
    }

    /// Task locality percentage over tracked dispatches (0 when none were
    /// tracked, matching the machine models' convention).
    pub fn locality_pct(&self) -> f64 {
        if self.locality_tracked == 0 {
            0.0
        } else {
            100.0 * self.locality_hits as f64 / self.locality_tracked as f64
        }
    }

    /// Fraction of total fetch latency that was hidden under application
    /// work on the fetching processor (0.0 when nothing was fetched, 1.0
    /// when every in-flight interval sat entirely under a busy `App` span).
    /// This is the paper's communication/computation overlap, derived from
    /// the event stream alone: no backend reports it natively.
    pub fn overlap_fraction(&self) -> f64 {
        if self.object_latency_ps == 0 {
            0.0
        } else {
            self.overlap_ps as f64 / self.object_latency_ps as f64
        }
    }

    /// Mean length of the phases that had parallel activity (a
    /// `PhaseStart` is only emitted for parallel tasks), in picoseconds.
    pub fn mean_parallel_phase_ps(&self) -> f64 {
        let lens: Vec<u64> = self
            .phases
            .iter()
            .filter_map(|p| match (p.start_ps, p.end_ps) {
                (Some(s), Some(e)) if e >= s => Some(e - s),
                _ => None,
            })
            .collect();
        if lens.is_empty() {
            0.0
        } else {
            lens.iter().sum::<u64>() as f64 / lens.len() as f64
        }
    }
}

/// Verify that every task in the stream has exactly one
/// created → enabled → \[dispatched →\] started → completed chain, in that
/// order both by stream position and by timestamp. Tasks created but not
/// yet complete (partial streams) fail; pass only complete runs.
///
/// Faulty runs are covered too: a [`EventKind::TaskReExecuted`] event
/// rewinds a task's chain to the *enabled* stage, licensing one extra
/// dispatched → started leg. The rewind may also carry a timestamp earlier
/// than the events it cancels (a start optimistically charged into the
/// future on a processor that then died before that instant); monotonicity
/// is required within each leg, not across the rewind. Even under
/// re-execution every task must have
/// exactly one created, one enabled, and one completed event — a task that
/// completes twice (double execution applied) or never completes fails the
/// check.
///
/// Checkpoint events carry no task but obey their own ordering rule: a
/// [`EventKind::CheckpointRestored`] may only appear after at least one
/// [`EventKind::CheckpointTaken`] — a runtime cannot restore state it never
/// captured.
pub fn check_lifecycle(events: &[Event]) -> Result<(), String> {
    #[derive(Default, Clone)]
    struct Chain {
        created: usize,
        enabled: usize,
        dispatched: usize,
        started: usize,
        completed: usize,
        reexecuted: usize,
        stage: u8,
        last_time: u64,
    }
    let mut chains: Vec<Chain> = Vec::new();
    let mut checkpoints_taken = 0u64;
    for (pos, e) in events.iter().enumerate() {
        let stage = match e.kind {
            EventKind::TaskCreated => 1,
            EventKind::TaskEnabled => 2,
            EventKind::TaskDispatched { .. } => 3,
            EventKind::TaskStarted => 4,
            EventKind::TaskCompleted => 5,
            EventKind::TaskReExecuted => 0, // special-cased below
            EventKind::CheckpointTaken { .. } => {
                checkpoints_taken += 1;
                continue;
            }
            EventKind::CheckpointRestored { .. } => {
                if checkpoints_taken == 0 {
                    return Err(format!(
                        "checkpoint restored at #{pos} before any checkpoint was taken"
                    ));
                }
                continue;
            }
            _ => continue,
        };
        let id = e
            .task
            .ok_or_else(|| format!("lifecycle event without task at #{pos}"))?;
        if id.index() >= chains.len() {
            chains.resize(id.index() + 1, Chain::default());
        }
        let c = &mut chains[id.index()];
        if stage == 0 {
            // Re-execution rewinds the chain to "enabled" — and may rewind
            // the clock. Simulators charge costs by advancing local time
            // cursors, so a dispatch or start can be recorded at an instant
            // slightly in the future; a processor death before that instant
            // cancels those speculative events, and the re-execution carries
            // the (earlier) failure time. Each dispatched → started →
            // completed leg must still be monotone on its own.
            if c.stage < 2 {
                return Err(format!("{id:?}: re-executed before enabled at #{pos}"));
            }
            if c.completed > 0 {
                return Err(format!("{id:?}: re-executed after completion at #{pos}"));
            }
            c.reexecuted += 1;
            c.stage = 2;
            c.last_time = e.time_ps;
            continue;
        }
        if e.time_ps < c.last_time {
            return Err(format!(
                "{id:?}: {} timestamp regressed at #{pos}",
                e.kind.name(),
            ));
        }
        match stage {
            1 => c.created += 1,
            2 => c.enabled += 1,
            3 => c.dispatched += 1,
            4 => c.started += 1,
            5 => c.completed += 1,
            _ => unreachable!(),
        }
        if stage < c.stage {
            return Err(format!(
                "{id:?}: {} out of order (after stage {}) at #{pos}",
                e.kind.name(),
                c.stage
            ));
        }
        c.stage = stage;
        c.last_time = e.time_ps;
    }
    for (i, c) in chains.iter().enumerate() {
        let id = TaskId(i as u32);
        if c.created != 1 || c.enabled != 1 || c.completed != 1 {
            return Err(format!(
                "{id:?}: chain counts created={} enabled={} completed={} (want 1 each)",
                c.created, c.enabled, c.completed
            ));
        }
        if c.started < 1 || c.started > 1 + c.reexecuted {
            return Err(format!(
                "{id:?}: started {} times across {} re-executions",
                c.started, c.reexecuted
            ));
        }
        if c.dispatched > 1 + c.reexecuted {
            return Err(format!(
                "{id:?}: dispatched {} times across {} re-executions",
                c.dispatched, c.reexecuted
            ));
        }
    }
    Ok(())
}

/// Verify span conservation: per processor, busy intervals are emitted in
/// order, never overlap, and end at or before `makespan_ps`; and at least
/// one interval ends exactly at the makespan (the intervals *tile* the
/// run — every gap is genuine idle time, nothing double-books a
/// processor). Returns per-processor busy totals on success.
pub fn check_conservation(
    events: &[Event],
    procs: usize,
    makespan_ps: u64,
) -> Result<Vec<u64>, String> {
    let mut free_at = vec![0u64; procs];
    let mut busy = vec![0u64; procs];
    let mut latest_end = 0u64;
    for (pos, e) in events.iter().enumerate() {
        if let EventKind::Span { dur_ps, .. } = e.kind {
            if e.proc >= procs {
                return Err(format!("span on unknown proc {} at #{pos}", e.proc));
            }
            if e.time_ps < free_at[e.proc] {
                return Err(format!(
                    "proc {} spans overlap at #{pos}: start {} < previous end {}",
                    e.proc, e.time_ps, free_at[e.proc]
                ));
            }
            let end = e.time_ps + dur_ps;
            free_at[e.proc] = end;
            busy[e.proc] += dur_ps;
            latest_end = latest_end.max(end);
        }
    }
    if latest_end != makespan_ps {
        return Err(format!(
            "spans end at {latest_end} ps but makespan is {makespan_ps} ps"
        ));
    }
    Ok(busy)
}

// ---------------------------------------------------------------------------
// Multi-tenant event attribution
// ---------------------------------------------------------------------------

/// Identifies one tenant (one independently submitted program DAG) in a
/// multi-tenant service. Task and object ids are tenant-local — two tenants
/// both have a `TaskId(0)` — so cross-tenant event streams must be tagged
/// before they can be merged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An [`Event`] attributed to the tenant whose program produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaggedEvent {
    pub tenant: TenantId,
    pub event: Event,
}

/// Tag every event in `events` with `tenant` (the service does this per
/// tenant stream before merging).
pub fn tag_events(tenant: TenantId, events: &[Event]) -> Vec<TaggedEvent> {
    events
        .iter()
        .map(|&event| TaggedEvent { tenant, event })
        .collect()
}

/// Split a merged tagged stream back into per-tenant streams, preserving
/// each tenant's internal event order. Tenants appear in first-occurrence
/// order.
pub fn split_by_tenant(tagged: &[TaggedEvent]) -> Vec<(TenantId, Vec<Event>)> {
    let mut order: Vec<TenantId> = Vec::new();
    let mut streams: std::collections::HashMap<TenantId, Vec<Event>> =
        std::collections::HashMap::new();
    for te in tagged {
        streams
            .entry(te.tenant)
            .or_insert_with(|| {
                order.push(te.tenant);
                Vec::new()
            })
            .push(te.event);
    }
    order
        .into_iter()
        .map(|t| {
            let evs = streams.remove(&t).unwrap_or_default();
            (t, evs)
        })
        .collect()
}

impl Metrics {
    /// Reconstruct metrics *per tenant* from a merged tagged stream: each
    /// tenant's events are reduced through [`Metrics::from_events`] in
    /// isolation, so one tenant's faults or cancellations can never leak
    /// into another tenant's counters.
    pub fn per_tenant(tagged: &[TaggedEvent], procs: usize) -> Vec<(TenantId, Metrics)> {
        split_by_tenant(tagged)
            .into_iter()
            .map(|(t, evs)| (t, Metrics::from_events(&evs, procs)))
            .collect()
    }
}

/// Run [`check_lifecycle`] independently on every tenant's stream. Task ids
/// are tenant-local, so the merged stream would alias chains across
/// tenants; splitting first is what makes the checker meaningful under
/// multi-tenancy.
pub fn check_lifecycle_per_tenant(tagged: &[TaggedEvent]) -> Result<(), String> {
    for (t, evs) in split_by_tenant(tagged) {
        check_lifecycle(&evs).map_err(|e| format!("tenant {t}: {e}"))?;
    }
    Ok(())
}

/// Run [`check_conservation`] independently on every tenant's stream, each
/// against its own makespan (the latest span end in that tenant's events).
pub fn check_conservation_per_tenant(tagged: &[TaggedEvent], procs: usize) -> Result<(), String> {
    for (t, evs) in split_by_tenant(tagged) {
        let makespan = evs
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Span { dur_ps, .. } => Some(e.time_ps + dur_ps),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        check_conservation(&evs, procs, makespan).map_err(|e| format!("tenant {t}: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(t: u64, proc: ProcId, c: Component, d: u64) -> Event {
        Event {
            time_ps: t,
            proc,
            kind: EventKind::Span {
                component: c,
                dur_ps: d,
            },
            task: None,
            object: None,
        }
    }

    fn task_ev(t: u64, proc: ProcId, kind: EventKind, id: u32) -> Event {
        Event {
            time_ps: t,
            proc,
            kind,
            task: Some(TaskId(id)),
            object: None,
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut s = EventSink::Disabled;
        s.emit(0, 0, EventKind::TaskCreated);
        s.span(0, 0, Component::App, 10, None);
        assert!(!s.is_enabled());
        assert!(s.into_events().is_empty());
    }

    #[test]
    fn recording_sink_drops_zero_spans() {
        let mut s = EventSink::recording();
        s.span(0, 0, Component::App, 0, None);
        s.span(5, 0, Component::App, 7, None);
        let evs = s.into_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].time_ps, 5);
    }

    #[test]
    fn metrics_counts_and_breakdowns() {
        let events = vec![
            task_ev(0, 0, EventKind::TaskCreated, 0),
            task_ev(0, 0, EventKind::TaskEnabled, 0),
            task_ev(
                1,
                1,
                EventKind::TaskDispatched {
                    stolen: true,
                    locality: Locality::Miss,
                },
                0,
            ),
            task_ev(2, 1, EventKind::TaskStarted, 0),
            span(2, 1, Component::App, 10),
            span(12, 1, Component::Comm, 4),
            task_ev(16, 1, EventKind::TaskCompleted, 0),
            span(0, 0, Component::Mgmt, 3),
        ];
        let m = Metrics::from_events(&events, 2);
        assert_eq!(m.tasks_created, 1);
        assert_eq!(m.steals, 1);
        assert_eq!(m.locality_tracked, 1);
        assert_eq!(m.locality_hits, 0);
        assert_eq!(
            m.per_proc[1],
            ProcTimes {
                app_ps: 10,
                comm_ps: 4,
                mgmt_ps: 0
            }
        );
        assert_eq!(m.per_proc[0].mgmt_ps, 3);
        assert_eq!(m.makespan_ps, 16);
        assert_eq!(m.total().busy_ps(), 17);
        assert_eq!(m.locality_pct(), 0.0);
    }

    #[test]
    fn metrics_task_latency_window() {
        // Task 0 requests at t=5 and t=8; arrivals at t=20 and t=30.
        let t0 = Some(TaskId(0));
        let o = ObjectId(0);
        let events = vec![
            Event {
                time_ps: 5,
                proc: 1,
                kind: EventKind::ObjectRequest { bytes: 4 },
                task: t0,
                object: Some(o),
            },
            Event {
                time_ps: 8,
                proc: 1,
                kind: EventKind::ObjectRequest { bytes: 4 },
                task: t0,
                object: Some(o),
            },
            Event {
                time_ps: 20,
                proc: 1,
                kind: EventKind::ObjectFetch {
                    bytes: 100,
                    latency_ps: 15,
                },
                task: t0,
                object: Some(o),
            },
            Event {
                time_ps: 30,
                proc: 1,
                kind: EventKind::ObjectFetch {
                    bytes: 100,
                    latency_ps: 22,
                },
                task: t0,
                object: Some(o),
            },
        ];
        let m = Metrics::from_events(&events, 2);
        assert_eq!(m.fetches, 2);
        assert_eq!(m.fetch_bytes, 200);
        assert_eq!(m.object_latency_ps, 37);
        assert_eq!(m.task_latency_ps, 25); // 30 - 5
    }

    #[test]
    fn lifecycle_accepts_well_formed_chain() {
        let events = vec![
            task_ev(0, 0, EventKind::TaskCreated, 0),
            task_ev(0, 0, EventKind::TaskEnabled, 0),
            task_ev(
                1,
                0,
                EventKind::TaskDispatched {
                    stolen: false,
                    locality: Locality::Untracked,
                },
                0,
            ),
            task_ev(2, 0, EventKind::TaskStarted, 0),
            task_ev(3, 0, EventKind::TaskCompleted, 0),
        ];
        assert!(check_lifecycle(&events).is_ok());
    }

    #[test]
    fn lifecycle_rejects_missing_start() {
        let events = vec![
            task_ev(0, 0, EventKind::TaskCreated, 0),
            task_ev(0, 0, EventKind::TaskEnabled, 0),
            task_ev(3, 0, EventKind::TaskCompleted, 0),
        ];
        assert!(check_lifecycle(&events).is_err());
    }

    #[test]
    fn lifecycle_accepts_reexecution_leg() {
        let dispatch = EventKind::TaskDispatched {
            stolen: false,
            locality: Locality::Untracked,
        };
        let events = vec![
            task_ev(0, 0, EventKind::TaskCreated, 0),
            task_ev(0, 0, EventKind::TaskEnabled, 0),
            task_ev(1, 2, dispatch, 0),
            task_ev(2, 2, EventKind::TaskStarted, 0),
            // Processor 2 dies mid-task; the scheduler re-dispatches.
            task_ev(5, 0, EventKind::TaskReExecuted, 0),
            task_ev(6, 1, dispatch, 0),
            task_ev(7, 1, EventKind::TaskStarted, 0),
            task_ev(9, 1, EventKind::TaskCompleted, 0),
        ];
        check_lifecycle(&events).unwrap();
        let m = Metrics::from_events(&events, 3);
        assert_eq!(m.tasks_reexecuted, 1);
        assert_eq!(m.tasks_started, 2);
        assert_eq!(m.tasks_completed, 1);
    }

    #[test]
    fn lifecycle_rejects_double_completion_after_reexecution() {
        let events = vec![
            task_ev(0, 0, EventKind::TaskCreated, 0),
            task_ev(0, 0, EventKind::TaskEnabled, 0),
            task_ev(2, 2, EventKind::TaskStarted, 0),
            task_ev(3, 2, EventKind::TaskCompleted, 0),
            task_ev(5, 0, EventKind::TaskReExecuted, 0),
        ];
        assert!(check_lifecycle(&events).is_err());
    }

    #[test]
    fn checkpoint_metrics_and_comm_bytes() {
        let ev = |kind| Event {
            time_ps: 0,
            proc: 0,
            kind,
            task: None,
            object: None,
        };
        let events = vec![
            ev(EventKind::CheckpointTaken { bytes: 100 }),
            ev(EventKind::CheckpointTaken { bytes: 40 }),
            ev(EventKind::CheckpointRestored { bytes: 60 }),
            ev(EventKind::ObjectRestored { bytes: 512 }),
        ];
        let m = Metrics::from_events(&events, 1);
        assert_eq!(m.checkpoints, 2);
        assert_eq!(m.checkpoint_bytes, 140);
        assert_eq!(m.checkpoint_restores, 1);
        assert_eq!(m.checkpoint_restored_bytes, 60);
        assert_eq!(m.object_restores, 1);
        assert_eq!(m.restore_bytes, 512);
        // Restored object payloads are real transfers: part of comm_bytes.
        assert_eq!(m.comm_bytes(), 512);
    }

    #[test]
    fn lifecycle_requires_checkpoint_before_restore() {
        let ev = |kind| Event {
            time_ps: 0,
            proc: 0,
            kind,
            task: None,
            object: None,
        };
        let bad = vec![ev(EventKind::CheckpointRestored { bytes: 10 })];
        assert!(check_lifecycle(&bad).is_err());
        let good = vec![
            ev(EventKind::CheckpointTaken { bytes: 10 }),
            ev(EventKind::CheckpointRestored { bytes: 10 }),
        ];
        assert!(check_lifecycle(&good).is_ok());
    }

    #[test]
    fn lifecycle_rejects_out_of_order() {
        let events = vec![
            task_ev(0, 0, EventKind::TaskCreated, 0),
            task_ev(2, 0, EventKind::TaskStarted, 0),
            task_ev(1, 0, EventKind::TaskEnabled, 0),
        ];
        assert!(check_lifecycle(&events).is_err());
    }

    #[test]
    fn conservation_accepts_tiling_spans() {
        let events = vec![
            span(0, 0, Component::Mgmt, 5),
            span(10, 0, Component::App, 10),
            span(3, 1, Component::App, 8),
        ];
        let busy = check_conservation(&events, 2, 20).unwrap();
        assert_eq!(busy, vec![15, 8]);
    }

    #[test]
    fn conservation_rejects_overlap() {
        let events = vec![
            span(0, 0, Component::App, 10),
            span(5, 0, Component::Comm, 2),
        ];
        assert!(check_conservation(&events, 1, 10).is_err());
    }

    #[test]
    fn conservation_rejects_short_makespan() {
        let events = vec![span(0, 0, Component::App, 10)];
        assert!(check_conservation(&events, 1, 12).is_err());
    }

    #[test]
    fn prefetch_counters_aggregate() {
        let o = ObjectId(3);
        let ev = |kind| Event {
            time_ps: 0,
            proc: 1,
            kind,
            task: Some(TaskId(0)),
            object: Some(o),
        };
        let events = vec![
            ev(EventKind::PrefetchIssued { bytes: 100 }),
            ev(EventKind::PrefetchIssued { bytes: 50 }),
            ev(EventKind::PrefetchHit { bytes: 100 }),
            ev(EventKind::PrefetchStale { bytes: 50 }),
        ];
        let m = Metrics::from_events(&events, 2);
        assert_eq!(m.prefetches_issued, 2);
        assert_eq!(m.prefetch_bytes, 150);
        assert_eq!(m.prefetch_hits, 1);
        assert_eq!(m.prefetch_stale, 1);
        // Lifecycle ignores prefetch events entirely.
        assert!(check_lifecycle(&[]).is_ok());
    }

    #[test]
    fn overlap_counts_fetch_time_under_app_spans() {
        // Proc 1 runs App work over [10, 30); a fetch arrives at t=25 after
        // 20 ps in flight ([5, 25]): 15 ps of the flight is hidden.
        let fetch = Event {
            time_ps: 25,
            proc: 1,
            kind: EventKind::ObjectFetch {
                bytes: 64,
                latency_ps: 20,
            },
            task: Some(TaskId(0)),
            object: Some(ObjectId(0)),
        };
        let events = vec![span(10, 1, Component::App, 20), fetch];
        let m = Metrics::from_events(&events, 2);
        assert_eq!(m.overlap_ps, 15);
        assert_eq!(m.overlap_fraction(), 15.0 / 20.0);
    }

    #[test]
    fn overlap_ignores_other_processors_and_components() {
        // App work on proc 0 and Comm work on proc 1 hide nothing of a
        // fetch arriving at proc 1.
        let fetch = Event {
            time_ps: 30,
            proc: 1,
            kind: EventKind::ObjectFetch {
                bytes: 64,
                latency_ps: 30,
            },
            task: None,
            object: Some(ObjectId(0)),
        };
        let events = vec![
            span(0, 0, Component::App, 100),
            span(0, 1, Component::Comm, 30),
            fetch,
        ];
        let m = Metrics::from_events(&events, 2);
        assert_eq!(m.overlap_ps, 0);
        assert_eq!(m.overlap_fraction(), 0.0);
    }

    #[test]
    fn overlap_spans_multiple_app_intervals() {
        // Flight [0, 100] over two disjoint App spans [10,20) and [40,60):
        // 10 + 20 hidden of 100 in flight.
        let fetch = Event {
            time_ps: 100,
            proc: 0,
            kind: EventKind::ObjectFetch {
                bytes: 8,
                latency_ps: 100,
            },
            task: None,
            object: Some(ObjectId(0)),
        };
        let events = vec![
            span(10, 0, Component::App, 10),
            span(40, 0, Component::App, 20),
            fetch,
        ];
        let m = Metrics::from_events(&events, 1);
        assert_eq!(m.overlap_ps, 30);
    }

    #[test]
    fn mean_parallel_phase_ignores_unstarted_phases() {
        let events = vec![
            Event {
                time_ps: 10,
                proc: 0,
                kind: EventKind::PhaseStart { phase: 1 },
                task: None,
                object: None,
            },
            Event {
                time_ps: 50,
                proc: 0,
                kind: EventKind::PhaseEnd { phase: 1 },
                task: None,
                object: None,
            },
            // Phase 0 only ever ends (serial-only): excluded from the mean.
            Event {
                time_ps: 9,
                proc: 0,
                kind: EventKind::PhaseEnd { phase: 0 },
                task: None,
                object: None,
            },
        ];
        let m = Metrics::from_events(&events, 1);
        assert_eq!(m.mean_parallel_phase_ps(), 40.0);
    }

    /// One full task chain for tenant-test fixtures.
    fn chain(task: u32, t0: u64, proc: ProcId) -> Vec<Event> {
        let ev = |time_ps: u64, kind: EventKind| Event {
            time_ps,
            proc,
            kind,
            task: Some(TaskId(task)),
            object: None,
        };
        vec![
            ev(t0, EventKind::TaskCreated),
            ev(t0 + 1, EventKind::TaskEnabled),
            ev(
                t0 + 2,
                EventKind::TaskDispatched {
                    stolen: false,
                    locality: Locality::Untracked,
                },
            ),
            ev(t0 + 3, EventKind::TaskStarted),
            ev(t0 + 4, EventKind::TaskCompleted),
        ]
    }

    #[test]
    fn split_by_tenant_preserves_per_tenant_order() {
        let a = chain(0, 0, 0);
        let b = chain(0, 10, 1);
        let mut tagged = tag_events(TenantId(7), &a);
        // Interleave the two tenants' events.
        for (i, te) in tag_events(TenantId(3), &b).into_iter().enumerate() {
            tagged.insert(2 * i + 1, te);
        }
        let split = split_by_tenant(&tagged);
        assert_eq!(split.len(), 2);
        assert_eq!(split[0].0, TenantId(7));
        assert_eq!(split[0].1, a);
        assert_eq!(split[1].0, TenantId(3));
        assert_eq!(split[1].1, b);
    }

    #[test]
    fn per_tenant_lifecycle_and_metrics_are_isolated() {
        // Both tenants use TaskId(0); merged untagged they would alias into
        // one task dispatched twice without a re-execution — a lifecycle
        // violation. Split per tenant, both chains are clean.
        let mut tagged = tag_events(TenantId(0), &chain(0, 0, 0));
        tagged.extend(tag_events(TenantId(1), &chain(0, 100, 0)));
        let merged: Vec<Event> = tagged.iter().map(|te| te.event).collect();
        assert!(check_lifecycle(&merged).is_err());
        check_lifecycle_per_tenant(&tagged).expect("per-tenant lifecycle holds");
        let per = Metrics::per_tenant(&tagged, 2);
        assert_eq!(per.len(), 2);
        for (_, m) in &per {
            assert_eq!(m.tasks_created, 1);
            assert_eq!(m.tasks_completed, 1);
        }
        check_conservation_per_tenant(&tagged, 2).expect("per-tenant conservation holds");
    }

    #[test]
    fn per_tenant_lifecycle_names_the_offending_tenant() {
        let mut bad = chain(0, 0, 0);
        bad.remove(1); // drop TaskEnabled: dispatch without enable
        let tagged = tag_events(TenantId(9), &bad);
        let err = check_lifecycle_per_tenant(&tagged).unwrap_err();
        assert!(err.contains("t9"), "{err}");
    }
}
