//! Task construction (`withonly`) and the task-body execution context.
//!
//! A Jade task is a block of code plus an access specification. In C-Jade:
//!
//! ```c
//! withonly { rd(positions); wr(contrib); } do (i) { ... }
//! ```
//!
//! Here the same task is built as:
//!
//! ```ignore
//! rt.submit(
//!     TaskBuilder::new("interactions")
//!         .rd(positions)
//!         .wr(contrib)
//!         .body(move |ctx| {
//!             let pos = ctx.rd(positions);
//!             let mut c = ctx.wr(contrib);
//!             /* ... */
//!             ctx.charge(work_ops);
//!         }),
//! );
//! ```

use crate::access::{AccessMode, AccessSpec};
use crate::ids::{Handle, ObjectId, ProcId, TaskId};
use crate::store::{ReadGuard, Store, WriteGuard};
use std::cell::Cell;

/// The closure type of a task body. Bodies receive a [`TaskCtx`] that grants
/// access to exactly the objects the task declared. Bodies are `Fn`, not
/// `FnOnce`: a recovering runtime may re-execute a task whose first attempt
/// died with its worker, so bodies must be re-callable (all task-visible
/// state lives in the store and is reached through the context, so app
/// bodies satisfy this naturally).
pub type TaskBody = Box<dyn for<'a> Fn(&TaskCtx<'a>) + Send>;

/// A fully-specified task ready for submission to a runtime.
pub struct TaskDef {
    /// Short human label for diagnostics ("internal-update", "trace-rays").
    pub label: &'static str,
    /// The access specification, in declaration order.
    pub spec: AccessSpec,
    /// Explicit task placement, if the programmer requested it (the paper's
    /// *Task Placement* optimization level for Ocean and Panel Cholesky).
    pub placement: Option<ProcId>,
    /// True for serial-phase tasks: main-thread code between parallel
    /// phases, which executes on the main processor.
    pub serial_phase: bool,
    /// The task body.
    pub body: TaskBody,
}

/// Fluent builder for [`TaskDef`]s. Declaration order is preserved: the
/// first `rd`/`wr` names the locality object.
pub struct TaskBuilder {
    label: &'static str,
    spec: AccessSpec,
    placement: Option<ProcId>,
    serial_phase: bool,
}

impl TaskBuilder {
    pub fn new(label: &'static str) -> TaskBuilder {
        TaskBuilder {
            label,
            spec: AccessSpec::new(),
            placement: None,
            serial_phase: false,
        }
    }

    /// Declare a read access.
    pub fn rd(mut self, h: impl Into<ObjectId>) -> Self {
        self.spec.rd(h);
        self
    }

    /// Declare a write access.
    pub fn wr(mut self, h: impl Into<ObjectId>) -> Self {
        self.spec.wr(h);
        self
    }

    /// Declare a read-write access.
    pub fn rd_wr(mut self, h: impl Into<ObjectId>) -> Self {
        self.spec.rd_wr(h);
        self
    }

    /// Explicitly place the task on processor `p`.
    pub fn place(mut self, p: ProcId) -> Self {
        self.placement = Some(p);
        self
    }

    /// Optionally place the task (`None` leaves scheduling to the runtime).
    pub fn place_opt(mut self, p: Option<ProcId>) -> Self {
        self.placement = p;
        self
    }

    /// Mark this task as main-thread serial-phase code.
    pub fn serial_phase(mut self) -> Self {
        self.serial_phase = true;
        self
    }

    /// Current spec (for inspection in tests).
    pub fn spec(&self) -> &AccessSpec {
        &self.spec
    }

    /// Attach the body, producing a submittable [`TaskDef`].
    pub fn body(self, f: impl for<'a> Fn(&TaskCtx<'a>) + Send + 'static) -> TaskDef {
        TaskDef {
            label: self.label,
            spec: self.spec,
            placement: self.placement,
            serial_phase: self.serial_phase,
            body: Box::new(f),
        }
    }
}

/// The execution context handed to a running task body.
///
/// Every access is checked against the declared specification — an
/// undeclared access panics with a diagnostic, mirroring how the Jade
/// implementation detects access violations at run time and halts.
pub struct TaskCtx<'a> {
    store: &'a Store,
    task: TaskId,
    label: &'static str,
    spec: &'a AccessSpec,
    charged: Cell<f64>,
    /// Objects whose rights the task gave up mid-execution (`release`).
    released: std::cell::RefCell<Vec<ObjectId>>,
    /// Runtime callback invoked on `release` so waiting tasks can proceed.
    release_hook: Option<&'a dyn Fn(ObjectId)>,
}

impl<'a> TaskCtx<'a> {
    /// Used by runtimes to frame a body execution. Not part of the app API.
    pub fn new(store: &'a Store, task: TaskId, label: &'static str, spec: &'a AccessSpec) -> Self {
        TaskCtx {
            store,
            task,
            label,
            spec,
            charged: Cell::new(0.0),
            released: std::cell::RefCell::new(Vec::new()),
            release_hook: None,
        }
    }

    /// Like [`TaskCtx::new`], with a hook the runtime uses to propagate
    /// mid-task releases to its synchronizer.
    pub fn with_release_hook(
        store: &'a Store,
        task: TaskId,
        label: &'static str,
        spec: &'a AccessSpec,
        hook: &'a dyn Fn(ObjectId),
    ) -> Self {
        let mut ctx = TaskCtx::new(store, task, label, spec);
        ctx.release_hook = Some(hook);
        ctx
    }

    /// Give up the right to access `h` before the task completes — Jade's
    /// advanced pipelining statements (`no_rd(o)` / `no_wr(o)`). Successor
    /// tasks waiting on the object may start immediately; any later access
    /// to it from this task panics, exactly like an undeclared access.
    ///
    /// Drop any guards on the object before releasing: a successor may
    /// acquire it at once.
    pub fn release(&self, h: impl Into<ObjectId>) {
        let id = h.into();
        assert!(
            !self.released.borrow().contains(&id),
            "task {:?} ({}) released object {:?} twice",
            self.task,
            self.label,
            id,
        );
        assert!(
            self.spec.mode_of(id).is_some(),
            "task {:?} ({}) released undeclared object {:?}",
            self.task,
            self.label,
            id,
        );
        self.released.borrow_mut().push(id);
        if let Some(hook) = self.release_hook {
            hook(id);
        }
    }

    /// The id of the running task.
    pub fn task_id(&self) -> TaskId {
        self.task
    }

    fn check(&self, id: ObjectId, need_write: bool) {
        assert!(
            !self.released.borrow().contains(&id),
            "access violation: task {:?} ({}) touched released object {} ({:?})",
            self.task,
            self.label,
            self.store.name(id),
            id,
        );
        let mode = self.spec.mode_of(id).unwrap_or_else(|| {
            panic!(
                "access violation: task {:?} ({}) touched undeclared object {} ({:?})",
                self.task,
                self.label,
                self.store.name(id),
                id,
            )
        });
        let ok = if need_write {
            mode.writes()
        } else {
            mode.reads()
        };
        assert!(
            ok,
            "access violation: task {:?} ({}) needs {} on object {} but declared {:?}",
            self.task,
            self.label,
            if need_write { "write" } else { "read" },
            self.store.name(id),
            mode,
        );
    }

    /// Read a declared object.
    pub fn rd<T: 'static>(&self, h: Handle<T>) -> ReadGuard<'a, T> {
        self.check(h.id(), false);
        self.store.read(h)
    }

    /// Write a declared object.
    pub fn wr<T: 'static>(&self, h: Handle<T>) -> WriteGuard<'a, T> {
        self.check(h.id(), true);
        self.store.write(h)
    }

    /// Charge `ops` abstract operations of computation to this task.
    ///
    /// The machine simulators convert charged operations to virtual time
    /// with a per-application, per-machine calibration constant; the
    /// `jade-threads` backend ignores charges (real time is real).
    pub fn charge(&self, ops: f64) {
        debug_assert!(ops >= 0.0 && ops.is_finite());
        self.charged.set(self.charged.get() + ops);
    }

    /// Total operations charged so far.
    pub fn charged(&self) -> f64 {
        self.charged.get()
    }

    /// The declared mode for an object (for generic helper code).
    pub fn declared_mode(&self, id: ObjectId) -> Option<AccessMode> {
        self.spec.mode_of(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Store, Handle<Vec<f64>>, Handle<f64>) {
        let mut store = Store::new();
        let v = store.create("v", 16, vec![1.0, 2.0]);
        let s = store.create("s", 8, 0.0f64);
        (store, v, s)
    }

    #[test]
    fn builder_collects_spec_in_order() {
        let (_, v, s) = setup();
        let b = TaskBuilder::new("t").rd(v).wr(s);
        assert_eq!(b.spec().locality_object(), Some(v.id()));
        assert_eq!(b.spec().len(), 2);
        let def = b.body(|_| {});
        assert_eq!(def.label, "t");
        assert!(!def.serial_phase);
        assert_eq!(def.placement, None);
    }

    #[test]
    fn ctx_grants_declared_accesses() {
        let (store, v, s) = setup();
        let mut spec = AccessSpec::new();
        spec.rd(v).wr(s);
        let ctx = TaskCtx::new(&store, TaskId(0), "t", &spec);
        let total: f64 = ctx.rd(v).iter().sum();
        *ctx.wr(s) = total;
        ctx.charge(2.0);
        assert_eq!(ctx.charged(), 2.0);
        drop(ctx);
        assert_eq!(*store.read(s), 3.0);
    }

    #[test]
    #[should_panic(expected = "undeclared object")]
    fn undeclared_access_panics() {
        let (store, v, s) = setup();
        let mut spec = AccessSpec::new();
        spec.rd(v);
        let ctx = TaskCtx::new(&store, TaskId(1), "t", &spec);
        let _ = ctx.rd(s);
    }

    #[test]
    #[should_panic(expected = "needs write")]
    fn read_only_cannot_write() {
        let (store, v, _) = setup();
        let mut spec = AccessSpec::new();
        spec.rd(v);
        let ctx = TaskCtx::new(&store, TaskId(2), "t", &spec);
        let _ = ctx.wr(v);
    }

    #[test]
    fn rd_wr_allows_both() {
        let (store, v, _) = setup();
        let mut spec = AccessSpec::new();
        spec.rd_wr(v);
        let ctx = TaskCtx::new(&store, TaskId(3), "t", &spec);
        {
            let mut w = ctx.wr(v);
            w.push(9.0);
        }
        assert_eq!(ctx.rd(v).len(), 3);
    }

    #[test]
    fn placement_and_serial_flags() {
        let (_, v, _) = setup();
        let def = TaskBuilder::new("serial")
            .rd(v)
            .place(3)
            .serial_phase()
            .body(|_| {});
        assert_eq!(def.placement, Some(3));
        assert!(def.serial_phase);
    }
}
