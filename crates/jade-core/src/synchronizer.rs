//! The queue-based synchronizer: Jade's dynamic dependence analysis.
//!
//! For every shared object the synchronizer keeps a FIFO queue of declared
//! accesses in serial program (task creation) order. An access is *granted*
//! when it could legally begin:
//!
//! * a **read** is granted when no write precedes it in the queue (so a run
//!   of reads at the head executes concurrently — this is what makes the
//!   replication optimization possible);
//! * a **write** (or read-write) is granted only at the head of the queue.
//!
//! A task is *enabled* when all of its declared accesses are granted. This
//! preserves exactly the dynamic data dependence constraints of the paper:
//! conflicting tasks execute in serial program order, non-conflicting tasks
//! run concurrently.
//!
//! The synchronizer is deliberately pure — no clocks, no processors — so the
//! same component drives the DASH simulator, the iPSC simulator and the real
//! `jade-threads` executor, and so its invariants are easy to property-test.

use crate::access::{AccessMode, AccessSpec};
use crate::events::{EventKind, EventSink};
use crate::ids::{ObjectId, ProcId, TaskId};
use std::collections::VecDeque;

#[derive(Clone, Debug)]
struct QEntry {
    task: TaskId,
    mode: AccessMode,
    granted: bool,
}

#[derive(Clone, Debug)]
struct TaskState {
    /// Declared objects (so completion knows which queues to clean).
    objects: Vec<ObjectId>,
    /// Number of declared accesses not yet granted.
    ungranted: usize,
    completed: bool,
}

/// Dynamic dependence analysis over declared access specifications.
#[derive(Clone, Debug)]
pub struct Synchronizer {
    queues: Vec<VecDeque<QEntry>>,
    tasks: Vec<TaskState>,
    /// With replication disabled (`false`), reads serialize like writes —
    /// the Section 5.1 thought experiment: "eliminating replication would
    /// serialize all of the applications".
    replication: bool,
    live_tasks: usize,
}

impl Default for Synchronizer {
    fn default() -> Self {
        Synchronizer::new(true)
    }
}

impl Synchronizer {
    /// `replication`: whether concurrent reads of one object are permitted.
    pub fn new(replication: bool) -> Synchronizer {
        Synchronizer {
            queues: Vec::new(),
            tasks: Vec::new(),
            replication,
            live_tasks: 0,
        }
    }

    fn queue_mut(&mut self, o: ObjectId) -> &mut VecDeque<QEntry> {
        if o.index() >= self.queues.len() {
            self.queues.resize_with(o.index() + 1, VecDeque::new);
        }
        &mut self.queues[o.index()]
    }

    /// Register a task. **Must** be called in serial program order: task ids
    /// are consecutive from zero. Returns `true` if the task is immediately
    /// enabled (all accesses granted).
    pub fn add_task(&mut self, id: TaskId, spec: &AccessSpec) -> bool {
        assert_eq!(
            id.index(),
            self.tasks.len(),
            "tasks must be registered in serial program order"
        );
        let mut ungranted = 0;
        let mut objects = Vec::with_capacity(spec.len());
        for d in spec.decls() {
            objects.push(d.object);
            let replication = self.replication;
            let q = self.queue_mut(d.object);
            // The new entry goes to the tail; it is granted iff a reader
            // with no writer ahead (all earlier entries are then granted
            // reads), or the queue is empty.
            let granted = if q.is_empty() {
                true
            } else if d.mode == AccessMode::Read && replication {
                q.iter().all(|e| e.mode == AccessMode::Read)
            } else {
                false
            };
            if !granted {
                ungranted += 1;
            }
            q.push_back(QEntry {
                task: id,
                mode: d.mode,
                granted,
            });
        }
        self.tasks.push(TaskState {
            objects,
            ungranted,
            completed: false,
        });
        self.live_tasks += 1;
        ungranted == 0
    }

    /// True if every declared access of `id` is currently granted.
    pub fn is_enabled(&self, id: TaskId) -> bool {
        let t = &self.tasks[id.index()];
        !t.completed && t.ungranted == 0
    }

    /// Mark `id` complete, releasing its queue entries. Newly enabled tasks
    /// are appended to `newly_enabled` (in task-id order per object queue,
    /// which is deterministic).
    pub fn complete(&mut self, id: TaskId, newly_enabled: &mut Vec<TaskId>) {
        let state = &mut self.tasks[id.index()];
        assert!(!state.completed, "task {id:?} completed twice");
        assert_eq!(
            state.ungranted, 0,
            "task {id:?} completed while not enabled"
        );
        state.completed = true;
        self.live_tasks -= 1;
        let objects = std::mem::take(&mut self.tasks[id.index()].objects);
        for o in objects {
            self.remove_from_queue(id, o, newly_enabled);
        }
    }

    /// Release one of `id`'s declared accesses **before** the task
    /// completes — Jade's advanced pipelining statements (`no_rd(o)`,
    /// `no_wr(o)`): a task that has finished using an object gives up its
    /// right to access it, letting successors proceed while the task keeps
    /// running. Newly enabled tasks are appended to `newly_enabled`.
    ///
    /// Panics if the task never declared (or already released) the object.
    pub fn release(&mut self, id: TaskId, object: ObjectId, newly_enabled: &mut Vec<TaskId>) {
        let state = &mut self.tasks[id.index()];
        assert!(!state.completed, "release after completion of {id:?}");
        let pos = state
            .objects
            .iter()
            .position(|&o| o == object)
            .unwrap_or_else(|| panic!("{id:?} releasing undeclared/released {object:?}"));
        state.objects.swap_remove(pos);
        self.remove_from_queue(id, object, newly_enabled);
    }

    /// Remove `id`'s entry from `object`'s queue and re-grant from the head.
    fn remove_from_queue(&mut self, id: TaskId, o: ObjectId, newly_enabled: &mut Vec<TaskId>) {
        let replication = self.replication;
        let q = &mut self.queues[o.index()];
        let pos = q
            .iter()
            .position(|e| e.task == id)
            .expect("task not in object queue");
        debug_assert!(q[pos].granted, "removing an ungranted access");
        q.remove(pos);
        for i in 0..q.len() {
            let is_read = q[i].mode == AccessMode::Read;
            if i == 0 || (is_read && replication) {
                if !q[i].granted && (i == 0 || q.iter().take(i).all(|e| e.mode == AccessMode::Read))
                {
                    q[i].granted = true;
                    let t = q[i].task;
                    let ts = &mut self.tasks[t.index()];
                    ts.ungranted -= 1;
                    if ts.ungranted == 0 {
                        newly_enabled.push(t);
                    }
                }
                if !(is_read && replication) {
                    break;
                }
            } else {
                break;
            }
        }
    }

    /// [`add_task`](Self::add_task) plus event emission: records
    /// `TaskCreated`, and `TaskEnabled` if the task is immediately
    /// runnable. The synchronizer has no clock of its own, so the caller
    /// supplies the instant (`time_ps`) and the processor doing the
    /// registration.
    pub fn add_task_traced(
        &mut self,
        id: TaskId,
        spec: &AccessSpec,
        events: &mut EventSink,
        time_ps: u64,
        proc: ProcId,
    ) -> bool {
        let enabled = self.add_task(id, spec);
        events.emit_task(time_ps, proc, EventKind::TaskCreated, id);
        if enabled {
            events.emit_task(time_ps, proc, EventKind::TaskEnabled, id);
        }
        enabled
    }

    /// [`complete`](Self::complete) plus event emission: records
    /// `TaskCompleted` for `id` and `TaskEnabled` for every task its
    /// completion unblocks.
    pub fn complete_traced(
        &mut self,
        id: TaskId,
        newly_enabled: &mut Vec<TaskId>,
        events: &mut EventSink,
        time_ps: u64,
        proc: ProcId,
    ) {
        let before = newly_enabled.len();
        self.complete(id, newly_enabled);
        events.emit_task(time_ps, proc, EventKind::TaskCompleted, id);
        for &t in &newly_enabled[before..] {
            events.emit_task(time_ps, proc, EventKind::TaskEnabled, t);
        }
    }

    /// [`release`](Self::release) plus event emission: records
    /// `AccessReleased` and `TaskEnabled` for every unblocked successor.
    pub fn release_traced(
        &mut self,
        id: TaskId,
        object: ObjectId,
        newly_enabled: &mut Vec<TaskId>,
        events: &mut EventSink,
        time_ps: u64,
        proc: ProcId,
    ) {
        let before = newly_enabled.len();
        self.release(id, object, newly_enabled);
        events.emit_obj(time_ps, proc, EventKind::AccessReleased, Some(id), object);
        for &t in &newly_enabled[before..] {
            events.emit_task(time_ps, proc, EventKind::TaskEnabled, t);
        }
    }

    /// Number of registered tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of registered but not yet completed tasks.
    pub fn live_tasks(&self) -> usize {
        self.live_tasks
    }

    /// True when every registered task has completed.
    pub fn all_complete(&self) -> bool {
        self.live_tasks == 0
    }

    /// Queue length for one object (diagnostics/tests).
    pub fn queue_len(&self, o: ObjectId) -> usize {
        self.queues.get(o.index()).map_or(0, |q| q.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(n: u32) -> ObjectId {
        ObjectId(n)
    }

    fn spec(reads: &[u32], writes: &[u32]) -> AccessSpec {
        let mut s = AccessSpec::new();
        for &r in reads {
            s.rd(o(r));
        }
        for &w in writes {
            s.wr(o(w));
        }
        s
    }

    #[test]
    fn independent_tasks_enable_immediately() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[], &[0])));
        assert!(sync.add_task(TaskId(1), &spec(&[], &[1])));
    }

    #[test]
    fn writer_then_reader_serializes() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[], &[0])));
        assert!(!sync.add_task(TaskId(1), &spec(&[0], &[])));
        let mut enabled = Vec::new();
        sync.complete(TaskId(0), &mut enabled);
        assert_eq!(enabled, vec![TaskId(1)]);
        assert!(sync.is_enabled(TaskId(1)));
    }

    #[test]
    fn concurrent_readers_all_enabled() {
        let mut sync = Synchronizer::default();
        for i in 0..10 {
            assert!(sync.add_task(TaskId(i), &spec(&[0], &[])), "reader {i}");
        }
    }

    #[test]
    fn replication_off_serializes_readers() {
        let mut sync = Synchronizer::new(false);
        assert!(sync.add_task(TaskId(0), &spec(&[0], &[])));
        assert!(!sync.add_task(TaskId(1), &spec(&[0], &[])));
        let mut enabled = Vec::new();
        sync.complete(TaskId(0), &mut enabled);
        assert_eq!(enabled, vec![TaskId(1)]);
    }

    #[test]
    fn readers_block_writer_until_all_done() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[0], &[])));
        assert!(sync.add_task(TaskId(1), &spec(&[0], &[])));
        assert!(!sync.add_task(TaskId(2), &spec(&[], &[0])));
        let mut enabled = Vec::new();
        sync.complete(TaskId(1), &mut enabled); // out-of-order completion OK
        assert!(enabled.is_empty());
        sync.complete(TaskId(0), &mut enabled);
        assert_eq!(enabled, vec![TaskId(2)]);
    }

    #[test]
    fn reader_behind_writer_waits_but_later_reader_run_shares() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[], &[0]))); // writer
        assert!(!sync.add_task(TaskId(1), &spec(&[0], &[]))); // reader
        assert!(!sync.add_task(TaskId(2), &spec(&[0], &[]))); // reader
        assert!(!sync.add_task(TaskId(3), &spec(&[], &[0]))); // writer
        let mut enabled = Vec::new();
        sync.complete(TaskId(0), &mut enabled);
        // Both readers enable together; the trailing writer does not.
        assert_eq!(enabled, vec![TaskId(1), TaskId(2)]);
        enabled.clear();
        sync.complete(TaskId(1), &mut enabled);
        assert!(enabled.is_empty());
        sync.complete(TaskId(2), &mut enabled);
        assert_eq!(enabled, vec![TaskId(3)]);
    }

    #[test]
    fn multi_object_task_waits_for_all() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[], &[0])));
        assert!(sync.add_task(TaskId(1), &spec(&[], &[1])));
        // Task 2 reads both objects; blocked by both writers.
        assert!(!sync.add_task(TaskId(2), &spec(&[0, 1], &[])));
        let mut enabled = Vec::new();
        sync.complete(TaskId(0), &mut enabled);
        assert!(enabled.is_empty(), "still blocked on object 1");
        sync.complete(TaskId(1), &mut enabled);
        assert_eq!(enabled, vec![TaskId(2)]);
    }

    #[test]
    fn read_write_mode_is_exclusive() {
        let mut sync = Synchronizer::default();
        let mut s0 = AccessSpec::new();
        s0.rd_wr(o(0));
        assert!(sync.add_task(TaskId(0), &s0));
        assert!(!sync.add_task(TaskId(1), &spec(&[0], &[])));
        let mut s2 = AccessSpec::new();
        s2.rd_wr(o(0));
        assert!(!sync.add_task(TaskId(2), &s2));
        let mut enabled = Vec::new();
        sync.complete(TaskId(0), &mut enabled);
        assert_eq!(enabled, vec![TaskId(1)]);
        enabled.clear();
        sync.complete(TaskId(1), &mut enabled);
        assert_eq!(enabled, vec![TaskId(2)]);
    }

    #[test]
    fn empty_spec_enables_immediately() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &AccessSpec::new()));
        let mut enabled = Vec::new();
        sync.complete(TaskId(0), &mut enabled);
        assert!(sync.all_complete());
    }

    #[test]
    fn release_lets_successor_start_early() {
        // Pipelining: a writer releases object 0 mid-task; the waiting
        // reader enables while the writer is still running.
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[], &[0, 1])));
        assert!(!sync.add_task(TaskId(1), &spec(&[0], &[])));
        let mut enabled = Vec::new();
        sync.release(TaskId(0), o(0), &mut enabled);
        assert_eq!(
            enabled,
            vec![TaskId(1)],
            "reader enabled before writer completes"
        );
        assert!(!sync.all_complete());
        enabled.clear();
        sync.complete(TaskId(1), &mut enabled);
        sync.complete(TaskId(0), &mut enabled); // still holds object 1
        assert!(sync.all_complete());
    }

    #[test]
    fn release_of_read_unblocks_writer() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[0], &[1])));
        assert!(!sync.add_task(TaskId(1), &spec(&[], &[0])));
        let mut enabled = Vec::new();
        sync.release(TaskId(0), o(0), &mut enabled);
        assert_eq!(enabled, vec![TaskId(1)]);
    }

    #[test]
    #[should_panic(expected = "releasing undeclared")]
    fn double_release_panics() {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(0), &spec(&[0], &[]));
        let mut e = Vec::new();
        sync.release(TaskId(0), o(0), &mut e);
        sync.release(TaskId(0), o(0), &mut e);
    }

    #[test]
    fn complete_after_partial_release_cleans_rest() {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(0), &spec(&[0, 1, 2], &[]));
        sync.add_task(TaskId(1), &spec(&[], &[0]));
        sync.add_task(TaskId(2), &spec(&[], &[1]));
        let mut e = Vec::new();
        sync.release(TaskId(0), o(0), &mut e);
        assert_eq!(e, vec![TaskId(1)]);
        e.clear();
        sync.complete(TaskId(0), &mut e);
        assert_eq!(
            e,
            vec![TaskId(2)],
            "remaining entries released at completion"
        );
    }

    #[test]
    #[should_panic(expected = "serial program order")]
    fn out_of_order_registration_panics() {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(1), &AccessSpec::new());
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_complete_panics() {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(0), &AccessSpec::new());
        let mut e = Vec::new();
        sync.complete(TaskId(0), &mut e);
        sync.complete(TaskId(0), &mut e);
    }

    #[test]
    fn long_pipeline_executes_in_order() {
        // w(0) -> r(0)w(1) -> r(1)w(2) -> ... classic pipeline.
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[], &[0])));
        for i in 1..50u32 {
            assert!(!sync.add_task(TaskId(i), &spec(&[i - 1], &[i])));
        }
        let mut order = Vec::new();
        let mut ready = vec![TaskId(0)];
        while let Some(t) = ready.pop() {
            order.push(t);
            sync.complete(t, &mut ready);
        }
        assert_eq!(order, (0..50).map(TaskId).collect::<Vec<_>>());
        assert!(sync.all_complete());
    }
}
