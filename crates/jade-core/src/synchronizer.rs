//! The queue-based synchronizer: Jade's dynamic dependence analysis.
//!
//! For every shared object the synchronizer tracks declared accesses in
//! serial program (task creation) order. An access is *granted* when it
//! could legally begin:
//!
//! * a **read** is granted when no write precedes it in the queue (so a run
//!   of reads at the head executes concurrently — this is what makes the
//!   replication optimization possible);
//! * a **write** (or read-write) is granted only at the head of the queue.
//!
//! A task is *enabled* when all of its declared accesses are granted. This
//! preserves exactly the dynamic data dependence constraints of the paper:
//! conflicting tasks execute in serial program order, non-conflicting tasks
//! run concurrently.
//!
//! # Representation
//!
//! The conceptual per-object queue is `[granted entries..][waiting..]` —
//! the granted prefix is always either a run of reads or a single writer.
//! Earlier versions stored the whole queue and rescanned it on every
//! completion, making a pileup of N readers cost O(N²). The current
//! representation keeps only the **aggregate** of the granted prefix
//! (`granted_reads` counter + `granted_writer` flag) plus a queue of the
//! *waiting* entries: granted entries leave the queue eagerly, so queue
//! length stays O(outstanding ungranted accesses), completion of a granted
//! access is an O(1) counter update, and a re-grant touches exactly the
//! entries it enables. Per-task declaration lists are interned in one slab
//! (`decls`) instead of a `Vec<ObjectId>` per task, so registering a task
//! performs no per-task allocation beyond amortized slab growth.
//!
//! The synchronizer is deliberately pure — no clocks, no processors — so the
//! same component drives the DASH simulator, the iPSC simulator and the real
//! `jade-threads` executor, and so its invariants are easy to property-test.

use crate::access::{AccessMode, AccessSpec};
use crate::events::{EventKind, Sink};
use crate::ids::{ObjectId, ProcId, TaskId};
use std::collections::VecDeque;

/// One declared access, interned in the synchronizer-wide `decls` slab.
/// A task's declarations occupy a contiguous run of slots.
#[derive(Clone, Copy, Debug)]
struct DeclSlot {
    object: ObjectId,
    mode: AccessMode,
    /// The access is currently part of its object's granted prefix.
    granted: bool,
    /// The access was given up (mid-task `release`, or task completion).
    released: bool,
}

/// One synchronizer state transition, queueable in a [`TransitionBatch`].
///
/// The two ways a task gives up granted accesses: completing (retiring
/// every remaining declaration) or a mid-task release of one declaration
/// (Jade's pipelining statements).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transition {
    /// The task finished; retire all of its unreleased declarations.
    Complete(TaskId),
    /// Mid-task retirement of the task's declaration on one object.
    Release(TaskId, ObjectId),
}

/// A queue of synchronizer transitions applied together by
/// [`Synchronizer::apply_batch`] under the caller's single lock
/// acquisition. Executors accumulate locally-finished tasks here (a
/// per-worker drain buffer) instead of taking the synchronizer lock once
/// per completion.
///
/// Transitions are applied strictly in push order, so the set of newly
/// enabled tasks — and their order — is exactly what N individual
/// [`Synchronizer::complete`]/[`Synchronizer::release`] calls in the same
/// order would produce.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransitionBatch {
    items: Vec<Transition>,
}

impl TransitionBatch {
    pub fn new() -> TransitionBatch {
        TransitionBatch::default()
    }

    /// Queue a task completion.
    pub fn complete(&mut self, id: TaskId) {
        self.items.push(Transition::Complete(id));
    }

    /// Queue a mid-task release of `object` by `id`.
    pub fn release(&mut self, id: TaskId, object: ObjectId) {
        self.items.push(Transition::Release(id, object));
    }

    /// Queued transitions, in application order.
    pub fn transitions(&self) -> &[Transition] {
        &self.items
    }

    /// Number of queued [`Transition::Complete`] entries.
    pub fn completions(&self) -> usize {
        self.items
            .iter()
            .filter(|t| matches!(t, Transition::Complete(_)))
            .count()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Remove and return every queued transition, in order.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Transition> {
        self.items.drain(..)
    }

    pub fn clear(&mut self) {
        self.items.clear();
    }
}

/// A not-yet-granted access parked in an object's waiting queue.
#[derive(Clone, Copy, Debug)]
struct Waiter {
    task: TaskId,
    /// Index of the access in the `decls` slab.
    decl: u32,
    mode: AccessMode,
}

/// Aggregate state of one object's access queue: the granted prefix is
/// summarized (it is always all-reads or one writer), only ungranted
/// entries are materialized.
#[derive(Clone, Debug, Default)]
struct ObjQueue {
    /// Reads currently granted on this object.
    granted_reads: u32,
    /// A write (or read-write) is currently granted.
    granted_writer: bool,
    /// Ungranted accesses, in serial program order.
    waiting: VecDeque<Waiter>,
}

#[derive(Clone, Copy, Debug)]
struct TaskState {
    /// First slot of this task's declarations in the `decls` slab.
    decls_start: u32,
    decls_len: u32,
    /// Number of declared accesses not yet granted.
    ungranted: u32,
    completed: bool,
}

/// Dynamic dependence analysis over declared access specifications.
#[derive(Clone, Debug)]
pub struct Synchronizer {
    queues: Vec<ObjQueue>,
    tasks: Vec<TaskState>,
    /// Slab of every task's declared accesses (see [`TaskState`]).
    decls: Vec<DeclSlot>,
    /// With replication disabled (`false`), reads serialize like writes —
    /// the Section 5.1 thought experiment: "eliminating replication would
    /// serialize all of the applications".
    replication: bool,
    live_tasks: usize,
    /// Id of the first task in the current window: [`recycle`] retires the
    /// storage of completed batches by advancing this offset instead of
    /// letting `tasks`/`decls` grow forever. Task `id` lives at slot
    /// `id.index() - base`. Tasks below `base` are completed history.
    base: u32,
}

impl Default for Synchronizer {
    fn default() -> Self {
        Synchronizer::new(true)
    }
}

impl Synchronizer {
    /// `replication`: whether concurrent reads of one object are permitted.
    pub fn new(replication: bool) -> Synchronizer {
        Synchronizer {
            queues: Vec::new(),
            tasks: Vec::new(),
            decls: Vec::new(),
            replication,
            live_tasks: 0,
            base: 0,
        }
    }

    fn queue_mut(&mut self, o: ObjectId) -> &mut ObjQueue {
        if o.index() >= self.queues.len() {
            self.queues.resize_with(o.index() + 1, ObjQueue::default);
        }
        &mut self.queues[o.index()]
    }

    /// Slab slot of `id` in the current window.
    #[inline]
    fn slot(&self, id: TaskId) -> usize {
        debug_assert!(
            id.index() >= self.base as usize,
            "task {id:?} predates the current window (base {})",
            self.base
        );
        id.index() - self.base as usize
    }

    /// Retire the storage of a fully completed window: every registered
    /// task has completed, so `tasks` and `decls` hold only history —
    /// clear them (keeping capacity) and advance `base` past the retired
    /// ids. Subsequent [`add_task`](Self::add_task) calls continue from
    /// the next id, reusing the slabs instead of growing them, which is
    /// what keeps a long-lived executor's steady state allocation-free.
    ///
    /// # Panics
    ///
    /// If any registered task has not completed.
    pub fn recycle(&mut self) {
        assert!(
            self.all_complete(),
            "recycle with {} live tasks",
            self.live_tasks
        );
        // All tasks complete ⇒ every access was retired: no granted
        // entries remain aggregated and no waiter is parked.
        debug_assert!(self
            .queues
            .iter()
            .all(|q| q.granted_reads == 0 && !q.granted_writer && q.waiting.is_empty()));
        self.base += self.tasks.len() as u32;
        self.tasks.clear();
        self.decls.clear();
    }

    /// Id of the first task in the current window (tasks below it were
    /// retired by [`recycle`](Self::recycle); 0 unless recycling is used).
    pub fn base_task(&self) -> u32 {
        self.base
    }

    /// Register a task. **Must** be called in serial program order: task ids
    /// are consecutive from [`base_task`](Self::base_task) (zero unless
    /// [`recycle`](Self::recycle) is used). Returns `true` if the task is
    /// immediately enabled (all accesses granted).
    pub fn add_task(&mut self, id: TaskId, spec: &AccessSpec) -> bool {
        assert_eq!(
            id.index(),
            self.base as usize + self.tasks.len(),
            "tasks must be registered in serial program order"
        );
        let start = self.decls.len() as u32;
        let mut ungranted = 0u32;
        for d in spec.decls() {
            let decl = self.decls.len() as u32;
            let replication = self.replication;
            let q = self.queue_mut(d.object);
            // The new access goes behind everything already in the queue.
            // It is granted iff nothing is waiting ahead of it and it is
            // compatible with the granted prefix: a read joins a run of
            // granted reads (under replication), anything joins an idle
            // object. An empty waiting queue plus no granted writer means
            // the whole (conceptual) queue is a run of granted reads.
            let granted = q.waiting.is_empty()
                && !q.granted_writer
                && if d.mode == AccessMode::Read {
                    replication || q.granted_reads == 0
                } else {
                    q.granted_reads == 0
                };
            if granted {
                if d.mode == AccessMode::Read {
                    q.granted_reads += 1;
                } else {
                    q.granted_writer = true;
                }
            } else {
                ungranted += 1;
                q.waiting.push_back(Waiter {
                    task: id,
                    decl,
                    mode: d.mode,
                });
            }
            self.decls.push(DeclSlot {
                object: d.object,
                mode: d.mode,
                granted,
                released: false,
            });
        }
        self.tasks.push(TaskState {
            decls_start: start,
            decls_len: self.decls.len() as u32 - start,
            ungranted,
            completed: false,
        });
        self.live_tasks += 1;
        ungranted == 0
    }

    /// True if every declared access of `id` is currently granted.
    pub fn is_enabled(&self, id: TaskId) -> bool {
        let t = &self.tasks[self.slot(id)];
        !t.completed && t.ungranted == 0
    }

    /// Mark `id` complete, releasing its remaining granted accesses. Newly
    /// enabled tasks are appended to `newly_enabled` (in serial program
    /// order per object queue, which is deterministic). Each retired access
    /// is an O(1) counter update plus the grants it triggers — no queue is
    /// rescanned.
    pub fn complete(&mut self, id: TaskId, newly_enabled: &mut Vec<TaskId>) {
        let slot = self.slot(id);
        let state = &mut self.tasks[slot];
        assert!(!state.completed, "task {id:?} completed twice");
        assert_eq!(
            state.ungranted, 0,
            "task {id:?} completed while not enabled"
        );
        state.completed = true;
        self.live_tasks -= 1;
        let (start, len) = (state.decls_start as usize, state.decls_len as usize);
        for k in start..start + len {
            if self.decls[k].released {
                continue;
            }
            debug_assert!(self.decls[k].granted, "completing an ungranted access");
            self.decls[k].released = true;
            let (object, mode) = (self.decls[k].object, self.decls[k].mode);
            self.retire(object, mode, newly_enabled);
        }
    }

    /// Release one of `id`'s declared accesses **before** the task
    /// completes — Jade's advanced pipelining statements (`no_rd(o)`,
    /// `no_wr(o)`): a task that has finished using an object gives up its
    /// right to access it, letting successors proceed while the task keeps
    /// running. Newly enabled tasks are appended to `newly_enabled`.
    ///
    /// Panics if the task never declared (or already released) the object.
    pub fn release(&mut self, id: TaskId, object: ObjectId, newly_enabled: &mut Vec<TaskId>) {
        let state = &self.tasks[self.slot(id)];
        assert!(!state.completed, "release after completion of {id:?}");
        let (start, len) = (state.decls_start as usize, state.decls_len as usize);
        let k = (start..start + len)
            .find(|&k| self.decls[k].object == object && !self.decls[k].released)
            .unwrap_or_else(|| panic!("{id:?} releasing undeclared/released {object:?}"));
        debug_assert!(self.decls[k].granted, "releasing an ungranted access");
        self.decls[k].released = true;
        let mode = self.decls[k].mode;
        self.retire(object, mode, newly_enabled);
    }

    /// A granted access on `o` went away (completion or mid-task release):
    /// update the aggregate, and if the granted prefix emptied, grant the
    /// longest legal run from the head of the waiting queue.
    fn retire(&mut self, o: ObjectId, mode: AccessMode, newly_enabled: &mut Vec<TaskId>) {
        let q = &mut self.queues[o.index()];
        if mode == AccessMode::Read {
            debug_assert!(q.granted_reads > 0, "granted-read underflow on {o:?}");
            q.granted_reads -= 1;
        } else {
            debug_assert!(q.granted_writer, "granted-writer underflow on {o:?}");
            q.granted_writer = false;
        }
        if q.granted_reads == 0 && !q.granted_writer {
            self.grant_head_run(o, newly_enabled);
        }
    }

    /// Grant from the head of `o`'s waiting queue: a single writer, or
    /// (under replication) the maximal run of reads up to the next writer.
    /// Granted entries leave the queue eagerly — the queue never holds a
    /// granted entry, so no later operation rescans them.
    fn grant_head_run(&mut self, o: ObjectId, newly_enabled: &mut Vec<TaskId>) {
        loop {
            let replication = self.replication;
            let q = &mut self.queues[o.index()];
            let Some(&Waiter { task, decl, mode }) = q.waiting.front() else {
                break;
            };
            let legal = if mode == AccessMode::Read {
                !q.granted_writer && (replication || q.granted_reads == 0)
            } else {
                !q.granted_writer && q.granted_reads == 0
            };
            if !legal {
                break;
            }
            q.waiting.pop_front();
            if mode == AccessMode::Read {
                q.granted_reads += 1;
            } else {
                q.granted_writer = true;
            }
            self.decls[decl as usize].granted = true;
            let slot = self.slot(task);
            let ts = &mut self.tasks[slot];
            ts.ungranted -= 1;
            if ts.ungranted == 0 {
                newly_enabled.push(task);
            }
        }
    }

    /// Apply one queued [`Transition`] — dispatch to
    /// [`complete`](Self::complete) or [`release`](Self::release).
    pub fn apply(&mut self, tr: Transition, newly_enabled: &mut Vec<TaskId>) {
        match tr {
            Transition::Complete(id) => self.complete(id, newly_enabled),
            Transition::Release(id, object) => self.release(id, object, newly_enabled),
        }
    }

    /// [`apply`](Self::apply) plus event emission, matching
    /// [`complete_traced`](Self::complete_traced) /
    /// [`release_traced`](Self::release_traced) exactly.
    pub fn apply_traced<S: Sink>(
        &mut self,
        tr: Transition,
        newly_enabled: &mut Vec<TaskId>,
        events: &mut S,
        time_ps: u64,
        proc: ProcId,
    ) {
        match tr {
            Transition::Complete(id) => {
                self.complete_traced(id, newly_enabled, events, time_ps, proc)
            }
            Transition::Release(id, object) => {
                self.release_traced(id, object, newly_enabled, events, time_ps, proc)
            }
        }
    }

    /// Drain `batch`, applying every queued transition in push order under
    /// this one call — the executor holds its synchronizer lock once for
    /// the whole batch instead of once per completion. Newly enabled tasks
    /// are appended to `newly_enabled` in deterministic order: exactly the
    /// concatenation that the same sequence of individual
    /// [`complete`](Self::complete)/[`release`](Self::release) calls would
    /// produce.
    pub fn apply_batch(&mut self, batch: &mut TransitionBatch, newly_enabled: &mut Vec<TaskId>) {
        for tr in batch.items.drain(..) {
            self.apply(tr, newly_enabled);
        }
    }

    /// [`apply_batch`](Self::apply_batch) plus event emission: each
    /// transition asks `clock` for its own timestamp and emits the same
    /// `TaskCompleted`/`AccessReleased` + `TaskEnabled` sequence as the
    /// equivalent individual `*_traced` calls, so a batched event stream is
    /// bit-identical to an unbatched one applying the same transitions in
    /// the same order.
    pub fn apply_batch_traced<S: Sink>(
        &mut self,
        batch: &mut TransitionBatch,
        newly_enabled: &mut Vec<TaskId>,
        events: &mut S,
        clock: &mut impl FnMut() -> u64,
        proc: ProcId,
    ) {
        for tr in batch.items.drain(..) {
            let t = clock();
            self.apply_traced(tr, newly_enabled, events, t, proc);
        }
    }

    /// [`add_task`](Self::add_task) plus event emission: records
    /// `TaskCreated`, and `TaskEnabled` if the task is immediately
    /// runnable. The synchronizer has no clock of its own, so the caller
    /// supplies the instant (`time_ps`) and the processor doing the
    /// registration. Generic over the sink so untraced callers pay nothing.
    pub fn add_task_traced<S: Sink>(
        &mut self,
        id: TaskId,
        spec: &AccessSpec,
        events: &mut S,
        time_ps: u64,
        proc: ProcId,
    ) -> bool {
        let enabled = self.add_task(id, spec);
        events.emit_task(time_ps, proc, EventKind::TaskCreated, id);
        if enabled {
            events.emit_task(time_ps, proc, EventKind::TaskEnabled, id);
        }
        enabled
    }

    /// [`complete`](Self::complete) plus event emission: records
    /// `TaskCompleted` for `id` and `TaskEnabled` for every task its
    /// completion unblocks.
    pub fn complete_traced<S: Sink>(
        &mut self,
        id: TaskId,
        newly_enabled: &mut Vec<TaskId>,
        events: &mut S,
        time_ps: u64,
        proc: ProcId,
    ) {
        let before = newly_enabled.len();
        self.complete(id, newly_enabled);
        events.emit_task(time_ps, proc, EventKind::TaskCompleted, id);
        for &t in &newly_enabled[before..] {
            events.emit_task(time_ps, proc, EventKind::TaskEnabled, t);
        }
    }

    /// [`release`](Self::release) plus event emission: records
    /// `AccessReleased` and `TaskEnabled` for every unblocked successor.
    pub fn release_traced<S: Sink>(
        &mut self,
        id: TaskId,
        object: ObjectId,
        newly_enabled: &mut Vec<TaskId>,
        events: &mut S,
        time_ps: u64,
        proc: ProcId,
    ) {
        let before = newly_enabled.len();
        self.release(id, object, newly_enabled);
        events.emit_obj(time_ps, proc, EventKind::AccessReleased, Some(id), object);
        for &t in &newly_enabled[before..] {
            events.emit_task(time_ps, proc, EventKind::TaskEnabled, t);
        }
    }

    /// Number of registered tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of registered but not yet completed tasks.
    pub fn live_tasks(&self) -> usize {
        self.live_tasks
    }

    /// True when every registered task has completed.
    pub fn all_complete(&self) -> bool {
        self.live_tasks == 0
    }

    /// Conceptual queue length for one object — granted prefix plus
    /// waiting entries (diagnostics/tests).
    pub fn queue_len(&self, o: ObjectId) -> usize {
        self.queues.get(o.index()).map_or(0, |q| {
            q.granted_reads as usize + q.granted_writer as usize + q.waiting.len()
        })
    }

    /// Number of *materialized* (ungranted) entries in one object's queue.
    /// Granted accesses are aggregated into counters, so this is the only
    /// part any operation could ever walk — tests use it to pin down the
    /// O(outstanding) bound.
    pub fn waiting_len(&self, o: ObjectId) -> usize {
        self.queues.get(o.index()).map_or(0, |q| q.waiting.len())
    }

    /// Capture the synchronizer's full dynamic state — queue contents and
    /// per-task grant/completion flags — for the checkpoint/restart layer.
    ///
    /// The snapshot materializes the conceptual queues (granted prefix in
    /// task-id order, then waiting entries in program order) so the binary
    /// format is unchanged from the scan-based representation.
    pub fn snapshot(&self) -> SyncSnapshot {
        let mut queues: Vec<Vec<(TaskId, AccessMode, bool)>> = self
            .queues
            .iter()
            .map(|q| Vec::with_capacity(q.granted_reads as usize + q.waiting.len()))
            .collect();
        let mut tasks = Vec::with_capacity(self.tasks.len());
        for (i, t) in self.tasks.iter().enumerate() {
            let (start, len) = (t.decls_start as usize, t.decls_len as usize);
            let mut objects = Vec::new();
            for d in &self.decls[start..start + len] {
                if d.released {
                    continue;
                }
                objects.push(d.object);
                if d.granted {
                    queues[d.object.index()].push((TaskId(self.base + i as u32), d.mode, true));
                }
            }
            tasks.push(SnapTask {
                objects,
                ungranted: t.ungranted,
                completed: t.completed,
            });
        }
        for (q, snap_q) in self.queues.iter().zip(queues.iter_mut()) {
            for w in &q.waiting {
                snap_q.push((w.task, w.mode, false));
            }
        }
        SyncSnapshot {
            replication: self.replication,
            base: self.base,
            tasks,
            queues,
        }
    }

    /// Rebuild a synchronizer from a [`snapshot`](Self::snapshot). The
    /// result behaves identically to the original at capture time: the same
    /// completions enable the same successors in the same order.
    pub fn from_snapshot(snap: &SyncSnapshot) -> Synchronizer {
        let mut sync = Synchronizer::new(snap.replication);
        sync.base = snap.base;
        sync.queues
            .resize_with(snap.queues.len(), ObjQueue::default);
        for t in &snap.tasks {
            let start = sync.decls.len() as u32;
            for &o in &t.objects {
                // Mode and grant state are filled in from the queue
                // section below; every unreleased declaration has exactly
                // one queue entry.
                sync.decls.push(DeclSlot {
                    object: o,
                    mode: AccessMode::Read,
                    granted: false,
                    released: false,
                });
            }
            sync.tasks.push(TaskState {
                decls_start: start,
                decls_len: t.objects.len() as u32,
                ungranted: t.ungranted,
                completed: t.completed,
            });
            if !t.completed {
                sync.live_tasks += 1;
            }
        }
        for (oi, qsnap) in snap.queues.iter().enumerate() {
            let o = ObjectId(oi as u32);
            for &(task, mode, granted) in qsnap {
                let ts = sync.tasks[task.index() - snap.base as usize];
                let range = ts.decls_start as usize..(ts.decls_start + ts.decls_len) as usize;
                let k = range
                    .clone()
                    .find(|&k| sync.decls[k].object == o)
                    .expect("snapshot queue entry for undeclared object");
                sync.decls[k].mode = mode;
                sync.decls[k].granted = granted;
                let q = &mut sync.queues[oi];
                if granted {
                    if mode == AccessMode::Read {
                        q.granted_reads += 1;
                    } else {
                        q.granted_writer = true;
                    }
                } else {
                    q.waiting.push_back(Waiter {
                        task,
                        decl: k as u32,
                        mode,
                    });
                }
            }
        }
        sync
    }
}

#[derive(Clone, Debug, PartialEq)]
struct SnapTask {
    objects: Vec<ObjectId>,
    ungranted: u32,
    completed: bool,
}

/// A serializable snapshot of [`Synchronizer`] state: the payload of the
/// synchronizer section of a runtime checkpoint.
///
/// The binary format (all integers little-endian) is:
///
/// ```text
/// "JSNP" u16:version=2 u8:replication u32:base
/// u32:ntasks  ( u8:completed u32:ungranted u32:nobjs u32:obj... )*
/// u32:nqueues ( u32:len ( u32:task u8:mode u8:granted )* )*
/// ```
///
/// `base` is the id of the first task in the window (tasks below it were
/// retired by [`Synchronizer::recycle`] and report [`completed`]
/// (Self::completed)); version 2 added it — version-1 snapshots are
/// rejected rather than silently misread.
#[derive(Clone, Debug, PartialEq)]
pub struct SyncSnapshot {
    replication: bool,
    base: u32,
    tasks: Vec<SnapTask>,
    queues: Vec<Vec<(TaskId, AccessMode, bool)>>,
}

const SNAP_MAGIC: &[u8; 4] = b"JSNP";
const SNAP_VERSION: u16 = 2;

impl SyncSnapshot {
    /// Number of tasks registered at capture time.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of registered but not yet completed tasks at capture time.
    pub fn live_tasks(&self) -> usize {
        self.tasks.iter().filter(|t| !t.completed).count()
    }

    /// Had `id` completed (committed) by capture time? Tasks registered
    /// after the snapshot report `false`; tasks below the recycled window
    /// base are completed history and report `true`.
    pub fn completed(&self, id: TaskId) -> bool {
        if id.index() < self.base as usize {
            return true;
        }
        self.tasks
            .get(id.index() - self.base as usize)
            .is_some_and(|t| t.completed)
    }

    /// Exact size of [`to_bytes`](Self::to_bytes) output, used to charge
    /// checkpoint costs without materializing the encoding.
    pub fn encoded_len(&self) -> usize {
        let task_bytes: usize = self.tasks.iter().map(|t| 9 + 4 * t.objects.len()).sum();
        let queue_bytes: usize = self.queues.iter().map(|q| 4 + 6 * q.len()).sum();
        4 + 2 + 1 + 4 + 4 + task_bytes + 4 + queue_bytes
    }

    /// Encode to the binary checkpoint format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(SNAP_MAGIC);
        out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        out.push(self.replication as u8);
        out.extend_from_slice(&self.base.to_le_bytes());
        out.extend_from_slice(&(self.tasks.len() as u32).to_le_bytes());
        for t in &self.tasks {
            out.push(t.completed as u8);
            out.extend_from_slice(&t.ungranted.to_le_bytes());
            out.extend_from_slice(&(t.objects.len() as u32).to_le_bytes());
            for o in &t.objects {
                out.extend_from_slice(&o.0.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.queues.len() as u32).to_le_bytes());
        for q in &self.queues {
            out.extend_from_slice(&(q.len() as u32).to_le_bytes());
            for &(task, mode, granted) in q {
                out.extend_from_slice(&task.0.to_le_bytes());
                out.push(match mode {
                    AccessMode::Read => 0,
                    AccessMode::Write => 1,
                    AccessMode::ReadWrite => 2,
                });
                out.push(granted as u8);
            }
        }
        debug_assert_eq!(out.len(), self.encoded_len());
        out
    }

    /// Decode a snapshot previously produced by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<SyncSnapshot, String> {
        let mut r = SnapReader { bytes, pos: 0 };
        if r.take(4)? != SNAP_MAGIC {
            return Err("sync snapshot: bad magic".to_string());
        }
        let version = u16::from_le_bytes(r.take(2)?.try_into().unwrap());
        if version != SNAP_VERSION {
            return Err(format!("sync snapshot: unsupported version {version}"));
        }
        let replication = r.flag()?;
        let base = r.u32()?;
        let ntasks = r.len32()?;
        let mut tasks = Vec::with_capacity(ntasks);
        for _ in 0..ntasks {
            let completed = r.flag()?;
            let ungranted = r.u32()?;
            let nobjs = r.len32()?;
            let mut objects = Vec::with_capacity(nobjs);
            for _ in 0..nobjs {
                objects.push(ObjectId(r.u32()?));
            }
            tasks.push(SnapTask {
                objects,
                ungranted,
                completed,
            });
        }
        let nqueues = r.len32()?;
        let mut queues = Vec::with_capacity(nqueues);
        for _ in 0..nqueues {
            let len = r.len32()?;
            let mut q = Vec::with_capacity(len);
            for _ in 0..len {
                let task = TaskId(r.u32()?);
                let mode = match r.byte()? {
                    0 => AccessMode::Read,
                    1 => AccessMode::Write,
                    2 => AccessMode::ReadWrite,
                    m => return Err(format!("sync snapshot: bad access mode {m}")),
                };
                let granted = r.flag()?;
                q.push((task, mode, granted));
            }
            queues.push(q);
        }
        if r.pos != bytes.len() {
            return Err("sync snapshot: trailing bytes".to_string());
        }
        Ok(SyncSnapshot {
            replication,
            base,
            tasks,
            queues,
        })
    }
}

struct SnapReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| "sync snapshot: truncated".to_string())?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn byte(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn flag(&mut self) -> Result<bool, String> {
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("sync snapshot: bad flag byte {b}")),
        }
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn len32(&mut self) -> Result<usize, String> {
        let n = self.u32()? as usize;
        // A length prefix can never promise more entries than bytes left;
        // rejecting early keeps hostile input from causing huge allocations.
        if n > self.bytes.len() - self.pos {
            return Err("sync snapshot: truncated".to_string());
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(n: u32) -> ObjectId {
        ObjectId(n)
    }

    fn spec(reads: &[u32], writes: &[u32]) -> AccessSpec {
        let mut s = AccessSpec::new();
        for &r in reads {
            s.rd(o(r));
        }
        for &w in writes {
            s.wr(o(w));
        }
        s
    }

    #[test]
    fn independent_tasks_enable_immediately() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[], &[0])));
        assert!(sync.add_task(TaskId(1), &spec(&[], &[1])));
    }

    #[test]
    fn writer_then_reader_serializes() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[], &[0])));
        assert!(!sync.add_task(TaskId(1), &spec(&[0], &[])));
        let mut enabled = Vec::new();
        sync.complete(TaskId(0), &mut enabled);
        assert_eq!(enabled, vec![TaskId(1)]);
        assert!(sync.is_enabled(TaskId(1)));
    }

    #[test]
    fn concurrent_readers_all_enabled() {
        let mut sync = Synchronizer::default();
        for i in 0..10 {
            assert!(sync.add_task(TaskId(i), &spec(&[0], &[])), "reader {i}");
        }
    }

    #[test]
    fn replication_off_serializes_readers() {
        let mut sync = Synchronizer::new(false);
        assert!(sync.add_task(TaskId(0), &spec(&[0], &[])));
        assert!(!sync.add_task(TaskId(1), &spec(&[0], &[])));
        let mut enabled = Vec::new();
        sync.complete(TaskId(0), &mut enabled);
        assert_eq!(enabled, vec![TaskId(1)]);
    }

    #[test]
    fn readers_block_writer_until_all_done() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[0], &[])));
        assert!(sync.add_task(TaskId(1), &spec(&[0], &[])));
        assert!(!sync.add_task(TaskId(2), &spec(&[], &[0])));
        let mut enabled = Vec::new();
        sync.complete(TaskId(1), &mut enabled); // out-of-order completion OK
        assert!(enabled.is_empty());
        sync.complete(TaskId(0), &mut enabled);
        assert_eq!(enabled, vec![TaskId(2)]);
    }

    #[test]
    fn reader_behind_writer_waits_but_later_reader_run_shares() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[], &[0]))); // writer
        assert!(!sync.add_task(TaskId(1), &spec(&[0], &[]))); // reader
        assert!(!sync.add_task(TaskId(2), &spec(&[0], &[]))); // reader
        assert!(!sync.add_task(TaskId(3), &spec(&[], &[0]))); // writer
        let mut enabled = Vec::new();
        sync.complete(TaskId(0), &mut enabled);
        // Both readers enable together; the trailing writer does not.
        assert_eq!(enabled, vec![TaskId(1), TaskId(2)]);
        enabled.clear();
        sync.complete(TaskId(1), &mut enabled);
        assert!(enabled.is_empty());
        sync.complete(TaskId(2), &mut enabled);
        assert_eq!(enabled, vec![TaskId(3)]);
    }

    #[test]
    fn multi_object_task_waits_for_all() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[], &[0])));
        assert!(sync.add_task(TaskId(1), &spec(&[], &[1])));
        // Task 2 reads both objects; blocked by both writers.
        assert!(!sync.add_task(TaskId(2), &spec(&[0, 1], &[])));
        let mut enabled = Vec::new();
        sync.complete(TaskId(0), &mut enabled);
        assert!(enabled.is_empty(), "still blocked on object 1");
        sync.complete(TaskId(1), &mut enabled);
        assert_eq!(enabled, vec![TaskId(2)]);
    }

    #[test]
    fn read_write_mode_is_exclusive() {
        let mut sync = Synchronizer::default();
        let mut s0 = AccessSpec::new();
        s0.rd_wr(o(0));
        assert!(sync.add_task(TaskId(0), &s0));
        assert!(!sync.add_task(TaskId(1), &spec(&[0], &[])));
        let mut s2 = AccessSpec::new();
        s2.rd_wr(o(0));
        assert!(!sync.add_task(TaskId(2), &s2));
        let mut enabled = Vec::new();
        sync.complete(TaskId(0), &mut enabled);
        assert_eq!(enabled, vec![TaskId(1)]);
        enabled.clear();
        sync.complete(TaskId(1), &mut enabled);
        assert_eq!(enabled, vec![TaskId(2)]);
    }

    #[test]
    fn empty_spec_enables_immediately() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &AccessSpec::new()));
        let mut enabled = Vec::new();
        sync.complete(TaskId(0), &mut enabled);
        assert!(sync.all_complete());
    }

    #[test]
    fn release_lets_successor_start_early() {
        // Pipelining: a writer releases object 0 mid-task; the waiting
        // reader enables while the writer is still running.
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[], &[0, 1])));
        assert!(!sync.add_task(TaskId(1), &spec(&[0], &[])));
        let mut enabled = Vec::new();
        sync.release(TaskId(0), o(0), &mut enabled);
        assert_eq!(
            enabled,
            vec![TaskId(1)],
            "reader enabled before writer completes"
        );
        assert!(!sync.all_complete());
        enabled.clear();
        sync.complete(TaskId(1), &mut enabled);
        sync.complete(TaskId(0), &mut enabled); // still holds object 1
        assert!(sync.all_complete());
    }

    #[test]
    fn release_of_read_unblocks_writer() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[0], &[1])));
        assert!(!sync.add_task(TaskId(1), &spec(&[], &[0])));
        let mut enabled = Vec::new();
        sync.release(TaskId(0), o(0), &mut enabled);
        assert_eq!(enabled, vec![TaskId(1)]);
    }

    #[test]
    #[should_panic(expected = "releasing undeclared")]
    fn double_release_panics() {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(0), &spec(&[0], &[]));
        let mut e = Vec::new();
        sync.release(TaskId(0), o(0), &mut e);
        sync.release(TaskId(0), o(0), &mut e);
    }

    #[test]
    fn complete_after_partial_release_cleans_rest() {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(0), &spec(&[0, 1, 2], &[]));
        sync.add_task(TaskId(1), &spec(&[], &[0]));
        sync.add_task(TaskId(2), &spec(&[], &[1]));
        let mut e = Vec::new();
        sync.release(TaskId(0), o(0), &mut e);
        assert_eq!(e, vec![TaskId(1)]);
        e.clear();
        sync.complete(TaskId(0), &mut e);
        assert_eq!(
            e,
            vec![TaskId(2)],
            "remaining entries released at completion"
        );
    }

    #[test]
    #[should_panic(expected = "serial program order")]
    fn out_of_order_registration_panics() {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(1), &AccessSpec::new());
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_complete_panics() {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(0), &AccessSpec::new());
        let mut e = Vec::new();
        sync.complete(TaskId(0), &mut e);
        sync.complete(TaskId(0), &mut e);
    }

    #[test]
    fn snapshot_round_trips_through_bytes() {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(0), &spec(&[], &[0]));
        sync.add_task(TaskId(1), &spec(&[0], &[1]));
        sync.add_task(TaskId(2), &spec(&[0, 1], &[]));
        let mut e = Vec::new();
        sync.complete(TaskId(0), &mut e);
        let snap = sync.snapshot();
        assert_eq!(snap.task_count(), 3);
        assert_eq!(snap.live_tasks(), 2);
        assert!(snap.completed(TaskId(0)));
        assert!(!snap.completed(TaskId(1)));
        assert!(!snap.completed(TaskId(99)), "unknown task is not committed");
        let bytes = snap.to_bytes();
        assert_eq!(bytes.len(), snap.encoded_len());
        let decoded = SyncSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, snap);
        // The restored synchronizer continues exactly like the original.
        let mut restored = Synchronizer::from_snapshot(&decoded);
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        sync.complete(TaskId(1), &mut ea);
        restored.complete(TaskId(1), &mut eb);
        assert_eq!(ea, eb);
        assert_eq!(ea, vec![TaskId(2)]);
    }

    #[test]
    fn snapshot_decode_rejects_corruption() {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(0), &spec(&[0], &[1]));
        let bytes = sync.snapshot().to_bytes();
        assert!(SyncSnapshot::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(SyncSnapshot::from_bytes(b"XXXX").is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'Z';
        assert!(SyncSnapshot::from_bytes(&bad_magic).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(SyncSnapshot::from_bytes(&trailing).is_err());
        let mut bad_version = bytes;
        bad_version[4] = 0xFF;
        assert!(SyncSnapshot::from_bytes(&bad_version).is_err());
    }

    #[test]
    fn long_pipeline_executes_in_order() {
        // w(0) -> r(0)w(1) -> r(1)w(2) -> ... classic pipeline.
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[], &[0])));
        for i in 1..50u32 {
            assert!(!sync.add_task(TaskId(i), &spec(&[i - 1], &[i])));
        }
        let mut order = Vec::new();
        let mut ready = vec![TaskId(0)];
        while let Some(t) = ready.pop() {
            order.push(t);
            sync.complete(t, &mut ready);
        }
        assert_eq!(order, (0..50).map(TaskId).collect::<Vec<_>>());
        assert!(sync.all_complete());
    }

    #[test]
    fn granted_read_pileup_completes_in_constant_time_each() {
        // Satellite regression test: 10k concurrent readers granted on one
        // object. The waiting queue must stay EMPTY throughout — each
        // completion is a pure counter decrement with nothing to rescan
        // (the old full-queue representation walked all 10k entries per
        // completion, going quadratic).
        let n = 10_000u32;
        let mut sync = Synchronizer::default();
        for i in 0..n {
            assert!(sync.add_task(TaskId(i), &spec(&[0], &[])));
        }
        assert_eq!(sync.queue_len(o(0)), n as usize);
        assert_eq!(sync.waiting_len(o(0)), 0, "granted reads are aggregated");
        // Trailing writer: the only materialized entry.
        assert!(!sync.add_task(TaskId(n), &spec(&[], &[0])));
        assert_eq!(sync.waiting_len(o(0)), 1);
        let mut e = Vec::new();
        for i in 0..n {
            sync.complete(TaskId(i), &mut e);
            assert_eq!(sync.waiting_len(o(0)), usize::from(i != n - 1));
        }
        assert_eq!(e, vec![TaskId(n)], "writer enables after the last read");
        sync.complete(TaskId(n), &mut e);
        assert!(sync.all_complete());
    }

    #[test]
    fn waiting_read_pileup_drains_eagerly_on_grant() {
        // The mirror case: 10k readers parked behind one writer. The grant
        // batch fired by the writer's completion moves all of them out of
        // the queue at once — afterwards every read completion is O(1).
        let n = 10_000u32;
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[], &[0])));
        for i in 1..=n {
            assert!(!sync.add_task(TaskId(i), &spec(&[0], &[])));
        }
        assert_eq!(sync.waiting_len(o(0)), n as usize);
        let mut e = Vec::new();
        sync.complete(TaskId(0), &mut e);
        assert_eq!(e.len(), n as usize, "one grant batch enables all readers");
        assert_eq!(sync.waiting_len(o(0)), 0, "granted entries left the queue");
        for i in 1..=n {
            let mut e = Vec::new();
            sync.complete(TaskId(i), &mut e);
            assert!(e.is_empty());
        }
        assert!(sync.all_complete());
    }

    /// Build the same mixed DAG twice: writer chains, a read fan-out and a
    /// trailing writer across three objects.
    fn mixed_dag() -> Synchronizer {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(0), &spec(&[], &[0, 1]));
        sync.add_task(TaskId(1), &spec(&[0], &[]));
        sync.add_task(TaskId(2), &spec(&[0], &[2]));
        sync.add_task(TaskId(3), &spec(&[1, 2], &[]));
        sync.add_task(TaskId(4), &spec(&[], &[0]));
        sync
    }

    #[test]
    fn batch_apply_matches_individual_transitions() {
        // Applying [release(0,0), complete(0), complete(1)] as one batch
        // must yield the same enables, in the same order, as the three
        // individual calls.
        let mut a = mixed_dag();
        let mut b = mixed_dag();
        let mut ea = Vec::new();
        a.release(TaskId(0), o(0), &mut ea);
        a.complete(TaskId(0), &mut ea);
        a.complete(TaskId(1), &mut ea);

        let mut batch = TransitionBatch::new();
        batch.release(TaskId(0), o(0));
        batch.complete(TaskId(0));
        batch.complete(TaskId(1));
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.completions(), 2);
        let mut eb = Vec::new();
        b.apply_batch(&mut batch, &mut eb);
        assert!(batch.is_empty(), "apply_batch drains the batch");
        assert_eq!(ea, eb, "batched enables diverge from individual calls");
        assert_eq!(a.live_tasks(), b.live_tasks());
        // Both synchronizers continue identically afterwards.
        let (mut ca, mut cb) = (Vec::new(), Vec::new());
        a.complete(TaskId(2), &mut ca);
        b.complete(TaskId(2), &mut cb);
        assert_eq!(ca, cb);
    }

    #[test]
    fn batch_enable_order_is_deterministic() {
        // A completion enabling several tasks keeps per-object program
        // order, and a later transition's enables follow the earlier ones.
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(0), &spec(&[], &[0]));
        sync.add_task(TaskId(1), &spec(&[], &[1]));
        sync.add_task(TaskId(2), &spec(&[0], &[]));
        sync.add_task(TaskId(3), &spec(&[0], &[]));
        sync.add_task(TaskId(4), &spec(&[1], &[]));
        let mut batch = TransitionBatch::new();
        batch.complete(TaskId(0));
        batch.complete(TaskId(1));
        let mut enabled = Vec::new();
        sync.apply_batch(&mut batch, &mut enabled);
        assert_eq!(enabled, vec![TaskId(2), TaskId(3), TaskId(4)]);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut sync = mixed_dag();
        let live = sync.live_tasks();
        let mut enabled = Vec::new();
        sync.apply_batch(&mut TransitionBatch::new(), &mut enabled);
        assert!(enabled.is_empty());
        assert_eq!(sync.live_tasks(), live);
    }

    #[test]
    fn batch_traced_stream_matches_individual_traced_calls() {
        use crate::events::EventSink;
        let mut a = mixed_dag();
        let mut b = mixed_dag();
        let (mut sa, mut sb) = (EventSink::recording(), EventSink::recording());
        let mut clock = 0u64..;
        let mut ea = Vec::new();
        a.complete_traced(TaskId(0), &mut ea, &mut sa, clock.next().unwrap(), 0);
        a.release_traced(TaskId(2), o(0), &mut ea, &mut sa, clock.next().unwrap(), 0);
        a.complete_traced(TaskId(1), &mut ea, &mut sa, clock.next().unwrap(), 0);

        let mut batch = TransitionBatch::new();
        batch.complete(TaskId(0));
        batch.release(TaskId(2), o(0));
        batch.complete(TaskId(1));
        let mut tick = 0u64..;
        let mut eb = Vec::new();
        b.apply_batch_traced(
            &mut batch,
            &mut eb,
            &mut sb,
            &mut || tick.next().unwrap(),
            0,
        );
        assert_eq!(ea, eb);
        assert_eq!(
            sa.take(),
            sb.take(),
            "batched event stream must be bit-identical"
        );
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn batch_with_duplicate_completion_panics() {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(0), &AccessSpec::new());
        let mut batch = TransitionBatch::new();
        batch.complete(TaskId(0));
        batch.complete(TaskId(0));
        sync.apply_batch(&mut batch, &mut Vec::new());
    }

    #[test]
    fn null_sink_traced_paths_match_untraced() {
        use crate::events::NullSink;
        let mut a = Synchronizer::default();
        let mut b = Synchronizer::default();
        let mut sink = NullSink;
        assert_eq!(
            a.add_task(TaskId(0), &spec(&[], &[0])),
            b.add_task_traced(TaskId(0), &spec(&[], &[0]), &mut sink, 0, 0)
        );
        assert_eq!(
            a.add_task(TaskId(1), &spec(&[0], &[])),
            b.add_task_traced(TaskId(1), &spec(&[0], &[]), &mut sink, 1, 0)
        );
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        a.complete(TaskId(0), &mut ea);
        b.complete_traced(TaskId(0), &mut eb, &mut sink, 2, 0);
        assert_eq!(ea, eb);
    }

    #[test]
    fn recycle_reuses_slabs_across_windows() {
        let mut sync = Synchronizer::default();
        let mut next = 0u32;
        let run_window = |sync: &mut Synchronizer, next: &mut u32, n: u32| {
            // Pipeline over one object: deterministic completion order.
            let first = *next;
            for i in 0..n {
                sync.add_task(TaskId(first + i), &spec(&[], &[0]));
            }
            *next += n;
            let mut ready = vec![TaskId(first)];
            let mut order = Vec::new();
            while let Some(t) = ready.pop() {
                order.push(t);
                sync.complete(t, &mut ready);
            }
            assert_eq!(order, (first..first + n).map(TaskId).collect::<Vec<_>>());
        };
        run_window(&mut sync, &mut next, 8);
        assert!(sync.all_complete());
        sync.recycle();
        assert_eq!(sync.base_task(), 8);
        assert_eq!(sync.task_count(), 0);
        // Ids keep advancing; the second window reuses the cleared slabs.
        run_window(&mut sync, &mut next, 8);
        sync.recycle();
        assert_eq!(sync.base_task(), 16);
        run_window(&mut sync, &mut next, 4);
        assert!(sync.all_complete());
    }

    #[test]
    #[should_panic(expected = "recycle with")]
    fn recycle_with_live_tasks_panics() {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(0), &spec(&[], &[0]));
        sync.recycle();
    }

    #[test]
    fn windowed_snapshot_round_trips_and_reports_history_complete() {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(0), &spec(&[], &[0]));
        let mut e = Vec::new();
        sync.complete(TaskId(0), &mut e);
        sync.recycle();
        // Window now starts at id 1, with a dependence inside it.
        assert!(sync.add_task(TaskId(1), &spec(&[], &[0])));
        assert!(!sync.add_task(TaskId(2), &spec(&[0], &[])));
        let snap = sync.snapshot();
        assert_eq!(snap.task_count(), 2);
        assert!(snap.completed(TaskId(0)), "pre-window id is history");
        assert!(!snap.completed(TaskId(1)));
        let bytes = snap.to_bytes();
        assert_eq!(bytes.len(), snap.encoded_len());
        let decoded = SyncSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, snap);
        let mut restored = Synchronizer::from_snapshot(&decoded);
        assert_eq!(restored.base_task(), 1);
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        sync.complete(TaskId(1), &mut ea);
        restored.complete(TaskId(1), &mut eb);
        assert_eq!(ea, eb);
        assert_eq!(ea, vec![TaskId(2)]);
    }
}
