//! The queue-based synchronizer: Jade's dynamic dependence analysis.
//!
//! For every shared object the synchronizer keeps a FIFO queue of declared
//! accesses in serial program (task creation) order. An access is *granted*
//! when it could legally begin:
//!
//! * a **read** is granted when no write precedes it in the queue (so a run
//!   of reads at the head executes concurrently — this is what makes the
//!   replication optimization possible);
//! * a **write** (or read-write) is granted only at the head of the queue.
//!
//! A task is *enabled* when all of its declared accesses are granted. This
//! preserves exactly the dynamic data dependence constraints of the paper:
//! conflicting tasks execute in serial program order, non-conflicting tasks
//! run concurrently.
//!
//! The synchronizer is deliberately pure — no clocks, no processors — so the
//! same component drives the DASH simulator, the iPSC simulator and the real
//! `jade-threads` executor, and so its invariants are easy to property-test.

use crate::access::{AccessMode, AccessSpec};
use crate::events::{EventKind, EventSink};
use crate::ids::{ObjectId, ProcId, TaskId};
use std::collections::VecDeque;

#[derive(Clone, Debug)]
struct QEntry {
    task: TaskId,
    mode: AccessMode,
    granted: bool,
}

#[derive(Clone, Debug)]
struct TaskState {
    /// Declared objects (so completion knows which queues to clean).
    objects: Vec<ObjectId>,
    /// Number of declared accesses not yet granted.
    ungranted: usize,
    completed: bool,
}

/// Dynamic dependence analysis over declared access specifications.
#[derive(Clone, Debug)]
pub struct Synchronizer {
    queues: Vec<VecDeque<QEntry>>,
    tasks: Vec<TaskState>,
    /// With replication disabled (`false`), reads serialize like writes —
    /// the Section 5.1 thought experiment: "eliminating replication would
    /// serialize all of the applications".
    replication: bool,
    live_tasks: usize,
}

impl Default for Synchronizer {
    fn default() -> Self {
        Synchronizer::new(true)
    }
}

impl Synchronizer {
    /// `replication`: whether concurrent reads of one object are permitted.
    pub fn new(replication: bool) -> Synchronizer {
        Synchronizer {
            queues: Vec::new(),
            tasks: Vec::new(),
            replication,
            live_tasks: 0,
        }
    }

    fn queue_mut(&mut self, o: ObjectId) -> &mut VecDeque<QEntry> {
        if o.index() >= self.queues.len() {
            self.queues.resize_with(o.index() + 1, VecDeque::new);
        }
        &mut self.queues[o.index()]
    }

    /// Register a task. **Must** be called in serial program order: task ids
    /// are consecutive from zero. Returns `true` if the task is immediately
    /// enabled (all accesses granted).
    pub fn add_task(&mut self, id: TaskId, spec: &AccessSpec) -> bool {
        assert_eq!(
            id.index(),
            self.tasks.len(),
            "tasks must be registered in serial program order"
        );
        let mut ungranted = 0;
        let mut objects = Vec::with_capacity(spec.len());
        for d in spec.decls() {
            objects.push(d.object);
            let replication = self.replication;
            let q = self.queue_mut(d.object);
            // The new entry goes to the tail; it is granted iff a reader
            // with no writer ahead (all earlier entries are then granted
            // reads), or the queue is empty.
            let granted = if q.is_empty() {
                true
            } else if d.mode == AccessMode::Read && replication {
                q.iter().all(|e| e.mode == AccessMode::Read)
            } else {
                false
            };
            if !granted {
                ungranted += 1;
            }
            q.push_back(QEntry {
                task: id,
                mode: d.mode,
                granted,
            });
        }
        self.tasks.push(TaskState {
            objects,
            ungranted,
            completed: false,
        });
        self.live_tasks += 1;
        ungranted == 0
    }

    /// True if every declared access of `id` is currently granted.
    pub fn is_enabled(&self, id: TaskId) -> bool {
        let t = &self.tasks[id.index()];
        !t.completed && t.ungranted == 0
    }

    /// Mark `id` complete, releasing its queue entries. Newly enabled tasks
    /// are appended to `newly_enabled` (in task-id order per object queue,
    /// which is deterministic).
    pub fn complete(&mut self, id: TaskId, newly_enabled: &mut Vec<TaskId>) {
        let state = &mut self.tasks[id.index()];
        assert!(!state.completed, "task {id:?} completed twice");
        assert_eq!(
            state.ungranted, 0,
            "task {id:?} completed while not enabled"
        );
        state.completed = true;
        self.live_tasks -= 1;
        let objects = std::mem::take(&mut self.tasks[id.index()].objects);
        for o in objects {
            self.remove_from_queue(id, o, newly_enabled);
        }
    }

    /// Release one of `id`'s declared accesses **before** the task
    /// completes — Jade's advanced pipelining statements (`no_rd(o)`,
    /// `no_wr(o)`): a task that has finished using an object gives up its
    /// right to access it, letting successors proceed while the task keeps
    /// running. Newly enabled tasks are appended to `newly_enabled`.
    ///
    /// Panics if the task never declared (or already released) the object.
    pub fn release(&mut self, id: TaskId, object: ObjectId, newly_enabled: &mut Vec<TaskId>) {
        let state = &mut self.tasks[id.index()];
        assert!(!state.completed, "release after completion of {id:?}");
        let pos = state
            .objects
            .iter()
            .position(|&o| o == object)
            .unwrap_or_else(|| panic!("{id:?} releasing undeclared/released {object:?}"));
        state.objects.swap_remove(pos);
        self.remove_from_queue(id, object, newly_enabled);
    }

    /// Remove `id`'s entry from `object`'s queue and re-grant from the head.
    fn remove_from_queue(&mut self, id: TaskId, o: ObjectId, newly_enabled: &mut Vec<TaskId>) {
        let replication = self.replication;
        let q = &mut self.queues[o.index()];
        let pos = q
            .iter()
            .position(|e| e.task == id)
            .expect("task not in object queue");
        debug_assert!(q[pos].granted, "removing an ungranted access");
        q.remove(pos);
        for i in 0..q.len() {
            let is_read = q[i].mode == AccessMode::Read;
            if i == 0 || (is_read && replication) {
                if !q[i].granted && (i == 0 || q.iter().take(i).all(|e| e.mode == AccessMode::Read))
                {
                    q[i].granted = true;
                    let t = q[i].task;
                    let ts = &mut self.tasks[t.index()];
                    ts.ungranted -= 1;
                    if ts.ungranted == 0 {
                        newly_enabled.push(t);
                    }
                }
                if !(is_read && replication) {
                    break;
                }
            } else {
                break;
            }
        }
    }

    /// [`add_task`](Self::add_task) plus event emission: records
    /// `TaskCreated`, and `TaskEnabled` if the task is immediately
    /// runnable. The synchronizer has no clock of its own, so the caller
    /// supplies the instant (`time_ps`) and the processor doing the
    /// registration.
    pub fn add_task_traced(
        &mut self,
        id: TaskId,
        spec: &AccessSpec,
        events: &mut EventSink,
        time_ps: u64,
        proc: ProcId,
    ) -> bool {
        let enabled = self.add_task(id, spec);
        events.emit_task(time_ps, proc, EventKind::TaskCreated, id);
        if enabled {
            events.emit_task(time_ps, proc, EventKind::TaskEnabled, id);
        }
        enabled
    }

    /// [`complete`](Self::complete) plus event emission: records
    /// `TaskCompleted` for `id` and `TaskEnabled` for every task its
    /// completion unblocks.
    pub fn complete_traced(
        &mut self,
        id: TaskId,
        newly_enabled: &mut Vec<TaskId>,
        events: &mut EventSink,
        time_ps: u64,
        proc: ProcId,
    ) {
        let before = newly_enabled.len();
        self.complete(id, newly_enabled);
        events.emit_task(time_ps, proc, EventKind::TaskCompleted, id);
        for &t in &newly_enabled[before..] {
            events.emit_task(time_ps, proc, EventKind::TaskEnabled, t);
        }
    }

    /// [`release`](Self::release) plus event emission: records
    /// `AccessReleased` and `TaskEnabled` for every unblocked successor.
    pub fn release_traced(
        &mut self,
        id: TaskId,
        object: ObjectId,
        newly_enabled: &mut Vec<TaskId>,
        events: &mut EventSink,
        time_ps: u64,
        proc: ProcId,
    ) {
        let before = newly_enabled.len();
        self.release(id, object, newly_enabled);
        events.emit_obj(time_ps, proc, EventKind::AccessReleased, Some(id), object);
        for &t in &newly_enabled[before..] {
            events.emit_task(time_ps, proc, EventKind::TaskEnabled, t);
        }
    }

    /// Number of registered tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of registered but not yet completed tasks.
    pub fn live_tasks(&self) -> usize {
        self.live_tasks
    }

    /// True when every registered task has completed.
    pub fn all_complete(&self) -> bool {
        self.live_tasks == 0
    }

    /// Queue length for one object (diagnostics/tests).
    pub fn queue_len(&self, o: ObjectId) -> usize {
        self.queues.get(o.index()).map_or(0, |q| q.len())
    }

    /// Capture the synchronizer's full dynamic state — queue contents and
    /// per-task grant/completion flags — for the checkpoint/restart layer.
    pub fn snapshot(&self) -> SyncSnapshot {
        SyncSnapshot {
            replication: self.replication,
            tasks: self
                .tasks
                .iter()
                .map(|t| SnapTask {
                    objects: t.objects.clone(),
                    ungranted: t.ungranted as u32,
                    completed: t.completed,
                })
                .collect(),
            queues: self
                .queues
                .iter()
                .map(|q| q.iter().map(|e| (e.task, e.mode, e.granted)).collect())
                .collect(),
        }
    }

    /// Rebuild a synchronizer from a [`snapshot`](Self::snapshot). The
    /// result behaves identically to the original at capture time: the same
    /// completions enable the same successors in the same order.
    pub fn from_snapshot(snap: &SyncSnapshot) -> Synchronizer {
        Synchronizer {
            queues: snap
                .queues
                .iter()
                .map(|q| {
                    q.iter()
                        .map(|&(task, mode, granted)| QEntry {
                            task,
                            mode,
                            granted,
                        })
                        .collect()
                })
                .collect(),
            tasks: snap
                .tasks
                .iter()
                .map(|t| TaskState {
                    objects: t.objects.clone(),
                    ungranted: t.ungranted as usize,
                    completed: t.completed,
                })
                .collect(),
            replication: snap.replication,
            live_tasks: snap.live_tasks(),
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
struct SnapTask {
    objects: Vec<ObjectId>,
    ungranted: u32,
    completed: bool,
}

/// A serializable snapshot of [`Synchronizer`] state: the payload of the
/// synchronizer section of a runtime checkpoint.
///
/// The binary format (all integers little-endian) is:
///
/// ```text
/// "JSNP" u16:version=1 u8:replication
/// u32:ntasks  ( u8:completed u32:ungranted u32:nobjs u32:obj... )*
/// u32:nqueues ( u32:len ( u32:task u8:mode u8:granted )* )*
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SyncSnapshot {
    replication: bool,
    tasks: Vec<SnapTask>,
    queues: Vec<Vec<(TaskId, AccessMode, bool)>>,
}

const SNAP_MAGIC: &[u8; 4] = b"JSNP";
const SNAP_VERSION: u16 = 1;

impl SyncSnapshot {
    /// Number of tasks registered at capture time.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of registered but not yet completed tasks at capture time.
    pub fn live_tasks(&self) -> usize {
        self.tasks.iter().filter(|t| !t.completed).count()
    }

    /// Had `id` completed (committed) by capture time? Tasks registered
    /// after the snapshot report `false`.
    pub fn completed(&self, id: TaskId) -> bool {
        self.tasks.get(id.index()).is_some_and(|t| t.completed)
    }

    /// Exact size of [`to_bytes`](Self::to_bytes) output, used to charge
    /// checkpoint costs without materializing the encoding.
    pub fn encoded_len(&self) -> usize {
        let task_bytes: usize = self.tasks.iter().map(|t| 9 + 4 * t.objects.len()).sum();
        let queue_bytes: usize = self.queues.iter().map(|q| 4 + 6 * q.len()).sum();
        4 + 2 + 1 + 4 + task_bytes + 4 + queue_bytes
    }

    /// Encode to the binary checkpoint format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(SNAP_MAGIC);
        out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        out.push(self.replication as u8);
        out.extend_from_slice(&(self.tasks.len() as u32).to_le_bytes());
        for t in &self.tasks {
            out.push(t.completed as u8);
            out.extend_from_slice(&t.ungranted.to_le_bytes());
            out.extend_from_slice(&(t.objects.len() as u32).to_le_bytes());
            for o in &t.objects {
                out.extend_from_slice(&o.0.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.queues.len() as u32).to_le_bytes());
        for q in &self.queues {
            out.extend_from_slice(&(q.len() as u32).to_le_bytes());
            for &(task, mode, granted) in q {
                out.extend_from_slice(&task.0.to_le_bytes());
                out.push(match mode {
                    AccessMode::Read => 0,
                    AccessMode::Write => 1,
                    AccessMode::ReadWrite => 2,
                });
                out.push(granted as u8);
            }
        }
        debug_assert_eq!(out.len(), self.encoded_len());
        out
    }

    /// Decode a snapshot previously produced by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<SyncSnapshot, String> {
        let mut r = SnapReader { bytes, pos: 0 };
        if r.take(4)? != SNAP_MAGIC {
            return Err("sync snapshot: bad magic".to_string());
        }
        let version = u16::from_le_bytes(r.take(2)?.try_into().unwrap());
        if version != SNAP_VERSION {
            return Err(format!("sync snapshot: unsupported version {version}"));
        }
        let replication = r.flag()?;
        let ntasks = r.len32()?;
        let mut tasks = Vec::with_capacity(ntasks);
        for _ in 0..ntasks {
            let completed = r.flag()?;
            let ungranted = r.u32()?;
            let nobjs = r.len32()?;
            let mut objects = Vec::with_capacity(nobjs);
            for _ in 0..nobjs {
                objects.push(ObjectId(r.u32()?));
            }
            tasks.push(SnapTask {
                objects,
                ungranted,
                completed,
            });
        }
        let nqueues = r.len32()?;
        let mut queues = Vec::with_capacity(nqueues);
        for _ in 0..nqueues {
            let len = r.len32()?;
            let mut q = Vec::with_capacity(len);
            for _ in 0..len {
                let task = TaskId(r.u32()?);
                let mode = match r.byte()? {
                    0 => AccessMode::Read,
                    1 => AccessMode::Write,
                    2 => AccessMode::ReadWrite,
                    m => return Err(format!("sync snapshot: bad access mode {m}")),
                };
                let granted = r.flag()?;
                q.push((task, mode, granted));
            }
            queues.push(q);
        }
        if r.pos != bytes.len() {
            return Err("sync snapshot: trailing bytes".to_string());
        }
        Ok(SyncSnapshot {
            replication,
            tasks,
            queues,
        })
    }
}

struct SnapReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| "sync snapshot: truncated".to_string())?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn byte(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn flag(&mut self) -> Result<bool, String> {
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("sync snapshot: bad flag byte {b}")),
        }
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn len32(&mut self) -> Result<usize, String> {
        let n = self.u32()? as usize;
        // A length prefix can never promise more entries than bytes left;
        // rejecting early keeps hostile input from causing huge allocations.
        if n > self.bytes.len() - self.pos {
            return Err("sync snapshot: truncated".to_string());
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(n: u32) -> ObjectId {
        ObjectId(n)
    }

    fn spec(reads: &[u32], writes: &[u32]) -> AccessSpec {
        let mut s = AccessSpec::new();
        for &r in reads {
            s.rd(o(r));
        }
        for &w in writes {
            s.wr(o(w));
        }
        s
    }

    #[test]
    fn independent_tasks_enable_immediately() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[], &[0])));
        assert!(sync.add_task(TaskId(1), &spec(&[], &[1])));
    }

    #[test]
    fn writer_then_reader_serializes() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[], &[0])));
        assert!(!sync.add_task(TaskId(1), &spec(&[0], &[])));
        let mut enabled = Vec::new();
        sync.complete(TaskId(0), &mut enabled);
        assert_eq!(enabled, vec![TaskId(1)]);
        assert!(sync.is_enabled(TaskId(1)));
    }

    #[test]
    fn concurrent_readers_all_enabled() {
        let mut sync = Synchronizer::default();
        for i in 0..10 {
            assert!(sync.add_task(TaskId(i), &spec(&[0], &[])), "reader {i}");
        }
    }

    #[test]
    fn replication_off_serializes_readers() {
        let mut sync = Synchronizer::new(false);
        assert!(sync.add_task(TaskId(0), &spec(&[0], &[])));
        assert!(!sync.add_task(TaskId(1), &spec(&[0], &[])));
        let mut enabled = Vec::new();
        sync.complete(TaskId(0), &mut enabled);
        assert_eq!(enabled, vec![TaskId(1)]);
    }

    #[test]
    fn readers_block_writer_until_all_done() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[0], &[])));
        assert!(sync.add_task(TaskId(1), &spec(&[0], &[])));
        assert!(!sync.add_task(TaskId(2), &spec(&[], &[0])));
        let mut enabled = Vec::new();
        sync.complete(TaskId(1), &mut enabled); // out-of-order completion OK
        assert!(enabled.is_empty());
        sync.complete(TaskId(0), &mut enabled);
        assert_eq!(enabled, vec![TaskId(2)]);
    }

    #[test]
    fn reader_behind_writer_waits_but_later_reader_run_shares() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[], &[0]))); // writer
        assert!(!sync.add_task(TaskId(1), &spec(&[0], &[]))); // reader
        assert!(!sync.add_task(TaskId(2), &spec(&[0], &[]))); // reader
        assert!(!sync.add_task(TaskId(3), &spec(&[], &[0]))); // writer
        let mut enabled = Vec::new();
        sync.complete(TaskId(0), &mut enabled);
        // Both readers enable together; the trailing writer does not.
        assert_eq!(enabled, vec![TaskId(1), TaskId(2)]);
        enabled.clear();
        sync.complete(TaskId(1), &mut enabled);
        assert!(enabled.is_empty());
        sync.complete(TaskId(2), &mut enabled);
        assert_eq!(enabled, vec![TaskId(3)]);
    }

    #[test]
    fn multi_object_task_waits_for_all() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[], &[0])));
        assert!(sync.add_task(TaskId(1), &spec(&[], &[1])));
        // Task 2 reads both objects; blocked by both writers.
        assert!(!sync.add_task(TaskId(2), &spec(&[0, 1], &[])));
        let mut enabled = Vec::new();
        sync.complete(TaskId(0), &mut enabled);
        assert!(enabled.is_empty(), "still blocked on object 1");
        sync.complete(TaskId(1), &mut enabled);
        assert_eq!(enabled, vec![TaskId(2)]);
    }

    #[test]
    fn read_write_mode_is_exclusive() {
        let mut sync = Synchronizer::default();
        let mut s0 = AccessSpec::new();
        s0.rd_wr(o(0));
        assert!(sync.add_task(TaskId(0), &s0));
        assert!(!sync.add_task(TaskId(1), &spec(&[0], &[])));
        let mut s2 = AccessSpec::new();
        s2.rd_wr(o(0));
        assert!(!sync.add_task(TaskId(2), &s2));
        let mut enabled = Vec::new();
        sync.complete(TaskId(0), &mut enabled);
        assert_eq!(enabled, vec![TaskId(1)]);
        enabled.clear();
        sync.complete(TaskId(1), &mut enabled);
        assert_eq!(enabled, vec![TaskId(2)]);
    }

    #[test]
    fn empty_spec_enables_immediately() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &AccessSpec::new()));
        let mut enabled = Vec::new();
        sync.complete(TaskId(0), &mut enabled);
        assert!(sync.all_complete());
    }

    #[test]
    fn release_lets_successor_start_early() {
        // Pipelining: a writer releases object 0 mid-task; the waiting
        // reader enables while the writer is still running.
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[], &[0, 1])));
        assert!(!sync.add_task(TaskId(1), &spec(&[0], &[])));
        let mut enabled = Vec::new();
        sync.release(TaskId(0), o(0), &mut enabled);
        assert_eq!(
            enabled,
            vec![TaskId(1)],
            "reader enabled before writer completes"
        );
        assert!(!sync.all_complete());
        enabled.clear();
        sync.complete(TaskId(1), &mut enabled);
        sync.complete(TaskId(0), &mut enabled); // still holds object 1
        assert!(sync.all_complete());
    }

    #[test]
    fn release_of_read_unblocks_writer() {
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[0], &[1])));
        assert!(!sync.add_task(TaskId(1), &spec(&[], &[0])));
        let mut enabled = Vec::new();
        sync.release(TaskId(0), o(0), &mut enabled);
        assert_eq!(enabled, vec![TaskId(1)]);
    }

    #[test]
    #[should_panic(expected = "releasing undeclared")]
    fn double_release_panics() {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(0), &spec(&[0], &[]));
        let mut e = Vec::new();
        sync.release(TaskId(0), o(0), &mut e);
        sync.release(TaskId(0), o(0), &mut e);
    }

    #[test]
    fn complete_after_partial_release_cleans_rest() {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(0), &spec(&[0, 1, 2], &[]));
        sync.add_task(TaskId(1), &spec(&[], &[0]));
        sync.add_task(TaskId(2), &spec(&[], &[1]));
        let mut e = Vec::new();
        sync.release(TaskId(0), o(0), &mut e);
        assert_eq!(e, vec![TaskId(1)]);
        e.clear();
        sync.complete(TaskId(0), &mut e);
        assert_eq!(
            e,
            vec![TaskId(2)],
            "remaining entries released at completion"
        );
    }

    #[test]
    #[should_panic(expected = "serial program order")]
    fn out_of_order_registration_panics() {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(1), &AccessSpec::new());
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_complete_panics() {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(0), &AccessSpec::new());
        let mut e = Vec::new();
        sync.complete(TaskId(0), &mut e);
        sync.complete(TaskId(0), &mut e);
    }

    #[test]
    fn snapshot_round_trips_through_bytes() {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(0), &spec(&[], &[0]));
        sync.add_task(TaskId(1), &spec(&[0], &[1]));
        sync.add_task(TaskId(2), &spec(&[0, 1], &[]));
        let mut e = Vec::new();
        sync.complete(TaskId(0), &mut e);
        let snap = sync.snapshot();
        assert_eq!(snap.task_count(), 3);
        assert_eq!(snap.live_tasks(), 2);
        assert!(snap.completed(TaskId(0)));
        assert!(!snap.completed(TaskId(1)));
        assert!(!snap.completed(TaskId(99)), "unknown task is not committed");
        let bytes = snap.to_bytes();
        assert_eq!(bytes.len(), snap.encoded_len());
        let decoded = SyncSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, snap);
        // The restored synchronizer continues exactly like the original.
        let mut restored = Synchronizer::from_snapshot(&decoded);
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        sync.complete(TaskId(1), &mut ea);
        restored.complete(TaskId(1), &mut eb);
        assert_eq!(ea, eb);
        assert_eq!(ea, vec![TaskId(2)]);
    }

    #[test]
    fn snapshot_decode_rejects_corruption() {
        let mut sync = Synchronizer::default();
        sync.add_task(TaskId(0), &spec(&[0], &[1]));
        let bytes = sync.snapshot().to_bytes();
        assert!(SyncSnapshot::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(SyncSnapshot::from_bytes(b"XXXX").is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'Z';
        assert!(SyncSnapshot::from_bytes(&bad_magic).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(SyncSnapshot::from_bytes(&trailing).is_err());
        let mut bad_version = bytes;
        bad_version[4] = 0xFF;
        assert!(SyncSnapshot::from_bytes(&bad_version).is_err());
    }

    #[test]
    fn long_pipeline_executes_in_order() {
        // w(0) -> r(0)w(1) -> r(1)w(2) -> ... classic pipeline.
        let mut sync = Synchronizer::default();
        assert!(sync.add_task(TaskId(0), &spec(&[], &[0])));
        for i in 1..50u32 {
            assert!(!sync.add_task(TaskId(i), &spec(&[i - 1], &[i])));
        }
        let mut order = Vec::new();
        let mut ready = vec![TaskId(0)];
        while let Some(t) = ready.pop() {
            order.push(t);
            sync.complete(t, &mut ready);
        }
        assert_eq!(order, (0..50).map(TaskId).collect::<Vec<_>>());
        assert!(sync.all_complete());
    }
}
