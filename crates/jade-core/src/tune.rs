//! # Self-tuning feedback controller (DESIGN.md §19)
//!
//! Every backend reconstructs the paper's counters bit-for-bit from the
//! event layer; this module is the consumer that closes the loop from
//! *metrics* back to *policy*. A [`Controller`] turns deterministic
//! observations (batch shape, retired-version access width, measured
//! virtual checkpoint capture cost, plan-derived failure horizons) into
//! runtime knob settings:
//!
//! * the thread scheduler's **drain-batch threshold** (how many locally
//!   finished tasks a worker buffers before taking the synchronizer lock);
//! * the thread scheduler's **steal attempt budget** (how many victims a
//!   failed own-pop sweeps before giving up the round);
//! * the iPSC communicator's **adaptive-broadcast evidence margin** (extra
//!   evidence demanded on top of the §3.4.2 drop-rate break-even before an
//!   object flips into broadcast mode);
//! * the iPSC simulator's **checkpoint interval** (aim the next capture
//!   one measured-capture-cost guard ahead of the fault plan's pending
//!   fail-stop; stretch to the maximum when no failure source remains);
//! * the multi-tenant service's **credit cap** (how many consecutive picks
//!   one tenant may take while other tenants hold ready work).
//!
//! **Determinism argument.** Every law below is a pure integer function of
//! inputs that are themselves interleaving-independent: the batch shape is
//! fixed when `finish` is called, version-width counters are functions of
//! the trace and the seeded fault plan, capture costs and horizons are
//! *virtual* (simulated picoseconds), and the service's ready-tenant count
//! is read under the core lock at pick time. No wall-clock reading ever
//! enters a decision, so controller-on runs replay bit-identically and the
//! existing determinism/fault/service batteries extend over them
//! unchanged. The steal budget deserves one extra word: it changes *which
//! worker* executes a task, never *whether* it executes — and the worker
//! loop falls back to an exhaustive sweep before parking, so a bounded
//! budget cannot park past existing work.
//!
//! Each decision is recorded in a [`TuneLog`]; [`TuneLog::check_ranges`]
//! asserts that every recorded value stayed inside its documented valid
//! range (the proptest battery runs it over random DAGs × backends ×
//! fault plans).

/// Smallest drain-batch threshold ([`Knob::DrainThreshold`] lower bound):
/// flush every completion.
pub const DRAIN_MIN: usize = 1;
/// Largest drain-batch threshold the controller will pick. Past this the
/// lock is already amortized to noise and buffered completions only delay
/// successor enabling.
pub const DRAIN_MAX: usize = 64;
/// Smallest steal budget: always probe at least one victim.
pub const STEAL_BUDGET_MIN: usize = 1;
/// Largest extra evidence the controller will stack on top of the
/// drop-rate break-even before an object may flip into broadcast mode.
pub const EVIDENCE_MARGIN_MAX: u32 = 4;
/// Shortest checkpoint interval the controller will schedule: 1 simulated
/// microsecond (1e6 ps). Anything shorter and capture cost dominates even
/// on the paper's smallest configurations.
pub const CKPT_MIN_PS: u64 = 1_000_000;
/// Longest checkpoint interval the controller will schedule: one simulated
/// hour, matching `dsim`'s `MAX_LATENCY` validation bound.
pub const CKPT_MAX_PS: u64 = 3_600_000_000_000_000;
/// Largest consecutive-pick run one tenant may be granted while another
/// tenant holds ready work ([`Knob::CreditCap`] upper bound).
pub const CREDIT_CAP_MAX: u32 = 8;

/// Which runtime knob a [`Decision`] set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Knob {
    /// Thread-scheduler drain-buffer flush threshold (tasks).
    DrainThreshold,
    /// Thread-scheduler steal sweep budget (victims per failed own-pop).
    StealBudget,
    /// Extra adaptive-broadcast evidence demanded beyond the break-even.
    EvidenceMargin,
    /// iPSC checkpoint re-arm interval (simulated picoseconds).
    CheckpointIntervalPs,
    /// Service consecutive-pick cap while other tenants hold ready work.
    CreditCap,
}

impl Knob {
    /// The documented valid range for this knob, inclusive.
    pub fn range(self) -> (u64, u64) {
        match self {
            Knob::DrainThreshold => (DRAIN_MIN as u64, DRAIN_MAX as u64),
            // The budget is additionally capped at `workers - 1` by
            // construction (it indexes the victim ring).
            Knob::StealBudget => (STEAL_BUDGET_MIN as u64, u16::MAX as u64),
            Knob::EvidenceMargin => (0, EVIDENCE_MARGIN_MAX as u64),
            Knob::CheckpointIntervalPs => (CKPT_MIN_PS, CKPT_MAX_PS),
            Knob::CreditCap => (1, CREDIT_CAP_MAX as u64),
        }
    }
}

/// One controller decision: a knob and the value it was set to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    pub knob: Knob,
    pub value: u64,
}

/// The ordered log of every decision a [`Controller`] made during a run.
/// Deterministic runs produce identical logs; the proptest battery asserts
/// both that and [`check_ranges`](TuneLog::check_ranges).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TuneLog {
    pub decisions: Vec<Decision>,
}

impl TuneLog {
    /// Record a decision.
    pub fn record(&mut self, knob: Knob, value: u64) {
        self.decisions.push(Decision { knob, value });
    }

    /// Record a decision only if it differs from the last recorded value
    /// for the same knob (keeps per-event re-evaluation logs compact).
    pub fn record_change(&mut self, knob: Knob, value: u64) -> bool {
        let last = self
            .decisions
            .iter()
            .rev()
            .find(|d| d.knob == knob)
            .map(|d| d.value);
        if last == Some(value) {
            return false;
        }
        self.record(knob, value);
        true
    }

    /// Check every recorded decision against its knob's documented range.
    pub fn check_ranges(&self) -> Result<(), String> {
        for d in &self.decisions {
            let (lo, hi) = d.knob.range();
            if d.value < lo || d.value > hi {
                return Err(format!(
                    "{:?} = {} outside documented range [{lo}, {hi}]",
                    d.knob, d.value
                ));
            }
        }
        Ok(())
    }

    /// Absorb another log's decisions (runs that tune several layers
    /// merge their logs for a single range check).
    pub fn absorb(&mut self, other: &TuneLog) {
        self.decisions.extend(other.decisions.iter().copied());
    }
}

/// Deterministic description of a batch handed to the thread scheduler:
/// fixed the moment `finish` is called, before any worker runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchShape {
    /// Tasks in the batch.
    pub tasks: usize,
    /// Worker threads the batch runs on.
    pub workers: usize,
    /// Tasks enabled by dependence analysis before execution starts — the
    /// batch's initial parallelism width.
    pub enabled0: usize,
}

/// The feedback controller: pure decision functions over deterministic
/// observations, logging every choice. One controller instance per tuned
/// runtime/simulation; the log survives for range checks and replay
/// comparison.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Controller {
    pub log: TuneLog,
}

impl Controller {
    pub fn new() -> Controller {
        Controller::default()
    }

    /// Drain-batch threshold for a batch of the given shape.
    ///
    /// Law: buffer roughly a quarter of a worker's fair share of the
    /// batch, clamped to `[DRAIN_MIN, DRAIN_MAX]`. Wide overhead-dominated
    /// batches (many tasks per worker) get deep buffers — the synchronizer
    /// lock is the bottleneck and amortizing it is nearly free because a
    /// worker that runs dry flushes anyway. Narrow batches get shallow
    /// buffers so enabling successors is not delayed behind buffered
    /// completions other workers could be running.
    pub fn drain_threshold(&mut self, shape: &BatchShape) -> usize {
        let per_worker = shape.tasks / shape.workers.max(1);
        let d = (per_worker / 4).clamp(DRAIN_MIN, DRAIN_MAX);
        self.log.record(Knob::DrainThreshold, d as u64);
        d
    }

    /// Steal sweep budget: victims probed after a failed own-pop before
    /// the round gives up (the pre-park sweep stays exhaustive — see the
    /// module docs' liveness note).
    ///
    /// Law: the ceiling of log2(workers), clamped to
    /// `[STEAL_BUDGET_MIN, workers - 1]`. When the initial parallelism
    /// already covers every worker (`enabled0 >= workers`), work is dense
    /// and the first random victim almost always hits, so probing the full
    /// ring on every miss only adds cache traffic; when work is scarce a
    /// short probe fails fast into the exhaustive pre-park sweep.
    pub fn steal_budget(&mut self, shape: &BatchShape) -> usize {
        let others = shape.workers.saturating_sub(1).max(STEAL_BUDGET_MIN);
        let log2 = (usize::BITS - shape.workers.max(1).leading_zeros()) as usize;
        let b = log2.clamp(STEAL_BUDGET_MIN, others);
        self.log.record(Knob::StealBudget, b as u64);
        b
    }

    /// Extra adaptive-broadcast evidence demanded beyond the §3.4.2
    /// drop-rate break-even, from the live width statistics of retired
    /// versions (`wide` versions were accessed by a strict majority of
    /// live non-owner processors; `narrow` were not).
    ///
    /// Law: when wide versions dominate, broadcasting early is the win —
    /// no margin. The rarer wide versions are, the more evidence a flip
    /// must accumulate, up to [`EVIDENCE_MARGIN_MAX`], because a broadcast
    /// regime entered on a burst pays for every subsequent narrow version.
    /// Two guards keep the ladder honest: below 16 retired versions the
    /// sample is noise, so the paper's break-even stands alone; and the
    /// rung boundaries (1, 1/16, 0) sit well away from the width ratios
    /// real access patterns settle at, so a converged cumulative ratio
    /// does not oscillate across a rung for the rest of the run — a
    /// mid-run margin *raise* is worse than either steady choice, because
    /// it strands objects mid-accumulation in fetch mode.
    pub fn evidence_margin(&mut self, wide: u64, narrow: u64) -> u32 {
        let m = if wide + narrow < 16 || wide >= narrow {
            0
        } else if wide * 16 >= narrow {
            1
        } else if wide > 0 {
            2
        } else {
            EVIDENCE_MARGIN_MAX
        };
        self.log.record_change(Knob::EvidenceMargin, m as u64);
        m
    }

    /// Checkpoint re-arm interval from the *measured* virtual capture cost
    /// of the checkpoint just taken and the **remaining** failure horizon
    /// the active fault plan implies — picoseconds until the next pending
    /// fail-stop, `None` = no remaining failure source.
    ///
    /// Law: a fail-stop whose instant the plan fixes deserves a capture
    /// *aimed at it*, not a cadence averaged over it — Young's
    /// `sqrt(2·C·M)` is the answer to a stochastic MTBF question this
    /// fault model does not ask. The next tick lands one guard interval
    /// (`max(C, CKPT_MIN_PS)`) before the failure, so the snapshot it
    /// takes bounds the re-execution loss by that guard; the result is
    /// floored at the guard so a near-horizon tick chain cannot degenerate
    /// into back-to-back captures. The guard uses the *measured* cost
    /// because capture traffic itself perturbs the run (it rides the same
    /// lossy links as fetches), so every capture avoided is won twice.
    /// With no failure source left the interval pegs to the max: every
    /// further capture is pure overhead.
    pub fn checkpoint_interval_ps(&mut self, capture_cost_ps: u64, horizon_ps: Option<u64>) -> u64 {
        let iv = match horizon_ps {
            None => CKPT_MAX_PS,
            Some(m) => {
                let guard = capture_cost_ps.max(CKPT_MIN_PS);
                m.saturating_sub(guard)
                    .max(guard)
                    .clamp(CKPT_MIN_PS, CKPT_MAX_PS)
            }
        };
        self.log.record_change(Knob::CheckpointIntervalPs, iv);
        iv
    }

    /// Consecutive-pick cap for the service's weighted round-robin while
    /// `ready_tenants` distinct tenants hold ready work.
    ///
    /// Law: divide a fixed [`CREDIT_CAP_MAX`] quantum budget among the
    /// tenants currently contending, floor 1. A lone tenant keeps its full
    /// weight credit (nothing to starve); the more tenants wait, the
    /// smaller the run one tenant may monopolize — unserved credit is
    /// carried, so long-run weight ratios are preserved.
    pub fn credit_cap(&mut self, ready_tenants: usize) -> u32 {
        let cap = (CREDIT_CAP_MAX / (ready_tenants.max(1) as u32)).max(1);
        self.log.record_change(Knob::CreditCap, cap as u64);
        cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_threshold_scales_with_per_worker_share() {
        let mut c = Controller::new();
        // Overhead-dominated wide batch: deep buffer.
        assert_eq!(
            c.drain_threshold(&BatchShape {
                tasks: 4096,
                workers: 1,
                enabled0: 4096
            }),
            DRAIN_MAX
        );
        // Narrow batch: flush promptly.
        assert_eq!(
            c.drain_threshold(&BatchShape {
                tasks: 8,
                workers: 4,
                enabled0: 1
            }),
            DRAIN_MIN
        );
        assert!(c.log.check_ranges().is_ok());
    }

    #[test]
    fn steal_budget_is_logarithmic_and_capped() {
        let mut c = Controller::new();
        assert_eq!(
            c.steal_budget(&BatchShape {
                tasks: 100,
                workers: 2,
                enabled0: 10
            }),
            1
        );
        let b16 = c.steal_budget(&BatchShape {
            tasks: 100,
            workers: 16,
            enabled0: 10,
        });
        assert!((2..=15).contains(&b16), "budget {b16}");
        // Single worker: degenerate, still in range.
        assert_eq!(
            c.steal_budget(&BatchShape {
                tasks: 100,
                workers: 1,
                enabled0: 10
            }),
            1
        );
        assert!(c.log.check_ranges().is_ok());
    }

    #[test]
    fn evidence_margin_tracks_width_statistics() {
        let mut c = Controller::new();
        // Small samples never raise the margin, whatever their ratio.
        assert_eq!(c.evidence_margin(0, 10), 0);
        assert_eq!(c.evidence_margin(20, 10), 0);
        assert_eq!(c.evidence_margin(4, 60), 1);
        assert_eq!(c.evidence_margin(1, 60), 2);
        assert_eq!(c.evidence_margin(0, 100), EVIDENCE_MARGIN_MAX);
        assert!(c.log.check_ranges().is_ok());
    }

    #[test]
    fn checkpoint_interval_aims_at_the_failure_horizon() {
        let mut c = Controller::new();
        // Far horizon: land one capture-cost guard before the failure.
        let iv = c.checkpoint_interval_ps(1_000_000_000, Some(2_000_000_000_000));
        assert_eq!(iv, 2_000_000_000_000 - 1_000_000_000);
        // No failure source: peg to max.
        assert_eq!(c.checkpoint_interval_ps(1_000_000_000, None), CKPT_MAX_PS);
        // Horizon inside the guard: hold at the guard, never back-to-back
        // faster than a capture takes.
        assert_eq!(
            c.checkpoint_interval_ps(5_000_000, Some(2_000_000)),
            5_000_000
        );
        // Tiny inputs clamp up to the floor.
        assert_eq!(c.checkpoint_interval_ps(1, Some(1)), CKPT_MIN_PS);
        assert!(c.log.check_ranges().is_ok());
    }

    #[test]
    fn credit_cap_shrinks_with_contention() {
        let mut c = Controller::new();
        assert_eq!(c.credit_cap(1), CREDIT_CAP_MAX);
        assert_eq!(c.credit_cap(2), 4);
        assert_eq!(c.credit_cap(100), 1);
        assert!(c.log.check_ranges().is_ok());
    }

    #[test]
    fn log_records_changes_only_when_asked() {
        let mut log = TuneLog::default();
        assert!(log.record_change(Knob::EvidenceMargin, 2));
        assert!(!log.record_change(Knob::EvidenceMargin, 2));
        assert!(log.record_change(Knob::EvidenceMargin, 3));
        assert_eq!(log.decisions.len(), 2);
    }

    #[test]
    fn out_of_range_decision_is_reported_with_the_value() {
        let mut log = TuneLog::default();
        log.record(Knob::DrainThreshold, 10_000);
        let err = log.check_ranges().unwrap_err();
        assert!(err.contains("10000"), "{err}");
    }
}
