//! The `withonly!` macro: Jade's task construct, in Jade's shape.
//!
//! C-Jade:
//!
//! ```c
//! withonly { rd(positions); wr(contrib); } do (i) { ... }
//! ```
//!
//! Rust:
//!
//! ```
//! use jade_core::{withonly, JadeRuntime, TraceRuntime};
//!
//! let mut rt = TraceRuntime::new();
//! let positions = rt.create("positions", 8, vec![1.0f64]);
//! let contrib = rt.create("contrib", 8, 0.0f64);
//! withonly!(rt, "interactions", { rd(positions), wr(contrib) }, move |ctx| {
//!     *ctx.wr(contrib) = ctx.rd(positions)[0] * 2.0;
//! });
//! rt.finish();
//! assert_eq!(*rt.store().read(contrib), 2.0);
//! ```

/// Submit a task from an access specification section and a body.
///
/// `$stmt` is any [`TaskBuilder`](crate::TaskBuilder) declaration method:
/// `rd`, `wr`, `rd_wr`. Declaration order is preserved (the first object is
/// the locality object). The expression evaluates to the new task's
/// [`TaskId`](crate::TaskId).
#[macro_export]
macro_rules! withonly {
    ($rt:expr, $label:expr, { $($stmt:ident($obj:expr)),* $(,)? }, $body:expr) => {{
        #[allow(unused_mut)]
        let mut __tb = $crate::TaskBuilder::new($label);
        $( __tb = __tb.$stmt($obj); )*
        $rt.submit(__tb.body($body))
    }};
    // With explicit placement: `withonly!(rt, "label", on proc, { ... }, body)`.
    ($rt:expr, $label:expr, on $proc:expr, { $($stmt:ident($obj:expr)),* $(,)? }, $body:expr) => {{
        #[allow(unused_mut)]
        let mut __tb = $crate::TaskBuilder::new($label).place($proc);
        $( __tb = __tb.$stmt($obj); )*
        $rt.submit(__tb.body($body))
    }};
}

#[cfg(test)]
mod tests {
    use crate::{JadeRuntime, TraceRuntime};

    #[test]
    fn basic_withonly() {
        let mut rt = TraceRuntime::new();
        let a = rt.create("a", 8, 10u64);
        let b = rt.create("b", 8, 0u64);
        let id = withonly!(rt, "copy", { rd(a), wr(b) }, move |ctx| {
            *ctx.wr(b) = *ctx.rd(a) + 5;
        });
        rt.finish();
        assert_eq!(id.index(), 0);
        assert_eq!(*rt.store().read(b), 15);
        let (_, trace) = rt.into_parts();
        assert_eq!(trace.tasks[0].spec.locality_object(), Some(a.id()));
    }

    #[test]
    fn withonly_with_placement() {
        let mut rt = TraceRuntime::new();
        let x = rt.create("x", 8, 0u64);
        withonly!(rt, "placed", on 3, { wr(x) }, move |ctx| {
            *ctx.wr(x) = 1;
        });
        rt.finish();
        let (_, trace) = rt.into_parts();
        assert_eq!(trace.tasks[0].placement, Some(3));
    }

    #[test]
    fn empty_spec_allowed() {
        let mut rt = TraceRuntime::new();
        withonly!(rt, "noop", {}, |_| {});
        rt.finish();
        let (_, trace) = rt.into_parts();
        assert!(trace.tasks[0].spec.is_empty());
    }
}
