//! Identifier newtypes for the Jade object and task spaces.

use std::fmt;
use std::marker::PhantomData;

/// Identifies a shared object in the Jade object store.
///
/// Jade programmers aggregate memory into *shared objects* by allocating at
/// that granularity; the implementation performs all dependence analysis and
/// communication at object granularity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

/// Identifies a task. Task ids are assigned in serial program (creation)
/// order, which is exactly the order the synchronizer uses to resolve
/// dynamic data dependences.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

/// A processor index. `jade-core` is machine-independent; the machine
/// runtimes interpret this against their own topology.
pub type ProcId = usize;

/// The main processor: the one executing the main thread of control, which
/// in all of the paper's applications creates every task.
pub const MAIN_PROC: ProcId = 0;

/// The paper's three locality optimization levels (Section 5.2). Shared by
/// both machine runtimes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LocalityMode {
    /// First-come first-served distribution of enabled tasks to idle
    /// processors (single shared queue on DASH, single queue at the main
    /// processor on the iPSC/860).
    NoLocality,
    /// The implementation's locality heuristic: execute each task on the
    /// owner of its locality object when the load balance allows it.
    /// Explicit placements in the trace are ignored.
    Locality,
    /// Like `Locality`, but explicit programmer placements are honored.
    TaskPlacement,
}

impl LocalityMode {
    /// Does the runtime use locality-aware queues at this level?
    pub fn uses_locality(self) -> bool {
        !matches!(self, LocalityMode::NoLocality)
    }

    /// Are explicit placements honored at this level?
    pub fn honors_placement(self) -> bool {
        matches!(self, LocalityMode::TaskPlacement)
    }

    /// All three levels, in the paper's order.
    pub const ALL: [LocalityMode; 3] = [
        LocalityMode::TaskPlacement,
        LocalityMode::Locality,
        LocalityMode::NoLocality,
    ];
}

impl std::fmt::Display for LocalityMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LocalityMode::NoLocality => "No Locality",
            LocalityMode::Locality => "Locality",
            LocalityMode::TaskPlacement => "Task Placement",
        };
        f.write_str(s)
    }
}

/// A typed handle to a shared object of payload type `T`.
///
/// Handles are `Copy` tokens; the data itself lives in the
/// [`Store`](crate::Store). The phantom type parameter makes `ctx.rd(h)` /
/// `ctx.wr(h)` statically typed even though the store is heterogeneous.
pub struct Handle<T> {
    pub(crate) id: ObjectId,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T> Handle<T> {
    /// The untyped object id this handle refers to.
    #[inline]
    pub fn id(self) -> ObjectId {
        self.id
    }

    /// Construct a handle from a raw id. The caller asserts that the object
    /// was created with payload type `T`; a mismatch is caught (with a
    /// panic) at first access, never silently.
    pub fn from_id(id: ObjectId) -> Handle<T> {
        Handle {
            id,
            _marker: PhantomData,
        }
    }
}

// Manual impls: `derive` would bound them on `T`, but handles are ids only.
impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Handle<T> {}
impl<T> PartialEq for Handle<T> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl<T> Eq for Handle<T> {}

impl<T> From<Handle<T>> for ObjectId {
    fn from(h: Handle<T>) -> ObjectId {
        h.id
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

impl<T> fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "handle#{}", self.id.0)
    }
}

impl ObjectId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TaskId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_is_copy_and_eq() {
        let h: Handle<Vec<f64>> = Handle::from_id(ObjectId(3));
        let h2 = h;
        assert_eq!(h, h2);
        assert_eq!(h.id(), ObjectId(3));
        let id: ObjectId = h.into();
        assert_eq!(id, ObjectId(3));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", ObjectId(7)), "obj#7");
        assert_eq!(format!("{:?}", TaskId(9)), "task#9");
    }
}
