//! Access specifications: the data access information at the heart of Jade.
//!
//! A task's access specification is built by executing its *access
//! specification section* — in this Rust incarnation, the closure passed to
//! [`crate::runtime::JadeRuntime`] task construction, or the
//! [`crate::task::TaskBuilder`] `rd`/`wr` calls. Each statement declares how
//! the task will access one shared object; the union of executed statements
//! is the specification. Declaration **order matters**: the first declared
//! object is the task's *locality object* (paper Sections 3.2.1 and 3.4.3).

use crate::ids::ObjectId;

/// How a task accesses one shared object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessMode {
    /// `rd(o)`: the task may read `o`.
    Read,
    /// `wr(o)`: the task may write `o`.
    Write,
    /// Both `rd(o)` and `wr(o)` were declared.
    ReadWrite,
}

impl AccessMode {
    #[inline]
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::Read | AccessMode::ReadWrite)
    }

    #[inline]
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::Write | AccessMode::ReadWrite)
    }

    /// Combine two declarations on the same object.
    pub fn merge(self, other: AccessMode) -> AccessMode {
        if self == other {
            self
        } else {
            AccessMode::ReadWrite
        }
    }

    /// Two accesses to the same object conflict unless both are pure reads.
    #[inline]
    pub fn conflicts(self, other: AccessMode) -> bool {
        self.writes() || other.writes()
    }
}

/// One declaration: (object, mode).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessDecl {
    pub object: ObjectId,
    pub mode: AccessMode,
}

/// An ordered access specification.
///
/// Kept as a small vector in declaration order; duplicate declarations on
/// the same object are merged in place (the first declaration's position is
/// preserved, so the locality object is stable).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessSpec {
    decls: Vec<AccessDecl>,
}

impl AccessSpec {
    pub fn new() -> AccessSpec {
        AccessSpec { decls: Vec::new() }
    }

    /// Declare a read of `object`.
    pub fn rd(&mut self, object: impl Into<ObjectId>) -> &mut Self {
        self.declare(object.into(), AccessMode::Read)
    }

    /// Declare a write of `object`.
    pub fn wr(&mut self, object: impl Into<ObjectId>) -> &mut Self {
        self.declare(object.into(), AccessMode::Write)
    }

    /// Declare a combined read-write access of `object`.
    pub fn rd_wr(&mut self, object: impl Into<ObjectId>) -> &mut Self {
        self.declare(object.into(), AccessMode::ReadWrite)
    }

    fn declare(&mut self, object: ObjectId, mode: AccessMode) -> &mut Self {
        if let Some(d) = self.decls.iter_mut().find(|d| d.object == object) {
            d.mode = d.mode.merge(mode);
        } else {
            self.decls.push(AccessDecl { object, mode });
        }
        self
    }

    /// All declarations, in declaration order.
    #[inline]
    pub fn decls(&self) -> &[AccessDecl] {
        &self.decls
    }

    pub fn len(&self) -> usize {
        self.decls.len()
    }

    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// The declared mode for `object`, if any.
    pub fn mode_of(&self, object: ObjectId) -> Option<AccessMode> {
        self.decls
            .iter()
            .find(|d| d.object == object)
            .map(|d| d.mode)
    }

    /// The task's locality object: the **first** declared object. The
    /// schedulers on both machines attempt to run the task on the processor
    /// that owns this object.
    pub fn locality_object(&self) -> Option<ObjectId> {
        self.decls.first().map(|d| d.object)
    }

    /// Objects the task reads (including read-write).
    pub fn read_objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.decls
            .iter()
            .filter(|d| d.mode.reads())
            .map(|d| d.object)
    }

    /// Objects the task writes (including read-write).
    pub fn written_objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.decls
            .iter()
            .filter(|d| d.mode.writes())
            .map(|d| d.object)
    }

    /// True if this spec has a dynamic data dependence with `other`: some
    /// object is accessed by both, and at least one side writes it.
    pub fn conflicts_with(&self, other: &AccessSpec) -> bool {
        self.decls
            .iter()
            .any(|a| other.mode_of(a.object).is_some_and(|m| a.mode.conflicts(m)))
    }
}

impl FromIterator<AccessDecl> for AccessSpec {
    fn from_iter<I: IntoIterator<Item = AccessDecl>>(iter: I) -> AccessSpec {
        let mut s = AccessSpec::new();
        for d in iter {
            s.declare(d.object, d.mode);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(n: u32) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn order_preserved_and_locality_first() {
        let mut s = AccessSpec::new();
        s.rd(o(5)).wr(o(2)).rd(o(9));
        assert_eq!(s.locality_object(), Some(o(5)));
        assert_eq!(s.len(), 3);
        let objs: Vec<_> = s.decls().iter().map(|d| d.object).collect();
        assert_eq!(objs, vec![o(5), o(2), o(9)]);
    }

    #[test]
    fn duplicate_declarations_merge() {
        let mut s = AccessSpec::new();
        s.rd(o(1)).wr(o(1));
        assert_eq!(s.len(), 1);
        assert_eq!(s.mode_of(o(1)), Some(AccessMode::ReadWrite));
        // Position of the first declaration is kept.
        let mut s2 = AccessSpec::new();
        s2.rd(o(3)).rd(o(1)).wr(o(3));
        assert_eq!(s2.locality_object(), Some(o(3)));
    }

    #[test]
    fn read_write_iterators() {
        let mut s = AccessSpec::new();
        s.rd(o(1)).wr(o(2)).rd_wr(o(3));
        assert_eq!(s.read_objects().collect::<Vec<_>>(), vec![o(1), o(3)]);
        assert_eq!(s.written_objects().collect::<Vec<_>>(), vec![o(2), o(3)]);
    }

    #[test]
    fn conflict_rules() {
        assert!(!AccessMode::Read.conflicts(AccessMode::Read));
        assert!(AccessMode::Read.conflicts(AccessMode::Write));
        assert!(AccessMode::Write.conflicts(AccessMode::Write));

        let mut readers = AccessSpec::new();
        readers.rd(o(1)).rd(o(2));
        let mut readers2 = AccessSpec::new();
        readers2.rd(o(2));
        assert!(!readers.conflicts_with(&readers2));

        let mut writer = AccessSpec::new();
        writer.wr(o(2));
        assert!(readers.conflicts_with(&writer));
        assert!(writer.conflicts_with(&readers));

        let mut disjoint = AccessSpec::new();
        disjoint.wr(o(7));
        assert!(!readers.conflicts_with(&disjoint));
    }

    #[test]
    fn empty_spec() {
        let s = AccessSpec::new();
        assert!(s.is_empty());
        assert_eq!(s.locality_object(), None);
        assert!(!s.conflicts_with(&s.clone()));
    }

    #[test]
    fn from_iter_merges() {
        let s: AccessSpec = [
            AccessDecl {
                object: o(1),
                mode: AccessMode::Read,
            },
            AccessDecl {
                object: o(1),
                mode: AccessMode::Write,
            },
            AccessDecl {
                object: o(2),
                mode: AccessMode::Read,
            },
        ]
        .into_iter()
        .collect();
        assert_eq!(s.len(), 2);
        assert_eq!(s.mode_of(o(1)), Some(AccessMode::ReadWrite));
    }
}
