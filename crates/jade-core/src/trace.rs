//! Program traces: the machine-independent record of a Jade execution.
//!
//! Jade programs are deterministic: the task DAG (creation order, access
//! specifications, per-task work) does not depend on which machine runs the
//! program — only the timing does. The [`TraceRuntime`] exploits this. It
//! executes the program **serially** (which is also how the paper obtains
//! its `stripped` baseline), producing both the program's real numeric
//! output and a [`Trace`]. The machine runtimes (`jade-dash`, `jade-ipsc`)
//! then replay the trace's scheduling and communication under their cost
//! models.

use crate::access::AccessSpec;
use crate::ids::{ObjectId, ProcId, TaskId};
use crate::runtime::JadeRuntime;
use crate::store::Store;
use crate::task::{TaskCtx, TaskDef};

/// Everything a machine simulator needs to know about one task.
#[derive(Clone, Debug)]
pub struct TaskRecord {
    pub id: TaskId,
    /// Diagnostic label from the task builder.
    pub label: String,
    /// Ordered access specification; first declaration = locality object.
    pub spec: AccessSpec,
    /// Abstract operations charged by the body (`TaskCtx::charge`).
    pub work: f64,
    /// Explicit placement requested by the program (Task-Placement level).
    pub placement: Option<ProcId>,
    /// Main-thread serial-phase code (always runs on the main processor).
    pub serial_phase: bool,
    /// Application phase index at creation time.
    pub phase: u32,
}

/// Metadata for one shared object.
#[derive(Clone, Debug)]
pub struct ObjectRecord {
    pub id: ObjectId,
    pub name: String,
    /// Communication size in bytes (final size; objects that grow during
    /// execution are charged at their final size, a documented
    /// simplification).
    pub size_bytes: usize,
    /// Cache-hierarchy transfer size (None = `size_bytes`); see
    /// `Store::set_cache_bytes`.
    pub cache_bytes: Option<usize>,
    /// Memory-module home assigned by the program (`None` = main processor).
    pub home: Option<ProcId>,
}

/// A complete machine-independent program trace.
#[derive(Clone, Debug)]
pub struct Trace {
    pub objects: Vec<ObjectRecord>,
    /// Tasks in serial program (creation) order.
    pub tasks: Vec<TaskRecord>,
    /// Number of phases the program declared (`JadeRuntime::begin_phase`).
    pub phases: u32,
}

impl Trace {
    /// Total charged work over all tasks, in abstract operations.
    pub fn total_work(&self) -> f64 {
        self.tasks.iter().map(|t| t.work).sum()
    }

    /// Total charged work over non-serial-phase (parallel) tasks.
    pub fn parallel_work(&self) -> f64 {
        self.tasks
            .iter()
            .filter(|t| !t.serial_phase)
            .map(|t| t.work)
            .sum()
    }

    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    pub fn object_size(&self, o: ObjectId) -> usize {
        self.objects[o.index()].size_bytes
    }

    /// Bytes a cache-coherent machine moves when the object is accessed.
    pub fn object_cache_bytes(&self, o: ObjectId) -> usize {
        let ob = &self.objects[o.index()];
        ob.cache_bytes.unwrap_or(ob.size_bytes)
    }

    pub fn object_home(&self, o: ObjectId) -> ProcId {
        self.objects[o.index()]
            .home
            .unwrap_or(crate::ids::MAIN_PROC)
    }

    /// Internal consistency checks; used by tests and debug runs.
    ///
    /// Verifies that access specs reference allocated objects, ids are
    /// dense and ordered, and work/size values are sane. Returns a list of
    /// violations (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (i, ob) in self.objects.iter().enumerate() {
            if ob.id.index() != i {
                problems.push(format!("object record {i} has id {:?}", ob.id));
            }
        }
        for (i, t) in self.tasks.iter().enumerate() {
            if t.id.index() != i {
                problems.push(format!("task record {i} has id {:?}", t.id));
            }
            if !t.work.is_finite() || t.work < 0.0 {
                problems.push(format!("task {i} has bad work {}", t.work));
            }
            if t.phase >= self.phases.max(1) {
                problems.push(format!("task {i} has phase {} of {}", t.phase, self.phases));
            }
            for d in t.spec.decls() {
                if d.object.index() >= self.objects.len() {
                    problems.push(format!("task {i} references unallocated {:?}", d.object));
                }
            }
        }
        problems
    }
}

/// Convenience constructor for traces built directly from metadata (no task
/// bodies). Used heavily by simulator unit tests, property tests, and
/// synthetic workload experiments.
#[derive(Default)]
pub struct TraceBuilder {
    trace: Trace,
}

impl TraceBuilder {
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// Add an object; returns its id.
    pub fn object(&mut self, name: &str, size_bytes: usize, home: Option<ProcId>) -> ObjectId {
        let id = ObjectId(self.trace.objects.len() as u32);
        self.trace.objects.push(ObjectRecord {
            id,
            name: name.to_string(),
            size_bytes,
            cache_bytes: None,
            home,
        });
        id
    }

    /// Add a task with the given spec and work; returns its id.
    pub fn task(&mut self, spec: AccessSpec, work: f64) -> TaskId {
        self.task_full(spec, work, None, false)
    }

    /// Add a task with full control over placement and serial-phase flag.
    pub fn task_full(
        &mut self,
        spec: AccessSpec,
        work: f64,
        placement: Option<ProcId>,
        serial_phase: bool,
    ) -> TaskId {
        let id = TaskId(self.trace.tasks.len() as u32);
        self.trace.tasks.push(TaskRecord {
            id,
            label: format!("t{}", id.0),
            spec,
            work,
            placement,
            serial_phase,
            phase: self.trace.phases - 1,
        });
        id
    }

    /// Start a new phase.
    pub fn next_phase(&mut self) {
        self.trace.phases += 1;
    }

    pub fn build(self) -> Trace {
        debug_assert!(
            self.trace.validate().is_empty(),
            "{:?}",
            self.trace.validate()
        );
        self.trace
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace {
            objects: Vec::new(),
            tasks: Vec::new(),
            phases: 1,
        }
    }
}

/// The trace-recording (and serially-executing) runtime.
///
/// `submit` executes the task body immediately — serial execution trivially
/// satisfies every data dependence — while recording the task's metadata.
/// After [`JadeRuntime::finish`], [`TraceRuntime::into_parts`] yields the
/// final [`Store`] (the program's actual output) and the [`Trace`].
pub struct TraceRuntime {
    store: Store,
    tasks: Vec<TaskRecord>,
    phase: u32,
    phases: u32,
}

impl Default for TraceRuntime {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRuntime {
    pub fn new() -> TraceRuntime {
        TraceRuntime {
            store: Store::new(),
            tasks: Vec::new(),
            phase: 0,
            phases: 1,
        }
    }

    /// Finish and decompose into the final store and the recorded trace.
    pub fn into_parts(self) -> (Store, Trace) {
        let objects = self
            .store
            .object_meta()
            .map(|(id, name, size, cache, home)| ObjectRecord {
                id,
                name: name.to_string(),
                size_bytes: size,
                cache_bytes: cache,
                home,
            })
            .collect();
        let trace = Trace {
            objects,
            tasks: self.tasks,
            phases: self.phases,
        };
        (self.store, trace)
    }
}

impl JadeRuntime for TraceRuntime {
    fn store(&self) -> &Store {
        &self.store
    }

    fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    fn submit(&mut self, def: TaskDef) -> TaskId {
        let id = TaskId(u32::try_from(self.tasks.len()).expect("too many tasks"));
        let work = {
            let ctx = TaskCtx::new(&self.store, id, def.label, &def.spec);
            (def.body)(&ctx);
            ctx.charged()
        };
        self.tasks.push(TaskRecord {
            id,
            label: def.label.to_string(),
            spec: def.spec,
            work,
            placement: def.placement,
            serial_phase: def.serial_phase,
            phase: self.phase,
        });
        id
    }

    fn begin_phase(&mut self) {
        // Phase 0 exists implicitly; a boundary starts the next phase.
        self.phase += 1;
        self.phases = self.phases.max(self.phase + 1);
    }

    fn finish(&mut self) {
        // Serial execution: everything already ran in submit().
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskBuilder;

    #[test]
    fn records_and_executes() {
        let mut rt = TraceRuntime::new();
        let a = rt.create("a", 8, 1.0f64);
        let b = rt.create("b", 8, 0.0f64);
        rt.submit(TaskBuilder::new("copy").rd(a).wr(b).body(move |ctx| {
            *ctx.wr(b) = *ctx.rd(a) * 2.0;
            ctx.charge(5.0);
        }));
        rt.begin_phase();
        rt.submit(TaskBuilder::new("inc").rd_wr(b).body(move |ctx| {
            *ctx.wr(b) += 1.0;
            ctx.charge(1.0);
        }));
        rt.finish();
        let (store, trace) = rt.into_parts();
        assert_eq!(*store.read(b), 3.0);
        assert_eq!(trace.task_count(), 2);
        assert_eq!(trace.total_work(), 6.0);
        assert_eq!(trace.tasks[0].phase, 0);
        assert_eq!(trace.tasks[1].phase, 1);
        assert_eq!(trace.phases, 2);
        assert_eq!(trace.tasks[0].spec.locality_object(), Some(a.id()));
        assert!(trace.validate().is_empty(), "{:?}", trace.validate());
    }

    #[test]
    fn serial_order_is_program_order() {
        // Tasks writing the same object must observe each other's effects in
        // submission order when executed by the trace runtime.
        let mut rt = TraceRuntime::new();
        let v = rt.create("v", 0, Vec::<u32>::new());
        for i in 0..10u32 {
            rt.submit(TaskBuilder::new("push").wr(v).body(move |ctx| {
                ctx.wr(v).push(i);
            }));
        }
        rt.finish();
        let (store, _) = rt.into_parts();
        assert_eq!(*store.read(v), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn validate_catches_bad_work() {
        let mut trace = Trace::default();
        trace.tasks.push(TaskRecord {
            id: TaskId(0),
            label: "bad".into(),
            spec: AccessSpec::new(),
            work: f64::NAN,
            placement: None,
            serial_phase: false,
            phase: 0,
        });
        assert!(!trace.validate().is_empty());
    }

    #[test]
    fn homes_recorded() {
        let mut rt = TraceRuntime::new();
        let a = rt.create("a", 128, [0u8; 16]);
        rt.set_home(a, 3);
        rt.finish();
        let (_, trace) = rt.into_parts();
        assert_eq!(trace.object_home(a.id()), 3);
        assert_eq!(trace.object_size(a.id()), 128);
    }
}
