//! **String**: computes a velocity model of the geology between two oil
//! wells by tomographic inversion (paper Section 4, citing Harris et al.).
//!
//! The paper's data set is a proprietary West-Texas oil field image; we
//! substitute a synthetic layered-geology velocity model with embedded
//! anomalies, at the paper's exact discretization: a **185 ft × 450 ft
//! image at 1 ft × 1 ft resolution**, and the paper's exact shared-object
//! size for the model (383,528 bytes). The code path is the application's:
//! parallel phases trace rays through the discretized model, compute the
//! difference between simulated and observed travel times, and backproject
//! the difference linearly along the ray into an explicitly replicated
//! difference array; each serial phase reduces the replicated arrays and
//! updates the velocity model. Six iterations, one parallel phase each.

use crate::common::{checksum, creation_order};
use jade_core::{Handle, JadeRuntime, TaskBuilder, Trace, TraceRuntime};

/// Paper-measured execution times used for calibration (Tables 1 and 6).
pub mod calib {
    pub const DASH_SERIAL_S: f64 = 20594.50;
    pub const DASH_STRIPPED_S: f64 = 19314.80;
    pub const IPSC_SERIAL_S: f64 = 20270.45;
    pub const IPSC_STRIPPED_S: f64 = 19629.42;
}

/// Cost (abstract operations) per ray-cell traversal step.
const C_STEP: f64 = 1.0;
/// Cost per backprojected cell.
const C_BP: f64 = 0.5;
/// Cost per model cell in the serial update. One abstract operation is a
/// full ray-tracing step (hundreds of flops); the serial phase's array
/// arithmetic is charged at its much smaller flop-equivalent so the serial
/// fraction matches the paper's near-linear String speedups.
const C_MODEL: f64 = 0.01;
/// Cost per reduced difference-array element (one add), in ray-step units.
const C_RED: f64 = 0.002;
/// Relaxation factor of the inversion.
const RELAX: f64 = 0.7;

/// Workload configuration.
#[derive(Clone, Debug)]
pub struct StringConfig {
    /// Horizontal extent (ft / cells) — distance between the wells.
    pub nx: usize,
    /// Vertical extent (ft / cells) — imaged depth interval.
    pub nz: usize,
    /// Source spacing (ft) in the left well.
    pub src_spacing: usize,
    /// Receiver spacing (ft) in the right well.
    pub rcv_spacing: usize,
    pub iterations: usize,
    pub procs: usize,
}

impl StringConfig {
    /// The paper's discretization: 185 ft × 450 ft at 1 ft resolution,
    /// six iterations.
    pub fn paper(procs: usize) -> StringConfig {
        StringConfig {
            nx: 185,
            nz: 450,
            src_spacing: 10,
            rcv_spacing: 5,
            iterations: 6,
            procs,
        }
    }

    pub fn small(procs: usize) -> StringConfig {
        StringConfig {
            nx: 24,
            nz: 40,
            src_spacing: 8,
            rcv_spacing: 8,
            iterations: 2,
            procs,
        }
    }

    pub fn cells(&self) -> usize {
        self.nx * self.nz
    }

    fn sources(&self) -> Vec<f64> {
        (0..self.nz / self.src_spacing)
            .map(|i| (i * self.src_spacing) as f64 + 0.5)
            .collect()
    }

    fn receivers(&self) -> Vec<f64> {
        (0..self.nz / self.rcv_spacing)
            .map(|i| (i * self.rcv_spacing) as f64 + 0.5)
            .collect()
    }

    /// All (source depth, receiver depth) ray pairs.
    pub fn rays(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        for &s in &self.sources() {
            for &r in &self.receivers() {
                out.push((s, r));
            }
        }
        out
    }
}

/// The synthetic "true" geology: slowness (s/ft) with depth-dependent
/// layering and two smooth anomalies.
pub fn true_model(cfg: &StringConfig) -> Vec<f64> {
    let (nx, nz) = (cfg.nx, cfg.nz);
    let mut m = vec![0.0; nx * nz];
    for iz in 0..nz {
        for ix in 0..nx {
            let z = iz as f64 / nz as f64;
            let x = ix as f64 / nx as f64;
            // Velocity increases with depth (1800..3000 ft/s) with layers.
            let v = 1800.0 + 1200.0 * z + 150.0 * (z * 40.0).sin();
            // Two anomalies: one fast lens, one slow pocket.
            let a1 = (-((x - 0.3) * (x - 0.3) / 0.01 + (z - 0.4) * (z - 0.4) / 0.005)).exp();
            let a2 = (-((x - 0.7) * (x - 0.7) / 0.02 + (z - 0.7) * (z - 0.7) / 0.004)).exp();
            let v = v * (1.0 + 0.12 * a1 - 0.10 * a2);
            m[iz * nx + ix] = 1.0 / v;
        }
    }
    m
}

/// Trace a straight ray from (0, z0) to (nx, z1), visiting every crossed
/// cell with its in-cell path length. Returns the accumulated travel time
/// through `model` (slowness per cell).
pub fn trace_ray(
    model: &[f64],
    nx: usize,
    nz: usize,
    z0: f64,
    z1: f64,
    mut visit: impl FnMut(usize, f64),
) -> f64 {
    let dz_total = z1 - z0;
    let per_x = dz_total / nx as f64;
    // Length of the ray within one x-column.
    let col_len = (1.0 + per_x * per_x).sqrt();
    let mut time = 0.0;
    for ix in 0..nx {
        let za = z0 + per_x * ix as f64;
        let zb = za + per_x;
        let (mut lo, mut hi) = if za <= zb { (za, zb) } else { (zb, za) };
        lo = lo.clamp(0.0, nz as f64 - 1e-9);
        hi = hi.clamp(0.0, nz as f64 - 1e-9);
        let iz_lo = lo as usize;
        let iz_hi = hi as usize;
        if iz_lo == iz_hi {
            let idx = iz_lo * nx + ix;
            time += model[idx] * col_len;
            visit(idx, col_len);
        } else {
            let span = hi - lo;
            for iz in iz_lo..=iz_hi.min(nz - 1) {
                let cell_lo = (iz as f64).max(lo);
                let cell_hi = ((iz + 1) as f64).min(hi);
                if cell_hi <= cell_lo {
                    continue;
                }
                let frac = (cell_hi - cell_lo) / span;
                let len = col_len * frac;
                let idx = iz * nx + ix;
                time += model[idx] * len;
                visit(idx, len);
            }
        }
    }
    time
}

/// Observed travel times computed from the true model.
pub fn observations(cfg: &StringConfig) -> Vec<f64> {
    let truth = true_model(cfg);
    cfg.rays()
        .iter()
        .map(|&(s, r)| trace_ray(&truth, cfg.nx, cfg.nz, s, r, |_, _| {}))
        .collect()
}

/// Replicated per-task accumulator: backprojected differences and weights.
#[derive(Clone, Debug, Default)]
pub struct DiffArray {
    pub sum: Vec<f64>,
    pub weight: Vec<f64>,
}

/// Final numeric results.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StringOutput {
    /// RMS travel-time misfit after the final iteration.
    pub rms_misfit: f64,
    /// Order-sensitive checksum of the final model.
    pub model_checksum: f64,
}

pub struct StringHandles {
    pub model: Handle<Vec<f64>>,
    pub misfit: Handle<f64>,
}

/// Build and submit the whole String program on any Jade runtime.
pub fn build<R: JadeRuntime>(rt: &mut R, cfg: &StringConfig) -> StringHandles {
    let procs = cfg.procs.max(1);
    let cells = cfg.cells();
    let rays = cfg.rays();
    let obs = observations(cfg);
    let (nx, nz) = (cfg.nx, cfg.nz);

    // Starting model: uniform slowness at the mean background velocity.
    let start = vec![1.0 / 2400.0; cells];
    // The paper's model object is 383,528 bytes; reproduce the exact
    // communication size at full scale, and scale proportionally otherwise.
    let model_bytes = if (nx, nz) == (185, 450) {
        383_528
    } else {
        cells * 4 + 1000
    };
    let model = rt.create("model", model_bytes, start);
    rt.set_home(model, 0);
    let params = rt.create("ray-params", 4096, (rays.clone(), obs.clone()));
    rt.set_home(params, 0);
    let diffs: Vec<Handle<DiffArray>> = (0..procs)
        .map(|t| {
            let h = rt.create(
                &format!("diff[{t}]"),
                model_bytes,
                DiffArray {
                    sum: vec![0.0; cells],
                    weight: vec![0.0; cells],
                },
            );
            rt.set_home(h, t);
            h
        })
        .collect();
    let misfits: Vec<Handle<f64>> = (0..procs)
        .map(|t| {
            let h = rt.create(&format!("misfit[{t}]"), 8, 0.0f64);
            rt.set_home(h, t);
            h
        })
        .collect();
    let misfit = rt.create("misfit", 8, 0.0f64);
    rt.set_home(misfit, 0);

    let order = creation_order(procs);
    for _ in 0..cfg.iterations {
        // ---- Parallel phase: trace a group of rays per task,
        // backprojecting into the task's own replicated difference array.
        rt.begin_phase();
        for &t in &order {
            let dh = diffs[t];
            let mh = misfits[t];
            let nprocs = procs;
            rt.submit(
                TaskBuilder::new("trace-rays")
                    .wr(dh)
                    .rd(model)
                    .rd(params)
                    .wr(mh)
                    .body(move |ctx| {
                        let m = ctx.rd(model);
                        let p = ctx.rd(params);
                        let (rays, obs) = &*p;
                        let mut d = ctx.wr(dh);
                        d.sum.iter_mut().for_each(|x| *x = 0.0);
                        d.weight.iter_mut().for_each(|x| *x = 0.0);
                        let mut sq = 0.0;
                        let mut steps = 0u64;
                        for ri in (t..rays.len()).step_by(nprocs) {
                            let (zs, zr) = rays[ri];
                            // First pass: predicted time and path cells.
                            let mut path: Vec<(usize, f64)> = Vec::with_capacity(nx + nz);
                            let t_pred = trace_ray(&m, nx, nz, zs, zr, |idx, len| {
                                path.push((idx, len));
                            });
                            let dt = obs[ri] - t_pred;
                            sq += dt * dt;
                            let total_len: f64 = path.iter().map(|&(_, l)| l).sum();
                            for &(idx, len) in &path {
                                d.sum[idx] += dt * len / total_len;
                                d.weight[idx] += len;
                            }
                            steps += path.len() as u64;
                        }
                        *ctx.wr(mh) = sq;
                        ctx.charge(steps as f64 * (C_STEP + C_BP));
                    }),
            );
        }
        // ---- Serial phase: reduce difference arrays, update the model.
        rt.begin_phase();
        {
            let diffs = diffs.clone();
            let misfits = misfits.clone();
            let mut b = TaskBuilder::new("update-model").wr(model).wr(misfit);
            for &dh in &diffs {
                b = b.rd(dh);
            }
            for &mh in &misfits {
                b = b.rd(mh);
            }
            let nrays = rays.len() as f64;
            rt.submit(b.serial_phase().body(move |ctx| {
                let mut m = ctx.wr(model);
                let cells = m.len();
                let mut sum = vec![0.0f64; cells];
                let mut wt = vec![0.0f64; cells];
                for &dh in &diffs {
                    let d = ctx.rd(dh);
                    for i in 0..cells {
                        sum[i] += d.sum[i];
                        wt[i] += d.weight[i];
                    }
                }
                for i in 0..cells {
                    if wt[i] > 0.0 {
                        m[i] += RELAX * sum[i] / wt[i];
                    }
                }
                let sq: f64 = misfits.iter().map(|&mh| *ctx.rd(mh)).sum();
                *ctx.wr(misfit) = (sq / nrays).sqrt();
                ctx.charge(cells as f64 * C_MODEL + (diffs.len() * cells) as f64 * C_RED);
            }));
        }
    }
    StringHandles { model, misfit }
}

pub fn output<R: JadeRuntime>(rt: &R, h: &StringHandles) -> StringOutput {
    StringOutput {
        rms_misfit: *rt.store().read(h.misfit),
        model_checksum: checksum(rt.store().read(h.model).iter().copied()),
    }
}

pub fn run_on<R: JadeRuntime>(rt: &mut R, cfg: &StringConfig) -> StringOutput {
    let h = build(rt, cfg);
    rt.finish();
    output(rt, &h)
}

pub fn run_trace(cfg: &StringConfig) -> (Trace, StringOutput) {
    let mut rt = TraceRuntime::new();
    let h = build(&mut rt, cfg);
    rt.finish();
    let out = output(&rt, &h);
    let (_, trace) = rt.into_parts();
    (trace, out)
}

/// Plain serial reference implementation (no Jade, no replication).
pub fn reference(cfg: &StringConfig) -> (StringOutput, f64) {
    let cells = cfg.cells();
    let rays = cfg.rays();
    let obs = observations(cfg);
    let (nx, nz) = (cfg.nx, cfg.nz);
    let mut model = vec![1.0 / 2400.0; cells];
    let mut ops = 0.0;
    let mut rms = 0.0;
    for _ in 0..cfg.iterations {
        let mut sum = vec![0.0f64; cells];
        let mut wt = vec![0.0f64; cells];
        let mut sq = 0.0;
        for (ri, &(zs, zr)) in rays.iter().enumerate() {
            let mut path: Vec<(usize, f64)> = Vec::new();
            let t_pred = trace_ray(&model, nx, nz, zs, zr, |idx, len| path.push((idx, len)));
            let dt = obs[ri] - t_pred;
            sq += dt * dt;
            let total_len: f64 = path.iter().map(|&(_, l)| l).sum();
            for &(idx, len) in &path {
                sum[idx] += dt * len / total_len;
                wt[idx] += len;
            }
            ops += path.len() as f64 * (C_STEP + C_BP);
        }
        for i in 0..cells {
            if wt[i] > 0.0 {
                model[i] += RELAX * sum[i] / wt[i];
            }
        }
        ops += cells as f64 * C_MODEL + cells as f64 * C_RED; // one "copy"
        rms = (sq / rays.len() as f64).sqrt();
    }
    (
        StringOutput {
            rms_misfit: rms,
            model_checksum: checksum(model.iter().copied()),
        },
        ops,
    )
}

pub fn expected_tasks(cfg: &StringConfig) -> usize {
    cfg.iterations * (cfg.procs + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ray_lengths_sum_to_ray_length() {
        // The per-cell path lengths of a ray must sum to its total length.
        let cfg = StringConfig::small(1);
        let model = vec![1.0; cfg.cells()];
        let mut total = 0.0;
        let t = trace_ray(&model, cfg.nx, cfg.nz, 3.5, 31.5, |_, l| total += l);
        let expect = ((cfg.nx * cfg.nx) as f64 + (31.5f64 - 3.5).powi(2)).sqrt();
        assert!((total - expect).abs() < 1e-9, "{total} vs {expect}");
        // Uniform unit slowness: time == length.
        assert!((t - expect).abs() < 1e-9);
    }

    #[test]
    fn horizontal_ray_crosses_one_row() {
        let cfg = StringConfig::small(1);
        let model = vec![2.0; cfg.cells()];
        let mut cells = Vec::new();
        let t = trace_ray(&model, cfg.nx, cfg.nz, 5.5, 5.5, |idx, l| {
            cells.push((idx, l))
        });
        assert_eq!(cells.len(), cfg.nx);
        assert!(cells.iter().all(|&(idx, _)| idx / cfg.nx == 5));
        assert!((t - 2.0 * cfg.nx as f64).abs() < 1e-9);
    }

    #[test]
    fn inversion_reduces_misfit() {
        let cfg = StringConfig::small(1);
        // Misfit of the uniform starting model:
        let truth_obs = observations(&cfg);
        let start = vec![1.0 / 2400.0; cfg.cells()];
        let mut sq0 = 0.0;
        for (&(s, r), &o) in cfg.rays().iter().zip(&truth_obs) {
            let t = trace_ray(&start, cfg.nx, cfg.nz, s, r, |_, _| {});
            sq0 += (o - t) * (o - t);
        }
        let rms0 = (sq0 / truth_obs.len() as f64).sqrt();
        let (out, _) = reference(&cfg);
        assert!(
            out.rms_misfit < rms0 * 0.5,
            "inversion should reduce misfit: {} -> {}",
            rms0,
            out.rms_misfit
        );
    }

    #[test]
    fn trace_matches_reference_single_proc() {
        let cfg = StringConfig::small(1);
        let (trace, out) = run_trace(&cfg);
        let (ref_out, ref_ops) = reference(&cfg);
        assert_eq!(out.rms_misfit, ref_out.rms_misfit);
        assert_eq!(out.model_checksum, ref_out.model_checksum);
        assert_eq!(trace.task_count(), expected_tasks(&cfg));
        assert!(ref_ops > 0.0);
    }

    #[test]
    fn multi_proc_close_to_reference() {
        let cfg = StringConfig::small(3);
        let (trace, out) = run_trace(&cfg);
        let (ref_out, _) = reference(&cfg);
        let rel = (out.rms_misfit - ref_out.rms_misfit).abs() / ref_out.rms_misfit.max(1e-12);
        assert!(rel < 1e-6, "rel {rel}");
        assert!(trace.validate().is_empty());
    }

    #[test]
    fn paper_scale_object_size() {
        let cfg = StringConfig::paper(2);
        let mut rt = TraceRuntime::new();
        let h = build(&mut rt, &cfg);
        let (_, trace) = rt.into_parts();
        assert_eq!(trace.object_size(h.model.id()), 383_528);
    }

    #[test]
    fn locality_object_is_difference_copy() {
        let cfg = StringConfig::small(2);
        let (trace, _) = run_trace(&cfg);
        for t in trace.tasks.iter().filter(|t| t.label == "trace-rays") {
            let lo = t.spec.locality_object().unwrap();
            assert!(trace.objects[lo.index()].name.starts_with("diff["));
        }
    }
}
