//! **Panel Cholesky**: factors a sparse positive-definite matrix
//! (paper Section 4; the computational kernel of the application set).
//!
//! The paper factors BCSSTK15 from the Harwell-Boeing set (n = 3948, a
//! structural-engineering stiffness matrix). That file is not
//! redistributable here, so we substitute a synthetic matrix of matched
//! order and — crucially — matched *elimination-tree shape*: BCSSTK15 is a
//! physical structure with several weakly-coupled sub-assemblies, so its
//! elimination tree has parallel subtrees joined near the root. Our
//! substitute is:
//!
//! * `subassemblies` independent banded stiffness blocks (each the 5-point
//!   matrix of an m × m grid under natural ordering, band m), which factor
//!   as parallel elimination subtrees; and
//! * an **interface block** of `iface` columns ordered last, which receives
//!   a (synthetic, diagonal, SPD-preserving) contribution from every
//!   sub-assembly and factors serially — the join at the root of the tree.
//!
//! The default (two 44 × 44-grid sub-assemblies + a 63-column interface)
//! gives n = 3935 ≈ 3948 and a few thousand tasks, matching the paper's
//! task population and its "inherent lack of concurrency" at high
//! processor counts.
//!
//! The panel decomposition and task structure are exactly the paper's: one
//! **internal update** task per panel, one **external update** task per
//! dependent panel pair, locality object = the updated panel, panels mapped
//! round-robin omitting the main processor, and a serial initialization
//! task on the main processor that writes every panel (which is why, on the
//! message-passing machine, the first task to touch each panel misses its
//! target — the paper's 92% effect).

use crate::common::{checksum, worker_ring};

/// Communication-size multiplier for panels. BCSSTK15's supernodal fronts
/// are an order of magnitude denser than our synthetic band panels; scaling
/// the shared-object size reproduces the paper's measured object-transfer
/// latency of roughly twice the mean task execution time (Section 5.4).
const FRONT_FILL: usize = 16;
use jade_core::{Handle, JadeRuntime, TaskBuilder, Trace, TraceRuntime};

/// Paper-measured execution times used for calibration (Tables 1 and 6).
pub mod calib {
    pub const DASH_SERIAL_S: f64 = 26.67;
    pub const DASH_STRIPPED_S: f64 = 28.91;
    pub const IPSC_SERIAL_S: f64 = 27.60;
    pub const IPSC_STRIPPED_S: f64 = 28.53;
}

/// Workload configuration.
#[derive(Clone, Debug)]
pub struct CholeskyConfig {
    /// Grid side of one sub-assembly (its matrix order is `grid²`, its
    /// bandwidth `grid`).
    pub grid: usize,
    /// Number of independent sub-assemblies.
    pub subassemblies: usize,
    /// Interface (separator) column count.
    pub iface: usize,
    /// Columns per panel.
    pub panel_width: usize,
    pub procs: usize,
}

impl CholeskyConfig {
    /// Matched to BCSSTK15: n = 2·44² + 63 = 3935 ≈ 3948.
    pub fn paper(procs: usize) -> CholeskyConfig {
        CholeskyConfig {
            grid: 44,
            subassemblies: 2,
            iface: 63,
            panel_width: 8,
            procs,
        }
    }

    pub fn small(procs: usize) -> CholeskyConfig {
        CholeskyConfig {
            grid: 8,
            subassemblies: 2,
            iface: 8,
            panel_width: 4,
            procs,
        }
    }

    /// Total matrix order.
    pub fn n(&self) -> usize {
        self.subassemblies * self.grid * self.grid + self.iface
    }

    fn block_n(&self) -> usize {
        self.grid * self.grid
    }

    fn block_panels(&self) -> usize {
        self.block_n().div_ceil(self.panel_width)
    }

    fn iface_panels(&self) -> usize {
        self.iface.div_ceil(self.panel_width)
    }

    /// Total panel count (sub-assembly panels, then interface panels).
    pub fn panels(&self) -> usize {
        self.subassemblies * self.block_panels() + self.iface_panels()
    }

    /// External-update reach within a sub-assembly (in panels).
    fn span(&self) -> usize {
        self.grid.div_ceil(self.panel_width)
    }

    /// External-update reach within the interface (in panels).
    fn iface_span(&self) -> usize {
        self.iface.saturating_sub(1).div_ceil(self.panel_width)
    }
}

/// A panel: `cols` consecutive columns of one band block, each stored as a
/// segment of `band + 1` entries (`seg[d]` = element (row `j + d`, col `j`)
/// in block-local numbering).
#[derive(Clone, Debug, Default)]
pub struct Panel {
    /// First column in block-local numbering.
    pub first_col: usize,
    pub cols: usize,
    pub band: usize,
    /// Order of the block this panel belongs to (clamps segments).
    pub block_n: usize,
    /// Column-major: `data[c * (band + 1) + d]`.
    pub data: Vec<f64>,
}

impl Panel {
    fn new(first_col: usize, cols: usize, band: usize, block_n: usize) -> Panel {
        Panel {
            first_col,
            cols,
            band,
            block_n,
            data: vec![0.0; cols * (band + 1)],
        }
    }

    #[inline]
    pub fn seg(&self, local_col: usize) -> &[f64] {
        &self.data[local_col * (self.band + 1)..(local_col + 1) * (self.band + 1)]
    }

    #[inline]
    pub fn seg_mut(&mut self, local_col: usize) -> &mut [f64] {
        &mut self.data[local_col * (self.band + 1)..(local_col + 1) * (self.band + 1)]
    }

    /// Fill with the sub-assembly stiffness values (5-point grid matrix).
    fn fill_stiffness(&mut self, grid: usize) {
        let (band, n, j0) = (self.band, self.block_n, self.first_col);
        for c in 0..self.cols {
            let j = j0 + c;
            let seg = self.seg_mut(c);
            seg.iter_mut().for_each(|x| *x = 0.0);
            let (r, col) = (j / grid, j % grid);
            seg[0] = 4.0;
            if col + 1 < grid && j + 1 < n {
                seg[1] = -1.0;
            }
            if r + 1 < grid && j + band < n {
                seg[band] = -1.0;
            }
        }
    }

    /// Fill with the interface block's base values (a well-conditioned
    /// band matrix; sub-assembly contributions are added by join tasks).
    fn fill_interface(&mut self) {
        let (band, n, j0) = (self.band, self.block_n, self.first_col);
        for c in 0..self.cols {
            let j = j0 + c;
            let seg = self.seg_mut(c);
            seg.iter_mut().for_each(|x| *x = 0.0);
            seg[0] = 8.0;
            let lim = band.min(n - 1 - j);
            for (d, x) in seg.iter_mut().enumerate().take(lim + 1).skip(1) {
                *x = -1.0 / (1.0 + d as f64);
            }
        }
    }
}

/// `cmod`: apply factored column `src` (offset `o` above `j2`) to `dst`.
#[inline]
fn cmod(dst: &mut [f64], src: &[f64], o: usize, band: usize, block_n: usize, j2: usize) -> u64 {
    let ljo = src[o];
    if ljo == 0.0 {
        return 0; // sparsity: nothing to propagate
    }
    let lim = (band - o).min(block_n - 1 - j2);
    for (d2, x) in dst.iter_mut().enumerate().take(lim + 1) {
        *x -= ljo * src[o + d2];
    }
    (lim + 1) as u64 * 2
}

/// `cdiv`: finalize column `j` (block-local) of the factor.
#[inline]
fn cdiv(seg: &mut [f64], band: usize, block_n: usize, j: usize) -> u64 {
    let pivot = seg[0];
    assert!(pivot > 0.0, "matrix not positive definite at column {j}");
    let sq = pivot.sqrt();
    seg[0] = sq;
    let lim = band.min(block_n - 1 - j);
    for x in &mut seg[1..=lim] {
        *x /= sq;
    }
    lim as u64 + 8
}

/// Internal update: factor panel `p` in place (right-looking within the
/// panel). Returns flops.
pub fn internal_update(p: &mut Panel) -> u64 {
    let (band, bn) = (p.band, p.block_n);
    let mut flops = 0;
    for c in 0..p.cols {
        let j = p.first_col + c;
        flops += cdiv(p.seg_mut(c), band, bn, j);
        let (done, rest) = p.data.split_at_mut((c + 1) * (band + 1));
        let src = &done[c * (band + 1)..];
        for c2 in (c + 1)..p.cols {
            let o = c2 - c;
            if o > band {
                break;
            }
            let j2 = p.first_col + c2;
            let dst = &mut rest[(c2 - c - 1) * (band + 1)..(c2 - c) * (band + 1)];
            flops += cmod(dst, src, o, band, bn, j2);
        }
    }
    flops
}

/// External update: apply factored panel `src` to `dst` (same block).
pub fn external_update(dst: &mut Panel, src: &Panel) -> u64 {
    let (band, bn) = (dst.band, dst.block_n);
    let mut flops = 0;
    for c in 0..src.cols {
        let j = src.first_col + c;
        for c2 in 0..dst.cols {
            let j2 = dst.first_col + c2;
            if j2 <= j || j2 - j > band {
                continue;
            }
            flops += cmod(dst.seg_mut(c2), src.seg(c), j2 - j, band, bn, j2);
        }
    }
    flops
}

/// Interface join: add a sub-assembly's (synthetic, diagonal) contribution
/// to an interface panel. The contribution is derived deterministically
/// from the factored source panel and keeps the interface SPD. Returns
/// flops (proportional to the data touched).
pub fn join_update(dst: &mut Panel, src: &Panel) -> u64 {
    let mut flops = 0;
    for c in 0..dst.cols {
        let sc = c % src.cols;
        let contrib: f64 = src.seg(sc).iter().map(|x| x.abs()).sum::<f64>();
        let seg = dst.seg_mut(c);
        seg[0] += 1e-3 * (1.0 + contrib);
        flops += (src.band + 1) as u64 * 2;
    }
    flops
}

/// Final numeric results.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CholeskyOutput {
    /// `log(det) = 2 Σ log L[j][j]` over every block and the interface.
    pub log_det: f64,
    /// Order-sensitive checksum of the whole factor.
    pub factor_checksum: f64,
}

pub struct CholeskyHandles {
    pub result: Handle<(f64, f64)>,
}

/// Description of one panel's place in the global structure.
#[derive(Clone, Copy, Debug)]
struct PanelMeta {
    /// Sub-assembly index, or `usize::MAX` for interface panels.
    block: usize,
    first_col: usize,
    cols: usize,
    band: usize,
    block_n: usize,
}

fn panel_metas(cfg: &CholeskyConfig) -> Vec<PanelMeta> {
    let mut metas = Vec::with_capacity(cfg.panels());
    let (bn, w) = (cfg.block_n(), cfg.panel_width);
    for b in 0..cfg.subassemblies {
        for k in 0..cfg.block_panels() {
            let first = k * w;
            metas.push(PanelMeta {
                block: b,
                first_col: first,
                cols: w.min(bn - first),
                band: cfg.grid,
                block_n: bn,
            });
        }
    }
    let iband = cfg.iface.saturating_sub(1).max(1);
    for k in 0..cfg.iface_panels() {
        let first = k * w;
        metas.push(PanelMeta {
            block: usize::MAX,
            first_col: first,
            cols: w.min(cfg.iface - first),
            band: iband,
            block_n: cfg.iface,
        });
    }
    metas
}

/// Build and submit the whole Panel Cholesky program on any Jade runtime.
pub fn build<R: JadeRuntime>(rt: &mut R, cfg: &CholeskyConfig) -> CholeskyHandles {
    let metas = panel_metas(cfg);
    let ring = worker_ring(cfg.procs);
    let panels: Vec<Handle<Panel>> = metas
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let h = rt.create(
                &format!("panel[{i}]"),
                8 * (m.band + 1) * m.cols * FRONT_FILL,
                Panel::new(m.first_col, m.cols, m.band, m.block_n),
            );
            // A cache-coherent machine only moves the band data the update
            // kernels actually touch, not the dense front representation.
            rt.store_mut()
                .set_cache_bytes(h.id(), 8 * (m.band + 1) * m.cols);
            rt.set_home(h, ring[i % ring.len()]);
            h
        })
        .collect();
    let result = rt.create("result", 16, (0.0f64, 0.0f64));
    rt.set_home(result, 0);
    // Factorization parameters (panel map, elimination structure): read by
    // every task — the widely-read object Section 5.1 relies on.
    let params = rt.create("chol-params", 2048, (cfg.panel_width, cfg.grid));
    rt.set_home(params, 0);

    // Serial initialization on the main processor: writes every panel, so
    // the main processor owns them all when the factorization starts.
    {
        let panels = panels.clone();
        let metas2 = metas.clone();
        let grid = cfg.grid;
        let mut tb = TaskBuilder::new("init");
        for &h in &panels {
            tb = tb.wr(h);
        }
        rt.submit(tb.serial_phase().body(move |ctx| {
            for (&h, m) in panels.iter().zip(&metas2) {
                let mut p = ctx.wr(h);
                if m.block == usize::MAX {
                    p.fill_interface();
                } else {
                    p.fill_stiffness(grid);
                }
            }
            // The paper's timing omits initialization; charge nothing.
        }));
    }
    rt.begin_phase();

    let bp = cfg.block_panels();
    let span = cfg.span();
    let iface_base = cfg.subassemblies * bp;
    // Sub-assembly factorization: parallel elimination subtrees.
    for b in 0..cfg.subassemblies {
        for k in 0..bp {
            let gk = b * bp + k;
            let kh = panels[gk];
            rt.submit(
                TaskBuilder::new("internal")
                    .rd_wr(kh)
                    .rd(params)
                    .place(ring[gk % ring.len()])
                    .body(move |ctx| {
                        let _ = ctx.rd(params);
                        let flops = internal_update(&mut ctx.wr(kh));
                        ctx.charge(flops as f64);
                    }),
            );
            for p in (k + 1)..bp.min(k + span + 1) {
                let gp = b * bp + p;
                let ph = panels[gp];
                rt.submit(
                    TaskBuilder::new("external")
                        .rd_wr(ph)
                        .rd(kh)
                        .rd(params)
                        .place(ring[gp % ring.len()])
                        .body(move |ctx| {
                            let _ = ctx.rd(params);
                            let src = ctx.rd(kh);
                            let flops = external_update(&mut ctx.wr(ph), &src);
                            ctx.charge(flops as f64);
                        }),
                );
            }
        }
        // Join: this sub-assembly's root panel contributes to every
        // interface panel.
        let root = panels[b * bp + bp - 1];
        for ip in 0..cfg.iface_panels() {
            let gp = iface_base + ip;
            let ph = panels[gp];
            rt.submit(
                TaskBuilder::new("join")
                    .rd_wr(ph)
                    .rd(root)
                    .place(ring[gp % ring.len()])
                    .body(move |ctx| {
                        let src = ctx.rd(root);
                        let flops = join_update(&mut ctx.wr(ph), &src);
                        ctx.charge(flops as f64);
                    }),
            );
        }
    }
    // Interface factorization: the serial root of the elimination tree.
    let ispan = cfg.iface_span();
    for k in 0..cfg.iface_panels() {
        let gk = iface_base + k;
        let kh = panels[gk];
        rt.submit(
            TaskBuilder::new("internal")
                .rd_wr(kh)
                .place(ring[gk % ring.len()])
                .body(move |ctx| {
                    let flops = internal_update(&mut ctx.wr(kh));
                    ctx.charge(flops as f64);
                }),
        );
        for p in (k + 1)..cfg.iface_panels().min(k + ispan + 1) {
            let gp = iface_base + p;
            let ph = panels[gp];
            rt.submit(
                TaskBuilder::new("external")
                    .rd_wr(ph)
                    .rd(kh)
                    .place(ring[gp % ring.len()])
                    .body(move |ctx| {
                        let src = ctx.rd(kh);
                        let flops = external_update(&mut ctx.wr(ph), &src);
                        ctx.charge(flops as f64);
                    }),
            );
        }
    }

    // Serial gather: log-determinant and checksum of the whole factor.
    {
        let panels = panels.clone();
        let mut tb = TaskBuilder::new("gather").wr(result);
        for &h in &panels {
            tb = tb.rd(h);
        }
        rt.submit(tb.serial_phase().body(move |ctx| {
            let mut logdet = 0.0;
            let mut all = Vec::new();
            for &h in &panels {
                let p = ctx.rd(h);
                for c in 0..p.cols {
                    logdet += 2.0 * p.seg(c)[0].ln();
                }
                all.extend(p.data.iter().copied());
            }
            *ctx.wr(result) = (logdet, checksum(all.iter().copied()));
        }));
    }
    CholeskyHandles { result }
}

pub fn output<R: JadeRuntime>(rt: &R, h: &CholeskyHandles) -> CholeskyOutput {
    let (log_det, factor_checksum) = *rt.store().read(h.result);
    CholeskyOutput {
        log_det,
        factor_checksum,
    }
}

pub fn run_on<R: JadeRuntime>(rt: &mut R, cfg: &CholeskyConfig) -> CholeskyOutput {
    let h = build(rt, cfg);
    rt.finish();
    output(rt, &h)
}

pub fn run_trace(cfg: &CholeskyConfig) -> (Trace, CholeskyOutput) {
    let mut rt = TraceRuntime::new();
    let h = build(&mut rt, cfg);
    rt.finish();
    let out = output(&rt, &h);
    let (_, trace) = rt.into_parts();
    (trace, out)
}

/// Plain serial reference: factor every sub-assembly with right-looking
/// band Cholesky, apply the interface joins, factor the interface.
/// Bit-identical to the panel decomposition (same `cmod`/`cdiv` order).
pub fn reference(cfg: &CholeskyConfig) -> (CholeskyOutput, f64) {
    let mut flops = 0u64;
    let mut logdet = 0.0;
    let mut all = Vec::new();
    // Factor a full block stored as panels so the evaluation order (and the
    // checksum layout) matches the Jade version exactly. Returns the panels
    // and the flop count.
    fn factor_block(mut panels: Vec<Panel>, span: usize) -> (Vec<Panel>, u64) {
        let np = panels.len();
        let mut flops = 0;
        for k in 0..np {
            let (head, tail) = panels.split_at_mut(k + 1);
            let pk = &mut head[k];
            flops += internal_update(pk);
            for dst in tail.iter_mut().take(span.min(np - k - 1)) {
                flops += external_update(dst, pk);
            }
        }
        (panels, flops)
    }
    let (bn, w) = (cfg.block_n(), cfg.panel_width);
    let mut roots = Vec::new();
    let mut blocks_out = Vec::new();
    for _b in 0..cfg.subassemblies {
        let mut ps = Vec::new();
        for k in 0..cfg.block_panels() {
            let first = k * w;
            let mut p = Panel::new(first, w.min(bn - first), cfg.grid, bn);
            p.fill_stiffness(cfg.grid);
            ps.push(p);
        }
        let (ps, f) = factor_block(ps, cfg.span());
        flops += f;
        roots.push(ps.last().expect("non-empty block").clone());
        blocks_out.push(ps);
    }
    // Interface: base values + joins from every sub-assembly root.
    let iband = cfg.iface.saturating_sub(1).max(1);
    let mut ifp = Vec::new();
    for k in 0..cfg.iface_panels() {
        let first = k * w;
        let mut p = Panel::new(first, w.min(cfg.iface - first), iband, cfg.iface);
        p.fill_interface();
        ifp.push(p);
    }
    for root in &roots {
        for p in ifp.iter_mut() {
            flops += join_update(p, root);
        }
    }
    let (ifp, f) = factor_block(ifp, cfg.iface_span());
    flops += f;
    for ps in blocks_out.iter().chain(std::iter::once(&ifp)) {
        for p in ps {
            for c in 0..p.cols {
                logdet += 2.0 * p.seg(c)[0].ln();
            }
            all.extend(p.data.iter().copied());
        }
    }
    (
        CholeskyOutput {
            log_det: logdet,
            factor_checksum: checksum(all.iter().copied()),
        },
        flops as f64,
    )
}

/// Verify `L Lᵀ = A` for one sub-assembly (test helper): maximum absolute
/// reconstruction error of the band factorization.
pub fn reconstruction_error(cfg: &CholeskyConfig) -> f64 {
    let (n, band, grid) = (cfg.block_n(), cfg.grid, cfg.grid);
    let stride = band + 1;
    let mut a = vec![0.0f64; n * stride];
    for j in 0..n {
        let (r, col) = (j / grid, j % grid);
        a[j * stride] = 4.0;
        if col + 1 < grid && j + 1 < n {
            a[j * stride + 1] = -1.0;
        }
        if r + 1 < grid && j + band < n {
            a[j * stride + band] = -1.0;
        }
    }
    let orig = a.clone();
    for j in 0..n {
        let (before, rest) = a.split_at_mut((j + 1) * stride);
        let seg = &mut before[j * stride..];
        cdiv(seg, band, n, j);
        for j2 in (j + 1)..n.min(j + band + 1) {
            let dst = &mut rest[(j2 - j - 1) * stride..(j2 - j) * stride];
            cmod(dst, seg, j2 - j, band, n, j2);
        }
    }
    let l = |row: usize, col: usize| -> f64 {
        if row < col || row - col > band || row >= n {
            0.0
        } else {
            a[col * stride + (row - col)]
        }
    };
    let mut max_err = 0.0f64;
    for j in 0..n {
        for d in 0..=band.min(n - 1 - j) {
            let row = j + d;
            let mut sum = 0.0;
            for k in row.saturating_sub(band)..=j {
                sum += l(row, k) * l(j, k);
            }
            max_err = max_err.max((sum - orig[j * stride + d]).abs());
        }
    }
    max_err
}

/// Number of tasks the Jade version creates.
pub fn expected_tasks(cfg: &CholeskyConfig) -> usize {
    let bp = cfg.block_panels();
    let span = cfg.span();
    let ext_per_block: usize = (0..bp).map(|k| bp.min(k + span + 1) - (k + 1)).sum();
    let ifp = cfg.iface_panels();
    let ispan = cfg.iface_span();
    let iface_ext: usize = (0..ifp).map(|k| ifp.min(k + ispan + 1) - (k + 1)).sum();
    // init + per-block (internals + externals + joins) + interface + gather
    2 + cfg.subassemblies * (bp + ext_per_block + ifp) + ifp + iface_ext
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorization_is_correct() {
        let err = reconstruction_error(&CholeskyConfig::small(1));
        assert!(err < 1e-10, "LL^T reconstruction error {err}");
    }

    #[test]
    fn trace_matches_reference_exactly() {
        let (ref_out, ref_flops) = reference(&CholeskyConfig::small(1));
        for procs in [1usize, 2, 4] {
            let cfg = CholeskyConfig::small(procs);
            let (trace, out) = run_trace(&cfg);
            assert_eq!(out, ref_out, "procs={procs}");
            assert_eq!(trace.task_count(), expected_tasks(&cfg));
            assert!(trace.validate().is_empty());
            let charged: f64 = trace.tasks.iter().map(|t| t.work).sum();
            assert!(
                (charged - ref_flops).abs() < 1e-6,
                "{charged} vs {ref_flops}"
            );
        }
    }

    #[test]
    fn log_det_is_finite() {
        let (out, _) = reference(&CholeskyConfig::small(1));
        assert!(out.log_det.is_finite());
    }

    #[test]
    fn paper_scale_structure() {
        let cfg = CholeskyConfig::paper(8);
        assert_eq!(cfg.n(), 3935);
        let tasks = expected_tasks(&cfg);
        assert!(
            (2500..8000).contains(&tasks),
            "task count {tasks} should be a few thousand"
        );
    }

    #[test]
    fn subassemblies_are_independent() {
        // Tasks of different sub-assemblies never conflict: the elimination
        // subtrees factor in parallel.
        let cfg = CholeskyConfig::small(3);
        let (trace, _) = run_trace(&cfg);
        let bp = cfg.block_panels();
        let block_of = |t: &jade_core::TaskRecord| {
            t.spec
                .locality_object()
                .map(|o| o.index() / bp)
                .unwrap_or(usize::MAX)
        };
        let b0: Vec<_> = trace
            .tasks
            .iter()
            .filter(|t| !t.serial_phase && t.label != "join" && block_of(t) == 0)
            .collect();
        let b1: Vec<_> = trace
            .tasks
            .iter()
            .filter(|t| !t.serial_phase && t.label != "join" && block_of(t) == 1)
            .collect();
        assert!(!b0.is_empty() && !b1.is_empty());
        for x in &b0 {
            for y in &b1 {
                assert!(!x.spec.conflicts_with(&y.spec));
            }
        }
    }

    #[test]
    fn locality_object_is_updated_panel() {
        let cfg = CholeskyConfig::small(3);
        let (trace, _) = run_trace(&cfg);
        for t in trace
            .tasks
            .iter()
            .filter(|t| t.label == "external" || t.label == "join")
        {
            let lo = t.spec.locality_object().unwrap();
            assert!(t.spec.written_objects().any(|o| o == lo));
        }
    }

    #[test]
    fn placements_omit_main() {
        let cfg = CholeskyConfig::small(4);
        let (trace, _) = run_trace(&cfg);
        for t in trace.tasks.iter().filter(|t| !t.serial_phase) {
            let p = t.placement.expect("panel tasks are placed");
            assert!((1..4).contains(&p));
        }
    }

    #[test]
    fn init_task_writes_all_panels() {
        let cfg = CholeskyConfig::small(2);
        let (trace, _) = run_trace(&cfg);
        let init = &trace.tasks[0];
        assert!(init.serial_phase);
        assert_eq!(init.spec.written_objects().count(), cfg.panels());
    }
}
