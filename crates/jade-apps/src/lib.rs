//! # jade-apps — the SC'95 Jade application suite
//!
//! Rust ports of the four applications the paper evaluates (Section 4):
//!
//! * [`water`] — forces and potentials in a system of water molecules;
//! * [`string_app`] — geophysical tomography (velocity model between wells);
//! * [`ocean`] — eddy and boundary currents in large-scale ocean movements;
//! * [`cholesky`] — panel Cholesky factorization of a sparse matrix.
//!
//! Each module provides the Jade version (generic over any
//! [`jade_core::JadeRuntime`]), a plain serial reference implementation, a
//! deterministic workload generator, and the paper's calibration targets.

#![forbid(unsafe_code)]

pub mod cholesky;
pub mod common;
pub mod ocean;
pub mod string_app;
pub mod water;
