//! # jade-apps — the SC'95 Jade application suite
//!
//! Rust ports of the four applications the paper evaluates (Section 4):
//!
//! * [`water`] — forces and potentials in a system of water molecules;
//! * [`string_app`] — geophysical tomography (velocity model between wells);
//! * [`ocean`] — eddy and boundary currents in large-scale ocean movements;
//! * [`cholesky`] — panel Cholesky factorization of a sparse matrix.
//!
//! Plus two *irregular* applications whose access sets are computed from
//! data at spawn time, exercising the inspector/executor aggregation pass
//! (DESIGN.md §15):
//!
//! * [`pagerank`] — push-style PageRank over a seeded power-law graph;
//! * [`halo`] — masked halo-exchange stencil over a sparse tile grid.
//!
//! Each module provides the Jade version (generic over any
//! [`jade_core::JadeRuntime`]), a plain serial reference implementation, a
//! deterministic workload generator, and the paper's calibration targets
//! (synthetic anchors for the two non-paper apps).

#![forbid(unsafe_code)]

pub mod cholesky;
pub mod common;
pub mod halo;
pub mod ocean;
pub mod pagerank;
pub mod string_app;
pub mod water;
