//! **PageRank**: push-style PageRank over a seeded power-law graph — the
//! first of the two *irregular* applications (DESIGN.md §15).
//!
//! Unlike the four paper applications, whose access sets follow from the
//! static decomposition, every gather task's read set here is **computed
//! from data at spawn time**: partition `q` reads the contribution buckets
//! of exactly those partitions that own an edge into `q`, a property of the
//! generated graph. This data-dependent fan-in is what the
//! inspector/executor aggregation pass coalesces — one gather task fetches
//! several contribution objects per owning processor, so the communicator
//! can bundle them into one message per `(task, owner)` pair.
//!
//! The decomposition is two-phase push with private buffers so that all
//! same-phase tasks are independent:
//!
//! * **scatter\[p\]** reads partition `p`'s ranks (previous parity) and
//!   rewrites `contrib[p]`: one dense bucket of contributions per target
//!   partition, accumulated in stored edge order.
//! * **gather\[q\]** writes partition `q`'s ranks (next parity) — the
//!   locality object — and reads `contrib[p]` for every sender `p`, in
//!   ascending `p` order, so floating-point accumulation is bit-identical
//!   everywhere.
//!
//! The graph generator and both kernels are shared with the serial
//! reference, which therefore matches the Jade version bit for bit.

use crate::common::{checksum, chunk_ranges, worker_ring, SplitMix64};
use jade_core::{Handle, JadeRuntime, TaskBuilder, Trace, TraceRuntime};

/// Calibration anchors. PageRank is not one of the paper's applications, so
/// these are synthetic: chosen to give the app a serial running time of the
/// same order as the paper's four, with the usual iPSC stripped-time
/// inflation (Section 5.2.2).
pub mod calib {
    pub const DASH_SERIAL_S: f64 = 24.0;
    pub const DASH_STRIPPED_S: f64 = 23.2;
    pub const IPSC_SERIAL_S: f64 = 28.0;
    pub const IPSC_STRIPPED_S: f64 = 31.5;
}

/// Abstract operations per edge traversal (scatter).
const C_EDGE: f64 = 1.0;
/// Abstract operations per node touched (scatter share division, gather
/// accumulate/update).
const C_NODE: f64 = 1.0;
/// Standard damping factor.
pub const DAMPING: f64 = 0.85;

/// Workload configuration.
#[derive(Clone, Debug)]
pub struct PagerankConfig {
    /// Number of graph nodes.
    pub nodes: usize,
    /// Out-edges added per node by the generator.
    pub edges_per_node: usize,
    pub iterations: usize,
    /// Number of node partitions (tasks per phase). More partitions than
    /// workers keeps several remote contribution objects per owner — the
    /// fan-in the aggregation pass coalesces.
    pub parts: usize,
    pub procs: usize,
    /// Graph generator seed (deterministic RNG path; no std hashers).
    pub seed: u64,
}

impl PagerankConfig {
    /// A graph large enough to exercise the paper machines' communication
    /// behavior. Six partitions per worker processor: the in-degree skew of
    /// the power-law graph leaves the low-degree partitions with sparse
    /// sender sets, so an owner must hold several partitions before the
    /// inspector reliably finds multi-object fan-in to coalesce.
    pub fn paper(procs: usize) -> PagerankConfig {
        let workers = procs.saturating_sub(1).max(1);
        PagerankConfig {
            nodes: 4096,
            edges_per_node: 4,
            iterations: 20,
            parts: 6 * workers,
            procs,
            seed: 42,
        }
    }

    pub fn small(procs: usize) -> PagerankConfig {
        let workers = procs.saturating_sub(1).max(1);
        PagerankConfig {
            nodes: 96,
            edges_per_node: 3,
            iterations: 4,
            parts: 6 * workers,
            procs,
            seed: 42,
        }
    }
}

/// A directed multigraph in edge-list form, generation order preserved.
#[derive(Clone, Debug)]
pub struct Graph {
    pub nodes: usize,
    /// `(src, dst)` pairs; every node has out-degree ≥ 1.
    pub edges: Vec<(u32, u32)>,
}

/// Seeded preferential-attachment generator producing a power-law
/// in-degree distribution, built entirely on the deterministic
/// [`SplitMix64`] path — no std hashers anywhere, so edge order is
/// identical on every platform and run.
///
/// A ring over the first `m + 1` nodes seeds the graph (so every node,
/// including the seeds, has out-degree ≥ 1 and rank mass is conserved);
/// each later node adds `m` edges, choosing each target by a coin flip
/// between a uniform earlier node and the head of a uniformly chosen
/// existing edge (in-degree-proportional attachment, vectors only).
pub fn power_law_graph(nodes: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1 && nodes > m + 1, "graph too small for m={m}");
    let m0 = m + 1;
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m0 + (nodes - m0) * m);
    for i in 0..m0 {
        edges.push((i as u32, ((i + 1) % m0) as u32));
    }
    for v in m0..nodes {
        for _ in 0..m {
            // Re-draw self-loops a few times, then fall back to `v - 1`.
            let mut dst = v as u32;
            for _ in 0..8 {
                let r = rng.next_u64();
                let cand = if r & 1 == 0 {
                    ((r >> 1) % v as u64) as u32
                } else {
                    edges[((r >> 1) as usize) % edges.len()].1
                };
                if cand != v as u32 {
                    dst = cand;
                    break;
                }
            }
            if dst == v as u32 {
                dst = (v - 1) as u32;
            }
            edges.push((v as u32, dst));
        }
    }
    Graph { nodes, edges }
}

/// The partitioned view of a graph: everything the tasks and the serial
/// reference need, precomputed once so both walk identical structures.
#[derive(Clone, Debug)]
pub struct Plan {
    /// `(start, end)` node range of each partition.
    pub ranges: Vec<(usize, usize)>,
    /// Per partition: its out-edges as `(local_src, target_part, local_dst)`
    /// in stored edge order.
    pub part_edges: Vec<Vec<(u32, u32, u32)>>,
    /// Per partition: local out-degrees (parallel to its node range).
    pub outdeg: Vec<Vec<u32>>,
    /// Per partition `q`: ascending list of partitions with ≥ 1 edge into
    /// `q` — the data-dependent read set of gather task `q`.
    pub senders: Vec<Vec<usize>>,
}

/// Partition `g` into `parts` contiguous node ranges and index its edges.
/// Pure vector walks: iteration order is the stored edge order.
pub fn plan(g: &Graph, parts: usize) -> Plan {
    assert!(parts >= 1 && parts <= g.nodes, "parts must be in 1..=nodes");
    let ranges = chunk_ranges(g.nodes, parts);
    let mut part_of = vec![0u32; g.nodes];
    for (p, &(s, e)) in ranges.iter().enumerate() {
        for v in part_of.iter_mut().take(e).skip(s) {
            *v = p as u32;
        }
    }
    let mut outdeg_global = vec![0u32; g.nodes];
    for &(s, _) in &g.edges {
        outdeg_global[s as usize] += 1;
    }
    let outdeg = ranges
        .iter()
        .map(|&(s, e)| outdeg_global[s..e].to_vec())
        .collect();
    let mut part_edges: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); parts];
    let mut sends = vec![vec![false; parts]; parts];
    for &(s, d) in &g.edges {
        let p = part_of[s as usize] as usize;
        let q = part_of[d as usize] as usize;
        let (ps, _) = ranges[p];
        let (qs, _) = ranges[q];
        part_edges[p].push((s - ps as u32, q as u32, d - qs as u32));
        sends[p][q] = true;
    }
    let senders = (0..parts)
        .map(|q| (0..parts).filter(|&p| sends[p][q]).collect())
        .collect();
    Plan {
        ranges,
        part_edges,
        outdeg,
        senders,
    }
}

/// Scatter kernel: distribute partition-local `ranks` along `edges` into
/// one dense bucket per target partition. Accumulation follows stored edge
/// order — shared verbatim by the Jade task and the serial reference.
pub fn scatter_contribs(
    edges: &[(u32, u32, u32)],
    ranks: &[f64],
    outdeg: &[u32],
    bucket_sizes: &[usize],
) -> Vec<Vec<f64>> {
    let mut buckets: Vec<Vec<f64>> = bucket_sizes.iter().map(|&s| vec![0.0; s]).collect();
    for &(ls, tp, ld) in edges {
        let share = ranks[ls as usize] / outdeg[ls as usize] as f64;
        buckets[tp as usize][ld as usize] += share;
    }
    buckets
}

/// Gather kernel: partition `q`'s new ranks from its senders' buckets,
/// accumulated in the given (ascending-`p`) order.
pub fn gather_ranks(
    n_local: usize,
    q: usize,
    contribs: &[&[Vec<f64>]],
    total_nodes: usize,
) -> Vec<f64> {
    let base = (1.0 - DAMPING) / total_nodes as f64;
    let mut out = vec![base; n_local];
    for c in contribs {
        for (o, b) in out.iter_mut().zip(&c[q]) {
            *o += DAMPING * b;
        }
    }
    out
}

/// Final numeric results.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PagerankOutput {
    /// Total rank mass (the push formulation conserves it at 1.0).
    pub rank_sum: f64,
    /// Order-sensitive checksum of the final rank vector.
    pub rank_checksum: f64,
}

pub struct PagerankHandles {
    pub result: Handle<(f64, f64)>,
}

/// Build and submit the whole PageRank program on any Jade runtime.
pub fn build<R: JadeRuntime>(rt: &mut R, cfg: &PagerankConfig) -> PagerankHandles {
    let g = power_law_graph(cfg.nodes, cfg.edges_per_node, cfg.seed);
    let pl = plan(&g, cfg.parts);
    let ring = worker_ring(cfg.procs);
    let bucket_sizes: Vec<usize> = pl.ranges.iter().map(|&(s, e)| e - s).collect();

    // Rank vectors, double-buffered by iteration parity; the initial mass
    // 1/N lives in the parity-0 buffers.
    let init = 1.0 / cfg.nodes as f64;
    let rank: Vec<[Handle<Vec<f64>>; 2]> = pl
        .ranges
        .iter()
        .enumerate()
        .map(|(p, &(s, e))| {
            let home = ring[p % ring.len()];
            let mk = |rt: &mut R, q: usize, val: f64| {
                let h = rt.create(&format!("rank[{p}][{q}]"), 8 * (e - s), vec![val; e - s]);
                rt.set_home(h, home);
                h
            };
            [mk(rt, 0, init), mk(rt, 1, 0.0)]
        })
        .collect();
    // Contribution buckets, rewritten wholesale by scatter each iteration.
    let contrib: Vec<Handle<Vec<Vec<f64>>>> = (0..cfg.parts)
        .map(|p| {
            let h = rt.create(
                &format!("contrib[{p}]"),
                8 * cfg.nodes + 16 * cfg.parts,
                Vec::new(),
            );
            rt.set_home(h, ring[p % ring.len()]);
            h
        })
        .collect();
    let result = rt.create("result", 16, (0.0f64, 0.0f64));
    rt.set_home(result, 0);

    for iter in 0..cfg.iterations {
        rt.begin_phase();
        let old = iter % 2;
        let new = (iter + 1) % 2;
        for p in 0..cfg.parts {
            let (s, e) = pl.ranges[p];
            let edges = pl.part_edges[p].clone();
            let outdeg = pl.outdeg[p].clone();
            let sizes = bucket_sizes.clone();
            let (ch, rh) = (contrib[p], rank[p][old]);
            let placement = ring[p % ring.len()];
            rt.submit(
                TaskBuilder::new("scatter")
                    .wr(ch)
                    .rd(rh)
                    .place(placement)
                    .body(move |ctx| {
                        let ranks = ctx.rd(rh);
                        *ctx.wr(ch) = scatter_contribs(&edges, &ranks, &outdeg, &sizes);
                        ctx.charge(edges.len() as f64 * C_EDGE + (e - s) as f64 * C_NODE);
                    }),
            );
        }
        for q in 0..cfg.parts {
            let (s, e) = pl.ranges[q];
            let n_local = e - s;
            let sender_handles: Vec<Handle<Vec<Vec<f64>>>> =
                pl.senders[q].iter().map(|&p| contrib[p]).collect();
            let wh = rank[q][new];
            let placement = ring[q % ring.len()];
            let total = cfg.nodes;
            // The write comes first: the new rank vector is the locality
            // object. The reads are the graph-dependent sender set.
            let mut tb = TaskBuilder::new("gather").wr(wh);
            for &h in &sender_handles {
                tb = tb.rd(h);
            }
            rt.submit(tb.place(placement).body(move |ctx| {
                let guards: Vec<_> = sender_handles.iter().map(|&h| ctx.rd(h)).collect();
                let refs: Vec<&[Vec<f64>]> = guards.iter().map(|g| g.as_slice()).collect();
                *ctx.wr(wh) = gather_ranks(n_local, q, &refs, total);
                ctx.charge((refs.len() + 1) as f64 * n_local as f64 * C_NODE);
            }));
        }
    }
    // Final serial gather: rank mass and checksum over the whole vector.
    {
        let qlast = cfg.iterations % 2;
        let finals: Vec<Handle<Vec<f64>>> = rank.iter().map(|pair| pair[qlast]).collect();
        let mut tb = TaskBuilder::new("collect").wr(result);
        for &h in &finals {
            tb = tb.rd(h);
        }
        let nodes = cfg.nodes;
        rt.submit(tb.serial_phase().body(move |ctx| {
            let mut all = Vec::with_capacity(nodes);
            for &h in &finals {
                all.extend(ctx.rd(h).iter().copied());
            }
            let sum = all.iter().sum();
            *ctx.wr(result) = (sum, checksum(all));
            ctx.charge(nodes as f64 * C_NODE);
        }));
    }
    PagerankHandles { result }
}

pub fn output<R: JadeRuntime>(rt: &R, h: &PagerankHandles) -> PagerankOutput {
    let (rank_sum, rank_checksum) = *rt.store().read(h.result);
    PagerankOutput {
        rank_sum,
        rank_checksum,
    }
}

pub fn run_on<R: JadeRuntime>(rt: &mut R, cfg: &PagerankConfig) -> PagerankOutput {
    let h = build(rt, cfg);
    rt.finish();
    output(rt, &h)
}

pub fn run_trace(cfg: &PagerankConfig) -> (Trace, PagerankOutput) {
    let mut rt = TraceRuntime::new();
    let h = build(&mut rt, cfg);
    rt.finish();
    let out = output(&rt, &h);
    let (_, trace) = rt.into_parts();
    (trace, out)
}

/// Serial reference: the same kernels over the same plan in the same order
/// (scatter `p` ascending, then gather `q` ascending with senders in
/// ascending order) — bit-identical to the Jade version at the same
/// partition count. Returns the output and total charged operations.
pub fn reference(cfg: &PagerankConfig) -> (PagerankOutput, f64) {
    let g = power_law_graph(cfg.nodes, cfg.edges_per_node, cfg.seed);
    let pl = plan(&g, cfg.parts);
    let bucket_sizes: Vec<usize> = pl.ranges.iter().map(|&(s, e)| e - s).collect();
    let mut ranks: Vec<Vec<f64>> = bucket_sizes
        .iter()
        .map(|&n| vec![1.0 / cfg.nodes as f64; n])
        .collect();
    let mut ops = 0.0;
    for _ in 0..cfg.iterations {
        let contribs: Vec<Vec<Vec<f64>>> = (0..cfg.parts)
            .map(|p| {
                ops += pl.part_edges[p].len() as f64 * C_EDGE + bucket_sizes[p] as f64 * C_NODE;
                scatter_contribs(&pl.part_edges[p], &ranks[p], &pl.outdeg[p], &bucket_sizes)
            })
            .collect();
        ranks = (0..cfg.parts)
            .map(|q| {
                let refs: Vec<&[Vec<f64>]> = pl.senders[q]
                    .iter()
                    .map(|&p| contribs[p].as_slice())
                    .collect();
                ops += (refs.len() + 1) as f64 * bucket_sizes[q] as f64 * C_NODE;
                gather_ranks(bucket_sizes[q], q, &refs, cfg.nodes)
            })
            .collect();
    }
    let all: Vec<f64> = ranks.into_iter().flatten().collect();
    ops += cfg.nodes as f64 * C_NODE;
    (
        PagerankOutput {
            rank_sum: all.iter().sum(),
            rank_checksum: checksum(all),
        },
        ops,
    )
}

pub fn expected_tasks(cfg: &PagerankConfig) -> usize {
    cfg.iterations * 2 * cfg.parts + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_total() {
        let g = power_law_graph(96, 3, 42);
        let g2 = power_law_graph(96, 3, 42);
        assert_eq!(g.edges, g2.edges);
        assert_eq!(g.edges.len(), 4 + (96 - 4) * 3);
        let mut outdeg = vec![0u32; 96];
        for &(s, d) in &g.edges {
            assert_ne!(s, d, "no self-loops");
            outdeg[s as usize] += 1;
            assert!((d as usize) < 96);
        }
        assert!(outdeg.iter().all(|&d| d >= 1), "every node pushes rank");
    }

    #[test]
    fn in_degree_is_skewed() {
        // Preferential attachment: the hot nodes collect far more than the
        // mean in-degree.
        let g = power_law_graph(4096, 4, 42);
        let mut indeg = vec![0u32; 4096];
        for &(_, d) in &g.edges {
            indeg[d as usize] += 1;
        }
        let mean = g.edges.len() as f64 / 4096.0;
        let max = *indeg.iter().max().unwrap() as f64;
        assert!(max > 8.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn trace_matches_reference_exactly() {
        for procs in [1usize, 2, 3, 5] {
            let cfg = PagerankConfig::small(procs);
            let (trace, out) = run_trace(&cfg);
            let (ref_out, ref_ops) = reference(&cfg);
            assert_eq!(out, ref_out, "procs={procs}");
            assert_eq!(trace.task_count(), expected_tasks(&cfg));
            assert!(trace.validate().is_empty());
            let charged: f64 = trace.tasks.iter().map(|t| t.work).sum();
            assert!((charged - ref_ops).abs() < 1e-6, "{charged} vs {ref_ops}");
        }
    }

    #[test]
    fn rank_mass_is_conserved() {
        let (out, _) = reference(&PagerankConfig::small(3));
        assert!((out.rank_sum - 1.0).abs() < 1e-9, "sum {}", out.rank_sum);
    }

    #[test]
    fn gather_read_sets_follow_the_graph() {
        let cfg = PagerankConfig::small(3);
        let g = power_law_graph(cfg.nodes, cfg.edges_per_node, cfg.seed);
        let pl = plan(&g, cfg.parts);
        let (trace, _) = run_trace(&cfg);
        let gathers: Vec<_> = trace
            .tasks
            .iter()
            .filter(|t| t.label == "gather")
            .take(cfg.parts)
            .collect();
        for (q, t) in gathers.iter().enumerate() {
            // One write (the rank vector) plus one read per graph sender.
            assert_eq!(
                t.spec.decls().len(),
                1 + pl.senders[q].len(),
                "gather {q} declares its data-dependent sender set"
            );
        }
        // Irregularity: not every partition has the same sender count.
        let counts: Vec<usize> = pl.senders.iter().map(|s| s.len()).collect();
        assert!(
            counts.iter().any(|&c| c != counts[0]),
            "sender sets should differ across partitions: {counts:?}"
        );
    }

    #[test]
    fn placements_follow_worker_ring() {
        let cfg = PagerankConfig::small(4);
        let (trace, _) = run_trace(&cfg);
        for t in trace.tasks.iter().filter(|t| t.label != "collect") {
            let p = t.placement.expect("parallel tasks are placed");
            assert!((1..4).contains(&p), "placement {p} omits the main proc");
        }
    }

    /// Satellite 4 regression: the generator runs entirely on the
    /// deterministic RNG path, so the first 32 edges for a known seed are
    /// pinned forever. Any hash-order or generator change breaks this.
    #[test]
    fn snapshot_first_32_edges_seed_42() {
        let g = power_law_graph(96, 3, 42);
        let expected: [(u32, u32); 32] = [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (4, 3),
            (4, 1),
            (4, 1),
            (5, 2),
            (5, 0),
            (5, 1),
            (6, 3),
            (6, 4),
            (6, 1),
            (7, 6),
            (7, 1),
            (7, 3),
            (8, 3),
            (8, 6),
            (8, 6),
            (9, 1),
            (9, 1),
            (9, 1),
            (10, 2),
            (10, 4),
            (10, 6),
            (11, 1),
            (11, 6),
            (11, 6),
            (12, 4),
            (12, 4),
            (12, 6),
            (13, 3),
        ];
        assert_eq!(&g.edges[..32], &expected[..]);
    }
}
