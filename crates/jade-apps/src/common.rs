//! Helpers shared by the four applications.

use jade_core::ProcId;

/// The worker ring used by the paper's explicit task placements: processors
/// in round-robin order **omitting the main processor** (for applications
/// with small task grain, "the best performance is obtained by devoting one
/// processor to creating tasks"). With one processor there is nothing to
/// omit.
pub fn worker_ring(procs: usize) -> Vec<ProcId> {
    if procs <= 1 {
        vec![0]
    } else {
        (1..procs).collect()
    }
}

/// Split `n` items into `k` contiguous chunks as evenly as possible.
/// Returns `(start, end)` pairs; chunks may be empty when `k > n`.
pub fn chunk_ranges(n: usize, k: usize) -> Vec<(usize, usize)> {
    assert!(k >= 1);
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Order in which per-processor replicated-array tasks are created: all
/// workers first, the main processor's copy last. The main thread blocks on
/// the following serial phase right after creating the last task, so its own
/// dispatcher picks that task up immediately — matching the 100% task
/// locality the paper measures for Water and String.
pub fn creation_order(procs: usize) -> Vec<ProcId> {
    let mut order: Vec<ProcId> = (1..procs).collect();
    order.push(0);
    order
}

/// A small deterministic SplitMix64 generator used to build workloads
/// (molecule positions, sparsity patterns). Self-contained so workload
/// generation is reproducible and dependency-free.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// A tiny deterministic checksum over floats (order-sensitive), used to
/// compare outputs across runtimes.
pub fn checksum(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = 0.0f64;
    let mut k = 1.0f64;
    for x in xs {
        acc += x * k;
        k = -k * 0.9999;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_omits_main() {
        assert_eq!(worker_ring(1), vec![0]);
        assert_eq!(worker_ring(4), vec![1, 2, 3]);
    }

    #[test]
    fn chunks_cover_everything() {
        for n in [0usize, 1, 7, 100] {
            for k in [1usize, 2, 3, 8] {
                let ch = chunk_ranges(n, k);
                assert_eq!(ch.len(), k);
                assert_eq!(ch[0].0, 0);
                assert_eq!(ch.last().unwrap().1, n);
                for w in ch.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
            }
        }
    }

    #[test]
    fn chunks_are_balanced() {
        let ch = chunk_ranges(10, 3);
        let sizes: Vec<_> = ch.iter().map(|(a, b)| b - a).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn creation_order_puts_main_last() {
        assert_eq!(creation_order(4), vec![1, 2, 3, 0]);
        assert_eq!(creation_order(1), vec![0]);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let a = checksum([1.0, 2.0, 3.0]);
        let b = checksum([3.0, 2.0, 1.0]);
        assert_ne!(a, b);
        assert_eq!(a, checksum([1.0, 2.0, 3.0]));
    }
}
