//! **Ocean**: simulates the role of eddy and boundary currents in
//! influencing large-scale ocean movements (paper Section 4).
//!
//! The computationally intensive section solves a set of discretized
//! spatial partial differential equations with an iterative five-point
//! stencil method on a square grid (192 × 192 in the paper's data set).
//!
//! The Jade decomposition is the paper's: the grid is split into **interior
//! blocks** of columns (one per worker processor, so grain tracks the
//! processor count) separated by two-column **boundary blocks**. Every
//! iteration creates one task per interior block; the task updates all of
//! its interior block plus the near column of each adjacent boundary block.
//! There is *no* serial phase between iterations — tasks of successive
//! iterations chain through the boundary columns, giving Ocean its fine
//! grain and high task-management load (Figures 10 and 20).
//!
//! **Boundary-column representation.** The paper's boundary "block" is
//! realized here as four shared objects per gap: the two boundary columns,
//! each double-buffered by iteration parity. A task writes this iteration's
//! parity buffer of its near columns and reads the *previous* iteration's
//! buffers of the far columns and of its own columns' down-neighbors. This
//! makes every cross-block dependence exactly one iteration deep, so the
//! block tasks pipeline with full utilization — matching the paper's
//! measured Ocean speedups, which a single monolithic boundary object (full
//! mutual exclusion between adjacent tasks) cannot reproduce. The update is
//! Gauss-Seidel within a block and Jacobi across block edges, the standard
//! hybrid for block-decomposed relaxation. See DESIGN.md.

use crate::common::{checksum, chunk_ranges, worker_ring};
use jade_core::{Handle, JadeRuntime, ProcId, TaskBuilder, Trace, TraceRuntime};

/// Paper-measured execution times used for calibration (Tables 1 and 6).
pub mod calib {
    pub const DASH_SERIAL_S: f64 = 102.99;
    pub const DASH_STRIPPED_S: f64 = 100.03;
    pub const IPSC_SERIAL_S: f64 = 54.19;
    pub const IPSC_STRIPPED_S: f64 = 60.99;
}

/// Cost (abstract operations) per stencil cell update.
const C_CELL: f64 = 1.0;

/// Workload configuration.
#[derive(Clone, Debug)]
pub struct OceanConfig {
    /// Grid side (cells).
    pub n: usize,
    pub iterations: usize,
    pub procs: usize,
}

impl OceanConfig {
    /// The paper's data set: a square 192 × 192 grid. The iteration count
    /// is not stated in the paper; 900 reproduces its task-management load
    /// (see EXPERIMENTS.md §calibration).
    pub fn paper(procs: usize) -> OceanConfig {
        OceanConfig {
            n: 192,
            iterations: 900,
            procs,
        }
    }

    pub fn small(procs: usize) -> OceanConfig {
        OceanConfig {
            n: 32,
            iterations: 12,
            procs,
        }
    }

    /// Number of interior blocks: one per worker processor ("the size of
    /// the interior blocks ... is adjusted to the number of processors").
    pub fn blocks(&self) -> usize {
        self.procs.saturating_sub(1).max(1)
    }
}

/// Column-major block of the grid: `cols` columns of `n` rows.
#[derive(Clone, Debug, Default)]
pub struct GridBlock {
    pub n: usize,
    pub cols: usize,
    pub data: Vec<f64>,
}

impl GridBlock {
    fn new(n: usize, cols: usize) -> GridBlock {
        GridBlock {
            n,
            cols,
            data: vec![0.0; n * cols],
        }
    }

    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f64 {
        self.data[col * self.n + row]
    }

    #[inline]
    pub fn set(&mut self, row: usize, col: usize, v: f64) {
        self.data[col * self.n + row] = v;
    }
}

/// Wind-stress-like forcing term at (row, global column).
#[inline]
fn forcing(n: usize, row: usize, gcol: usize) -> f64 {
    let x = gcol as f64 / n as f64;
    let y = row as f64 / n as f64;
    0.01 * (std::f64::consts::PI * y).sin() * (2.0 * std::f64::consts::PI * x).cos()
}

/// Layout of interior and boundary blocks along the column axis.
#[derive(Clone, Debug)]
pub struct Layout {
    /// (global first column, width) of each interior block.
    pub interior: Vec<(usize, usize)>,
    /// Global first column of each two-column boundary gap
    /// (gap `g` sits between interior `g` and interior `g+1`).
    pub boundary: Vec<usize>,
}

/// Compute the block layout for a grid of side `n` with `blocks` interior
/// blocks. Boundary gaps are two columns wide (paper Section 4).
pub fn layout(n: usize, blocks: usize) -> Layout {
    if blocks == 1 {
        return Layout {
            interior: vec![(0, n)],
            boundary: vec![],
        };
    }
    let nb = blocks - 1;
    let interior_cols = n - 2 * nb;
    assert!(
        interior_cols >= blocks,
        "grid too small for {blocks} blocks"
    );
    let widths = chunk_ranges(interior_cols, blocks);
    let mut interior = Vec::with_capacity(blocks);
    let mut boundary = Vec::with_capacity(nb);
    let mut gcol = 0;
    for (b, (s, e)) in widths.into_iter().enumerate() {
        let w = e - s;
        interior.push((gcol, w));
        gcol += w;
        if b < nb {
            boundary.push(gcol);
            gcol += 2;
        }
    }
    debug_assert_eq!(gcol, n);
    Layout { interior, boundary }
}

/// Final numeric results.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OceanOutput {
    /// Mean absolute stencil residual after the final iteration.
    pub residual: f64,
    /// Order-sensitive checksum of the final grid (global column order).
    pub grid_checksum: f64,
}

pub struct OceanHandles {
    pub result: Handle<(f64, f64)>,
}

/// Update one boundary column into its new-parity buffer.
///
/// * `new` — this iteration's buffer; rows `< row` already hold new values
///   and serve as the up-neighbor;
/// * `old` — previous iteration's buffer (down-neighbor);
/// * `left`/`right` — neighbor-column accessors (caller resolves new/old).
fn update_column(
    n: usize,
    gcol: usize,
    new: &mut [f64],
    old: &[f64],
    left: impl Fn(usize) -> f64,
    right: impl Fn(usize) -> f64,
) -> u64 {
    new[0] = old[0]; // fixed top/bottom rows carry over
    new[n - 1] = old[n - 1];
    for row in 1..n - 1 {
        let up = if row == 1 { old[0] } else { new[row - 1] };
        new[row] = 0.25 * (up + old[row + 1] + left(row) + right(row)) + forcing(n, row, gcol);
    }
    (n - 2) as u64
}

/// Build and submit the whole Ocean program on any Jade runtime.
pub fn build<R: JadeRuntime>(rt: &mut R, cfg: &OceanConfig) -> OceanHandles {
    let n = cfg.n;
    let blocks = cfg.blocks();
    let lay = layout(n, blocks);
    let ring = worker_ring(cfg.procs);

    let interior: Vec<Handle<GridBlock>> = lay
        .interior
        .iter()
        .enumerate()
        .map(|(b, &(_, w))| {
            let h = rt.create(&format!("interior[{b}]"), 8 * n * w, GridBlock::new(n, w));
            rt.set_home(h, ring[b % ring.len()]);
            h
        })
        .collect();
    // Boundary columns, double-buffered by iteration parity: gap g holds
    // global columns (x, x+1); column x ("left") is written by task g,
    // column x+1 ("right") by task g+1.
    let mut bl: Vec<[Handle<Vec<f64>>; 2]> = Vec::new();
    let mut br: Vec<[Handle<Vec<f64>>; 2]> = Vec::new();
    for g in 0..lay.boundary.len() {
        let hl = ring[g % ring.len()];
        let hr = ring[(g + 1) % ring.len()];
        let mk = |rt: &mut R, name: String, home: ProcId| {
            let h = rt.create(&name, 8 * n, vec![0.0f64; n]);
            rt.set_home(h, home);
            h
        };
        bl.push([
            mk(rt, format!("bndL[{g}][0]"), hl),
            mk(rt, format!("bndL[{g}][1]"), hl),
        ]);
        br.push([
            mk(rt, format!("bndR[{g}][0]"), hr),
            mk(rt, format!("bndR[{g}][1]"), hr),
        ]);
    }
    let params = rt.create("ocean-params", 512, (n, cfg.iterations));
    rt.set_home(params, 0);
    let result = rt.create("result", 16, (0.0f64, 0.0f64));
    rt.set_home(result, 0);

    for iter in 0..cfg.iterations {
        rt.begin_phase();
        let q = iter % 2; // this iteration's parity buffer
        for b in 0..blocks {
            let ih = interior[b];
            let (i0, iw) = lay.interior[b];
            // Left gap: (write buffer, own old buffer, far old column, x).
            let lg = (b > 0).then(|| {
                (
                    br[b - 1][q],
                    br[b - 1][1 - q],
                    bl[b - 1][1 - q],
                    lay.boundary[b - 1],
                )
            });
            // Right gap: (write buffer, own old buffer, far old column, x).
            let rg =
                (b < blocks - 1).then(|| (bl[b][q], bl[b][1 - q], br[b][1 - q], lay.boundary[b]));
            let placement: ProcId = ring[b % ring.len()];
            // Locality object: the interior block (paper Section 4).
            let mut tb = TaskBuilder::new("stencil").rd_wr(ih);
            if let Some((w, o, far, _)) = lg {
                tb = tb.wr(w).rd(o).rd(far);
            }
            if let Some((w, o, far, _)) = rg {
                tb = tb.wr(w).rd(o).rd(far);
            }
            tb = tb.rd(params).place(placement);
            rt.submit(tb.body(move |ctx| {
                let mut me = ctx.wr(ih);
                let mut cells = 0u64;
                // 1. Near-left boundary column (global x+1); keep the write
                // guard so step 2 can read the fresh values.
                let lg_new = lg.map(|(wh, oh, farh, x)| {
                    let mut new = ctx.wr(wh);
                    let old = ctx.rd(oh);
                    let far = ctx.rd(farh);
                    cells += update_column(
                        n,
                        x + 1,
                        &mut new,
                        &old,
                        |r| far[r],      // left neighbor: column x, old parity
                        |r| me.at(r, 0), // right neighbor: interior col, old value
                    );
                    new
                });
                // 2. Interior columns, Gauss-Seidel in place; the rightmost
                // interior column reads the near-right boundary column's
                // previous-parity buffer.
                let rg_old = rg.map(|(_, oh, _, _)| ctx.rd(oh));
                for c in 0..iw {
                    let gcol = i0 + c;
                    if gcol == 0 || gcol == n - 1 {
                        continue; // fixed global edges
                    }
                    for row in 1..n - 1 {
                        let left = if c == 0 {
                            lg_new.as_ref().expect("interior col 0 is the global edge")[row]
                        } else {
                            me.at(row, c - 1)
                        };
                        let right = if c == iw - 1 {
                            rg_old
                                .as_ref()
                                .expect("last interior col is the global edge")[row]
                        } else {
                            me.at(row, c + 1)
                        };
                        let v = 0.25 * (me.at(row - 1, c) + me.at(row + 1, c) + left + right)
                            + forcing(n, row, gcol);
                        me.set(row, c, v);
                        cells += 1;
                    }
                }
                drop(lg_new);
                // 3. Near-right boundary column (global x).
                if let Some((wh, _, farh, x)) = rg {
                    let mut new = ctx.wr(wh);
                    let old = rg_old.expect("right gap present");
                    let far = ctx.rd(farh);
                    cells += update_column(
                        n,
                        x,
                        &mut new,
                        &old,
                        |r| me.at(r, iw - 1), // left neighbor: interior col, new value
                        |r| far[r],           // right neighbor: column x+1, old parity
                    );
                }
                ctx.charge(cells as f64 * C_CELL);
            }));
        }
    }
    // Final serial gather: residual + checksum over the reassembled grid.
    {
        let interior = interior.clone();
        let qlast = (cfg.iterations + 1) % 2; // parity of the last iteration
        let final_bl: Vec<_> = bl.iter().map(|pair| pair[qlast]).collect();
        let final_br: Vec<_> = br.iter().map(|pair| pair[qlast]).collect();
        let lay2 = lay.clone();
        let mut tb = TaskBuilder::new("gather").wr(result);
        for &h in &interior {
            tb = tb.rd(h);
        }
        for (&l, &r) in final_bl.iter().zip(&final_br) {
            tb = tb.rd(l).rd(r);
        }
        rt.submit(tb.serial_phase().body(move |ctx| {
            let mut grid: Vec<Vec<f64>> = vec![vec![0.0; n]; n]; // [gcol][row]
            for (b, &(g0, w)) in lay2.interior.iter().enumerate() {
                let blk = ctx.rd(interior[b]);
                for c in 0..w {
                    grid[g0 + c].copy_from_slice(&blk.data[c * n..(c + 1) * n]);
                }
            }
            for (g, &x) in lay2.boundary.iter().enumerate() {
                grid[x].copy_from_slice(&ctx.rd(final_bl[g]));
                grid[x + 1].copy_from_slice(&ctx.rd(final_br[g]));
            }
            let (res, ck) = grid_stats(&grid, n);
            *ctx.wr(result) = (res, ck);
            ctx.charge((n * n) as f64 * C_CELL);
        }));
    }
    OceanHandles { result }
}

fn grid_stats(grid: &[Vec<f64>], n: usize) -> (f64, f64) {
    let mut res = 0.0;
    for gcol in 1..n - 1 {
        for row in 1..n - 1 {
            let v = 0.25
                * (grid[gcol][row - 1]
                    + grid[gcol][row + 1]
                    + grid[gcol - 1][row]
                    + grid[gcol + 1][row])
                + forcing(n, row, gcol);
            res += (v - grid[gcol][row]).abs();
        }
    }
    res /= ((n - 2) * (n - 2)) as f64;
    let ck = checksum(grid.iter().flat_map(|col| col.iter().copied()));
    (res, ck)
}

pub fn output<R: JadeRuntime>(rt: &R, h: &OceanHandles) -> OceanOutput {
    let (residual, grid_checksum) = *rt.store().read(h.result);
    OceanOutput {
        residual,
        grid_checksum,
    }
}

pub fn run_on<R: JadeRuntime>(rt: &mut R, cfg: &OceanConfig) -> OceanOutput {
    let h = build(rt, cfg);
    rt.finish();
    output(rt, &h)
}

pub fn run_trace(cfg: &OceanConfig) -> (Trace, OceanOutput) {
    let mut rt = TraceRuntime::new();
    let h = build(&mut rt, cfg);
    rt.finish();
    let out = output(&rt, &h);
    let (_, trace) = rt.into_parts();
    (trace, out)
}

/// Plain serial reference implementation mirroring the semantics of the
/// block decomposition: Gauss-Seidel inside interior blocks, Jacobi across
/// boundary columns (previous-iteration values at every boundary-column
/// read except the in-column up-neighbor and the interior's read of the
/// freshly-updated near-left column). Bit-identical to the Jade version at
/// the same block count.
pub fn reference_blocks(cfg: &OceanConfig, blocks: usize) -> (OceanOutput, f64) {
    let n = cfg.n;
    let lay = layout(n, blocks);
    let mut grid: Vec<Vec<f64>> = vec![vec![0.0; n]; n]; // [gcol][row]
    let mut ops = 0.0;
    for _ in 0..cfg.iterations {
        // Snapshot all boundary columns: the previous iteration's values.
        let snap: Vec<(Vec<f64>, Vec<f64>)> = lay
            .boundary
            .iter()
            .map(|&x| (grid[x].clone(), grid[x + 1].clone()))
            .collect();
        for b in 0..blocks {
            let (i0, iw) = lay.interior[b];
            // 1. Near-left boundary column x+1.
            if b > 0 {
                let x = lay.boundary[b - 1];
                let (old_l, old_r) = &snap[b - 1];
                let mut new = vec![0.0; n];
                ops += update_column(n, x + 1, &mut new, old_r, |r| old_l[r], |r| grid[i0][r])
                    as f64
                    * C_CELL;
                grid[x + 1] = new;
            }
            // 2. Interior columns, Gauss-Seidel in place.
            for c in 0..iw {
                let gcol = i0 + c;
                if gcol == 0 || gcol == n - 1 {
                    continue;
                }
                for row in 1..n - 1 {
                    let right = if c == iw - 1 {
                        snap[b].0[row]
                    } else {
                        grid[gcol + 1][row]
                    };
                    let v = 0.25
                        * (grid[gcol][row - 1] + grid[gcol][row + 1] + grid[gcol - 1][row] + right)
                        + forcing(n, row, gcol);
                    grid[gcol][row] = v;
                    ops += C_CELL;
                }
            }
            // 3. Near-right boundary column x.
            if b < blocks - 1 {
                let x = lay.boundary[b];
                let (old_l, old_r) = &snap[b];
                let mut new = vec![0.0; n];
                ops += update_column(
                    n,
                    x,
                    &mut new,
                    old_l,
                    |r| grid[i0 + iw - 1][r],
                    |r| old_r[r],
                ) as f64
                    * C_CELL;
                grid[x] = new;
            }
        }
    }
    let (res, ck) = grid_stats(&grid, n);
    ops += (n * n) as f64 * C_CELL;
    (
        OceanOutput {
            residual: res,
            grid_checksum: ck,
        },
        ops,
    )
}

/// Serial reference at the single-block decomposition (plain Gauss-Seidel).
pub fn reference(cfg: &OceanConfig) -> (OceanOutput, f64) {
    reference_blocks(cfg, 1)
}

pub fn expected_tasks(cfg: &OceanConfig) -> usize {
    cfg.iterations * cfg.blocks() + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_covers_grid() {
        for n in [32usize, 192] {
            for blocks in [1usize, 2, 3, 7] {
                let lay = layout(n, blocks);
                let total: usize =
                    lay.interior.iter().map(|&(_, w)| w).sum::<usize>() + 2 * lay.boundary.len();
                assert_eq!(total, n, "n={n} blocks={blocks}");
                assert_eq!(lay.boundary.len(), blocks - 1);
            }
        }
    }

    #[test]
    fn trace_matches_block_reference_exactly() {
        for procs in [1usize, 2, 3, 5] {
            let cfg = OceanConfig::small(procs);
            let (trace, out) = run_trace(&cfg);
            let (ref_out, ref_ops) = reference_blocks(&cfg, cfg.blocks());
            assert_eq!(out, ref_out, "procs={procs}");
            assert_eq!(trace.task_count(), expected_tasks(&cfg));
            assert!(trace.validate().is_empty());
            let charged: f64 = trace.tasks.iter().map(|t| t.work).sum();
            assert!((charged - ref_ops).abs() < 1e-6, "{charged} vs {ref_ops}");
        }
    }

    #[test]
    fn block_decompositions_agree_approximately() {
        // Different block counts change the edge coupling (Jacobi lags the
        // boundary columns by one iteration), so convergence rates differ
        // slightly — but both head to the same fixed point.
        let cfg = OceanConfig {
            n: 32,
            iterations: 120,
            procs: 1,
        };
        let (a, _) = reference_blocks(&cfg, 1);
        let (b, _) = reference_blocks(&cfg, 3);
        let rel = (a.residual - b.residual).abs() / a.residual.max(1e-300);
        assert!(rel < 0.2, "{} vs {} (rel {rel})", a.residual, b.residual);
        // And with more iterations the hybrid's residual keeps shrinking.
        let (b2, _) = reference_blocks(
            &OceanConfig {
                iterations: 480,
                ..cfg
            },
            3,
        );
        assert!(
            b2.residual < b.residual * 0.1,
            "{} vs {}",
            b2.residual,
            b.residual
        );
    }

    #[test]
    fn solver_converges() {
        let mut cfg = OceanConfig::small(1);
        let (out_few, _) = reference(&OceanConfig {
            iterations: 3,
            ..cfg.clone()
        });
        cfg.iterations = 60;
        let (out_many, _) = reference(&cfg);
        assert!(
            out_many.residual < out_few.residual * 0.5,
            "more iterations should reduce the residual: {} -> {}",
            out_few.residual,
            out_many.residual
        );
        assert!(out_many.residual.is_finite());
    }

    #[test]
    fn placements_follow_worker_ring() {
        let cfg = OceanConfig::small(4);
        let (trace, _) = run_trace(&cfg);
        for t in trace.tasks.iter().filter(|t| t.label == "stencil") {
            let p = t.placement.expect("stencil tasks are placed");
            assert!(
                (1..4).contains(&p),
                "placement {p} omits the main processor"
            );
        }
    }

    #[test]
    fn same_iteration_tasks_do_not_conflict() {
        // The parity double-buffering removes all same-iteration conflicts:
        // adjacent block tasks read only the other's previous-parity data.
        let cfg = OceanConfig::small(5); // 4 blocks
        let (trace, _) = run_trace(&cfg);
        let first_iter: Vec<_> = trace
            .tasks
            .iter()
            .filter(|t| t.label == "stencil")
            .take(4)
            .collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(
                    !first_iter[i].spec.conflicts_with(&first_iter[j].spec),
                    "blocks {i} and {j} must be independent within an iteration"
                );
            }
        }
    }

    #[test]
    fn consecutive_iterations_conflict() {
        let cfg = OceanConfig::small(3); // 2 blocks
        let (trace, _) = run_trace(&cfg);
        let stencil: Vec<_> = trace
            .tasks
            .iter()
            .filter(|t| t.label == "stencil")
            .collect();
        // Task (iter 1, block 0) depends on (iter 0, block 0) and on
        // (iter 0, block 1) through the boundary parity buffers.
        assert!(stencil[2].spec.conflicts_with(&stencil[0].spec));
        assert!(stencil[2].spec.conflicts_with(&stencil[1].spec));
    }
}
