//! **Water**: evaluates forces and potentials in a system of water
//! molecules in the liquid state (paper Section 4).
//!
//! Structure (exactly the paper's): an interleaved sequence of parallel and
//! serial phases, two parallel phases per iteration. Parallel tasks read the
//! molecule `positions` object and update an **explicitly replicated
//! contribution array** — one copy per processor, so tasks update their own
//! local copy instead of contending for one. Each serial phase reduces the
//! replicated arrays and updates the positions. The locality object of each
//! parallel task is the contribution-array copy it writes.
//!
//! The physics is a softened pairwise interaction (the communication and
//! concurrency structure is the paper's; the intramolecular force field is
//! simplified). The data set matches the paper: 1728 molecules, 8
//! iterations, and a 165,888-byte position object (96 bytes per molecule).

use crate::common::{checksum, chunk_ranges, creation_order, SplitMix64};
use jade_core::{Handle, JadeRuntime, TaskBuilder, Trace, TraceRuntime};

/// Paper-measured execution times used to calibrate the machine cost
/// models (Tables 1 and 6).
pub mod calib {
    /// Original serial program on DASH (seconds).
    pub const DASH_SERIAL_S: f64 = 3628.29;
    /// Stripped Jade version on DASH (seconds).
    pub const DASH_STRIPPED_S: f64 = 3285.90;
    /// Original serial program on the iPSC/860 (seconds).
    pub const IPSC_SERIAL_S: f64 = 2482.91;
    /// Stripped Jade version on the iPSC/860 (seconds).
    pub const IPSC_STRIPPED_S: f64 = 2406.72;
}

/// Cost (abstract operations) of one pairwise force evaluation.
const C_PAIR: f64 = 1.0;
/// Cost of one pairwise potential evaluation.
const C_POT: f64 = 0.6;
/// Cost of one molecule position/velocity update.
const C_UPDATE: f64 = 2.0;
/// Cost of reducing one contribution-array element.
const C_REDUCE: f64 = 0.05;

const SOFTENING: f64 = 0.05;
const DT: f64 = 1e-4;

/// Workload configuration.
#[derive(Clone, Debug)]
pub struct WaterConfig {
    pub molecules: usize,
    pub iterations: usize,
    /// Number of processors the trace is generated for (one contribution
    /// array copy, and one task per phase, per processor).
    pub procs: usize,
    pub seed: u64,
}

impl WaterConfig {
    /// The paper's data set: 1728 molecules, 8 iterations.
    pub fn paper(procs: usize) -> WaterConfig {
        WaterConfig {
            molecules: 1728,
            iterations: 8,
            procs,
            seed: 1995,
        }
    }

    /// A scaled-down workload for tests.
    pub fn small(procs: usize) -> WaterConfig {
        WaterConfig {
            molecules: 96,
            iterations: 2,
            procs,
            seed: 42,
        }
    }
}

/// Final numeric results (used to verify cross-runtime equivalence).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WaterOutput {
    /// Total potential energy after the last iteration.
    pub potential: f64,
    /// Order-sensitive checksum of the final positions.
    pub positions_checksum: f64,
}

/// Handles needed to extract results after a run.
pub struct WaterHandles {
    pub positions: Handle<Vec<[f64; 3]>>,
    pub potential: Handle<f64>,
}

fn init_positions(cfg: &WaterConfig) -> Vec<[f64; 3]> {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed);
    // Molecules distributed randomly in a rectangular volume (paper §4).
    (0..cfg.molecules)
        .map(|_| {
            [
                rng.gen_range_f64(0.0, 12.0),
                rng.gen_range_f64(0.0, 12.0),
                rng.gen_range_f64(0.0, 12.0),
            ]
        })
        .collect()
}

#[inline]
fn pair_force(pi: [f64; 3], pj: [f64; 3]) -> [f64; 3] {
    let d = [pj[0] - pi[0], pj[1] - pi[1], pj[2] - pi[2]];
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + SOFTENING;
    // Softened attractive/repulsive pair: r^-2 attraction with r^-4 core.
    let inv2 = 1.0 / r2;
    let f = inv2 - 0.5 * inv2 * inv2;
    [d[0] * f, d[1] * f, d[2] * f]
}

#[inline]
fn pair_potential(pi: [f64; 3], pj: [f64; 3]) -> f64 {
    let d = [pj[0] - pi[0], pj[1] - pi[1], pj[2] - pi[2]];
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + SOFTENING;
    0.5 / r2.sqrt() - 1.0 / r2
}

/// Build and submit the whole Water program on any Jade runtime.
pub fn build<R: JadeRuntime>(rt: &mut R, cfg: &WaterConfig) -> WaterHandles {
    let n = cfg.molecules;
    let procs = cfg.procs.max(1);
    // The position object is 96 bytes per molecule, matching the paper's
    // 165,888-byte object for 1728 molecules.
    let positions = rt.create("positions", 96 * n, init_positions(cfg));
    rt.set_home(positions, 0);
    let params = rt.create("params", 1024, (DT, SOFTENING));
    rt.set_home(params, 0);
    let velocities = rt.create("velocities", 24 * n, vec![[0.0f64; 3]; n]);
    rt.set_home(velocities, 0);
    // Explicitly replicated contribution arrays: one per processor.
    let forces: Vec<Handle<Vec<[f64; 3]>>> = (0..procs)
        .map(|t| {
            let h = rt.create(&format!("forces[{t}]"), 24 * n, vec![[0.0f64; 3]; n]);
            rt.set_home(h, t);
            h
        })
        .collect();
    let pots: Vec<Handle<f64>> = (0..procs)
        .map(|t| {
            let h = rt.create(&format!("pot[{t}]"), 8, 0.0f64);
            rt.set_home(h, t);
            h
        })
        .collect();
    let potential = rt.create("potential", 8, 0.0f64);
    rt.set_home(potential, 0);

    let order = creation_order(procs);
    for _ in 0..cfg.iterations {
        // ---- Parallel phase 1: pairwise forces into replicated copies.
        rt.begin_phase();
        for &t in &order {
            let fh = forces[t];
            let nprocs = procs;
            rt.submit(
                TaskBuilder::new("forces")
                    .wr(fh)
                    .rd(positions)
                    .rd(params)
                    .body(move |ctx| {
                        let pos = ctx.rd(positions);
                        let mut f = ctx.wr(fh);
                        for v in f.iter_mut() {
                            *v = [0.0; 3];
                        }
                        let mut pairs = 0u64;
                        // Interleaved slice: molecule i handled by task
                        // i % procs, pairing with all j > i.
                        let n = pos.len();
                        for i in (t..n).step_by(nprocs) {
                            let pi = pos[i];
                            for j in (i + 1)..n {
                                let fij = pair_force(pi, pos[j]);
                                f[i][0] += fij[0];
                                f[i][1] += fij[1];
                                f[i][2] += fij[2];
                                f[j][0] -= fij[0];
                                f[j][1] -= fij[1];
                                f[j][2] -= fij[2];
                                pairs += 1;
                            }
                        }
                        ctx.charge(pairs as f64 * C_PAIR);
                    }),
            );
        }
        // ---- Serial phase: reduce the replicated arrays, move molecules.
        rt.begin_phase();
        {
            let forces = forces.clone();
            let mut b = TaskBuilder::new("update")
                .wr(positions)
                .rd_wr(velocities)
                .rd(params);
            for &fh in &forces {
                b = b.rd(fh);
            }
            rt.submit(b.serial_phase().body(move |ctx| {
                let mut pos = ctx.wr(positions);
                let mut vel = ctx.wr(velocities);
                let n = pos.len();
                let mut total = vec![[0.0f64; 3]; n];
                for &fh in &forces {
                    let f = ctx.rd(fh);
                    for i in 0..n {
                        total[i][0] += f[i][0];
                        total[i][1] += f[i][1];
                        total[i][2] += f[i][2];
                    }
                }
                for i in 0..n {
                    for k in 0..3 {
                        vel[i][k] += DT * total[i][k];
                        pos[i][k] += DT * vel[i][k];
                    }
                }
                ctx.charge(n as f64 * C_UPDATE + (forces.len() * n) as f64 * C_REDUCE);
            }));
        }
        // ---- Parallel phase 2: potential energy into replicated scalars.
        rt.begin_phase();
        for &t in &order {
            let ph = pots[t];
            let nprocs = procs;
            rt.submit(
                TaskBuilder::new("potential")
                    .wr(ph)
                    .rd(positions)
                    .rd(params)
                    .body(move |ctx| {
                        let pos = ctx.rd(positions);
                        let n = pos.len();
                        let mut e = 0.0;
                        let mut pairs = 0u64;
                        for i in (t..n).step_by(nprocs) {
                            let pi = pos[i];
                            for j in (i + 1)..n {
                                e += pair_potential(pi, pos[j]);
                                pairs += 1;
                            }
                        }
                        *ctx.wr(ph) = e;
                        ctx.charge(pairs as f64 * C_POT);
                    }),
            );
        }
        // ---- Serial phase: reduce the potential.
        rt.begin_phase();
        {
            let pots = pots.clone();
            let mut b = TaskBuilder::new("reduce-pot").wr(potential);
            for &ph in &pots {
                b = b.rd(ph);
            }
            rt.submit(b.serial_phase().body(move |ctx| {
                *ctx.wr(potential) = pots.iter().map(|&p| *ctx.rd(p)).sum();
                ctx.charge(pots.len() as f64 * C_REDUCE);
            }));
        }
    }
    WaterHandles {
        positions,
        potential,
    }
}

/// Extract the output after `rt.finish()`.
pub fn output<R: JadeRuntime>(rt: &R, h: &WaterHandles) -> WaterOutput {
    WaterOutput {
        potential: *rt.store().read(h.potential),
        positions_checksum: checksum(
            rt.store()
                .read(h.positions)
                .iter()
                .flat_map(|p| p.iter().copied()),
        ),
    }
}

/// Run on any runtime to completion.
pub fn run_on<R: JadeRuntime>(rt: &mut R, cfg: &WaterConfig) -> WaterOutput {
    let h = build(rt, cfg);
    rt.finish();
    output(rt, &h)
}

/// Serial execution + trace recording.
pub fn run_trace(cfg: &WaterConfig) -> (Trace, WaterOutput) {
    let mut rt = TraceRuntime::new();
    let h = build(&mut rt, cfg);
    rt.finish();
    let out = output(&rt, &h);
    let (_, trace) = rt.into_parts();
    (trace, out)
}

/// Plain serial reference implementation (the paper's "serial" version: no
/// Jade constructs, no replication). Returns the output and the abstract
/// operation count of the serial program.
pub fn reference(cfg: &WaterConfig) -> (WaterOutput, f64) {
    let n = cfg.molecules;
    let mut pos = init_positions(cfg);
    let mut vel = vec![[0.0f64; 3]; n];
    let mut ops = 0.0;
    let mut potential = 0.0;
    for _ in 0..cfg.iterations {
        let mut f = vec![[0.0f64; 3]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let fij = pair_force(pos[i], pos[j]);
                for k in 0..3 {
                    f[i][k] += fij[k];
                    f[j][k] -= fij[k];
                }
            }
        }
        ops += (n * (n - 1) / 2) as f64 * C_PAIR;
        for i in 0..n {
            for k in 0..3 {
                vel[i][k] += DT * f[i][k];
                pos[i][k] += DT * vel[i][k];
            }
        }
        ops += n as f64 * C_UPDATE;
        potential = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                potential += pair_potential(pos[i], pos[j]);
            }
        }
        ops += (n * (n - 1) / 2) as f64 * C_POT;
    }
    (
        WaterOutput {
            potential,
            positions_checksum: checksum(pos.iter().flat_map(|p| p.iter().copied())),
        },
        ops,
    )
}

/// Number of tasks the Jade version creates (diagnostic used by tests and
/// the experiment harness).
pub fn expected_tasks(cfg: &WaterConfig) -> usize {
    cfg.iterations * (2 * cfg.procs + 2)
}

// Kept for future decompositions; silence dead-code until then.
#[allow(dead_code)]
fn chunks(n: usize, k: usize) -> Vec<(usize, usize)> {
    chunk_ranges(n, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_matches_reference_single_proc() {
        let cfg = WaterConfig::small(1);
        let (trace, out) = run_trace(&cfg);
        let (ref_out, _) = reference(&cfg);
        // One processor: identical floating-point evaluation order.
        assert_eq!(out.potential, ref_out.potential);
        assert_eq!(out.positions_checksum, ref_out.positions_checksum);
        assert_eq!(trace.task_count(), expected_tasks(&cfg));
        assert!(trace.validate().is_empty());
    }

    #[test]
    fn trace_close_to_reference_multi_proc() {
        let cfg = WaterConfig::small(4);
        let (_, out) = run_trace(&cfg);
        let (ref_out, _) = reference(&cfg);
        // Reduction order differs; results agree to tolerance.
        assert!(
            (out.potential - ref_out.potential).abs() < 1e-9 * ref_out.potential.abs().max(1.0)
        );
    }

    #[test]
    fn multi_proc_trace_is_deterministic() {
        let cfg = WaterConfig::small(3);
        let (t1, o1) = run_trace(&cfg);
        let (t2, o2) = run_trace(&cfg);
        assert_eq!(o1, o2);
        assert_eq!(t1.task_count(), t2.task_count());
        assert_eq!(t1.total_work(), t2.total_work());
    }

    #[test]
    fn work_is_balanced_across_force_tasks() {
        let cfg = WaterConfig::small(4);
        let (trace, _) = run_trace(&cfg);
        let works: Vec<f64> = trace
            .tasks
            .iter()
            .filter(|t| t.label == "forces")
            .map(|t| t.work)
            .collect();
        assert_eq!(works.len(), cfg.iterations * 4);
        let max = works.iter().cloned().fold(0.0, f64::max);
        let min = works.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 1.3, "imbalance {max} vs {min}");
    }

    #[test]
    fn locality_objects_are_contribution_copies() {
        let cfg = WaterConfig::small(3);
        let (trace, _) = run_trace(&cfg);
        for t in trace.tasks.iter().filter(|t| t.label == "forces") {
            let lo = t.spec.locality_object().unwrap();
            assert!(trace.objects[lo.index()].name.starts_with("forces["));
        }
    }

    #[test]
    fn position_object_size_matches_paper() {
        let cfg = WaterConfig::paper(2);
        let mut rt = TraceRuntime::new();
        let h = build(&mut rt, &cfg);
        let (_, trace) = rt.into_parts();
        assert_eq!(trace.object_size(h.positions.id()), 165_888);
    }

    #[test]
    fn serial_phases_alternate_with_parallel() {
        let cfg = WaterConfig::small(2);
        let (trace, _) = run_trace(&cfg);
        let serial_count = trace.tasks.iter().filter(|t| t.serial_phase).count();
        assert_eq!(serial_count, cfg.iterations * 2);
    }
}
