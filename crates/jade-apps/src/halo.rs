//! **Halo**: a masked halo-exchange stencil over a sparse tile grid — the
//! second *irregular* application (DESIGN.md §15, SNIPPETS.md snippet 1).
//!
//! A 2D grid of square tiles carries a 9-point Moore-neighborhood stencil,
//! but only a seeded random subset of tiles is **active**; inactive tiles
//! are holes that contribute the boundary value (0.0). Each active tile's
//! task therefore declares a read set computed from the mask at spawn time:
//! its own previous-parity buffer plus the previous-parity buffers of its
//! active neighbors only — between three and nine objects, different per
//! tile. Tiles are homed by *row*, so a task's NW/N/NE halo reads all live
//! on one remote processor: exactly the fan-in the inspector/executor
//! aggregation pass coalesces into one message per `(task, owner)` pair.
//!
//! Tiles are double-buffered by iteration parity (Jacobi across tiles), so
//! all same-iteration tasks are independent. The halo assembly and stencil
//! kernels are shared with the serial reference, which therefore matches
//! the Jade version bit for bit.

use crate::common::{checksum, worker_ring, SplitMix64};
use jade_core::{Handle, JadeRuntime, TaskBuilder, Trace, TraceRuntime};

/// Calibration anchors. Halo is not one of the paper's applications, so
/// these are synthetic: the same order as the paper's four, with the usual
/// iPSC stripped-time inflation (Section 5.2.2).
pub mod calib {
    pub const DASH_SERIAL_S: f64 = 36.0;
    pub const DASH_STRIPPED_S: f64 = 35.0;
    pub const IPSC_SERIAL_S: f64 = 40.0;
    pub const IPSC_STRIPPED_S: f64 = 44.0;
}

/// Abstract operations per stencil cell update.
const C_CELL: f64 = 1.0;

/// The eight Moore-neighborhood offsets as `(dy, dx)`, row-major order.
/// Declaration order of neighbor reads and the kernels' accumulation order
/// both follow this table, so every implementation sums identically.
pub const NEIGHBORS: [(isize, isize); 8] = [
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (0, -1),
    (0, 1),
    (1, -1),
    (1, 0),
    (1, 1),
];

/// Workload configuration.
#[derive(Clone, Debug)]
pub struct HaloConfig {
    pub tiles_x: usize,
    pub tiles_y: usize,
    /// Tile side in cells.
    pub tile: usize,
    pub iterations: usize,
    /// Percentage of tiles that are active (mask density).
    pub active_pct: u64,
    pub procs: usize,
    /// Mask seed (deterministic RNG path; no std hashers).
    pub seed: u64,
}

impl HaloConfig {
    /// A grid large enough to exercise the paper machines' communication
    /// behavior.
    pub fn paper(procs: usize) -> HaloConfig {
        HaloConfig {
            tiles_x: 12,
            tiles_y: 12,
            tile: 24,
            iterations: 40,
            active_pct: 70,
            procs,
            seed: 7,
        }
    }

    pub fn small(procs: usize) -> HaloConfig {
        HaloConfig {
            tiles_x: 5,
            tiles_y: 5,
            tile: 6,
            iterations: 4,
            active_pct: 70,
            procs,
            seed: 7,
        }
    }
}

/// The seeded activity mask, row-major (`[ty * tiles_x + tx]`). Tile 0 is
/// forced active so the program always has work. Built on the
/// deterministic [`SplitMix64`] path in creation order.
pub fn active_mask(cfg: &HaloConfig) -> Vec<bool> {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed);
    let mut mask: Vec<bool> = (0..cfg.tiles_x * cfg.tiles_y)
        .map(|_| rng.next_u64() % 100 < cfg.active_pct)
        .collect();
    mask[0] = true;
    mask
}

/// Deterministic initial value of global cell `(gx, gy)`.
#[inline]
pub fn initial_value(gx: usize, gy: usize) -> f64 {
    ((gx * 31 + gy * 17) % 101) as f64 / 101.0
}

/// Assemble the `(t + 2)²` halo of a tile from its own data and its eight
/// neighbors' edges (in [`NEIGHBORS`] order); missing or inactive
/// neighbors contribute the boundary value 0.0.
pub fn assemble_halo(t: usize, center: &[f64], nbrs: &[Option<&[f64]>; 8]) -> Vec<f64> {
    let w = t + 2;
    let mut halo = vec![0.0; w * w];
    for y in 0..t {
        halo[(y + 1) * w + 1..(y + 1) * w + 1 + t].copy_from_slice(&center[y * t..(y + 1) * t]);
    }
    for (k, &(dy, dx)) in NEIGHBORS.iter().enumerate() {
        let Some(n) = nbrs[k] else { continue };
        match (dy, dx) {
            (-1, -1) => halo[0] = n[t * t - 1],
            (-1, 0) => halo[1..1 + t].copy_from_slice(&n[(t - 1) * t..]),
            (-1, 1) => halo[t + 1] = n[(t - 1) * t],
            (0, -1) => {
                for y in 0..t {
                    halo[(y + 1) * w] = n[y * t + t - 1];
                }
            }
            (0, 1) => {
                for y in 0..t {
                    halo[(y + 1) * w + t + 1] = n[y * t];
                }
            }
            (1, -1) => halo[(t + 1) * w] = n[t - 1],
            (1, 0) => halo[(t + 1) * w + 1..(t + 1) * w + 1 + t].copy_from_slice(&n[..t]),
            (1, 1) => halo[(t + 1) * w + t + 1] = n[0],
            _ => unreachable!(),
        }
    }
    halo
}

/// One Jacobi step of the 9-point stencil over an assembled halo:
/// `new = 0.5 · center + 0.0625 · Σ neighbors` (weights sum to 1).
pub fn step_tile(t: usize, halo: &[f64]) -> Vec<f64> {
    let w = t + 2;
    let mut out = vec![0.0; t * t];
    for y in 0..t {
        for x in 0..t {
            let mut s = 0.0;
            for &(dy, dx) in &NEIGHBORS {
                s += halo[((y as isize + 1 + dy) * w as isize + x as isize + 1 + dx) as usize];
            }
            out[y * t + x] = 0.5 * halo[(y + 1) * w + x + 1] + 0.0625 * s;
        }
    }
    out
}

/// Initial cell data of tile `(tx, ty)`, row-major.
fn initial_tile(cfg: &HaloConfig, tx: usize, ty: usize) -> Vec<f64> {
    let t = cfg.tile;
    (0..t * t)
        .map(|i| initial_value(tx * t + i % t, ty * t + i / t))
        .collect()
}

/// Final numeric results.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HaloOutput {
    /// Sum over all active tiles after the final iteration.
    pub total: f64,
    /// Order-sensitive checksum (active tiles in row-major order).
    pub grid_checksum: f64,
}

pub struct HaloHandles {
    pub result: Handle<(f64, f64)>,
}

/// Build and submit the whole Halo program on any Jade runtime.
pub fn build<R: JadeRuntime>(rt: &mut R, cfg: &HaloConfig) -> HaloHandles {
    let (tx_n, ty_n, t) = (cfg.tiles_x, cfg.tiles_y, cfg.tile);
    let mask = active_mask(cfg);
    let ring = worker_ring(cfg.procs);
    // Double-buffered tile data for active tiles only; both parities start
    // with the same initial data (an unwritten buffer reads as the initial
    // state). Homed by row, so a tile's three upper neighbors share an
    // owner — the aggregation pass's fan-in.
    let buf: Vec<Option<[Handle<Vec<f64>>; 2]>> = (0..tx_n * ty_n)
        .map(|idx| {
            if !mask[idx] {
                return None;
            }
            let (tx, ty) = (idx % tx_n, idx / tx_n);
            let home = ring[ty % ring.len()];
            let data = initial_tile(cfg, tx, ty);
            let mk = |rt: &mut R, q: usize| {
                let h = rt.create(&format!("tile[{tx},{ty}][{q}]"), 8 * t * t, data.clone());
                rt.set_home(h, home);
                h
            };
            Some([mk(rt, 0), mk(rt, 1)])
        })
        .collect();
    let result = rt.create("result", 16, (0.0f64, 0.0f64));
    rt.set_home(result, 0);

    for iter in 0..cfg.iterations {
        rt.begin_phase();
        let old = iter % 2;
        let new = (iter + 1) % 2;
        for idx in 0..tx_n * ty_n {
            let Some(pair) = buf[idx] else { continue };
            let (tx, ty) = (idx % tx_n, idx / tx_n);
            // The mask decides the read set at spawn time: only active
            // in-bounds neighbors are declared (and later fetched).
            let nbr_old: [Option<Handle<Vec<f64>>>; 8] = std::array::from_fn(|k| {
                let (dy, dx) = NEIGHBORS[k];
                let (nx, ny) = (tx as isize + dx, ty as isize + dy);
                if nx < 0 || ny < 0 || nx >= tx_n as isize || ny >= ty_n as isize {
                    return None;
                }
                buf[ny as usize * tx_n + nx as usize].map(|p| p[old])
            });
            let (wh, oh) = (pair[new], pair[old]);
            let mut tb = TaskBuilder::new("stencil").wr(wh).rd(oh);
            for h in nbr_old.iter().flatten() {
                tb = tb.rd(*h);
            }
            let placement = ring[ty % ring.len()];
            rt.submit(tb.place(placement).body(move |ctx| {
                let center = ctx.rd(oh);
                let guards: [Option<_>; 8] = std::array::from_fn(|k| nbr_old[k].map(|h| ctx.rd(h)));
                let nbrs: [Option<&[f64]>; 8] =
                    std::array::from_fn(|k| guards[k].as_deref().map(|v| v.as_slice()));
                let halo = assemble_halo(t, &center, &nbrs);
                *ctx.wr(wh) = step_tile(t, &halo);
                ctx.charge((t * t) as f64 * C_CELL);
            }));
        }
    }
    // Final serial gather over active tiles in row-major order.
    {
        let qlast = cfg.iterations % 2;
        let finals: Vec<Handle<Vec<f64>>> =
            buf.iter().filter_map(|p| p.map(|b| b[qlast])).collect();
        let mut tb = TaskBuilder::new("collect").wr(result);
        for &h in &finals {
            tb = tb.rd(h);
        }
        let cells = finals.len() * t * t;
        rt.submit(tb.serial_phase().body(move |ctx| {
            let mut all = Vec::with_capacity(cells);
            for &h in &finals {
                all.extend(ctx.rd(h).iter().copied());
            }
            let total = all.iter().sum();
            *ctx.wr(result) = (total, checksum(all));
            ctx.charge(cells as f64 * C_CELL);
        }));
    }
    HaloHandles { result }
}

pub fn output<R: JadeRuntime>(rt: &R, h: &HaloHandles) -> HaloOutput {
    let (total, grid_checksum) = *rt.store().read(h.result);
    HaloOutput {
        total,
        grid_checksum,
    }
}

pub fn run_on<R: JadeRuntime>(rt: &mut R, cfg: &HaloConfig) -> HaloOutput {
    let h = build(rt, cfg);
    rt.finish();
    output(rt, &h)
}

pub fn run_trace(cfg: &HaloConfig) -> (Trace, HaloOutput) {
    let mut rt = TraceRuntime::new();
    let h = build(&mut rt, cfg);
    rt.finish();
    let out = output(&rt, &h);
    let (_, trace) = rt.into_parts();
    (trace, out)
}

/// Number of active tiles under `cfg`'s mask.
pub fn active_count(cfg: &HaloConfig) -> usize {
    active_mask(cfg).iter().filter(|&&a| a).count()
}

/// Serial reference: the same mask, kernels and iteration order (active
/// tiles row-major, Jacobi across tiles) — bit-identical to the Jade
/// version. Returns the output and total charged operations.
pub fn reference(cfg: &HaloConfig) -> (HaloOutput, f64) {
    let (tx_n, ty_n, t) = (cfg.tiles_x, cfg.tiles_y, cfg.tile);
    let mask = active_mask(cfg);
    let mut state: Vec<Option<Vec<f64>>> = (0..tx_n * ty_n)
        .map(|idx| mask[idx].then(|| initial_tile(cfg, idx % tx_n, idx / tx_n)))
        .collect();
    let mut ops = 0.0;
    for _ in 0..cfg.iterations {
        let snap = state.clone();
        for idx in 0..tx_n * ty_n {
            if state[idx].is_none() {
                continue;
            }
            let (tx, ty) = (idx % tx_n, idx / tx_n);
            let nbrs: [Option<&[f64]>; 8] = std::array::from_fn(|k| {
                let (dy, dx) = NEIGHBORS[k];
                let (nx, ny) = (tx as isize + dx, ty as isize + dy);
                if nx < 0 || ny < 0 || nx >= tx_n as isize || ny >= ty_n as isize {
                    return None;
                }
                snap[ny as usize * tx_n + nx as usize].as_deref()
            });
            let center = snap[idx].as_deref().expect("active tile has data");
            let halo = assemble_halo(t, center, &nbrs);
            state[idx] = Some(step_tile(t, &halo));
            ops += (t * t) as f64 * C_CELL;
        }
    }
    let all: Vec<f64> = state.into_iter().flatten().flatten().collect();
    ops += all.len() as f64 * C_CELL;
    (
        HaloOutput {
            total: all.iter().sum(),
            grid_checksum: checksum(all),
        },
        ops,
    )
}

pub fn expected_tasks(cfg: &HaloConfig) -> usize {
    cfg.iterations * active_count(cfg) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_is_deterministic_and_dense_enough() {
        let cfg = HaloConfig::small(2);
        let m1 = active_mask(&cfg);
        assert_eq!(m1, active_mask(&cfg));
        assert!(m1[0], "tile 0 is forced active");
        let active = m1.iter().filter(|&&a| a).count();
        assert!(active >= m1.len() / 3 && active < m1.len(), "{active}");
    }

    #[test]
    fn trace_matches_reference_exactly() {
        for procs in [1usize, 2, 3, 5] {
            let cfg = HaloConfig::small(procs);
            let (trace, out) = run_trace(&cfg);
            let (ref_out, ref_ops) = reference(&cfg);
            assert_eq!(out, ref_out, "procs={procs}");
            assert_eq!(trace.task_count(), expected_tasks(&cfg));
            assert!(trace.validate().is_empty());
            let charged: f64 = trace.tasks.iter().map(|t| t.work).sum();
            assert!((charged - ref_ops).abs() < 1e-6, "{charged} vs {ref_ops}");
        }
    }

    #[test]
    fn same_iteration_tasks_do_not_conflict() {
        // Jacobi double-buffering: same-iteration tasks read only old-parity
        // buffers and write disjoint new-parity buffers.
        let cfg = HaloConfig::small(3);
        let n = active_count(&cfg);
        let (trace, _) = run_trace(&cfg);
        let first: Vec<_> = trace
            .tasks
            .iter()
            .filter(|t| t.label == "stencil")
            .take(n)
            .collect();
        for i in 0..first.len() {
            for j in (i + 1)..first.len() {
                assert!(
                    !first[i].spec.conflicts_with(&first[j].spec),
                    "tiles {i} and {j} must be independent within an iteration"
                );
            }
        }
    }

    #[test]
    fn read_sets_follow_the_mask() {
        let cfg = HaloConfig::small(3);
        let mask = active_mask(&cfg);
        let (trace, _) = run_trace(&cfg);
        let decls: Vec<usize> = trace
            .tasks
            .iter()
            .filter(|t| t.label == "stencil")
            .take(active_count(&cfg))
            .map(|t| t.spec.decls().len())
            .collect();
        // Every stencil task declares its write, its own old buffer, and
        // one read per *active* in-bounds neighbor: 2..=10 declarations,
        // and — because the mask has holes — not all the same.
        assert!(decls.iter().all(|&c| (2..=10).contains(&c)), "{decls:?}");
        assert!(
            decls.iter().any(|&c| c != decls[0]),
            "mask holes should vary the read sets: {decls:?} (mask {mask:?})"
        );
    }

    #[test]
    fn stencil_stays_bounded() {
        // The weights sum to 1 with zero boundaries, so values never grow.
        let cfg = HaloConfig::small(1);
        let (out, _) = reference(&cfg);
        let cells = active_count(&cfg) * cfg.tile * cfg.tile;
        assert!(out.total.is_finite());
        assert!(
            out.total <= cells as f64,
            "total {} cells {cells}",
            out.total
        );
        let longer = HaloConfig {
            iterations: 12,
            ..cfg
        };
        let (out2, _) = reference(&longer);
        // Mass leaks out through the zero boundary, so the total shrinks.
        assert!(out2.total < out.total, "{} vs {}", out2.total, out.total);
    }
}
