//! A vendored, minimal, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access, so the real crates.io
//! `proptest` cannot be resolved. This shim implements exactly the surface
//! the workspace's property tests use — the [`proptest!`] macro,
//! [`Strategy`] over ranges / tuples / `any::<T>()`,
//! `prop::collection::vec`, [`ProptestConfig`], and the `prop_assert*`
//! macros — with a deterministic SplitMix64 generator and **no shrinking**:
//! a failing case panics with the generating seed so it can be replayed by
//! rerunning the (fully deterministic) test.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic SplitMix64 random-number generator.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// FNV-1a hash of a test's path, used as its deterministic base seed.
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        h ^= bytes[i] as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    h
}

/// Test-runner configuration. Only the case count is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Unlike real proptest there is no shrinking: a
/// strategy simply produces a value from the RNG.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
    )*};
}

signed_range_strategy!(i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Generate an arbitrary value of a primitive type.
pub fn any<T>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! any_int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for AnyStrategy<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate a `Vec` of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Path alias so `prop::collection::vec(...)` works as in real proptest.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, AnyStrategy,
        ProptestConfig, Strategy, TestRng,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The `proptest!` block macro: wraps each contained `#[test] fn` so its
/// `pat in strategy` arguments are generated from a deterministic RNG,
/// running the body for `config.cases` distinct cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let seed = base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut rng = $crate::TestRng::from_seed(seed);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let u = (1usize..2).generate(&mut rng);
            assert_eq!(u, 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = |seed| {
            let mut rng = TestRng::from_seed(seed);
            collection::vec((0u8..9, any::<bool>()), 1..50).generate(&mut rng)
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: arguments bind, asserts work.
        #[test]
        fn macro_binds_arguments(xs in collection::vec(0u32..100, 0..10), b in any::<bool>()) {
            prop_assert!(xs.len() < 10);
            prop_assert_eq!(b, b);
            for x in xs {
                prop_assert!(x < 100);
            }
        }
    }
}
