//! The DASH machine simulation: replays a Jade program trace under the
//! shared-memory runtime algorithms of paper Sections 3.1–3.2.
//!
//! The main thread (on processor 0) walks the trace in serial program order,
//! paying a creation cost per task and registering accesses with the
//! synchronizer. Serial-phase tasks are main-thread inline code: the main
//! thread blocks until they can execute and runs them on processor 0 —
//! while it is blocked, processor 0's dispatcher runs ordinary tasks.
//! Enabled tasks flow through the [`DashScheduler`]; execution time is the
//! task's calibrated compute work plus the memory-system communication
//! charges from [`MemSim`].

use crate::costs::DashCosts;
use crate::error::DashError;
use crate::memsim::MemSim;
use crate::scheduler::{DashScheduler, LocalityMode};
use dsim::{
    Calendar, DashSpec, FaultInjector, FaultPlan, ProcClock, ProcId, SimDuration, SimTime, TimeKind,
};
use jade_core::{
    AccessMode, Component, Event, EventKind, EventSink, Locality, Metrics, Synchronizer, TaskId,
    Trace,
};

/// Configuration of one DASH run.
#[derive(Clone, Debug)]
pub struct DashConfig {
    pub machine: DashSpec,
    pub costs: DashCosts,
    pub mode: LocalityMode,
    /// Seconds of compute per abstract operation (per-application
    /// calibration; see EXPERIMENTS.md).
    pub sec_per_op: f64,
    /// Work-free methodology (Figures 10/11): zero out task work and
    /// communication, keep all management costs.
    pub work_free: bool,
    /// Model shared-object communication (set false to isolate scheduling).
    pub model_comm: bool,
    /// Disable read replication in the synchronizer (Section 5.1 analysis).
    pub replication: bool,
    /// Inspector/executor aggregation (DESIGN.md §15): the runtime inspects
    /// a task's declared access set before dispatch and coalesces its
    /// remote fetches, so after the first remote miss the rest of the
    /// bundle streams at [`DashSpec::agg_streamed_cycles`] per line.
    /// Directory transitions and `bytes_moved` are unchanged.
    pub aggregate_fetches: bool,
    /// Split-phase prefetch (DESIGN.md §17): when a task becomes enabled,
    /// the runtime starts streaming the remote lines of its declared access
    /// set toward the target processor's cluster, so fetches that would
    /// stall the task at start time instead complete at the streamed-line
    /// rate ([`DashSpec::agg_streamed_cycles`]). Directory transitions and
    /// `bytes_moved` are identical to a demand-fetch run — only the stall
    /// time shrinks, and only when the task actually runs in the cluster
    /// the prefetch targeted (a stolen task pays full price). A prefetched
    /// line invalidated by a later write is refetched at full cost and
    /// reported as stale. No-op without `model_comm` or under `work_free`.
    pub prefetch: bool,
    /// Virtual-time budget (mirrors `IpscConfig::deadline`): when the main
    /// thread reaches this much virtual time with trace records still left,
    /// it stops creating tasks, the already-created ones drain, and the run
    /// reports [`DashRunResult::deadline_exceeded`] with partial metrics.
    /// `None` = run to completion.
    pub deadline: Option<SimDuration>,
    /// Deterministic per-task duration jitter (fraction, mean zero),
    /// modeling the cache/contention variability of a real machine. Without
    /// it, equal-length tasks complete in lock step and the load balancer
    /// never sees an imbalance — unlike the paper's machines.
    pub jitter_frac: f64,
    /// Fault injection plan. DASH is a cache-coherent shared-memory machine:
    /// there are no messages to lose and the threads share fate with the
    /// kernel, so only the *transient stall* component of the plan applies
    /// (modeling OS jitter, page faults, contention spikes). The locality
    /// scheduler degrades gracefully — stalled processors simply fall
    /// behind and their queued tasks get stolen.
    pub faults: FaultPlan,
}

impl DashConfig {
    pub fn paper(procs: usize, mode: LocalityMode, sec_per_op: f64) -> DashConfig {
        DashConfig {
            machine: DashSpec::paper(procs),
            costs: DashCosts::default(),
            mode,
            sec_per_op,
            work_free: false,
            model_comm: true,
            replication: true,
            aggregate_fetches: false,
            prefetch: false,
            deadline: None,
            jitter_frac: 0.08,
            faults: FaultPlan::none(),
        }
    }
}

/// Measurements from one DASH run.
#[derive(Clone, Debug)]
pub struct DashRunResult {
    pub procs: usize,
    /// Wall-clock (virtual) execution time of the whole program.
    pub exec_time_s: f64,
    /// Total time spent executing task code, summed over all tasks —
    /// includes communication stalls, exactly like the 60 ns counter
    /// methodology of Figures 6–9.
    pub task_time_s: f64,
    /// Percentage of locality-tracked tasks that executed on the owner of
    /// their locality object (Figures 2–5).
    pub locality_pct: f64,
    /// Number of tasks counted in `locality_pct` (parallel tasks with a
    /// locality object).
    pub locality_tracked: usize,
    pub tasks_executed: usize,
    pub steals: u64,
    /// Total management time across processors.
    pub mgmt_time_s: f64,
    /// Management time on the main processor (task creation serialization).
    pub main_mgmt_s: f64,
    /// Total communication stall time inside tasks.
    pub comm_time_s: f64,
    /// Bytes moved between clusters.
    pub bytes_moved: u64,
    /// Transient processor stalls injected (fault injection).
    pub stalls: u64,
    /// Total injected stall time.
    pub stall_time_s: f64,
    /// Split-phase prefetches issued at task-enable time.
    pub prefetches_issued: u64,
    /// Prefetched lines that were still valid when the task started (the
    /// fetch completed at the streamed rate instead of a full round trip).
    pub prefetch_hits: u64,
    /// Prefetched lines invalidated by a write before task start and
    /// refetched at full cost.
    pub prefetch_stale: u64,
    /// Fraction of object-fetch latency hidden under application compute
    /// (0 when nothing was fetched).
    pub overlap_frac: f64,
    /// The [`DashConfig::deadline`] budget expired before the program
    /// finished: all metrics cover only the prefix that ran. Always `false`
    /// without a configured deadline.
    pub deadline_exceeded: bool,
    /// Per-processor busy time, split as (app, comm, mgmt) seconds.
    pub per_proc_busy: Vec<(f64, f64, f64)>,
}

#[derive(Debug)]
enum Ev {
    /// Main thread processes its next trace record.
    MainStep,
    /// A task finished on a processor.
    Finish { proc: ProcId, task: TaskId },
    /// An idle processor re-checks for stealable work.
    Retry { proc: ProcId },
}

/// A task's prefetch record: the cluster the lines streamed into, plus the
/// (object, write-epoch) pairs captured at enable time.
type PrefetchMark = (usize, Vec<(jade_core::ObjectId, u64)>);

struct Sim<'a> {
    trace: &'a Trace,
    cfg: &'a DashConfig,
    cal: Calendar<Ev>,
    pc: ProcClock,
    sync: Synchronizer,
    sched: DashScheduler,
    mem: Option<MemSim>,
    /// Precomputed target processor (owner of locality object) per task.
    target: Vec<ProcId>,
    next_rec: usize,
    main_blocked: Option<TaskId>,
    main_serial_ready: bool,
    main_done: bool,
    running: Vec<Option<TaskId>>,
    retry_pending: Vec<bool>,
    /// Deterministic LCG used to pick which idle processor grabs a shared-
    /// queue task at the No-Locality level: the paper's first-come
    /// first-served distribution is arbitrary, and a symmetric simulated
    /// system would otherwise develop accidental processor/task affinity.
    lcg: u64,
    /// Every measurement below comes out of this event stream: the run's
    /// counters are aggregated from it by [`Metrics::from_events`], not
    /// kept as ad-hoc tallies.
    events: EventSink,
    /// Fault decision stream (transient stalls only on this machine).
    inj: FaultInjector,
    /// Native stall tally, cross-checked against the event stream.
    n_stalls: u64,
    /// Per-task prefetch marks; `None` when no prefetch was issued
    /// (prefetch off, or nothing was remote).
    marks: Vec<Option<PrefetchMark>>,
    /// Monotone per-object write counter backing stale-prefetch detection:
    /// a prefetched line whose object epoch moved between enable and start
    /// was invalidated in flight and must be refetched at full cost.
    write_epoch: Vec<u64>,
    /// Virtual-time budget ([`DashConfig::deadline`]).
    budget: Option<dsim::SimBudget>,
    /// The budget expired: main stopped creating tasks mid-program.
    deadline_hit: bool,
    // Native prefetch tallies, cross-checked against the event stream.
    n_prefetch_issued: u64,
    n_prefetch_hits: u64,
    n_prefetch_stale: u64,
}

/// Simulate `trace` on the configured DASH machine.
///
/// Panics on a malformed configuration; see [`try_run`] for the typed-error
/// variant.
pub fn run(trace: &Trace, cfg: &DashConfig) -> DashRunResult {
    run_traced(trace, cfg).0
}

/// Simulate `trace` and also return the structured event stream the run's
/// measurements were aggregated from (see [`jade_core::events`]).
///
/// Panics on a malformed configuration; see [`try_run_traced`].
pub fn run_traced(trace: &Trace, cfg: &DashConfig) -> (DashRunResult, Vec<Event>) {
    try_run_traced(trace, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`run`].
pub fn try_run(trace: &Trace, cfg: &DashConfig) -> Result<DashRunResult, DashError> {
    Ok(try_run_traced(trace, cfg)?.0)
}

/// Fallible variant of [`run_traced`]: configuration problems and wedged
/// event loops come back as [`DashError`] instead of panics.
pub fn try_run_traced(
    trace: &Trace,
    cfg: &DashConfig,
) -> Result<(DashRunResult, Vec<Event>), DashError> {
    let procs = cfg.machine.procs;
    if procs < 1 {
        return Err(DashError::NoProcessors);
    }
    if let Err(why) = cfg.faults.validate() {
        return Err(DashError::InvalidFaultPlan(why));
    }
    let target = trace
        .tasks
        .iter()
        .map(|t| {
            t.spec.locality_object().map_or(jade_core::MAIN_PROC, |o| {
                trace.object_home(o).min(procs - 1)
            })
        })
        .collect();
    let mut sim = Sim {
        trace,
        cfg,
        cal: Calendar::new(),
        pc: ProcClock::new(procs),
        sync: Synchronizer::new(cfg.replication),
        sched: DashScheduler::new(cfg.mode, procs),
        mem: (cfg.model_comm && !cfg.work_free).then(|| MemSim::new(cfg.machine.clone(), trace)),
        target,
        next_rec: 0,
        main_blocked: None,
        main_serial_ready: false,
        main_done: false,
        running: vec![None; procs],
        retry_pending: vec![false; procs],
        lcg: 0x9E3779B97F4A7C15,
        events: EventSink::recording(),
        inj: FaultInjector::new(cfg.faults),
        n_stalls: 0,
        marks: vec![None; trace.tasks.len()],
        write_epoch: vec![0; trace.objects.len()],
        budget: cfg.deadline.map(dsim::SimBudget::new),
        deadline_hit: false,
        n_prefetch_issued: 0,
        n_prefetch_hits: 0,
        n_prefetch_stale: 0,
    };
    sim.cal.schedule(SimTime::ZERO, Ev::MainStep);
    while let Some((t, ev)) = sim.cal.pop() {
        match ev {
            Ev::MainStep => sim.main_step(t),
            Ev::Finish { proc, task } => sim.on_finish(proc, task, t),
            Ev::Retry { proc } => {
                sim.retry_pending[proc] = false;
                sim.try_fill(proc, t);
            }
        }
    }
    // A deadline cut is a *successful partial* run, not a stall: tasks the
    // gate refused (and trace records never created) are the cancelled
    // remainder the caller reads off `deadline_exceeded`.
    if !sim.deadline_hit && (!sim.main_done || !sim.sync.all_complete()) {
        return Err(DashError::Stalled {
            live_tasks: sim.sync.live_tasks(),
        });
    }
    let events = sim.events.into_events();
    let m = Metrics::from_events(&events, procs);
    debug_assert_eq!(
        m.steals, sim.sched.steals,
        "event steals disagree with scheduler"
    );
    debug_assert_eq!(
        m.fetch_bytes,
        sim.mem.as_ref().map_or(0, |mm| mm.bytes_moved),
        "event fetch bytes disagree with memory model"
    );
    debug_assert_eq!(
        m.stalls, sim.n_stalls,
        "event stalls disagree with injector"
    );
    debug_assert_eq!(
        m.prefetches_issued, sim.n_prefetch_issued,
        "event prefetch issues disagree with simulator"
    );
    debug_assert_eq!(
        m.prefetch_hits, sim.n_prefetch_hits,
        "event prefetch hits disagree with simulator"
    );
    debug_assert_eq!(
        m.prefetch_stale, sim.n_prefetch_stale,
        "event prefetch staleness disagrees with simulator"
    );
    debug_assert!(
        jade_core::check_conservation(&events, procs, sim.pc.horizon().0).is_ok(),
        "busy spans do not tile the makespan"
    );
    let total = m.total();
    let result = DashRunResult {
        procs,
        exec_time_s: sim.pc.horizon().as_secs_f64(),
        task_time_s: SimDuration(m.task_span_ps).as_secs_f64(),
        locality_pct: dsim::percent(m.locality_hits as f64, m.locality_tracked as f64),
        locality_tracked: m.locality_tracked,
        tasks_executed: m.tasks_started,
        steals: m.steals,
        mgmt_time_s: SimDuration(total.mgmt_ps).as_secs_f64(),
        main_mgmt_s: SimDuration(m.per_proc[0].mgmt_ps).as_secs_f64(),
        comm_time_s: SimDuration(total.comm_ps).as_secs_f64(),
        bytes_moved: m.fetch_bytes,
        stalls: m.stalls,
        stall_time_s: SimDuration(m.stall_ps).as_secs_f64(),
        prefetches_issued: m.prefetches_issued,
        prefetch_hits: m.prefetch_hits,
        prefetch_stale: m.prefetch_stale,
        overlap_frac: m.overlap_fraction(),
        deadline_exceeded: sim.deadline_hit,
        per_proc_busy: (0..procs)
            .map(|p| {
                let u = sim.pc.usage(p);
                (
                    u.app.as_secs_f64(),
                    u.comm.as_secs_f64(),
                    u.mgmt.as_secs_f64(),
                )
            })
            .collect(),
    };
    Ok((result, events))
}

/// Deterministic mean-zero multiplicative jitter for task `id`.
fn jitter(id: TaskId, frac: f64) -> f64 {
    let h = (id.0 as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
    let u = ((h >> 40) % 10_000) as f64 / 10_000.0; // [0, 1)
    1.0 + frac * (u - 0.5)
}

impl Sim<'_> {
    fn is_idle(&self, p: ProcId) -> bool {
        self.running[p].is_none() && (p != 0 || self.main_available())
    }

    /// Processor 0 may run tasks only while the main thread is blocked on a
    /// serial phase or has finished creating tasks.
    fn main_available(&self) -> bool {
        self.main_done || self.main_blocked.is_some()
    }

    fn main_step(&mut self, t: SimTime) {
        // Deadline: stop creating tasks once the budget is spent. The
        // already-created suffix drains normally (each created task's
        // predecessors were created before it), so the run terminates
        // cleanly with partial metrics instead of wedging as `Stalled`.
        if self.next_rec < self.trace.tasks.len() && self.budget.is_some_and(|b| b.exhausted(t)) {
            self.deadline_hit = true;
            self.main_done = true;
            self.try_fill(0, t);
            return;
        }
        if self.next_rec == self.trace.tasks.len() {
            self.main_done = true;
            self.try_fill(0, t);
            return;
        }
        let rec = &self.trace.tasks[self.next_rec];
        let id = rec.id;
        self.next_rec += 1;
        if rec.serial_phase {
            // Serial-phase code: main blocks until the dependences resolve,
            // then executes inline on processor 0.
            self.main_blocked = Some(id);
            let enabled = self
                .sync
                .add_task_traced(id, &rec.spec, &mut self.events, t.0, 0);
            if enabled {
                self.start_task(0, id, t);
            } else {
                // Processor 0 is now free to run tasks while main waits.
                self.try_fill(0, t);
            }
        } else {
            let create = self.cfg.costs.create();
            let end = self.pc.occupy(0, t, create, TimeKind::Mgmt);
            self.events
                .span(end.0 - create.0, 0, Component::Mgmt, create.0, Some(id));
            let enabled = self
                .sync
                .add_task_traced(id, &rec.spec, &mut self.events, end.0, 0);
            if enabled {
                self.on_enabled(id, end);
            }
            self.cal.schedule(end, Ev::MainStep);
        }
    }

    fn on_enabled(&mut self, id: TaskId, t: SimTime) {
        if self.main_blocked == Some(id) {
            if self.deadline_cuts(t) {
                return;
            }
            if self.running[0].is_none() {
                self.start_task(0, id, t);
            } else {
                self.main_serial_ready = true;
            }
            return;
        }
        let rec = &self.trace.tasks[id.index()];
        let procs = self.pc.procs();
        let pinned = self.cfg.mode.honors_placement() && rec.placement.is_some();
        let target = if pinned {
            rec.placement.unwrap().min(procs - 1)
        } else {
            self.target[id.index()]
        };
        self.sched
            .insert(id, target, rec.spec.locality_object(), pinned, t);
        if self.cfg.prefetch {
            self.mark_prefetch(id, target, t);
        }
        // Wake processors that could run it.
        if self.sched.mode().uses_locality() {
            if self.is_idle(target) {
                self.try_fill(target, t);
            } else if !pinned {
                for k in 1..procs {
                    let p = (target + k) % procs;
                    if self.is_idle(p) {
                        self.try_fill(p, t);
                        break;
                    }
                }
            }
        } else if let Some(p) = self.pick_idle() {
            self.try_fill(p, t);
        }
    }

    /// Start a split-phase prefetch for a newly enabled task: record which
    /// of its declared objects are remote to the target processor's cluster
    /// (with their current write epochs) and begin streaming them. The
    /// payoff is applied in [`Sim::start_task`]: a still-valid prefetched
    /// line completes at the streamed rate instead of a full round trip.
    fn mark_prefetch(&mut self, id: TaskId, target: ProcId, t: SimTime) {
        let Some(mem) = &self.mem else { return };
        let cluster = self.cfg.machine.cluster_of(target);
        let rec = &self.trace.tasks[id.index()];
        let missing = mem.missing_in(cluster, &rec.spec);
        if missing.is_empty() {
            return;
        }
        for &(o, bytes) in &missing {
            self.n_prefetch_issued += 1;
            self.events.emit_obj(
                t.0,
                target,
                EventKind::PrefetchIssued { bytes },
                Some(id),
                o,
            );
        }
        let epochs = missing
            .into_iter()
            .map(|(o, _)| (o, self.write_epoch[o.index()]))
            .collect();
        self.marks[id.index()] = Some((cluster, epochs));
    }

    /// Pseudo-randomly (but deterministically) pick an idle processor.
    fn pick_idle(&mut self) -> Option<ProcId> {
        let idle: Vec<ProcId> = (0..self.pc.procs()).filter(|&p| self.is_idle(p)).collect();
        if idle.is_empty() {
            return None;
        }
        self.lcg = self
            .lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        Some(idle[((self.lcg >> 33) as usize) % idle.len()])
    }

    /// The deadline gate: refuse to start new work at `t` once the budget
    /// is spent. Sets `deadline_hit` — only called when concrete ready work
    /// is being refused, so the flag means work was actually cut.
    fn deadline_cuts(&mut self, t: SimTime) -> bool {
        if self.budget.is_some_and(|b| b.exhausted(t)) {
            self.deadline_hit = true;
            return true;
        }
        false
    }

    fn try_fill(&mut self, p: ProcId, t: SimTime) {
        if !self.is_idle(p) {
            return;
        }
        if self.sched.queued() > 0 && self.deadline_cuts(t) {
            return;
        }
        if let Some(task) = self.sched.pop_local(p) {
            self.dispatch(p, task, t, false);
            return;
        }
        let cutoff = SimTime(
            t.0.saturating_sub(SimDuration::from_secs_f64(self.cfg.costs.steal_patience_s).0),
        );
        if let Some((task, _victim)) = self.sched.steal(p, cutoff) {
            self.dispatch(p, task, t, true);
            return;
        }
        if self.sched.any_stealable() && !self.retry_pending[p] {
            self.retry_pending[p] = true;
            let delay = SimDuration::from_secs_f64(self.cfg.costs.steal_patience_s);
            self.cal.schedule(t + delay, Ev::Retry { proc: p });
        }
    }

    /// The heuristic outcome to record for a dispatch of `id` to `p`:
    /// measured only for parallel tasks that declared a locality object.
    fn locality_of(&self, p: ProcId, id: TaskId) -> Locality {
        let rec = &self.trace.tasks[id.index()];
        if rec.serial_phase || rec.spec.locality_object().is_none() {
            Locality::Untracked
        } else if p == self.target[id.index()] {
            Locality::Hit
        } else {
            Locality::Miss
        }
    }

    fn dispatch(&mut self, p: ProcId, task: TaskId, t: SimTime, stolen: bool) {
        let mut cost = self.cfg.costs.dispatch();
        if stolen {
            cost += self.cfg.costs.steal();
        }
        let locality = self.locality_of(p, task);
        self.events
            .emit_task(t.0, p, EventKind::TaskDispatched { stolen, locality }, task);
        let end = self.pc.occupy(p, t, cost, TimeKind::Mgmt);
        self.events
            .span(end.0 - cost.0, p, Component::Mgmt, cost.0, Some(task));
        self.start_task(p, task, end);
    }

    fn start_task(&mut self, p: ProcId, id: TaskId, t: SimTime) {
        debug_assert!(self.running[p].is_none(), "dispatch to busy processor");
        let mut t = t;
        // Injected transient stall: the processor loses time to OS jitter
        // (a page fault, an interrupt storm) before the task starts. The
        // task still runs to completion — a stall only shifts its span,
        // and the work-stealing scheduler absorbs the imbalance.
        if let Some(d) = self.inj.stall() {
            self.n_stalls += 1;
            self.events
                .emit(t.0, p, EventKind::ProcStalled { dur_ps: d.0 });
            let end = self.pc.occupy(p, t, d, TimeKind::Comm);
            self.events.span(end.0 - d.0, p, Component::Comm, d.0, None);
            t = end;
        }
        self.running[p] = Some(id);
        let rec = &self.trace.tasks[id.index()];
        if rec.serial_phase {
            // Serial tasks bind to the main processor without a scheduler
            // dispatch; emit the binding here so every task has one
            // dispatched event in its lifecycle chain.
            self.events.emit_task(
                t.0,
                p,
                EventKind::TaskDispatched {
                    stolen: false,
                    locality: Locality::Untracked,
                },
                id,
            );
        }
        self.events.emit_task(t.0, p, EventKind::TaskStarted, id);
        let work = if self.cfg.work_free {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(
                rec.work * self.cfg.sec_per_op * jitter(id, self.cfg.jitter_frac),
            )
        };
        // Inter-cluster fetches this task stalls on, as (object, bytes, stall).
        let mut fetches: Vec<(jade_core::ObjectId, u64, SimDuration)> = Vec::new();
        let comm = match &mut self.mem {
            Some(mem) if self.cfg.aggregate_fetches => {
                let (comm, _remote) =
                    mem.task_accesses_agg_with(p, &rec.spec, |o, bytes, stall| {
                        fetches.push((o, bytes, stall))
                    });
                comm
            }
            Some(mem) => mem.task_accesses_with(p, &rec.spec, |o, bytes, stall| {
                fetches.push((o, bytes, stall))
            }),
            None => SimDuration::ZERO,
        };
        // Split-phase prefetch payoff (DESIGN.md §17): fetches whose lines
        // were streamed toward this cluster at enable time — and not
        // invalidated by a write since — complete at the streamed rate.
        // The directory transitions and `bytes_moved` charged above are
        // untouched; only the stall time shrinks.
        let mut comm = comm;
        // Per-fetch prefetch outcome: Some(true) hit, Some(false) stale.
        let mut outcome: Vec<Option<bool>> = vec![None; fetches.len()];
        if let Some((cluster, marked)) = self.marks[id.index()].take() {
            if cluster == self.cfg.machine.cluster_of(p) {
                for (i, (o, bytes, stall)) in fetches.iter_mut().enumerate() {
                    let Some(&(_, epoch)) = marked.iter().find(|(mo, _)| *mo == *o) else {
                        continue;
                    };
                    if epoch == self.write_epoch[o.index()] {
                        let fast = self.cfg.machine.streamed_time(*bytes as usize).min(*stall);
                        comm = SimDuration(comm.0 - (stall.0 - fast.0));
                        *stall = fast;
                        self.n_prefetch_hits += 1;
                        outcome[i] = Some(true);
                    } else {
                        // Invalidated in flight: refetched at full cost.
                        self.n_prefetch_stale += 1;
                        outcome[i] = Some(false);
                    }
                }
            }
        }
        // The task's writes are visible to the directory from here on: any
        // earlier prefetch of these objects now holds an invalidated copy.
        for d in rec.spec.decls() {
            if d.mode != AccessMode::Read {
                self.write_epoch[d.object.index()] += 1;
            }
        }
        let mut end = self.pc.occupy(p, t, work, TimeKind::App);
        self.events
            .span(end.0 - work.0, p, Component::App, work.0, Some(id));
        if comm > SimDuration::ZERO {
            let comm_start = end;
            end = self.pc.occupy(p, t, comm, TimeKind::Comm);
            self.events
                .span(end.0 - comm.0, p, Component::Comm, comm.0, Some(id));
            // Each fetch completes at its offset within the stall interval.
            let mut at = comm_start;
            let first_obj = fetches.first().map(|&(o, _, _)| o);
            let (mut agg_n, mut agg_bytes) = (0u32, 0u64);
            for (i, (o, bytes, stall)) in fetches.into_iter().enumerate() {
                at += stall;
                self.events.emit_obj(
                    at.0,
                    p,
                    EventKind::ObjectFetch {
                        bytes,
                        latency_ps: stall.0,
                    },
                    Some(id),
                    o,
                );
                match outcome[i] {
                    Some(true) => {
                        self.events
                            .emit_obj(at.0, p, EventKind::PrefetchHit { bytes }, Some(id), o)
                    }
                    Some(false) => self.events.emit_obj(
                        at.0,
                        p,
                        EventKind::PrefetchStale { bytes },
                        Some(id),
                        o,
                    ),
                    None => {}
                }
                agg_n += 1;
                agg_bytes += bytes;
            }
            // With aggregation on, ≥ 2 remote objects rode one coalesced
            // transfer; mark the bundle for message-count accounting.
            if self.cfg.aggregate_fetches && agg_n >= 2 {
                self.events.emit_obj(
                    at.0,
                    p,
                    EventKind::AggregatedFetch {
                        objects: agg_n,
                        bytes: agg_bytes,
                    },
                    Some(id),
                    first_obj.expect("agg_n >= 2 implies a fetch"),
                );
            }
        }
        self.cal.schedule(end, Ev::Finish { proc: p, task: id });
    }

    fn on_finish(&mut self, p: ProcId, id: TaskId, t: SimTime) {
        let complete = self.cfg.costs.complete();
        let end = self.pc.occupy(p, t, complete, TimeKind::Mgmt);
        self.events
            .span(end.0 - complete.0, p, Component::Mgmt, complete.0, Some(id));
        let mut newly = Vec::new();
        self.sync
            .complete_traced(id, &mut newly, &mut self.events, end.0, p);
        self.running[p] = None;
        if self.main_blocked == Some(id) {
            self.main_blocked = None;
            self.main_serial_ready = false;
            self.cal.schedule(end, Ev::MainStep);
        }
        for t2 in newly {
            self.on_enabled(t2, end);
        }
        // If a serial task became ready while processor 0 was busy with the
        // task that just finished, run it now.
        if p == 0 && self.main_serial_ready {
            if let Some(serial) = self.main_blocked {
                if self.deadline_cuts(end) {
                    return;
                }
                self.main_serial_ready = false;
                self.start_task(0, serial, end);
                return;
            }
        }
        self.try_fill(p, end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_core::{AccessSpec, ObjectId, TraceBuilder};

    fn spec(reads: &[ObjectId], writes: &[ObjectId]) -> AccessSpec {
        let mut s = AccessSpec::new();
        for &r in reads {
            s.rd(r);
        }
        for &w in writes {
            s.wr(w);
        }
        s
    }

    /// A trivially parallel trace: `n` tasks each writing a private object
    /// homed round-robin across `procs` processors.
    fn parallel_trace(n: usize, procs: usize, work: f64) -> Trace {
        let mut b = TraceBuilder::new();
        let objs: Vec<_> = (0..n)
            .map(|i| b.object(&format!("o{i}"), 1024, Some(i % procs)))
            .collect();
        for &o in &objs {
            b.task(spec(&[], &[o]), work);
        }
        b.build()
    }

    fn cfg(procs: usize, mode: LocalityMode) -> DashConfig {
        let mut c = DashConfig::paper(procs, mode, 1.0);
        c.jitter_frac = 0.0; // exact timing assertions below
        c
    }

    #[test]
    fn single_processor_runs_everything() {
        let trace = parallel_trace(10, 1, 0.1);
        let r = run(&trace, &cfg(1, LocalityMode::Locality));
        assert_eq!(r.tasks_executed, 10);
        // Exec time at least the serial work.
        assert!(r.exec_time_s >= 1.0, "{}", r.exec_time_s);
        // Management overhead is visible but small.
        assert!(r.mgmt_time_s > 0.0 && r.mgmt_time_s < 0.1);
    }

    #[test]
    fn parallel_speedup() {
        let trace = parallel_trace(32, 8, 1.0);
        let r1 = run(&trace, &cfg(1, LocalityMode::Locality));
        let r8 = run(&trace, &cfg(8, LocalityMode::Locality));
        assert!(
            r8.exec_time_s < r1.exec_time_s / 4.0,
            "8-proc {} vs 1-proc {}",
            r8.exec_time_s,
            r1.exec_time_s
        );
    }

    #[test]
    fn locality_mode_runs_tasks_on_owners() {
        // One task per processor-owned object, long enough that no stealing
        // is needed: 100% locality.
        let trace = parallel_trace(8, 8, 1.0);
        let r = run(&trace, &cfg(8, LocalityMode::Locality));
        assert_eq!(r.locality_tracked, 8);
        // Proc 0's task waits until the main thread finishes creating; all
        // others are picked up by their owners immediately.
        assert!(r.locality_pct >= 87.0, "locality {}", r.locality_pct);
    }

    #[test]
    fn no_locality_mode_scatters_tasks() {
        // Many tasks all homed on processor 1: under NoLocality they're
        // handed to whichever processor is idle.
        let mut b = TraceBuilder::new();
        let objs: Vec<_> = (0..64)
            .map(|i| b.object(&format!("o{i}"), 64, Some(1)))
            .collect();
        for &o in &objs {
            b.task(spec(&[], &[o]), 0.01);
        }
        let trace = b.build();
        let r = run(&trace, &cfg(8, LocalityMode::NoLocality));
        assert_eq!(r.tasks_executed, 64);
        assert!(r.locality_pct < 60.0, "locality {}", r.locality_pct);
    }

    #[test]
    fn dependent_tasks_serialize() {
        let mut b = TraceBuilder::new();
        let o = b.object("chain", 64, Some(0));
        for _ in 0..5 {
            b.task(spec(&[], &[o]), 1.0);
        }
        let trace = b.build();
        let r = run(&trace, &cfg(8, LocalityMode::Locality));
        // A write-write chain cannot speed up: ~5 s of serialized work.
        assert!(r.exec_time_s >= 5.0, "{}", r.exec_time_s);
    }

    #[test]
    fn serial_phase_blocks_main() {
        // parallel writers -> serial reader -> parallel writers.
        let mut b = TraceBuilder::new();
        let objs: Vec<_> = (0..4)
            .map(|i| b.object(&format!("o{i}"), 64, Some(i)))
            .collect();
        for &o in &objs {
            b.task(spec(&[], &[o]), 1.0);
        }
        b.next_phase();
        b.task_full(spec(&objs, &[]), 0.5, None, true);
        b.next_phase();
        for &o in &objs {
            b.task(spec(&[], &[o]), 1.0);
        }
        let trace = b.build();
        let r = run(&trace, &cfg(4, LocalityMode::Locality));
        assert_eq!(r.tasks_executed, 9);
        // Two parallel phases (~1 s each) plus the serial phase (~0.5 s).
        assert!(r.exec_time_s >= 2.5, "{}", r.exec_time_s);
        assert!(r.exec_time_s < 4.0, "{}", r.exec_time_s);
    }

    #[test]
    fn work_free_keeps_management_only() {
        let trace = parallel_trace(100, 4, 1.0);
        let mut c = cfg(4, LocalityMode::Locality);
        c.work_free = true;
        let r = run(&trace, &c);
        assert_eq!(r.task_time_s, 0.0);
        assert!(r.mgmt_time_s > 0.0);
        assert!(
            r.exec_time_s < 0.2,
            "work-free run should be fast: {}",
            r.exec_time_s
        );
    }

    #[test]
    fn stealing_balances_uneven_load() {
        // All objects homed on processor 1; locality mode must steal to use
        // the other processors.
        let mut b = TraceBuilder::new();
        let objs: Vec<_> = (0..32)
            .map(|i| b.object(&format!("o{i}"), 64, Some(1)))
            .collect();
        for &o in &objs {
            b.task(spec(&[], &[o]), 1.0);
        }
        let trace = b.build();
        let r = run(&trace, &cfg(8, LocalityMode::Locality));
        assert!(r.steals > 0, "expected steals");
        // With stealing, the run finishes far sooner than the serial 32 s.
        assert!(r.exec_time_s < 10.0, "{}", r.exec_time_s);
        assert!(r.locality_pct < 100.0);
    }

    #[test]
    fn placement_pins_tasks() {
        let mut b = TraceBuilder::new();
        let objs: Vec<_> = (0..12)
            .map(|i| b.object(&format!("o{i}"), 64, Some(1 + (i % 3))))
            .collect();
        for (i, &o) in objs.iter().enumerate() {
            b.task_full(spec(&[], &[o]), 0.5, Some(1 + (i % 3)), false);
        }
        let trace = b.build();
        let r = run(&trace, &cfg(4, LocalityMode::TaskPlacement));
        assert_eq!(r.locality_pct, 100.0);
        assert_eq!(r.steals, 0);
    }

    #[test]
    fn replication_off_serializes_readers() {
        let mut b = TraceBuilder::new();
        let shared = b.object("shared", 1024, Some(0));
        let outs: Vec<_> = (0..8)
            .map(|i| b.object(&format!("o{i}"), 64, Some(i % 4)))
            .collect();
        for &o in &outs {
            b.task(spec(&[shared], &[o]), 1.0);
        }
        let trace = b.build();
        let on = run(&trace, &cfg(4, LocalityMode::Locality));
        let mut c = cfg(4, LocalityMode::Locality);
        c.replication = false;
        let off = run(&trace, &c);
        assert!(
            off.exec_time_s > 2.0 * on.exec_time_s,
            "no-replication {} should be much slower than {}",
            off.exec_time_s,
            on.exec_time_s
        );
    }

    #[test]
    fn deterministic() {
        let trace = parallel_trace(50, 4, 0.3);
        let a = run(&trace, &cfg(4, LocalityMode::Locality));
        let b = run(&trace, &cfg(4, LocalityMode::Locality));
        assert_eq!(a.exec_time_s, b.exec_time_s);
        assert_eq!(a.locality_pct, b.locality_pct);
        assert_eq!(a.steals, b.steals);
    }

    #[test]
    fn event_stream_reconstructs_run() {
        // Mix of parallel phases and a serial phase so every event path
        // (dispatch, steal retry, serial inline start) is exercised.
        let mut b = TraceBuilder::new();
        let objs: Vec<_> = (0..16)
            .map(|i| b.object(&format!("o{i}"), 512, Some(i % 4)))
            .collect();
        for &o in &objs {
            b.task(spec(&[], &[o]), 0.05);
        }
        b.next_phase();
        b.task_full(spec(&objs, &[]), 0.1, None, true);
        let trace = b.build();
        let (r, events) = run_traced(&trace, &cfg(4, LocalityMode::Locality));

        jade_core::check_lifecycle(&events).expect("lifecycle chains");
        let m = Metrics::from_events(&events, 4);
        // The makespan is tiled by per-processor busy spans...
        jade_core::check_conservation(&events, 4, m.makespan_ps).expect("span conservation");
        // ...and agrees with the clock the result was built from.
        assert_eq!(SimDuration(m.makespan_ps).as_secs_f64(), r.exec_time_s);
        // Per-processor breakdowns from events match the processor clock.
        for (p, busy) in r.per_proc_busy.iter().enumerate() {
            let pt = m.per_proc[p];
            assert_eq!(SimDuration(pt.app_ps).as_secs_f64(), busy.0, "proc {p} app");
            assert_eq!(
                SimDuration(pt.comm_ps).as_secs_f64(),
                busy.1,
                "proc {p} comm"
            );
            assert_eq!(
                SimDuration(pt.mgmt_ps).as_secs_f64(),
                busy.2,
                "proc {p} mgmt"
            );
        }
        assert_eq!(m.tasks_started, r.tasks_executed);
        assert_eq!(m.tasks_created, trace.tasks.len());
        assert_eq!(m.fetch_bytes, r.bytes_moved);
    }

    // ---- fault injection ----

    #[test]
    fn inactive_fault_plan_changes_nothing() {
        let trace = parallel_trace(20, 4, 0.2);
        let clean = run(&trace, &cfg(4, LocalityMode::Locality));
        let mut c = cfg(4, LocalityMode::Locality);
        c.faults = FaultPlan::none().with_seed(7);
        let seeded = run(&trace, &c);
        assert_eq!(clean.exec_time_s, seeded.exec_time_s);
        assert_eq!(seeded.stalls, 0);
    }

    #[test]
    fn stalls_slow_the_run_but_everything_completes() {
        let trace = parallel_trace(24, 4, 0.2);
        let clean = run(&trace, &cfg(4, LocalityMode::Locality));
        let mut c = cfg(4, LocalityMode::Locality);
        c.faults = FaultPlan::parse("stall=1.0:0.05,seed=3").unwrap();
        let (r, events) = run_traced(&trace, &c);
        assert_eq!(r.tasks_executed, clean.tasks_executed);
        assert_eq!(r.stalls, 24, "every task start stalls at p=1");
        assert!(r.stall_time_s > 1.0, "24 stalls of 50 ms");
        assert!(r.exec_time_s > clean.exec_time_s);
        jade_core::check_lifecycle(&events).unwrap();
        let m = Metrics::from_events(&events, 4);
        jade_core::check_conservation(&events, 4, m.makespan_ps).unwrap();
    }

    #[test]
    fn stealing_absorbs_stall_imbalance() {
        // All tasks homed on processor 1, long stalls: the locality
        // scheduler's queues back up behind the stalls and the other
        // processors steal the overflow — graceful degradation, not
        // serialization behind the stalled owner.
        let mut b = TraceBuilder::new();
        let objs: Vec<_> = (0..32)
            .map(|i| b.object(&format!("o{i}"), 64, Some(1)))
            .collect();
        for &o in &objs {
            b.task(spec(&[], &[o]), 0.5);
        }
        let trace = b.build();
        let mut c = cfg(8, LocalityMode::Locality);
        c.faults = FaultPlan::parse("stall=0.5:0.2,seed=11").unwrap();
        let r = run(&trace, &c);
        assert_eq!(r.tasks_executed, 32);
        assert!(r.steals > 0, "stalled owner's queue should be stolen from");
        // 32 × 0.5 s serial is 16 s; stealing keeps it well under that even
        // with the injected stalls on top.
        assert!(r.exec_time_s < 12.0, "{}", r.exec_time_s);
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn invalid_fault_plan_panics() {
        let trace = parallel_trace(4, 2, 0.1);
        let mut c = cfg(2, LocalityMode::Locality);
        c.faults = FaultPlan {
            stall_p: -0.5,
            ..FaultPlan::none()
        };
        run(&trace, &c);
    }

    #[test]
    fn config_errors_are_typed() {
        let trace = parallel_trace(4, 2, 0.1);
        let mut c = cfg(2, LocalityMode::Locality);
        c.machine.procs = 0;
        assert!(matches!(
            try_run(&trace, &c),
            Err(crate::DashError::NoProcessors)
        ));
        let mut c = cfg(2, LocalityMode::Locality);
        c.faults = FaultPlan {
            stall_p: 2.0,
            ..FaultPlan::none()
        };
        assert!(matches!(
            try_run(&trace, &c),
            Err(crate::DashError::InvalidFaultPlan(_))
        ));
    }

    // ---- split-phase prefetch ----

    /// Tasks homed (via their small written locality object) on processor 4
    /// — cluster 1 — each reading a distinct large object resident in
    /// cluster 0: every read is a genuine first-touch remote fetch that a
    /// prefetch issued at enable time can hide.
    fn remote_read_trace(n: usize) -> Trace {
        let mut b = TraceBuilder::new();
        for i in 0..n {
            let out = b.object(&format!("out{i}"), 64, Some(4));
            let data = b.object(&format!("d{i}"), 200_000, Some(0));
            let mut s = AccessSpec::new();
            s.wr(out).rd(data);
            b.task(s, 0.1);
        }
        b.build()
    }

    #[test]
    fn prefetch_hides_stalls_without_changing_traffic() {
        let trace = remote_read_trace(8);
        let off = run(&trace, &cfg(8, LocalityMode::Locality));
        let mut c = cfg(8, LocalityMode::Locality);
        c.prefetch = true;
        let (on, events) = run_traced(&trace, &c);
        assert_eq!(on.tasks_executed, off.tasks_executed);
        // Same coherence traffic, shorter stalls.
        assert_eq!(on.bytes_moved, off.bytes_moved);
        assert!(
            on.prefetches_issued > 0,
            "remote reads should be prefetched"
        );
        assert!(on.prefetch_hits > 0, "valid prefetches should hit");
        assert_eq!(on.prefetch_stale, 0, "nothing invalidates these lines");
        assert!(
            on.comm_time_s < off.comm_time_s,
            "prefetch comm {} should undercut demand-fetch comm {}",
            on.comm_time_s,
            off.comm_time_s
        );
        assert!(
            on.exec_time_s <= off.exec_time_s + 1e-9,
            "prefetch must never slow the run: {} vs {}",
            on.exec_time_s,
            off.exec_time_s
        );
        jade_core::check_lifecycle(&events).unwrap();
        let m = Metrics::from_events(&events, 8);
        jade_core::check_conservation(&events, 8, m.makespan_ps).unwrap();
    }

    #[test]
    fn prefetch_composes_with_aggregation() {
        let trace = remote_read_trace(8);
        let mut agg = cfg(8, LocalityMode::Locality);
        agg.aggregate_fetches = true;
        let base = run(&trace, &agg);
        let mut both = agg.clone();
        both.prefetch = true;
        let r = run(&trace, &both);
        assert_eq!(r.bytes_moved, base.bytes_moved);
        assert_eq!(r.tasks_executed, base.tasks_executed);
        assert!(
            r.exec_time_s <= base.exec_time_s + 1e-9,
            "{} vs {}",
            r.exec_time_s,
            base.exec_time_s
        );
    }

    #[test]
    fn prefetch_is_deterministic() {
        let trace = remote_read_trace(12);
        let mut c = cfg(8, LocalityMode::Locality);
        c.prefetch = true;
        let (a, ea) = run_traced(&trace, &c);
        let (b, eb) = run_traced(&trace, &c);
        assert_eq!(a.exec_time_s, b.exec_time_s);
        assert_eq!(a.prefetch_hits, b.prefetch_hits);
        assert_eq!(ea, eb, "event streams must be identical");
    }

    // ---- deadline budget ----

    #[test]
    fn deadline_cuts_the_run_with_partial_metrics() {
        let trace = parallel_trace(16, 2, 0.5);
        let mut c = cfg(2, LocalityMode::Locality);
        // Full run takes ~4+ virtual seconds; budget one.
        c.deadline = Some(SimDuration::from_secs_f64(1.0));
        let r = try_run(&trace, &c).expect("deadline run completes cleanly");
        assert!(r.deadline_exceeded);
        assert!(
            r.tasks_executed < 16,
            "expected a partial run, got {} tasks",
            r.tasks_executed
        );
        assert!(r.tasks_executed > 0, "one virtual second fits some tasks");
        // A zero budget creates nothing and still drains cleanly.
        c.deadline = Some(SimDuration::ZERO);
        let r0 = try_run(&trace, &c).expect("zero-deadline run");
        assert!(r0.deadline_exceeded);
        assert_eq!(r0.tasks_executed, 0);
    }

    #[test]
    fn generous_deadline_is_bit_identical_to_none() {
        let trace = parallel_trace(20, 4, 0.3);
        let base_cfg = cfg(4, LocalityMode::Locality);
        let (base, be) = run_traced(&trace, &base_cfg);
        let mut c = cfg(4, LocalityMode::Locality);
        c.deadline = Some(SimDuration::from_secs_f64(1e6));
        let (r, re) = run_traced(&trace, &c);
        assert!(!r.deadline_exceeded);
        assert_eq!(r.exec_time_s, base.exec_time_s);
        assert_eq!(r.steals, base.steals);
        assert_eq!(r.bytes_moved, base.bytes_moved);
        assert_eq!(be, re, "generous budget must not perturb the event stream");
    }
}
