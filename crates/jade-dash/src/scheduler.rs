//! The shared-memory task scheduler (paper Section 3.2.1).
//!
//! At the *Locality* optimization level there is one task queue per
//! processor, structured as a queue of **object task queues**: one queue per
//! locality object, owned by the processor in whose memory module the object
//! is allocated. Enabled tasks enter the object task queue of their locality
//! object; a processor takes the first task of its first object task queue,
//! and an idle processor with nothing local cyclically searches other
//! processors' queues and steals the **last** task of the **last** object
//! task queue (preserving the cache-locality of the victim's front runs).
//!
//! At the *No Locality* level the scheduler is a single shared FIFO queue.
//!
//! Explicitly placed tasks (the *Task Placement* level) are pinned: they
//! enter a per-processor pinned queue and are never stolen.

use dsim::SimTime;
pub use jade_core::LocalityMode;
use jade_core::{ObjectId, ProcId, TaskId};
use std::collections::{HashMap, VecDeque};

#[derive(Debug)]
struct QueuedTask {
    task: TaskId,
    enqueued: SimTime,
}

#[derive(Default, Debug)]
struct ProcQueue {
    /// Explicitly placed tasks; never stolen.
    pinned: VecDeque<QueuedTask>,
    /// Object task queues in arrival order (only non-empty queues listed).
    order: VecDeque<ObjectId>,
    by_obj: HashMap<ObjectId, VecDeque<QueuedTask>>,
    len: usize,
}

impl ProcQueue {
    fn push(&mut self, obj: ObjectId, task: TaskId, now: SimTime) {
        let q = self.by_obj.entry(obj).or_default();
        if q.is_empty() {
            self.order.push_back(obj);
        }
        q.push_back(QueuedTask {
            task,
            enqueued: now,
        });
        self.len += 1;
    }

    // Invariant: `order` lists exactly the objects whose `by_obj` queue is
    // non-empty, each once (`push` adds an object to `order` only when its
    // queue was empty; both pops delist an object when its queue drains).
    // The pops below still walk `order` defensively: a desynced entry —
    // impossible today, loud in debug builds — is skipped and cleaned up
    // instead of panicking mid-simulation.

    fn pop_first(&mut self) -> Option<TaskId> {
        if let Some(t) = self.pinned.pop_front() {
            self.len -= 1;
            return Some(t.task);
        }
        while let Some(&obj) = self.order.front() {
            match self.by_obj.get_mut(&obj).and_then(|q| q.pop_front()) {
                Some(t) => {
                    if self.by_obj.get(&obj).is_some_and(|q| q.is_empty()) {
                        self.order.pop_front();
                        self.by_obj.remove(&obj);
                    }
                    self.len -= 1;
                    return Some(t.task);
                }
                None => {
                    debug_assert!(false, "order/by_obj out of sync at {obj:?}");
                    self.order.pop_front();
                    self.by_obj.remove(&obj);
                }
            }
        }
        None
    }

    /// Steal the last task of the last object task queue.
    fn pop_last(&mut self) -> Option<TaskId> {
        while let Some(&obj) = self.order.back() {
            match self.by_obj.get_mut(&obj).and_then(|q| q.pop_back()) {
                Some(t) => {
                    if self.by_obj.get(&obj).is_some_and(|q| q.is_empty()) {
                        self.order.pop_back();
                        self.by_obj.remove(&obj);
                    }
                    self.len -= 1;
                    return Some(t.task);
                }
                None => {
                    debug_assert!(false, "order/by_obj out of sync at {obj:?}");
                    self.order.pop_back();
                    self.by_obj.remove(&obj);
                }
            }
        }
        None
    }

    /// Age of the oldest stealable (non-pinned) task.
    fn oldest_enqueue(&self) -> Option<SimTime> {
        self.order
            .iter()
            .filter_map(|o| self.by_obj.get(o).and_then(|q| q.front()))
            .map(|t| t.enqueued)
            .min()
    }

    fn stealable_len(&self) -> usize {
        self.len - self.pinned.len()
    }

    /// Check the `order`/`by_obj` bookkeeping invariant (test support).
    #[cfg(test)]
    fn check_invariants(&self) {
        use std::collections::HashSet;
        let listed: HashSet<ObjectId> = self.order.iter().copied().collect();
        assert_eq!(
            listed.len(),
            self.order.len(),
            "order lists an object twice"
        );
        assert_eq!(
            listed,
            self.by_obj.keys().copied().collect::<HashSet<_>>(),
            "order and by_obj disagree on the live objects"
        );
        for (o, q) in &self.by_obj {
            assert!(!q.is_empty(), "empty queue left behind for {o:?}");
        }
        let tasks: usize = self.by_obj.values().map(|q| q.len()).sum();
        assert_eq!(self.len, self.pinned.len() + tasks, "len out of sync");
    }
}

/// The DASH task scheduler.
pub struct DashScheduler {
    mode: LocalityMode,
    shared: VecDeque<QueuedTask>,
    procs: Vec<ProcQueue>,
    queued: usize,
    /// Number of successful steals (reported in run results).
    pub steals: u64,
}

impl DashScheduler {
    pub fn new(mode: LocalityMode, nprocs: usize) -> DashScheduler {
        DashScheduler {
            mode,
            shared: VecDeque::new(),
            procs: (0..nprocs).map(|_| ProcQueue::default()).collect(),
            queued: 0,
            steals: 0,
        }
    }

    pub fn mode(&self) -> LocalityMode {
        self.mode
    }

    /// Number of queued (enabled, undispatched) tasks.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Insert an enabled task. `target` is the owner of the task's locality
    /// object; `pinned` marks an explicit placement being honored.
    pub fn insert(
        &mut self,
        task: TaskId,
        target: ProcId,
        locality_obj: Option<ObjectId>,
        pinned: bool,
        now: SimTime,
    ) {
        self.queued += 1;
        if !self.mode.uses_locality() {
            self.shared.push_back(QueuedTask {
                task,
                enqueued: now,
            });
            return;
        }
        let pq = &mut self.procs[target];
        if pinned {
            pq.pinned.push_back(QueuedTask {
                task,
                enqueued: now,
            });
            pq.len += 1;
        } else {
            // Tasks with an empty access spec have no locality object; they
            // queue under a reserved nil object id on the target.
            let obj = locality_obj.unwrap_or(ObjectId(u32::MAX));
            pq.push(obj, task, now);
        }
    }

    /// Take the next task for processor `p` from its own queue.
    pub fn pop_local(&mut self, p: ProcId) -> Option<TaskId> {
        if !self.mode.uses_locality() {
            let t = self.shared.pop_front()?;
            self.queued -= 1;
            return Some(t.task);
        }
        let t = self.procs[p].pop_first()?;
        self.queued -= 1;
        Some(t)
    }

    /// Attempt a steal for idle processor `thief`: cyclically search other
    /// processors, taking the last task of the last object task queue.
    ///
    /// To avoid pathological early steals of tasks that are about to be run
    /// by their own (momentarily busy) processor, a victim is eligible when
    /// it has at least two stealable tasks, or when its oldest stealable
    /// task has waited since before `patience_cutoff`. This models the scan
    /// latency of the real distributed stealing protocol.
    pub fn steal(&mut self, thief: ProcId, patience_cutoff: SimTime) -> Option<(TaskId, ProcId)> {
        if !self.mode.uses_locality() {
            return None;
        }
        let n = self.procs.len();
        for k in 1..n {
            let victim = (thief + k) % n;
            let pq = &self.procs[victim];
            let eligible = pq.stealable_len() >= 2
                || pq.oldest_enqueue().is_some_and(|e| e <= patience_cutoff);
            if eligible {
                if let Some(t) = self.procs[victim].pop_last() {
                    self.queued -= 1;
                    self.steals += 1;
                    return Some((t, victim));
                }
            }
        }
        None
    }

    /// True if any stealable task exists anywhere (used to decide whether an
    /// idle processor should schedule a retry).
    pub fn any_stealable(&self) -> bool {
        if !self.mode.uses_locality() {
            return !self.shared.is_empty();
        }
        self.procs.iter().any(|pq| pq.stealable_len() > 0)
    }

    /// Queue length of processor `p` (diagnostics).
    pub fn proc_queue_len(&self, p: ProcId) -> usize {
        if self.mode.uses_locality() {
            self.procs[p].len
        } else {
            self.shared.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime(0);

    fn o(n: u32) -> Option<ObjectId> {
        Some(ObjectId(n))
    }

    #[test]
    fn shared_fifo_order() {
        let mut s = DashScheduler::new(LocalityMode::NoLocality, 4);
        s.insert(TaskId(0), 1, o(0), false, T0);
        s.insert(TaskId(1), 2, o(1), false, T0);
        assert_eq!(s.pop_local(3), Some(TaskId(0)));
        assert_eq!(s.pop_local(0), Some(TaskId(1)));
        assert_eq!(s.pop_local(0), None);
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn object_queue_fifo_within_object() {
        let mut s = DashScheduler::new(LocalityMode::Locality, 2);
        s.insert(TaskId(0), 0, o(5), false, T0);
        s.insert(TaskId(1), 0, o(5), false, T0);
        s.insert(TaskId(2), 0, o(6), false, T0);
        // First task of first object task queue.
        assert_eq!(s.pop_local(0), Some(TaskId(0)));
        assert_eq!(s.pop_local(0), Some(TaskId(1)));
        assert_eq!(s.pop_local(0), Some(TaskId(2)));
    }

    #[test]
    fn steal_takes_last_of_last() {
        let mut s = DashScheduler::new(LocalityMode::Locality, 2);
        s.insert(TaskId(0), 0, o(5), false, T0);
        s.insert(TaskId(1), 0, o(5), false, T0);
        s.insert(TaskId(2), 0, o(6), false, T0);
        let (t, victim) = s.steal(1, T0).unwrap();
        assert_eq!(victim, 0);
        assert_eq!(t, TaskId(2), "steals from the LAST object task queue");
        let (t2, _) = s.steal(1, T0).unwrap();
        assert_eq!(t2, TaskId(1), "steals the LAST task of the queue");
        assert_eq!(s.steals, 2);
    }

    #[test]
    fn single_fresh_task_not_stolen_before_patience() {
        let mut s = DashScheduler::new(LocalityMode::Locality, 2);
        s.insert(TaskId(0), 0, o(5), false, SimTime(1000));
        // Patience cutoff earlier than enqueue time: not eligible.
        assert!(s.steal(1, SimTime(500)).is_none());
        // Cutoff after enqueue: eligible.
        assert_eq!(s.steal(1, SimTime(1000)).unwrap().0, TaskId(0));
    }

    #[test]
    fn pinned_tasks_never_stolen() {
        let mut s = DashScheduler::new(LocalityMode::TaskPlacement, 2);
        s.insert(TaskId(0), 0, o(5), true, T0);
        assert!(s.steal(1, SimTime(u64::MAX / 2)).is_none());
        assert_eq!(s.pop_local(0), Some(TaskId(0)));
    }

    #[test]
    fn steal_search_is_cyclic() {
        let mut s = DashScheduler::new(LocalityMode::Locality, 4);
        s.insert(TaskId(0), 1, o(1), false, T0);
        s.insert(TaskId(1), 3, o(3), false, T0);
        // Thief 2 searches 3, 0, 1: finds proc 3 first.
        let (t, victim) = s.steal(2, T0).unwrap();
        assert_eq!((t, victim), (TaskId(1), 3));
    }

    #[test]
    fn no_locality_never_steals() {
        let mut s = DashScheduler::new(LocalityMode::NoLocality, 2);
        s.insert(TaskId(0), 0, o(0), false, T0);
        assert!(s.steal(1, SimTime(u64::MAX / 2)).is_none());
        assert!(s.any_stealable()); // shared queue is "stealable" work
    }

    #[test]
    fn task_without_locality_object() {
        let mut s = DashScheduler::new(LocalityMode::Locality, 2);
        s.insert(TaskId(0), 1, None, false, T0);
        assert_eq!(s.pop_local(1), Some(TaskId(0)));
    }

    /// Regression test for the `order`/`by_obj` bookkeeping: drive a long
    /// pseudo-random interleaving of inserts, local pops and steals —
    /// including repeated objects, pinned tasks, nil locality objects and
    /// the shrink-to-empty / regrow transitions — checking the structural
    /// invariant after every operation and full conservation at the end.
    #[test]
    fn random_interleavings_keep_order_and_by_obj_in_sync() {
        let mut s = DashScheduler::new(LocalityMode::Locality, 4);
        let mut lcg = 0x2545F4914F6CDD1Du64;
        let mut rnd = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) as usize
        };
        let mut inserted = 0usize;
        let mut popped = Vec::new();
        for step in 0..20_000 {
            match rnd() % 10 {
                // Weighted toward inserts early, drains late.
                0..=4 => {
                    let target = rnd() % 4;
                    // Few distinct objects => queues repeatedly drain to
                    // empty and regrow; `None` exercises the nil id.
                    let obj = match rnd() % 5 {
                        4 => None,
                        n => Some(ObjectId(n as u32)),
                    };
                    let pinned = rnd() % 8 == 0;
                    s.insert(TaskId(inserted as u32), target, obj, pinned, SimTime(step));
                    inserted += 1;
                }
                5..=7 => {
                    if let Some(t) = s.pop_local(rnd() % 4) {
                        popped.push(t);
                    }
                }
                _ => {
                    let cutoff = SimTime(step.saturating_sub(rnd() as u64 % 100));
                    if let Some((t, _victim)) = s.steal(rnd() % 4, cutoff) {
                        popped.push(t);
                    }
                }
            }
            for pq in &s.procs {
                pq.check_invariants();
            }
            let live: usize = s.procs.iter().map(|pq| pq.len).sum();
            assert_eq!(s.queued(), live, "queued counter out of sync");
        }
        // Drain whatever is left and account for every task exactly once.
        for p in 0..4 {
            while let Some(t) = s.pop_local(p) {
                popped.push(t);
            }
        }
        assert_eq!(popped.len(), inserted, "tasks lost or duplicated");
        popped.sort();
        popped.dedup();
        assert_eq!(popped.len(), inserted, "a task was popped twice");
        for pq in &s.procs {
            pq.check_invariants();
            assert_eq!(pq.len, 0);
        }
    }
}
