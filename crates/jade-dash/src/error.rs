//! Typed errors for the DASH simulation entry points.
//!
//! Mirrors `jade_ipsc::IpscError`: a malformed configuration or a wedged
//! event loop surfaces as a [`DashError`] through [`crate::try_run`] /
//! [`crate::try_run_traced`] instead of panicking inside the simulator.

use std::fmt;

/// Why a DASH simulation could not produce a result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DashError {
    /// The configuration requested a machine with zero processors.
    NoProcessors,
    /// The fault plan is malformed (bad probability, or a component that
    /// cannot apply to a shared-memory machine).
    InvalidFaultPlan(String),
    /// The event calendar drained before the program completed: `live_tasks`
    /// tasks never finished. Indicates a scheduler bug, not an injected
    /// fault — transient stalls only shift task spans.
    Stalled { live_tasks: usize },
}

impl fmt::Display for DashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DashError::NoProcessors => write!(f, "need at least one processor"),
            DashError::InvalidFaultPlan(why) => write!(f, "invalid fault plan: {why}"),
            DashError::Stalled { live_tasks } => {
                write!(f, "simulation stalled: {live_tasks} tasks never completed")
            }
        }
    }
}

impl std::error::Error for DashError {}
