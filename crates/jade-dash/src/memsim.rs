//! Cluster-granularity memory-system model for DASH.
//!
//! On DASH all shared-object communication happens implicitly, on demand, as
//! tasks reference remote data; the paper observes it as differences in task
//! execution time (Figures 6–9). This model tracks, per shared object, which
//! clusters hold a valid cached copy and whether the newest copy is dirty,
//! and charges the Appendix-B line latencies when a task's cluster must
//! fetch the object.
//!
//! Accesses that hit in the task's own cluster cost nothing *extra*: the
//! per-task work calibration already includes local memory traffic, which is
//! how the single-processor Jade times line up with the stripped serial
//! times (Table 1 vs Tables 2–5).

use dsim::{DashHit, DashSpec, SimDuration};
use jade_core::{AccessMode, AccessSpec, Trace};

#[derive(Clone, Debug)]
struct ObjState {
    /// Clusters holding a valid copy.
    sharers: Vec<bool>,
    /// Cluster holding the newest copy when dirty.
    dirty_in: Option<usize>,
}

/// Tracks object residency and prices task accesses.
pub struct MemSim {
    machine: DashSpec,
    objects: Vec<ObjState>,
    sizes: Vec<usize>,
    /// Total bytes moved between clusters (diagnostic).
    pub bytes_moved: u64,
}

impl MemSim {
    /// Objects start resident (clean) in their home cluster: the program's
    /// initialization wrote them there.
    pub fn new(machine: DashSpec, trace: &Trace) -> MemSim {
        let clusters = machine.clusters();
        let objects = trace
            .objects
            .iter()
            .map(|o| {
                let mut sharers = vec![false; clusters];
                let home_proc = o
                    .home
                    .unwrap_or(jade_core::MAIN_PROC)
                    .min(machine.procs - 1);
                sharers[machine.cluster_of(home_proc)] = true;
                ObjState {
                    sharers,
                    dirty_in: None,
                }
            })
            .collect();
        let sizes = trace
            .objects
            .iter()
            .map(|o| o.cache_bytes.unwrap_or(o.size_bytes))
            .collect();
        MemSim {
            machine,
            objects,
            sizes,
            bytes_moved: 0,
        }
    }

    /// Price and apply all accesses in `spec` performed by a task running on
    /// processor `proc`. Returns the extra communication time the task
    /// spends stalled on remote fetches.
    pub fn task_accesses(&mut self, proc: usize, spec: &AccessSpec) -> SimDuration {
        self.task_accesses_with(proc, spec, |_, _, _| {})
    }

    /// Like [`task_accesses`](Self::task_accesses), but reports every
    /// inter-cluster fetch as `(object, bytes, stall)` — the per-access
    /// detail behind the event layer's `ObjectFetch` records. Accesses
    /// that hit in the task's own cluster are not reported.
    pub fn task_accesses_with(
        &mut self,
        proc: usize,
        spec: &AccessSpec,
        mut on_fetch: impl FnMut(jade_core::ObjectId, u64, SimDuration),
    ) -> SimDuration {
        let cluster = self.machine.cluster_of(proc);
        let mut total = SimDuration::ZERO;
        for d in spec.decls() {
            let (cost, bytes) = match d.mode {
                AccessMode::Read => self.read(cluster, d.object.index()),
                AccessMode::Write | AccessMode::ReadWrite => self.write(cluster, d.object.index()),
            };
            if bytes > 0 {
                on_fetch(d.object, bytes, cost);
            }
            total += cost;
        }
        total
    }

    /// Like [`task_accesses_with`](Self::task_accesses_with), but with the
    /// inspector/executor aggregation pass applied (DESIGN.md §15): the
    /// runtime inspected the task's declared access set at enable time, so
    /// after the *first* remote miss has opened the path, every further
    /// remote object in the same set streams behind it at
    /// [`DashSpec::agg_streamed_cycles`] per line instead of paying a full
    /// round trip. Directory state transitions and `bytes_moved` are
    /// identical to the unaggregated walk — only the stall time shrinks.
    /// Returns the total stall plus the number of remote objects coalesced.
    pub fn task_accesses_agg_with(
        &mut self,
        proc: usize,
        spec: &AccessSpec,
        mut on_fetch: impl FnMut(jade_core::ObjectId, u64, SimDuration),
    ) -> (SimDuration, u32) {
        let cluster = self.machine.cluster_of(proc);
        let mut total = SimDuration::ZERO;
        let mut remote = 0u32;
        for d in spec.decls() {
            let (full_cost, bytes) = match d.mode {
                AccessMode::Read => self.read(cluster, d.object.index()),
                AccessMode::Write | AccessMode::ReadWrite => self.write(cluster, d.object.index()),
            };
            let cost = if bytes > 0 && remote > 0 {
                // Streamed tail of the bundle: latency already paid.
                self.machine.streamed_time(bytes as usize).min(full_cost)
            } else {
                full_cost
            };
            if bytes > 0 {
                remote += 1;
                on_fetch(d.object, bytes, cost);
            }
            total += cost;
        }
        (total, remote)
    }

    /// Objects in `spec` that would miss in `cluster` right now, with their
    /// transfer sizes — the candidate set a split-phase prefetch issued at
    /// task-enable time would stream toward the cluster (DESIGN.md §17).
    /// Read-only: no directory state changes.
    pub fn missing_in(&self, cluster: usize, spec: &AccessSpec) -> Vec<(jade_core::ObjectId, u64)> {
        spec.decls()
            .iter()
            .filter(|d| self.hit_level(cluster, d.object.index()) != DashHit::OwnCache)
            .map(|d| (d.object, self.sizes[d.object.index()] as u64))
            .collect()
    }

    fn hit_level(&self, cluster: usize, obj: usize) -> DashHit {
        let st = &self.objects[obj];
        if st.sharers[cluster] {
            DashHit::OwnCache
        } else if st.dirty_in.is_some() {
            DashHit::RemoteDirty
        } else {
            DashHit::RemoteClean
        }
    }

    fn read(&mut self, cluster: usize, obj: usize) -> (SimDuration, u64) {
        let hit = self.hit_level(cluster, obj);
        let bytes = self.sizes[obj];
        let cost = self.machine.transfer_time(bytes, hit);
        let fetched = if hit != DashHit::OwnCache {
            self.bytes_moved += bytes as u64;
            bytes as u64
        } else {
            0
        };
        let st = &mut self.objects[obj];
        // A read fetches a clean copy into this cluster; a dirty copy is
        // written back and the line becomes shared.
        st.sharers[cluster] = true;
        if let Some(d) = st.dirty_in {
            st.sharers[d] = true;
            st.dirty_in = None;
        }
        (cost, fetched)
    }

    fn write(&mut self, cluster: usize, obj: usize) -> (SimDuration, u64) {
        let already_exclusive = {
            let st = &self.objects[obj];
            st.sharers[cluster] && st.sharers.iter().filter(|&&s| s).count() == 1
        };
        let (cost, fetched) = if already_exclusive {
            (SimDuration::ZERO, 0)
        } else {
            let hit = self.hit_level(cluster, obj);
            let c = self.machine.transfer_time(self.sizes[obj], hit);
            if hit != DashHit::OwnCache {
                self.bytes_moved += self.sizes[obj] as u64;
                (c, self.sizes[obj] as u64)
            } else {
                (c, 0)
            }
        };
        let st = &mut self.objects[obj];
        st.sharers.iter_mut().for_each(|s| *s = false);
        st.sharers[cluster] = true;
        st.dirty_in = Some(cluster);
        (cost, fetched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_core::{ObjectId, ObjectRecord};

    fn trace_with_objects(homes: &[usize], sizes: &[usize]) -> Trace {
        Trace {
            objects: homes
                .iter()
                .zip(sizes)
                .enumerate()
                .map(|(i, (&h, &s))| ObjectRecord {
                    id: ObjectId(i as u32),
                    name: format!("o{i}"),
                    size_bytes: s,
                    cache_bytes: None,
                    home: Some(h),
                })
                .collect(),
            tasks: Vec::new(),
            phases: 1,
        }
    }

    fn rd_spec(o: u32) -> AccessSpec {
        let mut s = AccessSpec::new();
        s.rd(ObjectId(o));
        s
    }

    fn wr_spec(o: u32) -> AccessSpec {
        let mut s = AccessSpec::new();
        s.wr(ObjectId(o));
        s
    }

    #[test]
    fn local_read_is_free() {
        let m = DashSpec::paper(8);
        let mut mem = MemSim::new(m, &trace_with_objects(&[0], &[1024]));
        // Proc 0 is in the home cluster of object 0.
        assert_eq!(mem.task_accesses(0, &rd_spec(0)), SimDuration::ZERO);
        assert_eq!(mem.bytes_moved, 0);
    }

    #[test]
    fn remote_read_charges_then_caches() {
        let m = DashSpec::paper(8);
        let mut mem = MemSim::new(m.clone(), &trace_with_objects(&[0], &[1600]));
        // Proc 4 is in cluster 1: first read is a remote clean fetch.
        let c1 = mem.task_accesses(4, &rd_spec(0));
        assert_eq!(c1, m.transfer_time(1600, DashHit::RemoteClean));
        // Second read from the same cluster hits.
        let c2 = mem.task_accesses(5, &rd_spec(0));
        assert_eq!(c2, SimDuration::ZERO);
        assert_eq!(mem.bytes_moved, 1600);
    }

    #[test]
    fn write_invalidates_sharers() {
        let m = DashSpec::paper(12);
        let mut mem = MemSim::new(m.clone(), &trace_with_objects(&[0], &[320]));
        // Clusters 1 and 2 read the object.
        mem.task_accesses(4, &rd_spec(0));
        mem.task_accesses(8, &rd_spec(0));
        // Cluster 0 writes: it holds a copy, but not exclusively, so the
        // invalidation round costs something... then cluster 1's next read
        // sees a dirty remote copy.
        let _ = mem.task_accesses(0, &wr_spec(0));
        let c = mem.task_accesses(4, &rd_spec(0));
        assert_eq!(c, m.transfer_time(320, DashHit::RemoteDirty));
    }

    #[test]
    fn repeated_exclusive_writes_are_free() {
        let m = DashSpec::paper(8);
        let mut mem = MemSim::new(m.clone(), &trace_with_objects(&[4], &[4096]));
        // First write by the home cluster itself (proc 4, cluster 1): it is
        // the only sharer, so exclusive already.
        assert_eq!(mem.task_accesses(4, &wr_spec(0)), SimDuration::ZERO);
        assert_eq!(mem.task_accesses(4, &wr_spec(0)), SimDuration::ZERO);
        // A write from another cluster pays a dirty fetch.
        let c = mem.task_accesses(0, &wr_spec(0));
        assert_eq!(c, m.transfer_time(4096, DashHit::RemoteDirty));
    }

    #[test]
    fn task_with_multiple_objects_sums_costs() {
        let m = DashSpec::paper(8);
        let mut mem = MemSim::new(m.clone(), &trace_with_objects(&[0, 4], &[160, 160]));
        let mut spec = AccessSpec::new();
        spec.rd(ObjectId(0)).rd(ObjectId(1));
        let c = mem.task_accesses(0, &spec);
        // Object 0 local, object 1 remote clean.
        assert_eq!(c, m.transfer_time(160, DashHit::RemoteClean));
    }
}
