//! # jade-dash — the shared-memory (Stanford DASH) Jade runtime
//!
//! Replays machine-independent Jade program traces (`jade_core::Trace`) on a
//! simulated DASH: a cache-coherent NUMA machine with 4-processor clusters
//! and the Appendix-B latency constants. Implements the paper's
//! shared-memory runtime:
//!
//! * the **locality heuristic** (Section 3.2.1): per-processor task queues
//!   of object task queues, tasks enqueued at the owner of their locality
//!   object, cyclic stealing of the last task of the last queue;
//! * the **No Locality** baseline: a single shared FIFO queue;
//! * **Task Placement**: explicit per-task placements honored and pinned;
//! * demand-driven communication accounting at coherence-line granularity
//!   ([`MemSim`]), which produces the total-task-time curves of Figures 6–9
//!   and the work-free task-management fractions of Figures 10–11.
//!
//! ```
//! use jade_core::{AccessSpec, TraceBuilder};
//! use jade_dash::{run, DashConfig, LocalityMode};
//!
//! let mut b = TraceBuilder::new();
//! let objs: Vec<_> = (0..8).map(|i| b.object(&format!("o{i}"), 1024, Some(i % 4))).collect();
//! for &o in &objs {
//!     let mut s = AccessSpec::new();
//!     s.wr(o);
//!     b.task(s, 1.0);
//! }
//! let trace = b.build();
//! let result = run(&trace, &DashConfig::paper(4, LocalityMode::Locality, 1.0));
//! assert_eq!(result.tasks_executed, 8);
//! assert!(result.exec_time_s < 8.0); // parallel speedup
//! ```

#![forbid(unsafe_code)]

mod costs;
mod error;
mod memsim;
mod scheduler;
mod sim;

pub use costs::DashCosts;
pub use error::DashError;
pub use memsim::MemSim;
pub use scheduler::{DashScheduler, LocalityMode};
pub use sim::{run, run_traced, try_run, try_run_traced, DashConfig, DashRunResult};
