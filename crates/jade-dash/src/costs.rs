//! Cost model for the Jade runtime's own overheads on DASH.
//!
//! The paper measures task management overhead directly (Figures 10 and 11:
//! the "work-free" methodology). These constants are the per-operation costs
//! of the Jade implementation on DASH, calibrated so that the single
//! processor overhead and the work-free fractions land where the paper
//! reports them (see EXPERIMENTS.md §calibration):
//!
//! * Panel Cholesky runs ~15–20% slower under Jade on one processor
//!   (Table 5 vs Table 1) with a few thousand tasks, implying roughly
//!   0.5–1 ms of management per task;
//! * Ocean's work-free fraction climbs to ~60% of a ~10 s run at 32
//!   processors with ~30k tasks, implying ~0.2–0.3 ms of serialized
//!   creation cost per task on the main processor.

use dsim::SimDuration;

/// Per-operation Jade runtime overheads on the shared-memory machine.
#[derive(Clone, Copy, Debug)]
pub struct DashCosts {
    /// Main-thread cost to create one task: executing the access
    /// specification section, allocating the task descriptor, and inserting
    /// the declared accesses into the synchronizer's object queues.
    pub create_s: f64,
    /// Scheduler cost to move an enabled task into an object task queue and
    /// for a dispatcher to extract it.
    pub dispatch_s: f64,
    /// Cost, on the executing processor, of completing a task: removing its
    /// queue entries and enabling successors.
    pub complete_s: f64,
    /// Extra cost of a steal (cyclic search plus remote queue access).
    pub steal_s: f64,
    /// How long a lone freshly-queued task must wait before an idle
    /// processor may steal it (models the scan latency of the distributed
    /// stealing protocol; see `DashScheduler::steal`).
    pub steal_patience_s: f64,
}

impl Default for DashCosts {
    fn default() -> Self {
        DashCosts {
            create_s: 300e-6,
            dispatch_s: 100e-6,
            complete_s: 200e-6,
            steal_s: 150e-6,
            steal_patience_s: 100e-6,
        }
    }
}

impl DashCosts {
    pub fn create(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.create_s)
    }
    pub fn dispatch(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.dispatch_s)
    }
    pub fn complete(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.complete_s)
    }
    pub fn steal(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.steal_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive_and_sub_millisecond() {
        let c = DashCosts::default();
        for v in [c.create_s, c.dispatch_s, c.complete_s, c.steal_s] {
            assert!(v > 0.0 && v < 1e-3);
        }
        assert!(c.create().as_secs_f64() > 0.0);
    }
}
